//! The campaign runner: many independent single/multi-fault injections,
//! fanned out across threads.
//!
//! Campaigns run on the same rayon pool as the parallel attention and
//! matmul kernels (one scheduler for the whole workspace), replacing the
//! previous hand-rolled crossbeam work-stealing loop. Each campaign derives
//! its RNG stream from `(seed, campaign index)` and produces an independent
//! [`CampaignStats`] delta; deltas are pure counter sums, so the reduction
//! is exact and thread-count-independent.

use crate::classify::{classify, Classified, DetectionCriterion};
use crate::stats::CampaignStats;
use fa_accel_sim::config::AcceleratorConfig;
use fa_accel_sim::fault::Fault;
use fa_accel_sim::Accelerator;
use fa_models::Workload;
use fa_numerics::Tolerance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Specification of a fault-injection campaign series.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignSpec {
    /// The accelerator under test.
    pub accel: AcceleratorConfig,
    /// Number of independent campaigns (the paper runs 10 000).
    pub campaigns: usize,
    /// Faults per campaign: `1` for Table I; the multi-fault experiment
    /// samples uniformly from `1..=max_faults` when `max_faults > 1`.
    pub max_faults: usize,
    /// Checksum comparison tolerance τ.
    pub tolerance: Tolerance,
    /// Output corruption tolerance.
    pub output_tolerance: f64,
    /// Detection criterion.
    pub criterion: DetectionCriterion,
    /// Base RNG seed; campaign *i* derives its own stream.
    pub seed: u64,
}

impl CampaignSpec {
    /// Creates a single-fault campaign at the paper's operating point
    /// (τ = 10⁻⁶, checksum-discrepancy criterion).
    pub fn new(accel: AcceleratorConfig, campaigns: usize, seed: u64) -> Self {
        CampaignSpec {
            accel,
            campaigns,
            max_faults: 1,
            tolerance: Tolerance::PAPER,
            output_tolerance: 1e-6,
            criterion: DetectionCriterion::ChecksumDiscrepancy,
            seed,
        }
    }

    /// Sets the faults-per-campaign upper bound (multi-fault experiment).
    ///
    /// # Panics
    ///
    /// Panics if `max_faults == 0`.
    pub fn with_max_faults(mut self, max_faults: usize) -> Self {
        assert!(max_faults > 0, "at least one fault per campaign");
        self.max_faults = max_faults;
        self
    }

    /// Sets the detection criterion.
    pub fn with_criterion(mut self, criterion: DetectionCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Sets the checksum tolerance.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }
}

/// Samples one fault uniformly over storage bits and cycles.
fn sample_fault(
    rng: &mut StdRng,
    map: &fa_accel_sim::storage::StorageMap,
    total_cycles: u64,
) -> Fault {
    let bit_index = rng.gen_range(0..map.total_bits());
    let (target, bit) = map.locate_bit(bit_index);
    let cycle = rng.gen_range(0..total_cycles);
    Fault { cycle, target, bit }
}

/// Runs one campaign: sample faults, simulate, classify. Also returns
/// the earliest injected fault's cycle and the run geometry, from which
/// detection latencies derive.
pub fn run_one(
    spec: &CampaignSpec,
    accel: &Accelerator,
    workload: &Workload,
    golden: &fa_accel_sim::RunResult,
    campaign_idx: usize,
) -> (Classified, u64, u64, u64) {
    let mut rng = StdRng::seed_from_u64(
        spec.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(campaign_idx as u64),
    );
    let map = accel.storage_map();
    let total_cycles = spec
        .accel
        .total_cycles(workload.seq_len(), workload.seq_len());
    let n_faults = if spec.max_faults == 1 {
        1
    } else {
        rng.gen_range(1..=spec.max_faults)
    };
    let faults: Vec<Fault> = (0..n_faults)
        .map(|_| sample_fault(&mut rng, &map, total_cycles))
        .collect();
    let checker_site = faults.iter().any(|f| f.target.is_checker());
    let faulty = accel.run_faulted(&workload.q, &workload.k, &workload.v, &faults, Some(golden));
    let classified = classify(
        golden,
        &faulty,
        checker_site,
        spec.criterion,
        spec.tolerance,
        spec.output_tolerance,
    );
    let earliest = faults.iter().map(|f| f.cycle).min().expect("n_faults >= 1");
    let cpp = spec.accel.cycles_per_pass(workload.seq_len());
    (classified, earliest, cpp, total_cycles)
}

/// Runs the full campaign series, fanned out over the shared rayon pool.
///
/// Results are independent of thread count: each campaign derives its
/// RNG stream from `(spec.seed, campaign index)`, and the per-campaign
/// stats deltas are combined with exact integer sums.
///
/// # Panics
///
/// Panics if the workload shape disagrees with the accelerator config.
pub fn run_campaigns(spec: &CampaignSpec, workload: &Workload) -> CampaignStats {
    assert_eq!(
        workload.head_dim(),
        spec.accel.head_dim(),
        "workload head_dim {} != accelerator head_dim {}",
        workload.head_dim(),
        spec.accel.head_dim()
    );
    let accel = Accelerator::new(spec.accel);
    let golden = accel.run(&workload.q, &workload.k, &workload.v);

    (0..spec.campaigns)
        .into_par_iter()
        .map(|i| {
            let mut local = CampaignStats::default();
            let (outcome, fault_cycle, cpp, total_cycles) =
                run_one(spec, &accel, workload, &golden, i);
            local.record(&outcome);
            if outcome.category == crate::classify::FaultCategory::Detected {
                // End-of-attention: the global comparison happens at the
                // final cycle of the run.
                local.detected_latency_end_sum += total_cycles - fault_cycle;
                // Per-pass: the fault's pass checks at its own epilogue.
                let pass_end = (fault_cycle / cpp + 1) * cpp;
                local.detected_latency_pass_sum += pass_end - fault_cycle;
            }
            local
        })
        .reduce(CampaignStats::default, |mut acc, local| {
            acc.merge(&local);
            acc
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_models::{LlmModel, WorkloadSpec};

    fn small_setup(campaigns: usize) -> (CampaignSpec, Workload) {
        let model = LlmModel::Bert.config();
        let spec_w = WorkloadSpec {
            seq_len: 16,
            ..WorkloadSpec::paper(5)
        };
        let workload = Workload::generate(&model, spec_w);
        let spec = CampaignSpec::new(AcceleratorConfig::new(4, model.head_dim), campaigns, 42);
        (spec, workload)
    }

    #[test]
    fn campaign_counts_add_up() {
        let (spec, workload) = small_setup(100);
        let stats = run_campaigns(&spec, &workload);
        assert_eq!(stats.total(), 100);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let (spec, workload) = small_setup(50);
        let a = run_campaigns(&spec, &workload);
        let b = run_campaigns(&spec, &workload);
        assert_eq!(a, b, "same seed, same stats regardless of threading");
    }

    #[test]
    fn different_seeds_differ() {
        let (mut spec, workload) = small_setup(50);
        let a = run_campaigns(&spec, &workload);
        spec.seed = 43;
        let b = run_campaigns(&spec, &workload);
        assert_ne!(a, b);
    }

    #[test]
    fn most_faults_are_consequential_under_paper_criterion() {
        // With the discrepancy criterion, the bulk of single faults must
        // be detected — the Table I headline. At small N the proportions
        // are noisier but the ordering must hold.
        let (spec, workload) = small_setup(300);
        let stats = run_campaigns(&spec, &workload);
        assert!(
            stats.detected > stats.false_positive,
            "detected {} must dominate FP {}",
            stats.detected,
            stats.false_positive
        );
        assert!(
            stats.detected > stats.silent,
            "detected {} must dominate silent {}",
            stats.detected,
            stats.silent
        );
    }

    #[test]
    fn hardware_criterion_is_stricter() {
        let (spec, workload) = small_setup(300);
        let paper = run_campaigns(&spec, &workload);
        let hw = run_campaigns(
            &spec.with_criterion(DetectionCriterion::HardwareComparator),
            &workload,
        );
        assert!(
            hw.detected <= paper.detected,
            "hardware comparator cannot detect more than the discrepancy criterion"
        );
        assert!(hw.silent >= paper.silent);
    }

    #[test]
    fn multi_fault_campaigns_run() {
        let (spec, workload) = small_setup(60);
        let stats = run_campaigns(&spec.with_max_faults(5), &workload);
        assert_eq!(stats.total(), 60);
    }

    #[test]
    #[should_panic(expected = "head_dim")]
    fn mismatched_workload_panics() {
        let (spec, _) = small_setup(10);
        let other = Workload::generate(
            &LlmModel::Llama31.config(),
            WorkloadSpec {
                seq_len: 16,
                ..WorkloadSpec::paper(1)
            },
        );
        let _ = run_campaigns(&spec, &other);
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use fa_models::{LlmModel, WorkloadSpec};

    #[test]
    fn detected_faults_carry_latency_measurements() {
        let model = LlmModel::Bert.config();
        let workload = Workload::generate(
            &model,
            WorkloadSpec {
                seq_len: 16,
                ..WorkloadSpec::paper(5)
            },
        );
        let spec = CampaignSpec::new(AcceleratorConfig::new(4, model.head_dim), 300, 42);
        let stats = run_campaigns(&spec, &workload);
        assert!(stats.detected > 0);
        // Per-pass latency is bounded by one pass; end-of-attention by
        // the whole run; per-pass is never longer.
        let cpp = spec.accel.cycles_per_pass(16) as f64;
        let total = spec.accel.total_cycles(16, 16) as f64;
        assert!(stats.mean_latency_pass() > 0.0);
        assert!(stats.mean_latency_pass() <= cpp);
        assert!(stats.mean_latency_end() <= total);
        assert!(stats.mean_latency_pass() <= stats.mean_latency_end());
    }
}
