//! Campaign statistics: counts, percentages, confidence intervals.

use crate::classify::{Classified, FaultCategory};

/// Aggregated results of a fault-injection campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignStats {
    /// Faults whose corrupted output was flagged.
    pub detected: u64,
    /// Correct outputs incorrectly flagged (checker hit).
    pub false_positive: u64,
    /// Corrupted outputs not flagged.
    pub silent: u64,
    /// No observable effect.
    pub masked: u64,
    /// Of the silent ones, how many were NaN-poisoned comparisons.
    pub silent_nan: u64,
    /// Faults that landed on checker storage (site attribution).
    pub checker_site_hits: u64,
    /// Sum over detected faults of (end-of-attention check cycle − fault
    /// cycle): measured detection latency under the paper's checking
    /// granularity.
    pub detected_latency_end_sum: u64,
    /// Sum over detected faults of (own pass's check cycle − fault
    /// cycle): latency under per-pass checking (extension).
    pub detected_latency_pass_sum: u64,
}

impl CampaignStats {
    /// Records one classified outcome.
    pub fn record(&mut self, c: &Classified) {
        match c.category {
            FaultCategory::Detected => self.detected += 1,
            FaultCategory::FalsePositive => self.false_positive += 1,
            FaultCategory::Silent => {
                self.silent += 1;
                if c.nan_poisoned {
                    self.silent_nan += 1;
                }
            }
            FaultCategory::Masked => self.masked += 1,
        }
        if c.checker_site {
            self.checker_site_hits += 1;
        }
    }

    /// Total campaigns recorded.
    pub fn total(&self) -> u64 {
        self.detected + self.false_positive + self.silent + self.masked
    }

    /// Campaigns with an observable consequence (everything but masked) —
    /// the denominator for paper-style percentages (the paper's three
    /// categories sum to 100 %).
    pub fn consequential(&self) -> u64 {
        self.total() - self.masked
    }

    /// Percentage of `count` over all campaigns.
    pub fn pct_of_total(&self, count: u64) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.total() as f64
        }
    }

    /// Percentage of `count` over consequential campaigns (paper-style).
    pub fn pct_of_consequential(&self, count: u64) -> f64 {
        if self.consequential() == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.consequential() as f64
        }
    }

    /// 95 % Wilson score interval for a count over all campaigns, as
    /// (low %, high %).
    pub fn wilson95(&self, count: u64) -> (f64, f64) {
        wilson_interval(count, self.total(), 1.96)
    }

    /// Mean detection latency in cycles under end-of-attention checking
    /// (0 when nothing was detected).
    pub fn mean_latency_end(&self) -> f64 {
        if self.detected == 0 {
            0.0
        } else {
            self.detected_latency_end_sum as f64 / self.detected as f64
        }
    }

    /// Mean detection latency in cycles under per-pass checking.
    pub fn mean_latency_pass(&self) -> f64 {
        if self.detected == 0 {
            0.0
        } else {
            self.detected_latency_pass_sum as f64 / self.detected as f64
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &CampaignStats) {
        self.detected += other.detected;
        self.false_positive += other.false_positive;
        self.silent += other.silent;
        self.masked += other.masked;
        self.silent_nan += other.silent_nan;
        self.checker_site_hits += other.checker_site_hits;
        self.detected_latency_end_sum += other.detected_latency_end_sum;
        self.detected_latency_pass_sum += other.detected_latency_pass_sum;
    }
}

/// Wilson score interval for `successes` out of `trials` at the given
/// z-score, returned in percent.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 100.0);
    }
    let n = trials as f64;
    // Clamp: a caller merging mismatched shards can hand in more
    // successes than trials; p > 1 would drive the variance term
    // negative and the square root NaN.
    let p = (successes as f64 / n).min(1.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    (
        100.0 * (center - half).max(0.0),
        100.0 * (center + half).min(1.0),
    )
}

impl std::fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "detected {:.2}% | false-positive {:.2}% | silent {:.2}% (nan {}) | masked {:.2}% (n={})",
            self.pct_of_total(self.detected),
            self.pct_of_total(self.false_positive),
            self.pct_of_total(self.silent),
            self.silent_nan,
            self.pct_of_total(self.masked),
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::FaultCategory;

    fn classified(category: FaultCategory, checker_site: bool, nan: bool) -> Classified {
        Classified {
            category,
            checker_site,
            hw_residual: 0.0,
            prediction_discrepancy: 0.0,
            nan_poisoned: nan,
        }
    }

    #[test]
    fn record_and_totals() {
        let mut s = CampaignStats::default();
        s.record(&classified(FaultCategory::Detected, false, false));
        s.record(&classified(FaultCategory::Detected, false, false));
        s.record(&classified(FaultCategory::FalsePositive, true, false));
        s.record(&classified(FaultCategory::Silent, false, true));
        s.record(&classified(FaultCategory::Masked, false, false));
        assert_eq!(s.total(), 5);
        assert_eq!(s.consequential(), 4);
        assert_eq!(s.detected, 2);
        assert_eq!(s.silent_nan, 1);
        assert_eq!(s.checker_site_hits, 1);
        assert_eq!(s.pct_of_total(s.detected), 40.0);
        assert_eq!(s.pct_of_consequential(s.detected), 50.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CampaignStats {
            detected: 10,
            ..Default::default()
        };
        let b = CampaignStats {
            detected: 5,
            masked: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.detected, 15);
        assert_eq!(a.masked, 2);
    }

    #[test]
    fn wilson_interval_basic_properties() {
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 50.0 && hi > 50.0);
        assert!(hi - lo < 25.0, "reasonable width at n=100");
        let (lo2, hi2) = wilson_interval(500, 1000, 1.96);
        assert!(hi2 - lo2 < hi - lo, "narrower with more trials");
        let (lo3, hi3) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo3, 0.0);
        assert!(hi3 < 6.0);
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 100.0));
    }

    #[test]
    fn wilson_interval_zero_trials_is_vacuous_for_any_successes() {
        // Empty shards merged into a campaign must stay well-defined.
        assert_eq!(wilson_interval(7, 0, 1.96), (0.0, 100.0));
    }

    #[test]
    fn wilson_interval_clamps_successes_above_trials() {
        let (lo, hi) = wilson_interval(5, 3, 1.96);
        assert!(lo.is_finite() && hi.is_finite(), "no NaN from p > 1");
        assert!(lo <= hi);
        assert!((0.0..=100.0).contains(&lo));
        assert!((0.0..=100.0).contains(&hi));
        assert!(hi > 99.9, "p clamps to 1: upper bound saturates");
    }

    #[test]
    fn mean_latencies_are_zero_at_zero_records() {
        // Division guards: latency sums without detections (e.g. stats
        // built purely from merges of empty shards) must not divide by
        // zero.
        let s = CampaignStats {
            detected_latency_end_sum: 10,
            detected_latency_pass_sum: 4,
            ..Default::default()
        };
        assert_eq!(s.detected, 0);
        assert_eq!(s.mean_latency_end(), 0.0);
        assert_eq!(s.mean_latency_pass(), 0.0);
        let empty = CampaignStats::default();
        assert_eq!(empty.mean_latency_end(), 0.0);
        assert_eq!(empty.mean_latency_pass(), 0.0);
        assert_eq!(empty.wilson95(0), (0.0, 100.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = CampaignStats::default();
        assert_eq!(s.pct_of_total(0), 0.0);
        assert_eq!(s.pct_of_consequential(0), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let mut s = CampaignStats::default();
        s.record(&classified(FaultCategory::Detected, false, false));
        let text = format!("{s}");
        assert!(text.contains("detected 100.00%"));
        assert!(text.contains("n=1"));
    }
}
