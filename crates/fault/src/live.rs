//! Live fault-injection campaigns against the serving engine.
//!
//! Where [`crate::campaign`] injects into one-shot accelerator kernels,
//! this module attacks an **active** `fa_attention::batch::DecodeBatch`
//! mid-decode: a golden twin and a subject engine run identical
//! continuous-batching traffic, a burst of `flips` bits (1 by default,
//! k ≤ 4 in the multi-fault sweeps) is flipped in the subject's live
//! state (K/V block storage, a `sumrow` checksum input, or the verdict
//! accumulator), and the serving loop's defenses take over —
//!
//! * **online detection**: the per-step residual and running
//!   [`global_residual`](fa_attention::batch::DecodeBatch::global_residual)
//!   verdict, checked NaN-safe after every step;
//! * **scrub detection**: the mid-run background scrubber
//!   ([`scrub_step`](fa_attention::batch::DecodeBatch::scrub_step) at
//!   the spec's `scrub_blocks_per_step` bandwidth, when enabled) and the
//!   end-of-run [`audit`](fa_attention::batch::DecodeBatch::audit)
//!   backstop — the structural walks that catch residual-coherent
//!   corruption (key-side flips) the online verdict is blind to by
//!   construction, the former within a bounded number of steps;
//! * **localization**: the audit's verdicts pinned per injected flip
//!   against the actually injected (position, kv head, side);
//! * **recovery**: block-granular
//!   [`repair`](fa_attention::batch::DecodeBatch::repair) from the
//!   recovery log, followed by lockstep decode against the golden twin
//!   to certify bit-identical resumption.
//!
//! Each trial derives its RNG stream from `(seed, trial index)` and its
//! stats delta is pure integer counters, so sharded runs merge exactly
//! ([`run_live_shard`]) regardless of partition or thread count — the
//! same determinism contract as [`crate::campaign::run_campaigns`].

use crate::classify::{Classified, FaultCategory};
use crate::stats::CampaignStats;
use fa_attention::batch::guard::{InjectionSite, LocalizedFault};
use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout, ScrubPolicy};
use fa_attention::{AttentionConfig, HeadTopology};
use fa_tensor::{random::ElementDist, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Specification of a live-injection campaign series: one serving
/// configuration under load, one injection site, many trials.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LiveCampaignSpec {
    /// Query heads of the serving topology.
    pub query_heads: usize,
    /// KV heads (GQA when `< query_heads`).
    pub kv_heads: usize,
    /// Head dimension.
    pub head_dim: usize,
    /// Cache block size in rows.
    pub block_rows: usize,
    /// Storage format policy under test.
    pub format: KvFormat,
    /// Block-retention policy under test.
    pub eviction: EvictionPolicy,
    /// Concurrently decoding sequences (the serving load).
    pub batch: usize,
    /// Prompt length per sequence.
    pub prefill: usize,
    /// Decode steps per trial; the injection step is sampled from this
    /// range.
    pub steps: usize,
    /// Post-repair lockstep steps certifying bit-identical resumption.
    pub verify_steps: usize,
    /// Independent trials.
    pub trials: u64,
    /// Base RNG seed; trial *i* derives its own stream.
    pub seed: u64,
    /// Verdict tolerance τ for the online alarm and the audit.
    pub tolerance: f64,
    /// Which live state the flip targets.
    pub site: InjectionSite,
    /// Simultaneous bit flips injected per trial (all at the injection
    /// step, independently sampled) — the multi-fault burst dial. 1 is
    /// the classic single-event-upset campaign.
    pub flips: u32,
    /// Background-scrub bandwidth of the subject's serving loop: blocks
    /// audited per decode step via
    /// [`scrub_step`](fa_attention::batch::DecodeBatch::scrub_step).
    /// 0 disables mid-run scrubbing (the PR-6 behaviour: coherent
    /// corruption waits for the end-of-run audit).
    pub scrub_blocks_per_step: usize,
}

impl LiveCampaignSpec {
    /// A small GQA serving configuration at the paper's tolerance —
    /// batch 8, 2:1 grouping, mixed format, sliding-window eviction —
    /// exercising every policy path at once.
    pub fn new(site: InjectionSite, trials: u64, seed: u64) -> Self {
        LiveCampaignSpec {
            query_heads: 4,
            kv_heads: 2,
            head_dim: 8,
            block_rows: 4,
            format: KvFormat::Mixed { burst_blocks: 1 },
            eviction: EvictionPolicy::RetainAll,
            batch: 8,
            prefill: 12,
            steps: 8,
            verify_steps: 4,
            trials,
            seed,
            tolerance: 1e-6,
            site,
            flips: 1,
            scrub_blocks_per_step: 0,
        }
    }

    /// Overrides the storage format policy.
    pub fn with_format(mut self, format: KvFormat) -> Self {
        self.format = format;
        self
    }

    /// Overrides the eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Overrides the serving load (concurrent sequences).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Overrides prompt length and decode steps.
    pub fn with_shape(mut self, prefill: usize, steps: usize) -> Self {
        self.prefill = prefill;
        self.steps = steps;
        self
    }

    /// Overrides the simultaneous flips per trial (the multi-fault
    /// burst size k).
    ///
    /// # Panics
    ///
    /// Panics if `flips == 0`.
    pub fn with_flips(mut self, flips: u32) -> Self {
        assert!(flips > 0, "a trial injects at least one flip");
        self.flips = flips;
        self
    }

    /// Overrides the subject's background-scrub bandwidth (blocks per
    /// decode step; 0 disables the mid-run scrub channel).
    pub fn with_scrub(mut self, blocks_per_step: usize) -> Self {
        self.scrub_blocks_per_step = blocks_per_step;
        self
    }
}

/// Aggregated results of a live campaign: the base
/// detected/silent/masked matrix plus the serving-specific outcomes
/// (detection channel, localization accuracy, recovery cost,
/// post-recovery bit-identity). All counters are integers, so
/// [`merge`](Self::merge) is exact under any shard partition.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LiveCampaignStats {
    /// The classification matrix (detected / false-positive / silent /
    /// masked) over all trials.
    pub base: CampaignStats,
    /// Trials where the per-step or global residual alarmed mid-run.
    pub online_detected: u64,
    /// Trials caught by a structural walk instead: the mid-run
    /// background scrubber ([`LiveCampaignSpec::scrub_blocks_per_step`])
    /// or the end-of-run audit (the residual-coherent key-flip story).
    pub scrub_detected: u64,
    /// Bit flips injected across all trials (`flips × trials` — the
    /// denominator for per-flip localization accounting).
    pub injected_flips: u64,
    /// Injected flips the judging audit pinned to their actual
    /// (position, kv head, side).
    pub localized: u64,
    /// Injected flips the judging audit reported findings for, none
    /// matching that flip's site (includes Mixed-format laundering).
    pub mislocalized: u64,
    /// Blocks recomputed from the recovery log.
    pub recoveries: u64,
    /// Rows rewritten across all block recoveries (the recovery cost).
    pub recovered_rows: u64,
    /// Repaired trials whose post-repair lockstep decode diverged from
    /// the golden twin (honest accounting: Mixed-format demotion can
    /// launder storage corruption beyond block recovery's reach).
    pub post_recovery_divergent: u64,
    /// Injected flips whose position left the retained window before
    /// the judging audit — or the scrub cursor — reached it
    /// (sliding-window eviction destroyed the evidence first). A flip
    /// the scrubber catches while still retained counts as `localized`,
    /// never here, even if its block is evicted later.
    pub evicted_before_detect: u64,
    /// Sum over alarmed trials of steps from injection to verdict.
    pub detection_steps_sum: u64,
    /// Worst case over alarmed trials of steps from injection to
    /// verdict — the observable the scrub latency *bound*
    /// (`ceil(live_blocks / blocks_per_step)`) caps.
    pub detection_steps_max: u64,
    /// Blocks the subjects' background scrubbers audited across all
    /// trials — the bandwidth cost axis of the scrub tradeoff curve.
    pub scrubbed_blocks: u64,
}

impl LiveCampaignStats {
    /// Trials recorded.
    pub fn total(&self) -> u64 {
        self.base.total()
    }

    /// Trials where any alarm (online or scrub) fired.
    pub fn alarmed(&self) -> u64 {
        self.online_detected + self.scrub_detected
    }

    /// Mean steps from injection to verdict over alarmed trials (0 when
    /// nothing alarmed).
    pub fn mean_steps_to_verdict(&self) -> f64 {
        if self.alarmed() == 0 {
            0.0
        } else {
            self.detection_steps_sum as f64 / self.alarmed() as f64
        }
    }

    /// Localization accuracy in percent over flips the audit judged
    /// (0 when none were).
    pub fn localization_accuracy_pct(&self) -> f64 {
        let judged = self.localized + self.mislocalized;
        if judged == 0 {
            0.0
        } else {
            100.0 * self.localized as f64 / judged as f64
        }
    }

    /// Merges another stats block into this one (exact integer sums).
    pub fn merge(&mut self, other: &LiveCampaignStats) {
        self.base.merge(&other.base);
        self.online_detected += other.online_detected;
        self.scrub_detected += other.scrub_detected;
        self.injected_flips += other.injected_flips;
        self.localized += other.localized;
        self.mislocalized += other.mislocalized;
        self.recoveries += other.recoveries;
        self.recovered_rows += other.recovered_rows;
        self.post_recovery_divergent += other.post_recovery_divergent;
        self.evicted_before_detect += other.evicted_before_detect;
        self.detection_steps_sum += other.detection_steps_sum;
        // Max is associative and commutative, so sharded merges stay
        // exactly the full run's worst case.
        self.detection_steps_max = self.detection_steps_max.max(other.detection_steps_max);
        self.scrubbed_blocks += other.scrubbed_blocks;
    }
}

/// What one trial actually injected — the ground truth the audit's
/// verdicts are judged against.
#[derive(Clone, Copy, Debug)]
struct Injected {
    pos: usize,
    kv_head: usize,
}

fn trial_stream(seed: u64, trial: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(trial)
}

/// Whether any audited verdict pins the injected site.
fn pins_injection(site: InjectionSite, inj: Injected, faults: &[LocalizedFault]) -> bool {
    faults.iter().any(|f| match (site, f) {
        (
            InjectionSite::Key,
            LocalizedFault::CorruptBlock {
                kv_head,
                first,
                rows,
                key_side: true,
                ..
            },
        )
        | (
            InjectionSite::Value,
            LocalizedFault::CorruptBlock {
                kv_head,
                first,
                rows,
                key_side: false,
                ..
            },
        ) => *kv_head == inj.kv_head && (*first..*first + *rows).contains(&inj.pos),
        (InjectionSite::Sumrow, LocalizedFault::CorruptSumrow { pos, kv_head }) => {
            *pos == inj.pos && *kv_head == inj.kv_head
        }
        (InjectionSite::Accumulator, LocalizedFault::CorruptTotals { .. }) => true,
        _ => false,
    })
}

/// Flips one sampled bit in the subject engine. The bit index is
/// drawn uniformly over the f64 bit space; BF16-resident storage folds
/// it into its 16-bit space (the storage flipper's contract), keeping
/// the sampling honest for both formats. A multi-fault burst calls this
/// `spec.flips` times back to back — sites are sampled independently,
/// so a burst may (rarely) hit one site twice and cancel; that honesty
/// is kept, not resampled away.
fn inject(
    subject: &mut DecodeBatch<f64>,
    spec: &LiveCampaignSpec,
    victim: usize,
    rng: &mut StdRng,
) -> Injected {
    let first = subject.cache().first_retained(victim);
    let len = subject.seq_len(victim);
    let pos = rng.gen_range(first..len);
    let kv_head = rng.gen_range(0..spec.kv_heads);
    let bit = rng.gen_range(0..64) as u32;
    match spec.site {
        InjectionSite::Key | InjectionSite::Value => {
            let lane = rng.gen_range(0..spec.head_dim);
            let key_side = spec.site == InjectionSite::Key;
            subject.flip_storage_bit(victim, pos, kv_head, lane, key_side, bit);
            Injected { pos, kv_head }
        }
        InjectionSite::Sumrow => {
            subject.flip_sumrow_bit(victim, pos, kv_head, bit);
            Injected { pos, kv_head }
        }
        InjectionSite::Accumulator => {
            let predicted_side = rng.gen_range(0..2) == 0;
            subject.flip_total_bit(victim, predicted_side, bit);
            Injected { pos: 0, kv_head: 0 }
        }
    }
}

/// Runs one trial and returns its stats delta.
fn run_trial(spec: &LiveCampaignSpec, trial: u64) -> LiveCampaignStats {
    let base_seed = trial_stream(spec.seed, trial);
    let mut rng = StdRng::seed_from_u64(base_seed);
    let mut out = LiveCampaignStats::default();
    let topo = HeadTopology::gqa(
        spec.query_heads,
        spec.kv_heads,
        AttentionConfig::new(spec.head_dim),
    );
    let mk = || {
        DecodeBatch::<f64>::with_policy(
            topo,
            spec.block_rows,
            KvLayout::HeadMajor,
            spec.format,
            spec.eviction,
        )
    };
    let mut subject = mk();
    subject.enable_recovery_log();
    if spec.scrub_blocks_per_step > 0 {
        subject.set_scrub_policy(Some(ScrubPolicy {
            blocks_per_step: spec.scrub_blocks_per_step,
        }));
    }
    let mut golden = mk();
    let ids: Vec<usize> = (0..spec.batch).map(|_| subject.add_sequence()).collect();
    for _ in 0..spec.batch {
        golden.add_sequence();
    }
    for (i, &id) in ids.iter().enumerate() {
        let k = Matrix::<f64>::random_seeded(
            spec.prefill,
            topo.kv_dim(),
            ElementDist::default(),
            base_seed.wrapping_add(11_000 + i as u64),
        );
        let v = Matrix::<f64>::random_seeded(
            spec.prefill,
            topo.kv_dim(),
            ElementDist::default(),
            base_seed.wrapping_add(12_000 + i as u64),
        );
        subject.prefill(id, &k, &v);
        golden.prefill(id, &k, &v);
    }
    let vi = rng.gen_range(0..ids.len());
    let victim = ids[vi];
    let t_inj = rng.gen_range(0..spec.steps);

    let mut injected: Option<Vec<Injected>> = None;
    let mut corrupted = false;
    let mut alarm_step: Option<usize> = None;
    let mut scrub_alarm_step: Option<usize> = None;
    let mut alarm_residual = 0.0f64;
    let mut repaired = false;
    let mut post_repair_divergent = false;
    let mut scrub_found = false;

    // One closure handles every alarm path: audit, judge localization
    // per injected flip against the ground truth, repair everything the
    // audit pinned in one pass.
    let localize_and_repair =
        |subject: &mut DecodeBatch<f64>, out: &mut LiveCampaignStats, injs: &[Injected]| {
            let faults = subject.audit(victim, spec.tolerance);
            let structural = !matches!(spec.site, InjectionSite::Accumulator);
            for inj in injs {
                if structural && subject.cache().first_retained(victim) > inj.pos {
                    out.evicted_before_detect += 1;
                } else if !faults.is_empty() {
                    if pins_injection(spec.site, *inj, &faults) {
                        out.localized += 1;
                    } else {
                        out.mislocalized += 1;
                    }
                }
            }
            let report = subject.repair(victim, &faults);
            out.recoveries += report.blocks_recovered as u64;
            out.recovered_rows += report.rows_rewritten as u64;
        };

    let lockstep = |subject: &mut DecodeBatch<f64>, golden: &mut DecodeBatch<f64>, t: usize| {
        let qs = Matrix::<f64>::random_seeded(
            ids.len(),
            topo.q_dim(),
            ElementDist::default(),
            base_seed.wrapping_add(20_000 + t as u64),
        );
        let ks = Matrix::<f64>::random_seeded(
            ids.len(),
            topo.kv_dim(),
            ElementDist::default(),
            base_seed.wrapping_add(30_000 + t as u64),
        );
        let vs = Matrix::<f64>::random_seeded(
            ids.len(),
            topo.kv_dim(),
            ElementDist::default(),
            base_seed.wrapping_add(40_000 + t as u64),
        );
        let a = subject.step_all(&ids, &qs, &ks, &vs);
        let b = golden.step_all(&ids, &qs, &ks, &vs);
        let diverged = a[vi]
            .output
            .iter()
            .zip(&b[vi].output)
            .any(|(x, y)| x.to_bits() != y.to_bits());
        (a[vi].residual(), diverged)
    };

    for t in 0..spec.steps {
        if t == t_inj {
            let burst: Vec<Injected> = (0..spec.flips)
                .map(|_| inject(&mut subject, spec, victim, &mut rng))
                .collect();
            out.injected_flips += burst.len() as u64;
            injected = Some(burst);
        }
        let (step_residual, diverged) = lockstep(&mut subject, &mut golden, t);
        if injected.is_some() && !repaired {
            corrupted |= diverged;
        } else if repaired {
            post_repair_divergent |= diverged;
        }
        if injected.is_some() && !repaired {
            // NaN-safe alarm: a poisoned residual must not pass.
            let global = subject.global_residual(victim);
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let step_alarm = !(step_residual.abs() <= spec.tolerance);
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let global_alarm = !(global.abs() <= spec.tolerance);
            if step_alarm || global_alarm {
                alarm_step = Some(t);
                alarm_residual = if step_alarm { step_residual } else { global };
                let injs = injected.clone().unwrap_or_default();
                localize_and_repair(&mut subject, &mut out, &injs);
                repaired = true;
            }
        }
        // The background scrubber spends its per-step quantum after the
        // decode pass — every step, like a real serving loop (its
        // bandwidth cost accrues whether or not anything is corrupt).
        // Findings raise the scrub-channel alarm; the online residual
        // wins same-step ties above.
        let findings = subject.scrub_step();
        if !findings.is_empty() && !repaired {
            if let Some(injs) = injected.clone() {
                scrub_alarm_step = Some(t);
                scrub_found = true;
                alarm_residual = subject.global_residual(victim);
                localize_and_repair(&mut subject, &mut out, &injs);
                repaired = true;
            }
        }
    }

    // End-of-run structural audit: the backstop channel for coherent
    // corruption the online residual is blind to and the scrub cursor
    // has not reached (or when scrubbing is off entirely).
    if alarm_step.is_none() && scrub_alarm_step.is_none() {
        if let Some(injs) = injected.clone() {
            let faults = subject.audit(victim, spec.tolerance);
            if !faults.is_empty() {
                scrub_found = true;
                alarm_residual = subject.global_residual(victim);
                localize_and_repair(&mut subject, &mut out, &injs);
                repaired = true;
            }
        }
    }

    // Certify the recovery: post-repair decode must track the golden
    // twin bit for bit.
    if repaired {
        for t in spec.steps..spec.steps + spec.verify_steps {
            let (_, diverged) = lockstep(&mut subject, &mut golden, t);
            post_repair_divergent |= diverged;
        }
    }

    let alarm = alarm_step.is_some() || scrub_found;
    let category = match (corrupted, alarm) {
        (true, true) => FaultCategory::Detected,
        (false, true) => FaultCategory::FalsePositive,
        (true, false) => FaultCategory::Silent,
        (false, false) => FaultCategory::Masked,
    };
    out.base.record(&Classified {
        category,
        checker_site: spec.site.is_checker(),
        hw_residual: alarm_residual,
        prediction_discrepancy: 0.0,
        nan_poisoned: alarm_residual.is_nan(),
    });
    if alarm {
        let steps_to_verdict = match alarm_step.or(scrub_alarm_step) {
            Some(t) => (t - t_inj + 1) as u64,
            None => (spec.steps - t_inj) as u64,
        };
        out.detection_steps_sum += steps_to_verdict;
        out.detection_steps_max = steps_to_verdict;
        if category == FaultCategory::Detected {
            out.base.detected_latency_end_sum += steps_to_verdict;
        }
        if alarm_step.is_some() {
            out.online_detected += 1;
        } else {
            out.scrub_detected += 1;
        }
    }
    if repaired && post_repair_divergent {
        out.post_recovery_divergent += 1;
    }
    out.scrubbed_blocks = subject.scrubbed_blocks();
    out
}

/// Runs trials `from..to` of the campaign, fanned out over the shared
/// rayon pool. Each trial derives its RNG stream from `(seed, trial
/// index)`, so any shard partition merges to exactly the stats of a
/// single full run (property-tested).
pub fn run_live_shard(spec: &LiveCampaignSpec, from: u64, to: u64) -> LiveCampaignStats {
    assert!(from <= to, "shard range reversed: {from}..{to}");
    (from..to)
        .into_par_iter()
        .map(|trial| run_trial(spec, trial))
        .reduce(LiveCampaignStats::default, |mut acc, local| {
            acc.merge(&local);
            acc
        })
}

/// Runs the full campaign series (`0..spec.trials`).
pub fn run_live(spec: &LiveCampaignSpec) -> LiveCampaignStats {
    run_live_shard(spec, 0, spec.trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(site: InjectionSite) -> LiveCampaignSpec {
        LiveCampaignSpec::new(site, 24, 7)
            .with_batch(3)
            .with_shape(9, 6)
    }

    #[test]
    fn live_campaign_counts_add_up() {
        for site in InjectionSite::ALL {
            let stats = run_live(&quick(site));
            assert_eq!(stats.total(), 24, "{site:?}");
            assert!(stats.alarmed() <= stats.total());
        }
    }

    #[test]
    fn live_campaigns_are_deterministic() {
        let spec = quick(InjectionSite::Value);
        assert_eq!(run_live(&spec), run_live(&spec));
    }

    #[test]
    fn value_flips_are_detected_and_recovered() {
        // High bits dominate uniform sampling rarely, so assert the
        // aggregate story instead of per-trial: detections exist, some
        // recover, and recovered trials resume bit-identical.
        let stats = run_live(&quick(InjectionSite::Value).with_format(KvFormat::F64));
        assert!(
            stats.alarmed() > 0,
            "some value flips must alarm: {stats:?}"
        );
        assert!(
            stats.recoveries > 0,
            "alarms must recover blocks: {stats:?}"
        );
        assert_eq!(
            stats.post_recovery_divergent, 0,
            "f64 retain-all recovery is bit-exact: {stats:?}"
        );
        assert_eq!(stats.mislocalized, 0, "audited verdicts pin the site");
        assert!(
            stats.base.false_positive == 0,
            "value flips corrupt outputs"
        );
    }

    #[test]
    fn key_flips_need_the_scrub() {
        let stats = run_live(&quick(InjectionSite::Key).with_format(KvFormat::F64));
        assert!(
            stats.scrub_detected > 0,
            "residual-coherent key flips are a scrub story: {stats:?}"
        );
        assert_eq!(stats.post_recovery_divergent, 0, "{stats:?}");
    }

    #[test]
    fn sumrow_flips_are_checker_site_false_positives() {
        let stats = run_live(&quick(InjectionSite::Sumrow).with_format(KvFormat::F64));
        assert_eq!(
            stats.base.checker_site_hits,
            stats.total(),
            "sumrow is checker storage"
        );
        assert_eq!(stats.base.detected, 0, "sumrow never corrupts outputs");
        assert!(stats.base.false_positive > 0, "but it alarms: {stats:?}");
        assert_eq!(stats.mislocalized, 0);
    }

    #[test]
    fn accumulator_flips_never_corrupt_outputs() {
        let stats = run_live(&quick(InjectionSite::Accumulator));
        assert_eq!(stats.base.detected, 0);
        assert_eq!(stats.base.silent, 0);
        assert_eq!(stats.recovered_rows, 0, "verdict repair rewrites nothing");
        assert_eq!(stats.post_recovery_divergent, 0);
    }

    #[test]
    fn sharded_runs_merge_to_the_full_run() {
        let spec = quick(InjectionSite::Value);
        let full = run_live(&spec);
        let mut merged = run_live_shard(&spec, 0, 9);
        merged.merge(&run_live_shard(&spec, 9, 9));
        merged.merge(&run_live_shard(&spec, 9, 24));
        assert_eq!(full, merged);
    }

    #[test]
    fn sliding_window_campaigns_stay_well_formed() {
        let spec = quick(InjectionSite::Value)
            .with_eviction(EvictionPolicy::SlidingWindow { window_blocks: 2 })
            .with_format(KvFormat::Mixed { burst_blocks: 1 });
        let stats = run_live(&spec);
        assert_eq!(stats.total(), 24);
        // Laundered or evicted corruption is reported, not hidden.
        assert!(
            stats.localized + stats.mislocalized + stats.evicted_before_detect
                <= stats.alarmed() + stats.evicted_before_detect
        );
    }

    #[test]
    fn mean_steps_to_verdict_is_bounded_by_run_length() {
        let spec = quick(InjectionSite::Value);
        let stats = run_live(&spec);
        if stats.alarmed() > 0 {
            assert!(stats.mean_steps_to_verdict() >= 1.0);
            assert!(stats.mean_steps_to_verdict() <= (spec.steps + spec.verify_steps) as f64);
        }
    }

    #[test]
    fn multi_fault_bursts_stay_block_exact() {
        // k simultaneous value flips on the bit-pinned f64/retain-all
        // path: every flip is judged individually. Localization stays
        // block-exact for every flip the checksum fold can still see;
        // the honest exception is a low-bit flip numerically *absorbed*
        // by the fold (its site shows no mismatch), which a sibling
        // flip's alarm then counts as mislocalized rather than hiding.
        for k in [2u32, 4] {
            let stats = run_live(
                &quick(InjectionSite::Value)
                    .with_format(KvFormat::F64)
                    .with_flips(k),
            );
            assert_eq!(stats.injected_flips, 24 * k as u64);
            assert_eq!(
                stats.localized + stats.mislocalized,
                stats.injected_flips,
                "retain-all judges every flip: {stats:?}"
            );
            assert!(
                stats.localization_accuracy_pct() >= 90.0,
                "k={k} stays block-exact up to absorbed flips: {stats:?}"
            );
            // An unrepairable trial always has an unpinned (absorbed)
            // flip to blame — divergence is never unexplained. That
            // residue is what quarantine-and-recompute exists for.
            assert!(
                stats.post_recovery_divergent <= stats.mislocalized,
                "k={k}: {stats:?}"
            );
        }
    }

    #[test]
    fn scrubbing_catches_key_flips_mid_run_and_faster() {
        let base = quick(InjectionSite::Key).with_format(KvFormat::F64);
        let off = run_live(&base);
        let on = run_live(&base.with_scrub(2));
        assert_eq!(on.total(), off.total());
        assert!(on.scrubbed_blocks > 0, "bandwidth was spent: {on:?}");
        assert_eq!(off.scrubbed_blocks, 0, "no policy, no cost");
        assert!(
            on.scrub_detected > 0,
            "key flips are still a structural-walk story: {on:?}"
        );
        // The scrubber can only move verdicts earlier: with the same
        // seeds and more detections at worst equal latency each, both
        // aggregate latency observables shrink or hold.
        assert!(on.alarmed() >= off.alarmed());
        assert!(
            on.detection_steps_sum <= off.detection_steps_sum,
            "mid-run scrub must not slow detection: on={on:?} off={off:?}"
        );
        assert!(on.detection_steps_max <= off.detection_steps_max.max(1));
        assert_eq!(on.post_recovery_divergent, 0, "{on:?}");
    }

    #[test]
    fn scrub_detection_latency_respects_the_bandwidth_bound() {
        // Retain-all keeps live_blocks = batch × blocks(prefill+steps);
        // with bandwidth b the cursor needs at most ceil(live/b) steps
        // from injection — the verdict lands within that many decode
        // steps (or at the end-of-run audit, whose latency is shorter).
        let spec = quick(InjectionSite::Key)
            .with_format(KvFormat::F64)
            .with_scrub(3);
        let stats = run_live(&spec);
        let rows = spec.prefill + spec.steps;
        let max_live = spec.batch * rows.div_ceil(spec.block_rows);
        let bound = max_live.div_ceil(spec.scrub_blocks_per_step) as u64;
        assert!(
            stats.detection_steps_max <= bound.max(spec.steps as u64),
            "worst verdict {} exceeds scrub bound {bound}: {stats:?}",
            stats.detection_steps_max
        );
    }

    #[test]
    fn evicted_flips_only_count_when_eviction_beats_the_cursor() {
        // Sliding-window value campaign, with and without scrubbing: a
        // flip the cursor reaches first is localized; only flips whose
        // evidence left the window before any structural walk count as
        // evicted_before_detect. Scrubbing therefore never increases the
        // evicted count, and every judged flip lands in exactly one
        // bucket.
        let base = quick(InjectionSite::Value)
            .with_format(KvFormat::F64)
            .with_eviction(EvictionPolicy::SlidingWindow { window_blocks: 2 });
        let off = run_live(&base);
        let on = run_live(&base.with_scrub(4));
        for stats in [&off, &on] {
            assert!(
                stats.localized + stats.mislocalized + stats.evicted_before_detect
                    <= stats.injected_flips,
                "{stats:?}"
            );
        }
        assert!(
            on.evicted_before_detect <= off.evicted_before_detect,
            "the cursor only rescues evidence, never destroys it: on={on:?} off={off:?}"
        );
    }

    #[test]
    fn empty_campaign_is_default() {
        let mut spec = quick(InjectionSite::Key);
        spec.trials = 0;
        assert_eq!(run_live(&spec), LiveCampaignStats::default());
        assert_eq!(run_live(&spec).mean_steps_to_verdict(), 0.0);
        assert_eq!(run_live(&spec).localization_accuracy_pct(), 0.0);
    }
}
