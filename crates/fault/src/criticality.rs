//! Downstream criticality analysis — the paper's stated future work.
//!
//! The paper closes §IV-B with: "If the injected faults are actually
//! critical for the overall performance of the LLM application is not
//! quantified and is part of future work." This module quantifies it with
//! a synthetic readout head: attention outputs are projected through a
//! fixed random weight matrix to per-token logits (the shape of an LM
//! head), and a faulty run is compared to the golden run by logit KL
//! divergence and top-1 decision flips. A fault is *critical* when it
//! changes what the model would actually emit.

use fa_numerics::BF16;
use fa_tensor::{random::ElementDist, Matrix};

/// A fixed synthetic readout head: `logits_i = output_i · W`.
#[derive(Clone, Debug)]
pub struct CriticalityProbe {
    weights: Matrix<f64>,
    n_classes: usize,
}

/// Downstream impact of one faulty output vs its golden reference.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CriticalityReport {
    /// Mean per-token KL divergence KL(golden ‖ faulty) over the readout
    /// distribution, in nats.
    pub mean_kl: f64,
    /// Worst per-token KL divergence.
    pub max_kl: f64,
    /// Number of tokens whose top-1 readout class flipped.
    pub top1_flips: usize,
    /// Number of tokens whose faulty logits contain NaN/Inf.
    pub invalid_tokens: usize,
    /// Total tokens compared.
    pub tokens: usize,
}

impl CriticalityReport {
    /// Whether the fault is critical: it flipped a decision, produced
    /// invalid logits, or perturbed the distribution beyond `kl_bound`.
    pub fn is_critical(&self, kl_bound: f64) -> bool {
        self.top1_flips > 0 || self.invalid_tokens > 0 || self.max_kl > kl_bound
    }
}

impl CriticalityProbe {
    /// Creates a probe for attention outputs of width `head_dim`,
    /// projecting to `n_classes` readout classes, with deterministic
    /// weights from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim == 0` or `n_classes < 2`.
    pub fn new(head_dim: usize, n_classes: usize, seed: u64) -> Self {
        assert!(head_dim > 0, "head_dim must be positive");
        assert!(n_classes >= 2, "need at least two readout classes");
        // Unit-variance weights scaled like an LM head (1/sqrt(d)).
        let dist = ElementDist::Gaussian {
            std_dev: 1.0 / (head_dim as f64).sqrt(),
        };
        CriticalityProbe {
            weights: Matrix::random_seeded(head_dim, n_classes, dist, seed),
            n_classes,
        }
    }

    /// Number of readout classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Projects one output matrix (N×d) to per-token probability rows.
    fn probabilities(&self, output: &Matrix<f64>) -> Matrix<f64> {
        let logits = output.matmul(&self.weights);
        let mut probs = logits;
        for r in 0..probs.rows() {
            let row = probs.row_mut(r);
            let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if !m.is_finite() {
                // NaN/Inf logits: leave the row as-is; the comparison
                // counts it as invalid.
                continue;
            }
            let mut denom = 0.0;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                denom += *x;
            }
            for x in row.iter_mut() {
                *x /= denom;
            }
        }
        probs
    }

    /// Compares a faulty attention output against the golden one.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn assess(&self, golden: &Matrix<f64>, faulty: &Matrix<f64>) -> CriticalityReport {
        assert_eq!(golden.rows(), faulty.rows(), "token count mismatch");
        assert_eq!(golden.cols(), faulty.cols(), "width mismatch");
        let gp = self.probabilities(golden);
        let fp = self.probabilities(faulty);

        let mut report = CriticalityReport {
            tokens: golden.rows(),
            ..Default::default()
        };
        let mut kl_sum = 0.0;
        for r in 0..gp.rows() {
            let g = gp.row(r);
            let f = fp.row(r);
            if f.iter().any(|x| !x.is_finite()) {
                report.invalid_tokens += 1;
                report.max_kl = f64::INFINITY;
                continue;
            }
            // KL(g || f), guarding zero probabilities.
            let mut kl = 0.0;
            for (pg, pf) in g.iter().zip(f) {
                if *pg > 0.0 {
                    kl += pg * (pg / pf.max(1e-300)).ln();
                }
            }
            kl_sum += kl;
            if kl > report.max_kl {
                report.max_kl = kl;
            }
            let top_g = argmax(g);
            let top_f = argmax(f);
            if top_g != top_f {
                report.top1_flips += 1;
            }
        }
        let valid = (report.tokens - report.invalid_tokens).max(1);
        report.mean_kl = kl_sum / valid as f64;
        report
    }

    /// Convenience: compares BF16 accelerator writebacks.
    pub fn assess_bf16(&self, golden: &Matrix<BF16>, faulty: &Matrix<BF16>) -> CriticalityReport {
        self.assess(&golden.to_f64(), &faulty.to_f64())
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, x) in xs.iter().enumerate() {
        if *x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden_output() -> Matrix<f64> {
        Matrix::random_seeded(16, 8, ElementDist::default(), 42)
    }

    #[test]
    fn identical_outputs_are_benign() {
        let probe = CriticalityProbe::new(8, 10, 1);
        let g = golden_output();
        let report = probe.assess(&g, &g.clone());
        assert_eq!(report.top1_flips, 0);
        assert_eq!(report.invalid_tokens, 0);
        assert!(report.mean_kl < 1e-15);
        assert!(!report.is_critical(1e-3));
        assert_eq!(report.tokens, 16);
    }

    #[test]
    fn tiny_perturbation_is_not_critical() {
        let probe = CriticalityProbe::new(8, 10, 1);
        let g = golden_output();
        let mut f = g.clone();
        f[(3, 2)] += 1e-9;
        let report = probe.assess(&g, &f);
        assert!(!report.is_critical(1e-6), "{report:?}");
    }

    #[test]
    fn large_corruption_flips_decisions() {
        let probe = CriticalityProbe::new(8, 10, 1);
        let g = golden_output();
        let mut f = g.clone();
        for c in 0..8 {
            f[(5, c)] = -f[(5, c)] * 10.0;
        }
        let report = probe.assess(&g, &f);
        assert!(report.max_kl > 0.01, "{report:?}");
        assert!(report.is_critical(0.01));
    }

    #[test]
    fn nan_output_counts_invalid_and_critical() {
        let probe = CriticalityProbe::new(8, 10, 1);
        let g = golden_output();
        let mut f = g.clone();
        f[(0, 0)] = f64::NAN;
        let report = probe.assess(&g, &f);
        assert_eq!(report.invalid_tokens, 1);
        assert!(report.is_critical(f64::INFINITY));
    }

    #[test]
    fn kl_grows_with_perturbation_size() {
        let probe = CriticalityProbe::new(8, 10, 1);
        let g = golden_output();
        let mut kls = Vec::new();
        for delta in [0.01, 0.1, 1.0] {
            let mut f = g.clone();
            f[(2, 4)] += delta;
            kls.push(probe.assess(&g, &f).max_kl);
        }
        assert!(kls[0] < kls[1] && kls[1] < kls[2], "{kls:?}");
    }

    #[test]
    fn probe_is_deterministic() {
        let a = CriticalityProbe::new(8, 10, 5);
        let b = CriticalityProbe::new(8, 10, 5);
        let g = golden_output();
        let mut f = g.clone();
        f[(1, 1)] += 0.5;
        assert_eq!(a.assess(&g, &f), b.assess(&g, &f));
    }

    #[test]
    #[should_panic(expected = "at least two readout classes")]
    fn single_class_panics() {
        let _ = CriticalityProbe::new(8, 1, 0);
    }
}
