//! Outcome classification against a golden run.

use fa_accel_sim::RunResult;
use fa_numerics::Tolerance;

/// The behaviour categories of the paper's §IV-B, plus `Masked`.
///
/// The paper's three categories sum to 100 % because its evaluation
/// counts every consequential fault; bit flips that change nothing
/// observable (dead registers, bits below the output tolerance) are
/// reported here explicitly as [`FaultCategory::Masked`] and can be
/// excluded for paper-style normalization (see `CampaignStats`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FaultCategory {
    /// Output corrupted and the checker flagged it.
    Detected,
    /// Output correct but the checker flagged an error (a fault hit the
    /// checking logic itself).
    FalsePositive,
    /// Output corrupted and the checker stayed silent (rounding-level
    /// effects or NaN-poisoned comparison).
    Silent,
    /// No observable effect: output correct and checker silent.
    Masked,
}

/// Which alarm definition classifies a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DetectionCriterion {
    /// Runtime comparator only: `|predicted − actual| > τ` within the
    /// faulty run.
    HardwareComparator,
    /// The paper's checksum-level criterion, as the union of the runtime
    /// comparator and `|predicted_faulty − checksum_true| > τ` (the
    /// §IV-B wording). Reproduces Table I.
    ChecksumDiscrepancy,
}

/// A classified campaign outcome with its evidence.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Classified {
    /// The category.
    pub category: FaultCategory,
    /// Whether the fault hit checker storage (site attribution).
    pub checker_site: bool,
    /// The faulty run's comparator residual `predicted − actual`.
    pub hw_residual: f64,
    /// Discrepancy of the faulty prediction vs the true checksum.
    pub prediction_discrepancy: f64,
    /// Whether either checksum side was NaN (invalid arithmetic).
    pub nan_poisoned: bool,
}

/// Decides whether the faulty run produced a corrupted output. Two
/// signals are combined:
///
/// * the BF16 writeback matrices differ by more than `out_tol` in any
///   element (or exactly one side is NaN) — the externally visible test;
/// * any *pre-rounding* output row sum moved by more than `out_tol` —
///   the full-precision test matching the paper's checksum-level
///   evaluation (their HLS model observes outputs before narrow
///   rounding; a corruption smaller than a BF16 ULP is still a faulty
///   output at the arithmetic level).
fn output_corrupted(golden: &RunResult, faulty: &RunResult, out_tol: f64) -> bool {
    debug_assert_eq!(golden.output.rows(), faulty.output.rows());
    debug_assert_eq!(golden.output.cols(), faulty.output.cols());
    let writeback_differs = golden
        .output
        .as_slice()
        .iter()
        .zip(faulty.output.as_slice())
        .any(|(a, b)| {
            if a.is_nan() || b.is_nan() {
                a.is_nan() != b.is_nan()
            } else {
                (a.to_f64() - b.to_f64()).abs() > out_tol
            }
        });
    if writeback_differs {
        return true;
    }
    golden
        .per_query_row_sums
        .iter()
        .zip(&faulty.per_query_row_sums)
        .any(|(a, b)| {
            if a.is_nan() || b.is_nan() {
                a.is_nan() != b.is_nan()
            } else {
                (a - b).abs() > out_tol
            }
        })
}

/// Classifies a faulty run against its golden reference.
///
/// `tolerance` is the checksum comparison bound τ; `out_tol` decides
/// whether the output counts as corrupted (the paper implicitly uses the
/// same scale: a fault whose output effect is below rounding is a
/// rounding-silent fault).
pub fn classify(
    golden: &RunResult,
    faulty: &RunResult,
    checker_site: bool,
    criterion: DetectionCriterion,
    tolerance: Tolerance,
    out_tol: f64,
) -> Classified {
    let corrupted = output_corrupted(golden, faulty, out_tol);

    let hw_residual = faulty.predicted - faulty.actual;
    let nan_poisoned = faulty.predicted.is_nan() || faulty.actual.is_nan();

    let hw_alarm = tolerance.check(faulty.predicted, faulty.actual).is_alarm();
    let prediction_discrepancy = faulty.predicted - golden.actual;
    let alarm = match criterion {
        DetectionCriterion::HardwareComparator => hw_alarm,
        DetectionCriterion::ChecksumDiscrepancy => {
            hw_alarm || tolerance.check(faulty.predicted, golden.actual).is_alarm()
        }
    };

    let category = match (corrupted, alarm) {
        (true, true) => FaultCategory::Detected,
        (false, true) => FaultCategory::FalsePositive,
        (true, false) => FaultCategory::Silent,
        (false, false) => FaultCategory::Masked,
    };

    Classified {
        category,
        checker_site,
        hw_residual,
        prediction_discrepancy,
        nan_poisoned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_accel_sim::config::AcceleratorConfig;
    use fa_accel_sim::fault::{Fault, RegAddr};
    use fa_accel_sim::Accelerator;
    use fa_models::{LlmModel, Workload, WorkloadSpec};

    fn setup() -> (Accelerator, Workload, RunResult) {
        let model = LlmModel::Bert.config();
        let spec = WorkloadSpec {
            seq_len: 16,
            ..WorkloadSpec::paper(11)
        };
        let w = Workload::generate(&model, spec);
        let accel = Accelerator::new(AcceleratorConfig::new(4, model.head_dim));
        let golden = accel.run(&w.q, &w.k, &w.v);
        (accel, w, golden)
    }

    use fa_accel_sim::RunResult;

    fn classify_fault(
        accel: &Accelerator,
        w: &Workload,
        golden: &RunResult,
        fault: Fault,
        criterion: DetectionCriterion,
    ) -> Classified {
        let faulty = accel.run_faulted(&w.q, &w.k, &w.v, &[fault], Some(golden));
        classify(
            golden,
            &faulty,
            fault.target.is_checker(),
            criterion,
            Tolerance::PAPER,
            1e-6,
        )
    }

    #[test]
    fn output_register_fault_is_detected_under_both_criteria() {
        let (accel, w, golden) = setup();
        let fault = Fault {
            cycle: 5,
            target: RegAddr::Output { block: 1, lane: 3 },
            bit: 62,
        };
        for criterion in [
            DetectionCriterion::HardwareComparator,
            DetectionCriterion::ChecksumDiscrepancy,
        ] {
            let c = classify_fault(&accel, &w, &golden, fault, criterion);
            assert_eq!(c.category, FaultCategory::Detected, "{criterion:?}");
            assert!(!c.checker_site);
        }
    }

    #[test]
    fn check_register_fault_is_false_positive() {
        let (accel, w, golden) = setup();
        let fault = Fault {
            cycle: 8,
            target: RegAddr::Check { block: 0 },
            bit: 58,
        };
        let c = classify_fault(
            &accel,
            &w,
            &golden,
            fault,
            DetectionCriterion::HardwareComparator,
        );
        assert_eq!(c.category, FaultCategory::FalsePositive);
        assert!(c.checker_site);
    }

    #[test]
    fn coherent_sum_exp_fault_differs_between_criteria() {
        // The architectural insight: ℓ faults corrupt the output but scale
        // prediction and actual coherently — Silent under the hardware
        // comparator, Detected under the paper's discrepancy criterion.
        let (accel, w, golden) = setup();
        let fault = Fault {
            cycle: 10,
            target: RegAddr::SumExp { block: 2 },
            bit: 56,
        };
        let hw = classify_fault(
            &accel,
            &w,
            &golden,
            fault,
            DetectionCriterion::HardwareComparator,
        );
        let paper = classify_fault(
            &accel,
            &w,
            &golden,
            fault,
            DetectionCriterion::ChecksumDiscrepancy,
        );
        assert_eq!(hw.category, FaultCategory::Silent);
        assert_eq!(paper.category, FaultCategory::Detected);
    }

    #[test]
    fn low_order_check_bit_is_masked() {
        let (accel, w, golden) = setup();
        let fault = Fault {
            cycle: 8,
            target: RegAddr::Check { block: 0 },
            bit: 0, // 2^-52-level change: below any tolerance
        };
        let c = classify_fault(
            &accel,
            &w,
            &golden,
            fault,
            DetectionCriterion::ChecksumDiscrepancy,
        );
        assert_eq!(c.category, FaultCategory::Masked);
    }

    #[test]
    fn nan_poisoning_is_silent() {
        // Force l to a pattern that becomes NaN-producing: flipping the
        // top exponent bit of l mid-stream can overflow the rescale chain.
        let (accel, w, golden) = setup();
        // Flip m to -inf-ish: max register exponent bits.
        let fault = Fault {
            cycle: 6,
            target: RegAddr::MaxScore { block: 0 },
            bit: 62,
        };
        let faulty = accel.run_faulted(&w.q, &w.k, &w.v, &[fault], Some(&golden));
        let c = classify(
            &golden,
            &faulty,
            false,
            DetectionCriterion::ChecksumDiscrepancy,
            Tolerance::PAPER,
            1e-6,
        );
        // Whatever the category, NaN poisoning must never be Detected
        // via a NaN comparison (comparator semantics).
        if c.nan_poisoned {
            assert_ne!(
                c.category,
                FaultCategory::Detected,
                "NaN comparisons cannot raise the alarm"
            );
        }
    }

    #[test]
    fn masked_when_nothing_changes() {
        let (_accel, _w, golden) = setup();
        let c = classify(
            &golden,
            &golden.clone(),
            false,
            DetectionCriterion::ChecksumDiscrepancy,
            Tolerance::PAPER,
            1e-6,
        );
        assert_eq!(c.category, FaultCategory::Masked);
        assert!(!c.nan_poisoned);
    }
}
