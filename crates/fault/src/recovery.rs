//! Recovery cost model: what detection buys you.
//!
//! The paper motivates *online* detection with fast recovery ("faults
//! should be detected online, ideally within a few cycles of their
//! occurrence, to facilitate quick recovery", §I). This module quantifies
//! the recovery economics of the Flash-ABFT accelerator: detection
//! latency (fault cycle → the check that exposes it) and expected
//! throughput overhead under re-execution, for two checking granularities.

use fa_accel_sim::config::AcceleratorConfig;

/// When the checker comparison fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CheckGranularity {
    /// One comparison at the very end of the attention (Alg. 3 line 11
    /// accumulated over all passes) — the paper's design. Detection
    /// latency up to the whole computation; re-execution re-runs it all.
    EndOfAttention,
    /// One comparison per pass (per-query checks are available at every
    /// pass epilogue — Alg. 3 line 10): an extension enabling pass-level
    /// re-execution. Costs one extra comparator activation per pass.
    PerPass,
}

/// Analytic recovery model for a configured accelerator and workload
/// shape.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryModel {
    /// Checking granularity.
    pub granularity: CheckGranularity,
    /// Queries in the workload.
    pub n_queries: usize,
    /// Keys in the workload.
    pub n_keys: usize,
    /// Cycles per pass (streaming + epilogue).
    pub cycles_per_pass: u64,
    /// Number of passes.
    pub passes: u64,
}

impl RecoveryModel {
    /// Builds the model from an accelerator configuration and workload
    /// shape.
    ///
    /// # Panics
    ///
    /// Panics if the workload is empty.
    pub fn new(
        cfg: &AcceleratorConfig,
        granularity: CheckGranularity,
        n_queries: usize,
        n_keys: usize,
    ) -> Self {
        assert!(n_queries > 0 && n_keys > 0, "workload must be non-empty");
        RecoveryModel {
            granularity,
            n_queries,
            n_keys,
            cycles_per_pass: cfg.cycles_per_pass(n_keys),
            passes: cfg.passes(n_queries) as u64,
        }
    }

    /// Total fault-free cycles.
    pub fn base_cycles(&self) -> u64 {
        self.passes * self.cycles_per_pass
    }

    /// Worst-case detection latency in cycles: a fault in the first
    /// cycle of the earliest checked region, flagged at that region's
    /// comparison.
    pub fn worst_detection_latency(&self) -> u64 {
        match self.granularity {
            CheckGranularity::EndOfAttention => self.base_cycles(),
            CheckGranularity::PerPass => self.cycles_per_pass,
        }
    }

    /// Mean detection latency for a fault uniform over cycles (half the
    /// checked region plus the epilogue distance, to first order).
    pub fn mean_detection_latency(&self) -> f64 {
        self.worst_detection_latency() as f64 / 2.0
    }

    /// Cycles re-executed on an alarm.
    pub fn reexecution_cycles(&self) -> u64 {
        match self.granularity {
            CheckGranularity::EndOfAttention => self.base_cycles(),
            CheckGranularity::PerPass => self.cycles_per_pass,
        }
    }

    /// Expected total cycles given a per-run alarm probability
    /// `p_alarm` (detected faults + false positives), assuming the
    /// re-execution itself is fault-free.
    ///
    /// # Panics
    ///
    /// Panics if `p_alarm` is outside [0, 1].
    pub fn expected_cycles(&self, p_alarm: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p_alarm), "probability out of range");
        self.base_cycles() as f64 + p_alarm * self.reexecution_cycles() as f64
    }

    /// Expected relative throughput overhead of recovery at the given
    /// alarm probability.
    pub fn expected_overhead(&self, p_alarm: f64) -> f64 {
        self.expected_cycles(p_alarm) / self.base_cycles() as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(granularity: CheckGranularity) -> RecoveryModel {
        // 256 queries on 16 blocks, N=256: 16 passes of 258 cycles.
        let cfg = AcceleratorConfig::new(16, 128);
        RecoveryModel::new(&cfg, granularity, 256, 256)
    }

    #[test]
    fn base_cycles_match_accelerator() {
        let m = model(CheckGranularity::EndOfAttention);
        assert_eq!(m.base_cycles(), 16 * 258);
        assert_eq!(m.passes, 16);
    }

    #[test]
    fn per_pass_checking_cuts_latency_by_pass_count() {
        let end = model(CheckGranularity::EndOfAttention);
        let pass = model(CheckGranularity::PerPass);
        assert_eq!(
            end.worst_detection_latency(),
            pass.worst_detection_latency() * 16
        );
        assert!(pass.mean_detection_latency() < end.mean_detection_latency());
    }

    #[test]
    fn per_pass_reexecution_is_cheaper() {
        let end = model(CheckGranularity::EndOfAttention);
        let pass = model(CheckGranularity::PerPass);
        // At the same alarm probability, pass-level recovery costs 16x less.
        let p = 0.01;
        assert!((end.expected_overhead(p) / pass.expected_overhead(p) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn zero_alarm_probability_means_no_overhead() {
        let m = model(CheckGranularity::EndOfAttention);
        assert_eq!(m.expected_overhead(0.0), 0.0);
        assert_eq!(m.expected_cycles(0.0), m.base_cycles() as f64);
    }

    #[test]
    fn full_alarm_probability_doubles_end_to_end() {
        let m = model(CheckGranularity::EndOfAttention);
        assert!((m.expected_overhead(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_probability_panics() {
        let _ = model(CheckGranularity::PerPass).expected_cycles(1.5);
    }

    #[test]
    fn overhead_monotone_in_alarm_rate() {
        let m = model(CheckGranularity::PerPass);
        let mut last = -1.0;
        for p in [0.0, 0.001, 0.01, 0.1, 1.0] {
            let o = m.expected_overhead(p);
            assert!(o > last);
            last = o;
        }
    }
}
