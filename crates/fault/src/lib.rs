//! # fa-fault
//!
//! Fault-injection campaign framework for the Flash-ABFT accelerator —
//! the machinery behind the paper's §IV-B evaluation (Table I, the
//! multi-fault experiment and the threshold determination).
//!
//! A campaign injects bit flips into uniformly random storage bits at
//! uniformly random cycles of the simulated accelerator, classifies each
//! outcome against a golden run, and aggregates statistics with
//! confidence intervals.
//!
//! ## Detection criteria
//!
//! Two criteria are implemented (see DESIGN.md and the accel-sim docs for
//! the architectural background):
//!
//! * [`DetectionCriterion::HardwareComparator`] — the strict runtime
//!   mechanism: alarm iff `|predicted − actual| > τ` *within the faulty
//!   run*. Faults that scale output and checksum coherently (query, max,
//!   ℓ registers) are invisible to it by construction.
//! * [`DetectionCriterion::ChecksumDiscrepancy`] — the paper's stated
//!   evaluation criterion (§IV-B: "a fault detected if the predicted
//!   checksum differs by the true output checksum by more than 10⁻⁶"),
//!   taken as the union with the runtime comparator. This is the
//!   criterion under which Table I's numbers are reproducible.
//!
//! # Example
//!
//! ```
//! use fa_accel_sim::config::AcceleratorConfig;
//! use fa_fault::{CampaignSpec, DetectionCriterion, run_campaigns};
//! use fa_models::{LlmModel, Workload, WorkloadSpec};
//!
//! let model = LlmModel::Bert.config();
//! let workload = Workload::generate(&model, WorkloadSpec { seq_len: 16, ..WorkloadSpec::paper(1) });
//! let spec = CampaignSpec::new(AcceleratorConfig::new(4, model.head_dim), 50, 99)
//!     .with_criterion(DetectionCriterion::ChecksumDiscrepancy);
//! let stats = run_campaigns(&spec, &workload);
//! assert_eq!(stats.total(), 50);
//! ```

pub mod campaign;
pub mod classify;
pub mod criticality;
pub mod drill;
pub mod live;
pub mod recovery;
pub mod stats;

pub use campaign::{run_campaigns, CampaignSpec};
pub use classify::{classify, Classified, DetectionCriterion, FaultCategory};
pub use criticality::{CriticalityProbe, CriticalityReport};
pub use drill::{run_drill, run_drill_shard, DrillSpec, DrillStats};
pub use live::{run_live, run_live_shard, LiveCampaignSpec, LiveCampaignStats};
pub use recovery::{CheckGranularity, RecoveryModel};
pub use stats::CampaignStats;
