//! Fault-**drill** campaigns: live injection against the full SLO-aware
//! serving frontend, not just the bare engine.
//!
//! [`crate::live`] attacks a hand-rolled lockstep decode loop; a drill
//! attacks [`fa_attention::serve::Scheduler`] — queueing, deficit-fair
//! admission, chunked prefill, scrub autotuning, the preemption ladder —
//! while an undisturbed golden scheduler serves the *identical*
//! [`LoadGen`] stream. Because every request's token stream is seeded by
//! `(request seed, token index)`, the two runs stay comparable **per
//! (request, token) bitwise** even after the subject's schedule diverges
//! through a quarantine or preemption: the drill counts delivered-token
//! hash mismatches, detection events, and recovery outcomes.
//!
//! What the counters certify:
//!
//! * a **value-side** flip alarms online; the frontend discards the
//!   token before delivery and evicts-and-requeues — such requests
//!   finish with **zero** divergent tokens
//!   ([`DrillStats::recovered_requests`] tracks them);
//! * a **key-side** flip is residual-coherent: tokens delivered inside
//!   the scrub detection window may diverge silently
//!   ([`DrillStats::tokens_divergent`]), but the autotuned scrubber
//!   bounds the window and repair-in-place re-converges the stream;
//! * everything else — schedule, fairness, shedding — replays exactly:
//!   trials are pure functions of `(seed, trial)`, and stats are integer
//!   counters that merge exactly across shards
//!   ([`run_drill_shard`]), the same contract as [`crate::live`].

use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
use fa_attention::serve::{LoadGen, LoadSpec, Phase, Scheduler, ServeConfig};
use fa_attention::{AttentionConfig, HeadTopology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Specification of a fault-drill series: one serving configuration, one
/// workload shape, many independent trials.
#[derive(Clone, Copy, Debug)]
pub struct DrillSpec {
    /// Query heads of the serving topology.
    pub query_heads: usize,
    /// KV heads (GQA when `< query_heads`).
    pub kv_heads: usize,
    /// Head dimension.
    pub head_dim: usize,
    /// Cache block size in rows.
    pub block_rows: usize,
    /// Storage format policy under test.
    pub format: KvFormat,
    /// Block-retention policy under test.
    pub eviction: EvictionPolicy,
    /// Scheduler configuration (budgets, queue bound, scrub SLO, arena
    /// bound for preemption legs).
    pub serve: ServeConfig,
    /// Prompt chunk for chunked admission.
    pub prefill_chunk: usize,
    /// Workload shape fed to both schedulers.
    pub load: LoadSpec,
    /// Steps during which the load generator produces arrivals.
    pub load_steps: usize,
    /// Extra steps allowed for draining in-flight requests.
    pub drain_steps: usize,
    /// Fault events injected per trial (0 = clean drill).
    pub injections: u32,
    /// Key-side flips (residual-coherent, scrub-detected) when true;
    /// value-side (online-alarmed) when false.
    pub key_side: bool,
    /// Restrict injection victims to sequences reading a *shared*
    /// registered prefix, with flip positions inside the prefix region —
    /// the copy-on-write blocks every reader aliases, so one flip can
    /// poison many token streams at once.
    pub target_shared_prefix: bool,
    /// Independent trials.
    pub trials: u64,
    /// Base RNG seed; trial *i* derives its own stream.
    pub seed: u64,
}

impl DrillSpec {
    /// A small GQA serving drill: 4:2 heads × dim 8, 4-row blocks,
    /// scrub SLO 4 steps, default bursty heavy-tail load.
    pub fn new(trials: u64, seed: u64) -> DrillSpec {
        DrillSpec {
            query_heads: 4,
            kv_heads: 2,
            head_dim: 8,
            block_rows: 4,
            format: KvFormat::F64,
            eviction: EvictionPolicy::RetainAll,
            serve: ServeConfig {
                token_budget: 12,
                prefill_budget: 6,
                queue_bound: 32,
                scrub_slo_steps: Some(4),
                ..ServeConfig::default()
            },
            prefill_chunk: 4,
            load: LoadSpec {
                prompt_max: 24,
                output_max: 16,
                ..LoadSpec::default()
            },
            load_steps: 40,
            drain_steps: 400,
            injections: 1,
            key_side: false,
            target_shared_prefix: false,
            trials,
            seed,
        }
    }

    /// Sets the injection count and side per trial.
    pub fn with_injections(mut self, injections: u32, key_side: bool) -> DrillSpec {
        self.injections = injections;
        self.key_side = key_side;
        self
    }

    /// Sets the arena-pressure bound (enables the preemption ladder).
    pub fn with_kv_bound(mut self, bytes: usize) -> DrillSpec {
        self.serve.max_kv_bytes = Some(bytes);
        self
    }

    /// Sets the storage-format policy.
    pub fn with_format(mut self, format: KvFormat) -> DrillSpec {
        self.format = format;
        self
    }

    /// Sets the workload window length.
    pub fn with_load_steps(mut self, steps: usize) -> DrillSpec {
        self.load_steps = steps;
        self
    }

    /// Drives a prefix-sharing workload (each tenant's requests reuse a
    /// `prefix_tokens`-long system prompt with probability `share_prob`)
    /// and aims every flip at a shared-prefix block of a decoding
    /// reader.
    pub fn with_shared_prefix(mut self, prefix_tokens: usize, share_prob: f64) -> DrillSpec {
        self.load.prefix_tokens = prefix_tokens;
        self.load.prefix_share_prob = share_prob;
        self.target_shared_prefix = true;
        self
    }

    /// Enables speculative decoding on both twins (γ-token windows at
    /// the given draft acceptance).
    pub fn with_speculation(mut self, gamma: usize, acceptance: f64) -> DrillSpec {
        self.serve.speculation_gamma = gamma;
        self.serve.draft_acceptance = acceptance;
        self
    }
}

/// Integer counters from a drill series; merges exactly across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrillStats {
    /// Trials run.
    pub trials: u64,
    /// Trials whose subject *and* golden fully drained (every request
    /// reached `Finished` or `Shed` inside the step budget).
    pub drained_trials: u64,
    /// Fault events the schedule asked for.
    pub injections_attempted: u64,
    /// Fault events that found a decoding victim to corrupt.
    pub injections_landed: u64,
    /// Online residual alarms observed by the subject.
    pub online_alarms: u64,
    /// Corrupt sites surfaced by the subject's scrubber.
    pub scrub_findings: u64,
    /// Blocks repaired in place from the recovery log.
    pub repaired_blocks: u64,
    /// Blocks repair could not restore.
    pub unrecoverable_blocks: u64,
    /// Corruption quarantines (evict-and-requeue) taken.
    pub quarantines: u64,
    /// Arena-pressure preemptions taken.
    pub preemptions: u64,
    /// Soft-tier demotions applied.
    pub demotions: u64,
    /// Requests finished by the subject.
    pub finished_subject: u64,
    /// Requests finished by the golden twin.
    pub finished_golden: u64,
    /// Requests finished by both (the comparable set).
    pub finished_both: u64,
    /// Requests shed by the subject.
    pub shed_subject: u64,
    /// Delivered tokens compared hash-to-hash across the twins.
    pub tokens_compared: u64,
    /// Compared tokens whose output bits diverged.
    pub tokens_divergent: u64,
    /// Comparable requests with ≥ 1 divergent token.
    pub divergent_requests: u64,
    /// Comparable requests that went through ≥ 1 quarantine.
    pub quarantined_requests: u64,
    /// Quarantined comparable requests that still finished with **zero**
    /// divergent tokens — recovery was bit-exact end to end.
    pub recovered_requests: u64,
}

impl DrillStats {
    /// Accumulates `other` into `self`; counters are pure sums, so any
    /// shard partition merges to the same totals.
    pub fn merge(&mut self, other: &DrillStats) {
        self.trials += other.trials;
        self.drained_trials += other.drained_trials;
        self.injections_attempted += other.injections_attempted;
        self.injections_landed += other.injections_landed;
        self.online_alarms += other.online_alarms;
        self.scrub_findings += other.scrub_findings;
        self.repaired_blocks += other.repaired_blocks;
        self.unrecoverable_blocks += other.unrecoverable_blocks;
        self.quarantines += other.quarantines;
        self.preemptions += other.preemptions;
        self.demotions += other.demotions;
        self.finished_subject += other.finished_subject;
        self.finished_golden += other.finished_golden;
        self.finished_both += other.finished_both;
        self.shed_subject += other.shed_subject;
        self.tokens_compared += other.tokens_compared;
        self.tokens_divergent += other.tokens_divergent;
        self.divergent_requests += other.divergent_requests;
        self.quarantined_requests += other.quarantined_requests;
        self.recovered_requests += other.recovered_requests;
    }

    /// Fraction of landed injections that produced a detection event
    /// (online alarm or scrub finding), in percent.
    pub fn detection_pct(&self) -> f64 {
        if self.injections_landed == 0 {
            return 100.0;
        }
        let detected = (self.online_alarms + self.scrub_findings).min(self.injections_landed);
        100.0 * detected as f64 / self.injections_landed as f64
    }

    /// Fraction of quarantined comparable requests that finished with
    /// zero divergent tokens, in percent.
    pub fn recovery_pct(&self) -> f64 {
        if self.quarantined_requests == 0 {
            return 100.0;
        }
        100.0 * self.recovered_requests as f64 / self.quarantined_requests as f64
    }

    /// Fraction of compared delivered tokens that were bit-exact, in
    /// percent.
    pub fn token_fidelity_pct(&self) -> f64 {
        if self.tokens_compared == 0 {
            return 100.0;
        }
        100.0 * (self.tokens_compared - self.tokens_divergent) as f64 / self.tokens_compared as f64
    }
}

fn trial_stream(seed: u64, trial: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(trial)
}

fn scheduler(spec: &DrillSpec) -> Scheduler {
    let topo = HeadTopology::gqa(
        spec.query_heads,
        spec.kv_heads,
        AttentionConfig::new(spec.head_dim),
    );
    let mut e = DecodeBatch::<f64>::with_policy(
        topo,
        spec.block_rows,
        KvLayout::HeadMajor,
        spec.format,
        spec.eviction,
    );
    e.set_prefill_chunk(spec.prefill_chunk);
    Scheduler::new(e, spec.serve)
}

fn all_settled(s: &Scheduler) -> bool {
    s.records()
        .iter()
        .all(|r| matches!(r.phase, Phase::Finished | Phase::Shed))
}

/// Runs one drill trial: subject and golden schedulers serve the same
/// generated workload; the subject additionally absorbs the injection
/// schedule.
fn drill_trial(spec: &DrillSpec, trial: u64) -> DrillStats {
    let base = trial_stream(spec.seed, trial);
    let mut rng = StdRng::seed_from_u64(base ^ 0x5EED_FAB5);
    let mut subject = scheduler(spec);
    let mut golden = scheduler(spec);
    let mut gen_s = LoadGen::new(spec.load, base);
    let mut gen_g = LoadGen::new(spec.load, base);

    // Injection schedule: steps sampled from the second half of the load
    // window, when the batch is warm.
    let lo = (spec.load_steps as u64 / 2).max(1);
    let hi = spec.load_steps as u64;
    let mut inject_at: Vec<u64> = (0..spec.injections)
        .map(|_| rng.gen_range(lo..hi.max(lo + 1)))
        .collect();
    inject_at.sort_unstable();

    let mut stats = DrillStats {
        trials: 1,
        ..DrillStats::default()
    };
    let total_steps = spec.load_steps + spec.drain_steps;
    for step in 0..total_steps {
        while inject_at.first() == Some(&(step as u64)) {
            inject_at.remove(0);
            stats.injections_attempted += 1;
            let mut targets = subject.active_decoding();
            if spec.target_shared_prefix {
                targets.retain(|&(rec, _)| subject.records()[rec].prefix_seed.is_some());
            }
            if targets.is_empty() {
                continue;
            }
            let (rec, seq) = targets[rng.gen_range(0..targets.len())];
            let len = subject.engine().seq_len(seq);
            if len == 0 {
                continue;
            }
            let first = subject.engine().cache().first_retained(seq);
            // Shared-prefix targeting flips inside the prefix region
            // only — the rows whose blocks other readers alias.
            let hi_pos = if spec.target_shared_prefix {
                subject.records()[rec].prefix_tokens.min(len)
            } else {
                len
            };
            if first >= hi_pos {
                continue;
            }
            let pos = first + rng.gen_range(0..hi_pos - first);
            let kv_head = rng.gen_range(0..spec.kv_heads);
            let lane = rng.gen_range(0..spec.head_dim);
            let bit = if subject.engine().storage_is_bf16(seq, pos) {
                13
            } else {
                61
            };
            subject
                .engine_mut()
                .flip_storage_bit(seq, pos, kv_head, lane, spec.key_side, bit);
            stats.injections_landed += 1;
        }
        let arrivals = if step < spec.load_steps {
            gen_s.step()
        } else {
            Vec::new()
        };
        let arrivals_g = if step < spec.load_steps {
            gen_g.step()
        } else {
            Vec::new()
        };
        let rep = subject.step(&arrivals);
        golden.step(&arrivals_g);
        stats.online_alarms += rep.online_alarms as u64;
        stats.scrub_findings += rep.scrub_findings as u64;
        stats.repaired_blocks += rep.repaired_blocks as u64;
        stats.unrecoverable_blocks += rep.unrecoverable_blocks as u64;
        stats.quarantines += rep.quarantines as u64;
        stats.preemptions += rep.preemptions as u64;
        stats.demotions += rep.demotions as u64;
        if step >= spec.load_steps && all_settled(&subject) && all_settled(&golden) {
            break;
        }
    }
    if all_settled(&subject) && all_settled(&golden) {
        stats.drained_trials = 1;
    }

    // Per-(request, token) bitwise comparison over the comparable set.
    debug_assert_eq!(subject.records().len(), golden.records().len());
    for (s, g) in subject.records().iter().zip(golden.records().iter()) {
        if s.phase == Phase::Finished {
            stats.finished_subject += 1;
        }
        if s.phase == Phase::Shed {
            stats.shed_subject += 1;
        }
        if g.phase == Phase::Finished {
            stats.finished_golden += 1;
        }
        if s.phase != Phase::Finished || g.phase != Phase::Finished {
            continue;
        }
        stats.finished_both += 1;
        let n = s.token_hashes.len().min(g.token_hashes.len());
        let divergent = (0..n)
            .filter(|&j| s.token_hashes[j] != g.token_hashes[j])
            .count() as u64;
        stats.tokens_compared += n as u64;
        stats.tokens_divergent += divergent;
        if divergent > 0 {
            stats.divergent_requests += 1;
        }
        if s.quarantines > 0 {
            stats.quarantined_requests += 1;
            if divergent == 0 {
                stats.recovered_requests += 1;
            }
        }
    }
    stats
}

/// Runs trials `from..to` of the drill, fanned across the rayon pool;
/// totals are independent of sharding and thread count.
pub fn run_drill_shard(spec: &DrillSpec, from: u64, to: u64) -> DrillStats {
    (from..to)
        .into_par_iter()
        .map(|trial| drill_trial(spec, trial))
        .reduce(DrillStats::default, |mut a, b| {
            a.merge(&b);
            a
        })
}

/// Runs the full drill series.
pub fn run_drill(spec: &DrillSpec) -> DrillStats {
    run_drill_shard(spec, 0, spec.trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_drill_is_bit_exact_and_deterministic() {
        let spec = DrillSpec::new(2, 42).with_injections(0, false);
        let a = run_drill(&spec);
        let b = run_drill(&spec);
        assert_eq!(a, b, "drills are pure functions of (spec, seed)");
        assert_eq!(a.trials, 2);
        assert_eq!(a.drained_trials, 2, "clean drills must drain");
        assert!(a.finished_both > 0);
        assert_eq!(a.tokens_divergent, 0, "undisturbed twins never diverge");
        assert_eq!(a.online_alarms, 0);
        assert_eq!(a.quarantines, 0);
    }

    #[test]
    fn shards_merge_to_the_full_run() {
        let spec = DrillSpec::new(4, 7).with_injections(1, false);
        let full = run_drill(&spec);
        let mut merged = run_drill_shard(&spec, 0, 2);
        merged.merge(&run_drill_shard(&spec, 2, 4));
        assert_eq!(full, merged);
    }

    #[test]
    fn value_flips_alarm_and_recover_bit_exact() {
        let spec = DrillSpec::new(6, 11).with_injections(1, false);
        let stats = run_drill(&spec);
        assert!(stats.injections_landed > 0, "some trial must land its flip");
        assert!(
            stats.online_alarms > 0,
            "value-side flips must alarm online"
        );
        assert!(stats.quarantines > 0, "alarms trigger evict-and-requeue");
        assert_eq!(
            stats.tokens_divergent, 0,
            "alarmed tokens are discarded before delivery; recovery is bit-exact"
        );
        assert_eq!(stats.recovered_requests, stats.quarantined_requests);
    }

    #[test]
    fn shared_prefix_flips_alarm_every_reader_and_recover_bit_exact() {
        let spec = DrillSpec::new(6, 17)
            .with_injections(1, false)
            .with_shared_prefix(12, 0.8);
        let stats = run_drill(&spec);
        assert!(stats.drained_trials > 0, "shared-prefix drills must drain");
        assert!(
            stats.injections_landed > 0,
            "some trial must land a shared-prefix flip"
        );
        assert!(
            stats.online_alarms > 0,
            "value flips inside shared blocks must alarm online"
        );
        assert_eq!(
            stats.tokens_divergent, 0,
            "alarmed tokens never deliver; recovery is bit-exact"
        );
        assert_eq!(stats.recovered_requests, stats.quarantined_requests);
    }

    #[test]
    fn speculative_drill_stays_bit_exact_under_value_flips() {
        let spec = DrillSpec::new(4, 19)
            .with_injections(1, false)
            .with_speculation(4, 0.8);
        let stats = run_drill(&spec);
        assert!(stats.drained_trials > 0, "speculative drills must drain");
        assert!(stats.finished_both > 0);
        assert_eq!(
            stats.tokens_divergent, 0,
            "window alarms void delivery before corruption can escape"
        );
    }

    #[test]
    fn key_flips_are_scrub_detected_within_the_window() {
        let spec = DrillSpec::new(6, 13).with_injections(1, true);
        let stats = run_drill(&spec);
        assert!(stats.injections_landed > 0);
        assert!(
            stats.scrub_findings > 0,
            "key-side flips are caught by the autotuned scrubber"
        );
        assert!(
            stats.repaired_blocks > 0 || stats.quarantines > 0,
            "every finding repairs in place or escalates"
        );
        // Divergence is confined to the detection window: fidelity stays
        // high even though key flips are online-invisible.
        assert!(
            stats.token_fidelity_pct() > 90.0,
            "fidelity {:.1}% too low",
            stats.token_fidelity_pct()
        );
    }
}
