//! Property-based tests for classification and statistics.

use fa_accel_sim::RunResult;
use fa_fault::stats::wilson_interval;
use fa_fault::{classify, CampaignStats, DetectionCriterion, FaultCategory};
use fa_numerics::{Tolerance, BF16};
use fa_tensor::Matrix;
use proptest::prelude::*;

/// Builds a RunResult with the given checksums over a fixed tiny output.
fn run(predicted: f64, actual: f64, output_vals: &[f64]) -> RunResult {
    let output = Matrix::from_vec(
        1,
        output_vals.len(),
        output_vals.iter().map(|&x| BF16::from_f64(x)).collect(),
    );
    RunResult {
        output,
        per_query_checks: vec![predicted],
        per_query_row_sums: vec![actual],
        predicted,
        actual,
        cycles: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The four categories partition every (corruption, alarm) outcome:
    /// classification always returns exactly one quadrant consistent with
    /// its evidence.
    #[test]
    fn classification_quadrants(
        golden_val in -10.0f64..10.0,
        delta in -5.0f64..5.0,
        check_shift in -5.0f64..5.0,
    ) {
        let golden = run(golden_val, golden_val, &[golden_val]);
        let faulty_val = golden_val + delta;
        let faulty = run(golden_val + check_shift, faulty_val, &[faulty_val]);
        let c = classify(
            &golden,
            &faulty,
            false,
            DetectionCriterion::HardwareComparator,
            Tolerance::Absolute(1e-6),
            1e-6,
        );
        let corrupted = delta.abs() > 1e-6; // row-sum moves by delta
        let alarm = (faulty.predicted - faulty.actual).abs() > 1e-6;
        let expected = match (corrupted, alarm) {
            (true, true) => FaultCategory::Detected,
            (false, true) => FaultCategory::FalsePositive,
            (true, false) => FaultCategory::Silent,
            (false, false) => FaultCategory::Masked,
        };
        // BF16 writeback rounding can upgrade "corrupted" only via the
        // row-sum channel, which we set exactly; categories must agree.
        prop_assert_eq!(c.category, expected);
    }

    /// The discrepancy criterion never detects less than the hardware
    /// comparator (it is a strict union).
    #[test]
    fn discrepancy_criterion_dominates(
        golden_val in -10.0f64..10.0,
        delta in -5.0f64..5.0,
        check_shift in -5.0f64..5.0,
    ) {
        let golden = run(golden_val, golden_val, &[golden_val]);
        let faulty = run(golden_val + check_shift, golden_val + delta, &[golden_val + delta]);
        let hw = classify(&golden, &faulty, false,
            DetectionCriterion::HardwareComparator, Tolerance::PAPER, 1e-6);
        let paper = classify(&golden, &faulty, false,
            DetectionCriterion::ChecksumDiscrepancy, Tolerance::PAPER, 1e-6);
        if hw.category == FaultCategory::Detected {
            prop_assert_eq!(paper.category, FaultCategory::Detected);
        }
        if hw.category == FaultCategory::FalsePositive {
            prop_assert_eq!(paper.category, FaultCategory::FalsePositive);
        }
    }

    /// NaN on either checksum side can never produce Detected or
    /// FalsePositive under the hardware criterion.
    #[test]
    fn nan_never_alarms_hardware(golden_val in -10.0f64..10.0, which in 0u8..3) {
        let golden = run(golden_val, golden_val, &[golden_val]);
        let (p, a) = match which {
            0 => (f64::NAN, golden_val),
            1 => (golden_val, f64::NAN),
            _ => (f64::NAN, f64::NAN),
        };
        let faulty = run(p, a, &[golden_val]);
        let c = classify(&golden, &faulty, false,
            DetectionCriterion::HardwareComparator, Tolerance::PAPER, 1e-6);
        prop_assert!(c.nan_poisoned);
        prop_assert_ne!(c.category, FaultCategory::Detected);
        prop_assert_ne!(c.category, FaultCategory::FalsePositive);
    }

    /// Wilson intervals always contain the point estimate and are
    /// properly ordered and bounded.
    #[test]
    fn wilson_interval_contains_estimate(successes in 0u64..1000, extra in 0u64..1000) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let p = 100.0 * successes as f64 / trials as f64;
        let (lo, hi) = wilson_interval(successes, trials, 1.96);
        prop_assert!(lo <= p + 1e-9 && p <= hi + 1e-9, "{lo} {p} {hi}");
        prop_assert!((0.0..=100.0).contains(&lo));
        prop_assert!((0.0..=100.0).contains(&hi));
        prop_assert!(lo <= hi);
    }

    /// Stats merging is commutative and total-preserving.
    #[test]
    fn stats_merge_commutes(
        a in (0u64..100, 0u64..100, 0u64..100, 0u64..100),
        b in (0u64..100, 0u64..100, 0u64..100, 0u64..100),
    ) {
        let mk = |(d, f, s, m): (u64, u64, u64, u64)| CampaignStats {
            detected: d,
            false_positive: f,
            silent: s,
            masked: m,
            ..Default::default()
        };
        let mut x = mk(a);
        x.merge(&mk(b));
        let mut y = mk(b);
        y.merge(&mk(a));
        prop_assert_eq!(x, y);
        prop_assert_eq!(x.total(), mk(a).total() + mk(b).total());
    }
}

mod live_sharding {
    use fa_attention::batch::guard::InjectionSite;
    use fa_fault::live::{run_live, run_live_shard, LiveCampaignStats};
    use fa_fault::LiveCampaignSpec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Any shard partition of a live campaign merges to exactly the
        /// stats of the single full run — the determinism contract that
        /// makes distributed campaigns trustworthy. Cut points may
        /// coincide (empty shards must be identity elements). The sweep
        /// covers multi-fault bursts (k flips per trial) and mid-run
        /// scrub bandwidths, so the per-flip counters, the summed scrub
        /// bandwidth, and the max-merged worst-case latency all honor
        /// the same exact-merge contract as the PR-6 counters.
        #[test]
        fn any_shard_partition_merges_to_the_full_run(
            site_idx in 0usize..4,
            seed in 0u64..1_000,
            cut_a in 0u64..=10,
            cut_b in 0u64..=10,
            flips in 1u32..=4,
            scrub in 0usize..=2,
        ) {
            let trials = 10u64;
            let spec = LiveCampaignSpec::new(InjectionSite::ALL[site_idx], trials, seed)
                .with_batch(2)
                .with_shape(6, 4)
                .with_flips(flips)
                .with_scrub(scrub);
            let full = run_live(&spec);
            let (lo, hi) = (cut_a.min(cut_b), cut_a.max(cut_b));
            let mut merged = LiveCampaignStats::default();
            merged.merge(&run_live_shard(&spec, 0, lo));
            merged.merge(&run_live_shard(&spec, lo, hi));
            merged.merge(&run_live_shard(&spec, hi, trials));
            prop_assert_eq!(full, merged);
            prop_assert_eq!(full.total(), trials);
            prop_assert_eq!(full.injected_flips, trials * flips as u64);
            if scrub == 0 {
                prop_assert_eq!(full.scrubbed_blocks, 0);
            } else {
                prop_assert!(full.scrubbed_blocks > 0);
            }
        }
    }
}
