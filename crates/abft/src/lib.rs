//! # fa-abft
//!
//! Baseline algorithm-based fault-tolerance checkers — the techniques
//! Flash-ABFT is compared against in the paper:
//!
//! * [`matmul`] — classic Huang–Abraham ABFT for a single matrix product
//!   (checksum prediction, detection, and single-error location);
//! * [`two_step`] — the "traditional" approach for attention the paper
//!   describes in §I: check `Q·Kᵀ` and `S·V` as two *separate* matrix
//!   multiplications, leaving the softmax in between **unprotected** — the
//!   coverage gap that motivates Flash-ABFT;
//! * [`approx`] — ApproxABFT-style significance thresholding (only errors
//!   large enough to matter raise an alarm);
//! * [`extreme`] — ATTNChecker-style extreme-value detection (INF, NaN,
//!   near-INF) targeting training-crash errors;
//! * [`cost`] — operation-count model quantifying checking overhead, used
//!   by the overhead benches to compare two-step checking against the
//!   fused Flash-ABFT check.
//!
//! # Example
//!
//! ```
//! use fa_tensor::Matrix;
//! use fa_abft::matmul::CheckedMatmul;
//! use fa_numerics::Tolerance;
//!
//! let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::<f64>::identity(2);
//! let checked = CheckedMatmul::compute(&a, &b, Tolerance::PAPER);
//! assert!(!checked.outcome().is_alarm());
//! ```

pub mod approx;
pub mod composite;
pub mod cost;
pub mod extreme;
pub mod matmul;
pub mod two_step;
