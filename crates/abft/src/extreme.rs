//! ATTNChecker-style extreme-value detection.
//!
//! ATTNChecker (cited in §I) targets *extreme* errors during LLM training:
//! INF, NaN and near-INF values that crash or poison a training run. It
//! scans tensors for such values rather than verifying arithmetic. This
//! baseline is cheap but blind to plain numerical corruption — a bit flip
//! that turns 0.5 into 0.25 passes — which the coverage comparison
//! experiments quantify against Flash-ABFT.

use fa_tensor::{Matrix, Scalar};

/// What an extreme-value scan found.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ExtremeKind {
    /// A NaN element.
    Nan,
    /// A ±∞ element.
    Inf,
    /// A finite element whose magnitude exceeds the near-INF threshold.
    NearInf,
}

/// A detected extreme value.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExtremeFinding {
    /// Row of the offending element.
    pub row: usize,
    /// Column of the offending element.
    pub col: usize,
    /// Which kind of extreme value it is.
    pub kind: ExtremeKind,
}

/// Extreme-value scanner with a configurable near-INF threshold.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExtremeChecker {
    /// Finite magnitudes above this threshold are flagged as
    /// [`ExtremeKind::NearInf`]. ATTNChecker uses a fraction of the format
    /// maximum; the default is `f32::MAX / 2` widened to f64, appropriate
    /// for BF16/f32 datapaths whose values should never approach it.
    pub near_inf_threshold: f64,
}

impl Default for ExtremeChecker {
    fn default() -> Self {
        ExtremeChecker {
            near_inf_threshold: f32::MAX as f64 / 2.0,
        }
    }
}

impl ExtremeChecker {
    /// Creates a scanner with the given near-INF threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not positive.
    pub fn new(near_inf_threshold: f64) -> Self {
        assert!(
            near_inf_threshold > 0.0,
            "near-INF threshold must be positive"
        );
        ExtremeChecker { near_inf_threshold }
    }

    /// Scans a matrix, returning every extreme element.
    pub fn scan<T: Scalar>(&self, m: &Matrix<T>) -> Vec<ExtremeFinding> {
        let mut findings = Vec::new();
        for r in 0..m.rows() {
            for (c, x) in m.row(r).iter().enumerate() {
                let v = x.to_f64();
                let kind = if v.is_nan() {
                    Some(ExtremeKind::Nan)
                } else if v.is_infinite() {
                    Some(ExtremeKind::Inf)
                } else if v.abs() > self.near_inf_threshold {
                    Some(ExtremeKind::NearInf)
                } else {
                    None
                };
                if let Some(kind) = kind {
                    findings.push(ExtremeFinding {
                        row: r,
                        col: c,
                        kind,
                    });
                }
            }
        }
        findings
    }

    /// Fast boolean form of [`scan`](Self::scan).
    pub fn any_extreme<T: Scalar>(&self, m: &Matrix<T>) -> bool {
        m.as_slice().iter().any(|x| {
            let v = x.to_f64();
            v.is_nan() || v.is_infinite() || v.abs() > self.near_inf_threshold
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_matrix_yields_no_findings() {
        let m = Matrix::<f64>::from_fn(4, 4, |r, c| (r + c) as f64);
        let checker = ExtremeChecker::default();
        assert!(checker.scan(&m).is_empty());
        assert!(!checker.any_extreme(&m));
    }

    #[test]
    fn finds_nan_inf_and_near_inf() {
        let mut m = Matrix::<f64>::zeros(2, 3);
        m[(0, 1)] = f64::NAN;
        m[(1, 0)] = f64::NEG_INFINITY;
        m[(1, 2)] = 3e38;
        let findings = ExtremeChecker::default().scan(&m);
        assert_eq!(findings.len(), 3);
        assert_eq!(findings[0].kind, ExtremeKind::Nan);
        assert_eq!((findings[0].row, findings[0].col), (0, 1));
        assert_eq!(findings[1].kind, ExtremeKind::Inf);
        assert_eq!(findings[2].kind, ExtremeKind::NearInf);
    }

    #[test]
    fn blind_to_plain_corruption() {
        // The crucial limitation: value corruption without overflow is
        // invisible to the extreme checker.
        let mut m = Matrix::<f64>::from_fn(3, 3, |_, _| 0.5);
        m[(1, 1)] = 0.25; // a flipped mantissa bit
        let checker = ExtremeChecker::default();
        assert!(checker.scan(&m).is_empty());
    }

    #[test]
    fn threshold_is_configurable() {
        let mut m = Matrix::<f64>::zeros(1, 1);
        m[(0, 0)] = 1e6;
        assert!(ExtremeChecker::new(1e5).any_extreme(&m));
        assert!(!ExtremeChecker::new(1e7).any_extreme(&m));
    }

    #[test]
    fn bf16_infinity_is_caught() {
        use fa_numerics::BF16;
        let mut m = Matrix::<BF16>::zeros(1, 2);
        m[(0, 1)] = BF16::INFINITY;
        assert!(ExtremeChecker::default().any_extreme(&m));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_threshold_panics() {
        let _ = ExtremeChecker::new(0.0);
    }
}
