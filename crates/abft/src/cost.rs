//! Operation-count model for checking overhead.
//!
//! The paper's headline claim is that one fused check is cheaper than
//! separate per-matmul checks. This module counts arithmetic operations
//! analytically so the overhead benches can report the asymptotic
//! comparison alongside measured wall-clock: the two-step baseline pays
//! **O(N²)** additions to sum the N×N score matrix, while the fused
//! Flash-ABFT check costs **O(N·d + N)** — independent of the score-matrix
//! size.

use std::ops::Add;

/// Counts of primitive arithmetic operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OpCounts {
    /// Multiplications.
    pub mul: u64,
    /// Additions/subtractions.
    pub add: u64,
    /// Exponential evaluations.
    pub exp: u64,
    /// Divisions.
    pub div: u64,
    /// Comparisons (max updates, threshold checks).
    pub cmp: u64,
}

impl OpCounts {
    /// Total operations, unweighted.
    pub fn total(&self) -> u64 {
        self.mul + self.add + self.exp + self.div + self.cmp
    }

    /// Total operations with per-kind weights (e.g. relative energy).
    pub fn weighted(&self, w: &OpWeights) -> f64 {
        self.mul as f64 * w.mul
            + self.add as f64 * w.add
            + self.exp as f64 * w.exp
            + self.div as f64 * w.div
            + self.cmp as f64 * w.cmp
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            mul: self.mul + rhs.mul,
            add: self.add + rhs.add,
            exp: self.exp + rhs.exp,
            div: self.div + rhs.div,
            cmp: self.cmp + rhs.cmp,
        }
    }
}

/// Relative per-operation weights (dimensionless; the accel-sim power
/// model owns calibrated energy values).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OpWeights {
    /// Weight of a multiplication.
    pub mul: f64,
    /// Weight of an addition.
    pub add: f64,
    /// Weight of an exponential.
    pub exp: f64,
    /// Weight of a division.
    pub div: f64,
    /// Weight of a comparison.
    pub cmp: f64,
}

impl Default for OpWeights {
    /// Rough 28 nm relative energies: mul 4×add, exp ≈ 12×add (LUT + mul +
    /// add), div ≈ 10×add, cmp ≈ add.
    fn default() -> Self {
        OpWeights {
            mul: 4.0,
            add: 1.0,
            exp: 12.0,
            div: 10.0,
            cmp: 1.0,
        }
    }
}

/// Operations of the FlashAttention-2 kernel itself (Alg. 2) for `n` keys
/// and `n` queries of dimension `d`: per query-key step one d-wide dot
/// product, one max update, two exponentials, the ℓ update and the d-wide
/// output update; one d-wide division per query at the end.
pub fn flash2_kernel(n: u64, d: u64) -> OpCounts {
    let steps = n * n; // query × key iterations
    OpCounts {
        // dot product d muls; output update: d muls (rescale) + d muls (weight)
        mul: steps * (d + 2 * d) + steps, // + l update mul
        // dot product d-1 adds; output update d adds; l update 1 add
        add: steps * ((d - 1) + d + 1),
        exp: steps * 2,
        div: n * d,
        cmp: steps, // max update
    }
}

/// *Additional* operations of the fused Flash-ABFT check (Alg. 3 lines 7,
/// 10, 11 plus the V row-sum unit and the final comparison):
///
/// * per key: one (d−1)-add row-sum of `v_i` — shared across all queries;
/// * per query-key step: the `c_i` update (2 mul + 1 add);
/// * per query: one division (line 10) and one accumulate (line 11);
/// * at the end: summing the N×d attention output into the actual
///   checksum (N·d−1 adds) and one comparison.
pub fn flash_abft_overhead(n: u64, d: u64) -> OpCounts {
    let steps = n * n;
    OpCounts {
        mul: steps * 2,
        add: n * (d - 1) + steps + n + (n * d - 1),
        exp: 0, // reuses the kernel's exponentials (Eq. 9 merged update)
        div: n,
        cmp: 1,
    }
}

/// *Additional* operations of traditional two-step ABFT on the same
/// attention: checksum vectors and full-matrix sums for both products.
///
/// Check 1 (`P = Q·Kᵀ`, N×N output): column sums of Q (d·(N−1) adds), row
/// sums of Kᵀ (d·(N−1) adds), checksum dot product (d mul, d−1 add),
/// actual sum of P (N²−1 adds), one comparison.
///
/// Check 2 (`O = S·V`, N×d output): column sums of S (N·(N−1) adds), row
/// sums of V (N·(d−1) adds), dot product (N mul, N−1 add), actual sum of O
/// (N·d−1 adds), one comparison.
pub fn two_step_overhead(n: u64, d: u64) -> OpCounts {
    let check1 = OpCounts {
        mul: d,
        add: 2 * d * (n - 1) + (d - 1) + (n * n - 1),
        exp: 0,
        div: 0,
        cmp: 1,
    };
    let check2 = OpCounts {
        mul: n,
        add: n * (n - 1) + n * (d - 1) + (n - 1) + (n * d - 1),
        exp: 0,
        div: 0,
        cmp: 1,
    };
    check1 + check2
}

/// Overhead ratio (checker ops / kernel ops), unweighted.
pub fn overhead_ratio(checker: OpCounts, kernel: OpCounts) -> f64 {
    checker.total() as f64 / kernel.total() as f64
}

/// Extra memory traffic (bytes) the two-step baseline requires: the N×N
/// score matrix `P` and the softmax matrix `S` must be **materialized**
/// (written once, read back by the checker and by the next stage), whereas
/// FlashAttention streams them through registers. This is the structural
/// cost the fused check eliminates — checksum state in Flash-ABFT is O(1)
/// per query and no intermediate matrix ever exists.
pub fn two_step_score_traffic_bytes(n: u64, elem_bytes: u64) -> u64 {
    // P: write N², read N² (softmax input + checksum sum).
    // S: write N², read N² (S·V input + column-sum unit).
    4 * n * n * elem_bytes
}

/// Energy-style comparison of the two checking schemes including memory
/// traffic, with `access_weight` = energy of one element access relative
/// to one addition (on-chip SRAM ≈ 25–50× an add at 28 nm).
pub fn scheme_energy(
    ops: OpCounts,
    traffic_bytes: u64,
    elem_bytes: u64,
    w: &OpWeights,
    access_weight: f64,
) -> f64 {
    ops.weighted(w) + (traffic_bytes / elem_bytes) as f64 * access_weight
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_add() {
        let a = OpCounts {
            mul: 1,
            add: 2,
            exp: 3,
            div: 4,
            cmp: 5,
        };
        assert_eq!(a.total(), 15);
        let b = a + a;
        assert_eq!(b.total(), 30);
        assert_eq!(b.mul, 2);
    }

    #[test]
    fn weighted_uses_weights() {
        let a = OpCounts {
            mul: 10,
            add: 0,
            exp: 0,
            div: 0,
            cmp: 0,
        };
        assert_eq!(a.weighted(&OpWeights::default()), 40.0);
    }

    #[test]
    fn fused_check_is_cheaper_than_two_step_with_traffic() {
        // The paper's headline: one fused check "eliminates redundant
        // checks". In raw ALU ops the two schemes are both O(N²), but the
        // two-step baseline must materialize and re-read the N×N score and
        // softmax matrices, which dominates once memory access energy is
        // accounted for (SRAM access ≫ add).
        let w = OpWeights::default();
        for (n, d) in [(256u64, 64u64), (256, 128), (1024, 128), (4096, 256)] {
            let fused = scheme_energy(flash_abft_overhead(n, d), 0, 2, &w, 25.0);
            let two = scheme_energy(
                two_step_overhead(n, d),
                two_step_score_traffic_bytes(n, 2),
                2,
                &w,
                25.0,
            );
            assert!(
                fused < two,
                "fused {fused} !< two-step {two} at N={n} d={d}"
            );
        }
    }

    #[test]
    fn fused_needs_single_comparison_two_step_needs_two() {
        let fused = flash_abft_overhead(256, 128);
        let two = two_step_overhead(256, 128);
        assert_eq!(fused.cmp, 1);
        assert_eq!(two.cmp, 2);
    }

    #[test]
    fn fused_has_no_intermediate_matrix_traffic() {
        assert_eq!(two_step_score_traffic_bytes(256, 2), 4 * 256 * 256 * 2);
        // Flash-ABFT's checksum state per query is one f64 register: no
        // N²-scaling traffic exists in the fused scheme by construction.
    }

    #[test]
    fn two_step_grows_quadratically_fused_does_not_dominate() {
        // Doubling N quadruples the two-step N² term; the fused check term
        // that scales with N² is only the per-step c-update (3 ops), so
        // the two-step/fused ratio must grow with N at fixed d... both have
        // N² terms, but two-step's N² coefficient (1 add) vs fused (3 ops)
        // — the *relative overhead vs the kernel* is what matters:
        let d = 128;
        let r_small = overhead_ratio(flash_abft_overhead(256, d), flash2_kernel(256, d));
        let r_large = overhead_ratio(flash_abft_overhead(4096, d), flash2_kernel(4096, d));
        // Fused overhead stays a small, roughly constant fraction.
        assert!(r_small < 0.05, "fused overhead ratio {r_small}");
        assert!(r_large < 0.05, "fused overhead ratio {r_large}");
    }

    #[test]
    fn fused_overhead_fraction_is_small_like_paper() {
        // The paper reports ~5% area, <2% energy for the checker. The
        // unweighted op-count fraction at the evaluated design point
        // (N=256, d=128) should be of the same order.
        let frac = overhead_ratio(flash_abft_overhead(256, 128), flash2_kernel(256, 128));
        assert!(
            frac < 0.04,
            "op-count overhead {frac} should be a few percent"
        );
    }

    #[test]
    fn kernel_counts_scale_as_expected() {
        let base = flash2_kernel(128, 64);
        let double_n = flash2_kernel(256, 64);
        // N² scaling of multiplications (dominated by dot products).
        let ratio = double_n.mul as f64 / base.mul as f64;
        assert!((ratio - 4.0).abs() < 0.01, "mul ratio {ratio}");
    }
}
