//! Classic Huang–Abraham ABFT for one matrix multiplication.
//!
//! For `C = A·B`: augment `A` with a row of column sums and `B` with a
//! column of row sums; the dot product of the two checksum vectors predicts
//! `Σ C`. Comparing against the actual `Σ C` detects any single corrupted
//! output element; keeping the *full* row/column checksum vectors
//! additionally locates it (row index from the column-checksum residual,
//! column index from the row-checksum residual) and allows correction.

use fa_numerics::{CheckOutcome, Tolerance};
use fa_tensor::{checksum::predicted_matmul_checksum, Matrix, Scalar};

/// A matrix product computed together with its ABFT verification.
#[derive(Clone)]
pub struct CheckedMatmul<T> {
    result: Matrix<T>,
    predicted: f64,
    actual: f64,
    outcome: CheckOutcome,
}

impl<T: Scalar> std::fmt::Debug for CheckedMatmul<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckedMatmul")
            .field("predicted", &self.predicted)
            .field("actual", &self.actual)
            .field("outcome", &self.outcome)
            .field("result", &self.result)
            .finish()
    }
}

impl<T: Scalar> CheckedMatmul<T> {
    /// Computes `a·b` and verifies it against the predicted checksum.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions differ.
    pub fn compute(a: &Matrix<T>, b: &Matrix<T>, tolerance: Tolerance) -> Self {
        let result = a.matmul(b);
        let predicted = predicted_matmul_checksum(a, b);
        let actual = result.sum_all();
        let outcome = tolerance.check(predicted, actual);
        CheckedMatmul {
            result,
            predicted,
            actual,
            outcome,
        }
    }

    /// Verifies an *externally produced* result (e.g. from faulty
    /// hardware) against the checksum predicted from the inputs.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn verify(a: &Matrix<T>, b: &Matrix<T>, result: Matrix<T>, tolerance: Tolerance) -> Self {
        assert_eq!(result.rows(), a.rows(), "result row count mismatch");
        assert_eq!(result.cols(), b.cols(), "result column count mismatch");
        let predicted = predicted_matmul_checksum(a, b);
        let actual = result.sum_all();
        let outcome = tolerance.check(predicted, actual);
        CheckedMatmul {
            result,
            predicted,
            actual,
            outcome,
        }
    }

    /// The computed (or supplied) product.
    pub fn result(&self) -> &Matrix<T> {
        &self.result
    }

    /// Consumes self, returning the product.
    pub fn into_result(self) -> Matrix<T> {
        self.result
    }

    /// The predicted checksum `colsums(A) · rowsums(B)`.
    pub fn predicted(&self) -> f64 {
        self.predicted
    }

    /// The actual checksum `Σ C`.
    pub fn actual(&self) -> f64 {
        self.actual
    }

    /// The verification outcome.
    pub fn outcome(&self) -> CheckOutcome {
        self.outcome
    }
}

/// Location of a single corrupted element, found from full checksum
/// vectors.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ErrorLocation {
    /// Row of the corrupted element.
    pub row: usize,
    /// Column of the corrupted element.
    pub col: usize,
    /// The residual magnitude (the amount by which the element is off).
    pub delta: f64,
}

/// Locates (and optionally corrects) a single corrupted element of
/// `result` given fault-free inputs, using full row/column checksum
/// vectors. Returns `None` if no row or no column residual exceeds the
/// tolerance (no locatable single error).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn locate_single_error<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    result: &Matrix<T>,
    tolerance: f64,
) -> Option<ErrorLocation> {
    assert_eq!(result.rows(), a.rows(), "result row count mismatch");
    assert_eq!(result.cols(), b.cols(), "result column count mismatch");
    // Reference product in f64: the checksum vectors of the true C.
    let a64 = a.to_f64();
    let b64 = b.to_f64();
    let true_c = a64.matmul(&b64);

    // Row residuals: actual row sums vs true row sums.
    let mut bad_row = None;
    for (i, (actual, expected)) in result.row_sums().iter().zip(true_c.row_sums()).enumerate() {
        let delta = actual - expected;
        if delta.abs() > tolerance {
            if bad_row.is_some() {
                return None; // more than one corrupted row: not a single error
            }
            bad_row = Some((i, delta));
        }
    }
    let mut bad_col = None;
    for (j, (actual, expected)) in result.col_sums().iter().zip(true_c.col_sums()).enumerate() {
        let delta = actual - expected;
        if delta.abs() > tolerance {
            if bad_col.is_some() {
                return None;
            }
            bad_col = Some((j, delta));
        }
    }
    match (bad_row, bad_col) {
        (Some((row, dr)), Some((col, _dc))) => Some(ErrorLocation {
            row,
            col,
            delta: dr,
        }),
        _ => None,
    }
}

/// Corrects a located single error in place.
pub fn correct_single_error<T: Scalar>(result: &mut Matrix<T>, loc: ErrorLocation) {
    let fixed = result[(loc.row, loc.col)].to_f64() - loc.delta;
    result[(loc.row, loc.col)] = T::from_f64(fixed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_tensor::random::ElementDist;

    fn rand_pair(seed: u64) -> (Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random_seeded(6, 5, ElementDist::default(), seed),
            Matrix::random_seeded(5, 7, ElementDist::default(), seed + 1),
        )
    }

    #[test]
    fn fault_free_product_passes() {
        let (a, b) = rand_pair(1);
        let checked = CheckedMatmul::compute(&a, &b, Tolerance::PAPER);
        assert_eq!(checked.outcome(), CheckOutcome::Pass);
        assert!((checked.predicted() - checked.actual()).abs() < 1e-9);
        assert_eq!(checked.result().rows(), 6);
    }

    #[test]
    fn corrupted_result_alarms() {
        let (a, b) = rand_pair(2);
        let mut c = a.matmul(&b);
        c[(3, 4)] += 0.01;
        let checked = CheckedMatmul::verify(&a, &b, c, Tolerance::PAPER);
        assert_eq!(checked.outcome(), CheckOutcome::Alarm);
    }

    #[test]
    fn nan_in_result_is_silent() {
        // A NaN in the output poisons the actual checksum: the comparator
        // cannot fire — exactly the silent class of the paper.
        let (a, b) = rand_pair(3);
        let mut c = a.matmul(&b);
        c[(0, 0)] = f64::NAN;
        let checked = CheckedMatmul::verify(&a, &b, c, Tolerance::PAPER);
        assert_eq!(checked.outcome(), CheckOutcome::NanSilent);
    }

    #[test]
    fn locates_and_corrects_single_error() {
        let (a, b) = rand_pair(4);
        let mut c = a.matmul(&b);
        let original = c[(2, 5)];
        c[(2, 5)] += 3.5;
        let loc = locate_single_error(&a, &b, &c, 1e-6).expect("should locate");
        assert_eq!((loc.row, loc.col), (2, 5));
        assert!((loc.delta - 3.5).abs() < 1e-9);
        correct_single_error(&mut c, loc);
        assert!((c[(2, 5)] - original).abs() < 1e-9);
    }

    #[test]
    fn location_fails_gracefully_on_double_error_in_different_rows() {
        let (a, b) = rand_pair(5);
        let mut c = a.matmul(&b);
        c[(1, 1)] += 1.0;
        c[(4, 2)] += 1.0;
        assert_eq!(locate_single_error(&a, &b, &c, 1e-6), None);
    }

    #[test]
    fn no_error_means_no_location() {
        let (a, b) = rand_pair(6);
        let c = a.matmul(&b);
        assert_eq!(locate_single_error(&a, &b, &c, 1e-6), None);
    }

    #[test]
    fn bf16_product_passes_with_appropriate_tolerance() {
        use fa_numerics::BF16;
        let a: Matrix<BF16> = Matrix::random_seeded(8, 8, ElementDist::default(), 7);
        let b: Matrix<BF16> = Matrix::random_seeded(8, 8, ElementDist::default(), 8);
        // BF16 accumulation error far exceeds 1e-6: the check needs a
        // precision-appropriate tolerance (demonstrates why the threshold
        // is an experimental knob — §IV-B).
        let checked = CheckedMatmul::compute(&a, &b, Tolerance::Absolute(1.0));
        assert_eq!(checked.outcome(), CheckOutcome::Pass);
    }

    #[test]
    #[should_panic(expected = "result row count mismatch")]
    fn verify_shape_mismatch_panics() {
        let (a, b) = rand_pair(9);
        let wrong = Matrix::<f64>::zeros(3, 7);
        let _ = CheckedMatmul::verify(&a, &b, wrong, Tolerance::PAPER);
    }
}
