//! ApproxABFT-style significance-thresholded checking.
//!
//! ApproxABFT (cited in §I of the paper) observes that neural-network
//! inference tolerates small numerical errors, so only *significant*
//! discrepancies should trigger recovery. This module implements the idea
//! on top of the classic matmul check: the residual is compared against a
//! significance threshold scaled to the magnitude of the computation, and
//! small residuals are classified as ignorable rather than alarmed.

use fa_tensor::{checksum::predicted_matmul_checksum, Matrix, Scalar};

/// Classification of a residual under significance thresholding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Significance {
    /// Residual below the rounding floor: no error present.
    Clean,
    /// Residual above rounding noise but below the significance
    /// threshold: an error exists but is too small to affect inference.
    Ignorable,
    /// Residual large enough to require recovery.
    Significant,
}

/// ApproxABFT-style checker for one matrix product.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ApproxChecker {
    /// Below this absolute residual the product is considered fault-free.
    pub noise_floor: f64,
    /// Relative significance threshold: residuals below
    /// `significance · |Σ C|` are [`Significance::Ignorable`].
    pub significance: f64,
}

impl Default for ApproxChecker {
    fn default() -> Self {
        ApproxChecker {
            noise_floor: 1e-6,
            significance: 1e-3,
        }
    }
}

impl ApproxChecker {
    /// Creates a checker with the given noise floor and significance level.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is negative or NaN.
    pub fn new(noise_floor: f64, significance: f64) -> Self {
        assert!(
            noise_floor >= 0.0 && significance >= 0.0,
            "thresholds must be non-negative"
        );
        ApproxChecker {
            noise_floor,
            significance,
        }
    }

    /// Classifies an externally produced `result` of `a·b`.
    ///
    /// NaN residuals (invalid arithmetic anywhere in the sum) classify as
    /// [`Significance::Significant`] — unlike a raw hardware comparator,
    /// ApproxABFT runs in software after the kernel and can test for NaN
    /// explicitly.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn classify<T: Scalar>(
        &self,
        a: &Matrix<T>,
        b: &Matrix<T>,
        result: &Matrix<T>,
    ) -> Significance {
        assert_eq!(result.rows(), a.rows(), "result row count mismatch");
        assert_eq!(result.cols(), b.cols(), "result column count mismatch");
        let predicted = predicted_matmul_checksum(a, b);
        let actual = result.sum_all();
        let residual = (predicted - actual).abs();
        if residual.is_nan() {
            return Significance::Significant;
        }
        if residual <= self.noise_floor {
            return Significance::Clean;
        }
        let scale = predicted.abs().max(actual.abs()).max(1.0);
        if residual <= self.significance * scale {
            Significance::Ignorable
        } else {
            Significance::Significant
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_tensor::random::ElementDist;

    fn product(seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        let a = Matrix::random_seeded(6, 6, ElementDist::default(), seed);
        let b = Matrix::random_seeded(6, 6, ElementDist::default(), seed + 1);
        let c = a.matmul(&b);
        (a, b, c)
    }

    #[test]
    fn clean_product_classifies_clean() {
        let (a, b, c) = product(21);
        assert_eq!(
            ApproxChecker::default().classify(&a, &b, &c),
            Significance::Clean
        );
    }

    #[test]
    fn tiny_error_is_ignorable() {
        let (a, b, mut c) = product(22);
        c[(0, 0)] += 1e-4; // above 1e-6 floor, below 1e-3·scale
        assert_eq!(
            ApproxChecker::default().classify(&a, &b, &c),
            Significance::Ignorable
        );
    }

    #[test]
    fn large_error_is_significant() {
        let (a, b, mut c) = product(23);
        c[(2, 3)] += 10.0;
        assert_eq!(
            ApproxChecker::default().classify(&a, &b, &c),
            Significance::Significant
        );
    }

    #[test]
    fn nan_is_significant_in_software_checker() {
        let (a, b, mut c) = product(24);
        c[(1, 1)] = f64::NAN;
        assert_eq!(
            ApproxChecker::default().classify(&a, &b, &c),
            Significance::Significant
        );
    }

    #[test]
    fn thresholds_are_respected() {
        let (a, b, mut c) = product(25);
        c[(0, 0)] += 0.5;
        // With a huge significance threshold even 0.5 is ignorable.
        let lax = ApproxChecker::new(1e-6, 10.0);
        assert_eq!(lax.classify(&a, &b, &c), Significance::Ignorable);
        // With a zero noise floor and zero significance all errors matter.
        let strict = ApproxChecker::new(0.0, 0.0);
        assert_eq!(strict.classify(&a, &b, &c), Significance::Significant);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_panics() {
        let _ = ApproxChecker::new(-1.0, 0.1);
    }
}
