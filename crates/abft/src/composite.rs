//! Composite checking: Flash-ABFT's checksum plus an extreme-value scan.
//!
//! The fault-injection results (EXPERIMENTS.md) show Flash-ABFT's
//! residual risk is concentrated in NaN/INF-poisoned outputs: the
//! magnitude comparator cannot fire on a NaN difference (the paper's
//! "Silent" category 3). An ATTNChecker-style scan is blind to numeric
//! corruption but catches exactly those invalid values — the two compose
//! into a detector with no NaN blind spot for the price of one extra
//! pass over the output (or, in hardware, an exponent-all-ones tap on
//! the writeback bus).

use crate::extreme::ExtremeChecker;
use fa_numerics::{CheckOutcome, Tolerance};
use fa_tensor::{Matrix, Scalar};

/// Verdict of the composite detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CompositeVerdict {
    /// Both checks clean.
    Clean,
    /// The checksum comparison fired.
    ChecksumAlarm,
    /// The extreme-value scan fired (NaN/INF/near-INF present).
    ExtremeAlarm,
    /// Both fired.
    BothAlarms,
}

impl CompositeVerdict {
    /// Whether anything fired.
    pub fn is_alarm(self) -> bool {
        !matches!(self, CompositeVerdict::Clean)
    }
}

/// Flash-ABFT checksum verification combined with an extreme-value scan.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CompositeChecker {
    /// Checksum comparison tolerance.
    pub tolerance: Tolerance,
    /// Extreme-value scanner configuration.
    pub extreme: ExtremeChecker,
}

impl Default for CompositeChecker {
    fn default() -> Self {
        CompositeChecker {
            tolerance: Tolerance::PAPER,
            extreme: ExtremeChecker::default(),
        }
    }
}

impl CompositeChecker {
    /// Creates a composite checker.
    pub fn new(tolerance: Tolerance, extreme: ExtremeChecker) -> Self {
        CompositeChecker { tolerance, extreme }
    }

    /// Verifies an output against a predicted checksum, with the extreme
    /// scan covering the comparator's NaN blind spot.
    pub fn verify<T: Scalar>(&self, predicted: f64, output: &Matrix<T>) -> CompositeVerdict {
        let actual = output.sum_all();
        let checksum_alarm = self.tolerance.check(predicted, actual) == CheckOutcome::Alarm;
        let extreme_alarm = self.extreme.any_extreme(output);
        match (checksum_alarm, extreme_alarm) {
            (false, false) => CompositeVerdict::Clean,
            (true, false) => CompositeVerdict::ChecksumAlarm,
            (false, true) => CompositeVerdict::ExtremeAlarm,
            (true, true) => CompositeVerdict::BothAlarms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_tensor::random::ElementDist;

    fn clean_output() -> (f64, Matrix<f64>) {
        let m = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 1);
        (m.sum_all(), m)
    }

    #[test]
    fn clean_output_passes_both() {
        let (predicted, output) = clean_output();
        let verdict = CompositeChecker::default().verify(predicted, &output);
        assert_eq!(verdict, CompositeVerdict::Clean);
        assert!(!verdict.is_alarm());
    }

    #[test]
    fn numeric_corruption_trips_checksum_only() {
        let (predicted, mut output) = clean_output();
        output[(3, 1)] += 0.5;
        let verdict = CompositeChecker::default().verify(predicted, &output);
        assert_eq!(verdict, CompositeVerdict::ChecksumAlarm);
        assert!(verdict.is_alarm());
    }

    #[test]
    fn nan_poisoning_is_caught_by_the_scan() {
        // THE case the checksum comparator cannot see: NaN difference.
        let (predicted, mut output) = clean_output();
        output[(0, 0)] = f64::NAN;
        let checker = CompositeChecker::default();
        // Checksum alone: NanSilent (no alarm).
        assert_eq!(
            checker.tolerance.check(predicted, output.sum_all()),
            CheckOutcome::NanSilent
        );
        // Composite: caught.
        let verdict = checker.verify(predicted, &output);
        assert_eq!(verdict, CompositeVerdict::ExtremeAlarm);
        assert!(verdict.is_alarm());
    }

    #[test]
    fn inf_with_numeric_shift_trips_both() {
        let (predicted, mut output) = clean_output();
        output[(1, 1)] = f64::INFINITY; // sum becomes inf: |inf - p| = inf > tau
        let verdict = CompositeChecker::default().verify(predicted, &output);
        assert_eq!(verdict, CompositeVerdict::BothAlarms);
    }

    #[test]
    fn composite_closes_the_silent_nan_class() {
        // Sweep: plant NaN at every position; the composite detector must
        // fire every time while the bare comparator never does.
        let (predicted, output) = clean_output();
        let checker = CompositeChecker::default();
        for r in 0..8 {
            for c in 0..4 {
                let mut bad = output.clone();
                bad[(r, c)] = f64::NAN;
                assert!(checker.verify(predicted, &bad).is_alarm(), "({r},{c})");
                assert_ne!(
                    checker.tolerance.check(predicted, bad.sum_all()),
                    CheckOutcome::Alarm
                );
            }
        }
    }
}
