//! The "traditional" two-step ABFT for attention — the baseline the paper
//! argues against.
//!
//! Prior ABFT treatments of attention (§I: "each matrix multiplication step
//! involving the query, key, and value matrices is verified separately")
//! verify:
//!
//! 1. the score product `P = Q·Kᵀ`;
//! 2. the output product `O = S·V`, where `S = softmax(P)`.
//!
//! The softmax between the two products is **not covered by either check**:
//! step 2 predicts its checksum from `S` as the softmax unit produced it,
//! so a fault inside the softmax corrupts both sides of the comparison
//! identically and goes undetected. Tests in this module and the
//! cross-crate integration suite demonstrate the gap — the motivation for
//! the fused Flash-ABFT checksum.

use crate::matmul::CheckedMatmul;
use fa_attention::AttentionConfig;
use fa_numerics::{CheckOutcome, Tolerance};
use fa_tensor::{Matrix, Scalar};

/// Where in the two-step pipeline a fault may be injected, for coverage
/// experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum InjectionPoint {
    /// Corrupt one element of the score matrix `P = Q·Kᵀ` *after* its
    /// check was computed (models a fault in the product datapath output
    /// register — covered by check 1 only if it lands before the check).
    Scores,
    /// Corrupt one element of the softmax output `S` (a fault inside the
    /// softmax unit — covered by **neither** per-matmul check).
    Softmax,
    /// Corrupt one element of the final output `O = S·V`.
    Output,
}

/// Result of running two-step checked attention.
#[derive(Clone)]
pub struct TwoStepReport<T> {
    /// The attention output.
    pub output: Matrix<T>,
    /// Outcome of the `Q·Kᵀ` check.
    pub score_check: CheckOutcome,
    /// Outcome of the `S·V` check.
    pub output_check: CheckOutcome,
}

impl<T: Scalar> std::fmt::Debug for TwoStepReport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoStepReport")
            .field("score_check", &self.score_check)
            .field("output_check", &self.output_check)
            .field("output", &self.output)
            .finish()
    }
}

impl<T> TwoStepReport<T> {
    /// Whether either of the two checks raised an alarm.
    pub fn any_alarm(&self) -> bool {
        self.score_check.is_alarm() || self.output_check.is_alarm()
    }
}

/// Computes attention in the traditional three-stage form with a separate
/// ABFT check on each matrix product, optionally injecting a fault.
///
/// The computation runs in f64 (this baseline is about *coverage*, not
/// precision). `inject` corrupts one element (adding `delta`) at the given
/// pipeline point before downstream stages consume it.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn checked_attention<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
    tolerance: Tolerance,
    inject: Option<(InjectionPoint, usize, usize, f64)>,
) -> TwoStepReport<T> {
    cfg.validate_shapes(q, k, v);
    let qf = q.to_f64().scale(cfg.scale());
    let kf = k.to_f64();
    let vf = v.to_f64();
    let kt = kf.transpose();

    // Stage 1: P = (scale·Q)·Kᵀ, checked.
    let mut scores = CheckedMatmul::compute(&qf, &kt, tolerance);
    let score_check = scores.outcome();
    if let Some((InjectionPoint::Scores, r, c, delta)) = inject {
        // Fault lands after the check read the output: classic ABFT
        // windows miss it; downstream softmax consumes the bad value.
        let m = scores.result().clone();
        let mut m2 = m;
        m2[(r, c)] += delta;
        scores = CheckedMatmul::verify(&qf, &kt, m2, tolerance);
        // NOTE: verify() re-checks, so this *re-detects* — callers who
        // want the missed-window behaviour read `score_check` captured
        // above. Both signals are reported.
    }

    // Stage 2: softmax (UNCHECKED in the traditional scheme).
    let mut smax = row_softmax(scores.result());
    if let Some((InjectionPoint::Softmax, r, c, delta)) = inject {
        smax[(r, c)] += delta;
    }

    // Stage 3: O = S·V, checked.
    let out_product = CheckedMatmul::compute(&smax, &vf, tolerance);
    let mut output = out_product.result().clone();
    let mut output_check = out_product.outcome();
    if let Some((InjectionPoint::Output, r, c, delta)) = inject {
        output[(r, c)] += delta;
        output_check = CheckedMatmul::verify(&smax, &vf, output.clone(), tolerance).outcome();
    }

    TwoStepReport {
        output: output.cast(),
        score_check,
        output_check,
    }
}

/// Numerically-stable row softmax over an f64 matrix.
fn row_softmax(scores: &Matrix<f64>) -> Matrix<f64> {
    let mut out = scores.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut denom = 0.0;
        for x in row.iter_mut() {
            *x = (*x - m).exp();
            denom += *x;
        }
        for x in row.iter_mut() {
            *x /= denom;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_attention::naive;
    use fa_tensor::random::ElementDist;

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random_seeded(n, d, ElementDist::default(), seed),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
        )
    }

    #[test]
    fn fault_free_run_matches_reference_and_passes() {
        let (q, k, v) = rand_qkv(12, 4, 11);
        let cfg = AttentionConfig::new(4);
        let report = checked_attention(&q, &k, &v, &cfg, Tolerance::Absolute(1e-9), None);
        assert!(!report.any_alarm());
        let reference = naive::attention(&q, &k, &v, &cfg);
        assert!(report.output.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn output_fault_is_detected_by_second_check() {
        let (q, k, v) = rand_qkv(8, 4, 12);
        let cfg = AttentionConfig::new(4);
        let report = checked_attention(
            &q,
            &k,
            &v,
            &cfg,
            Tolerance::PAPER,
            Some((InjectionPoint::Output, 2, 1, 0.05)),
        );
        assert!(report.output_check.is_alarm());
    }

    #[test]
    fn softmax_fault_escapes_both_checks() {
        // THE coverage gap: a fault inside softmax corrupts the output but
        // neither per-matmul check fires, because check 2's prediction is
        // derived from the already-corrupted S.
        let (q, k, v) = rand_qkv(8, 4, 13);
        let cfg = AttentionConfig::new(4);
        let clean = checked_attention(&q, &k, &v, &cfg, Tolerance::PAPER, None);
        let faulty = checked_attention(
            &q,
            &k,
            &v,
            &cfg,
            Tolerance::PAPER,
            Some((InjectionPoint::Softmax, 3, 2, 0.25)),
        );
        assert!(
            !faulty.any_alarm(),
            "two-step ABFT cannot see softmax faults"
        );
        // ...yet the output is definitely wrong:
        assert!(faulty.output.max_abs_diff(&clean.output) > 1e-3);
    }

    #[test]
    fn score_fault_before_check_is_detected() {
        // If the corruption happens during the product (modelled by
        // re-verifying after injection), check 1 sees it.
        let (q, k, v) = rand_qkv(8, 4, 14);
        let cfg = AttentionConfig::new(4);
        let qf = q.scale(cfg.scale());
        let kt = k.transpose();
        let mut p = qf.matmul(&kt);
        p[(1, 1)] += 0.5;
        let checked = CheckedMatmul::verify(&qf, &kt, p, Tolerance::PAPER);
        assert!(checked.outcome().is_alarm());
        let _ = v; // silence unused warning
    }

    #[test]
    fn report_any_alarm_logic() {
        let (q, k, v) = rand_qkv(6, 4, 15);
        let cfg = AttentionConfig::new(4);
        let r = checked_attention(&q, &k, &v, &cfg, Tolerance::Absolute(1e-12), None);
        // Even fault-free, an absurdly tight tolerance may alarm due to
        // rounding — which is precisely the false-positive regime the
        // threshold sweep explores. Here we only exercise the plumbing:
        assert_eq!(
            r.any_alarm(),
            r.score_check.is_alarm() || r.output_check.is_alarm()
        );
    }
}
