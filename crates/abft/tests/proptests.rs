//! Property-based tests for the classic ABFT substrate.

use fa_abft::approx::{ApproxChecker, Significance};
use fa_abft::cost::{flash2_kernel, flash_abft_overhead, two_step_overhead};
use fa_abft::extreme::ExtremeChecker;
use fa_abft::matmul::{correct_single_error, locate_single_error, CheckedMatmul};
use fa_numerics::{CheckOutcome, Tolerance};
use fa_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-4.0f64..4.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fault-free products always verify clean.
    #[test]
    fn clean_products_pass(a in matrix(5, 4), b in matrix(4, 6)) {
        let checked = CheckedMatmul::compute(&a, &b, Tolerance::Absolute(1e-8));
        prop_assert_eq!(checked.outcome(), CheckOutcome::Pass);
    }

    /// Any single corruption above the tolerance is detected, located at
    /// the right coordinates, and corrected back to the original value.
    #[test]
    fn single_corruption_detect_locate_correct(
        a in matrix(5, 4),
        b in matrix(4, 6),
        r in 0usize..5,
        c in 0usize..6,
        delta in prop_oneof![0.01f64..100.0, -100.0f64..-0.01],
    ) {
        let clean = a.matmul(&b);
        let mut corrupted = clean.clone();
        corrupted[(r, c)] += delta;

        // Detection.
        let checked = CheckedMatmul::verify(&a, &b, corrupted.clone(), Tolerance::Absolute(1e-6));
        prop_assert_eq!(checked.outcome(), CheckOutcome::Alarm);

        // Location and correction.
        let loc = locate_single_error(&a, &b, &corrupted, 1e-6).expect("locatable");
        prop_assert_eq!((loc.row, loc.col), (r, c));
        correct_single_error(&mut corrupted, loc);
        prop_assert!(corrupted.max_abs_diff(&clean) < 1e-9);
    }

    /// The approx checker's classes are ordered: growing a residual never
    /// moves it to a *less* severe class.
    #[test]
    fn approx_classes_monotone(
        a in matrix(4, 4),
        b in matrix(4, 4),
        small in 1e-5f64..1e-4,
        large in 1.0f64..100.0,
    ) {
        let checker = ApproxChecker::default();
        let clean = a.matmul(&b);
        let rank = |s: Significance| match s {
            Significance::Clean => 0,
            Significance::Ignorable => 1,
            Significance::Significant => 2,
        };
        let mut small_corrupt = clean.clone();
        small_corrupt[(0, 0)] += small;
        let mut large_corrupt = clean.clone();
        large_corrupt[(0, 0)] += large;
        let s1 = rank(checker.classify(&a, &b, &clean));
        let s2 = rank(checker.classify(&a, &b, &small_corrupt));
        let s3 = rank(checker.classify(&a, &b, &large_corrupt));
        prop_assert!(s1 <= s2 && s2 <= s3, "{s1} {s2} {s3}");
    }

    /// The extreme checker never fires on finite, moderate matrices and
    /// always fires once a NaN or Inf is planted.
    #[test]
    fn extreme_checker_exactness(
        m in matrix(4, 4),
        r in 0usize..4,
        c in 0usize..4,
        plant_nan in any::<bool>(),
    ) {
        let checker = ExtremeChecker::default();
        prop_assert!(!checker.any_extreme(&m));
        let mut bad = m.clone();
        bad[(r, c)] = if plant_nan { f64::NAN } else { f64::INFINITY };
        prop_assert!(checker.any_extreme(&bad));
        let findings = checker.scan(&bad);
        prop_assert_eq!(findings.len(), 1);
        prop_assert_eq!((findings[0].row, findings[0].col), (r, c));
    }

    /// Cost-model sanity across geometries: kernel ops dominate both
    /// checking schemes, and the fused overhead fraction stays below 5 %.
    #[test]
    fn cost_model_relations(n in 32u64..2048, d in 16u64..512) {
        let kernel = flash2_kernel(n, d);
        let fused = flash_abft_overhead(n, d);
        let two = two_step_overhead(n, d);
        prop_assert!(kernel.total() > fused.total());
        prop_assert!(kernel.total() > two.total());
        prop_assert!((fused.total() as f64) < 0.05 * kernel.total() as f64,
            "fused {} vs kernel {}", fused.total(), kernel.total());
    }
}
