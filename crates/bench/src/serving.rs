//! SLO-aware serving benchmarks: the step-driven scheduler under the
//! seeded bursty/heavy-tail load generator, measured three ways — the
//! numbers behind `BENCH_serving.json`.
//!
//! Three legs:
//!
//! * **clean** — undisturbed serving at the headline load: TTFT
//!   p50/p99, per-token p99, and goodput-under-SLO (decode tokens of
//!   requests that met both the TTFT and inter-token bounds);
//! * **fault_drill** — [`fa_fault::run_drill`] campaigns injecting
//!   value-side flips (online-alarmed, recovered bit-exact) and
//!   key-side flips (residual-coherent, caught by the autotuned
//!   scrubber) into live serving runs, certified against undisturbed
//!   golden twins;
//! * **preemption** — the same load under an arena-bytes bound that
//!   forces the pressure ladder (soft-tier bf16 demotion, then
//!   evict-and-requeue with recompute-on-resume), showing what the
//!   ladder costs in SLO terms.
//!
//! The scheduler is step-driven, so all latencies are native to step
//! units; each leg also measures its wall-clock per step and reports
//! both (`*_steps` and `*_ms`).

use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
use fa_attention::serve::{LoadGen, LoadSpec, Scheduler, ServeConfig, ServeSummary, SloSpec};
use fa_attention::{AttentionConfig, HeadTopology};
use fa_fault::{run_drill, DrillSpec, DrillStats};
use fa_tensor::{random::ElementDist, Matrix};
use std::time::Instant;

/// One serving leg: aggregate metrics in scheduler steps plus the
/// measured wall-clock cost per step that converts them to wall time.
#[derive(Clone, Copy, Debug)]
pub struct ServingLeg {
    /// Aggregate serving metrics (step units).
    pub summary: ServeSummary,
    /// Scheduler steps executed (load window + drain).
    pub steps_run: u64,
    /// Measured wall-clock milliseconds per scheduler step.
    pub ms_per_step: f64,
}

impl ServingLeg {
    /// TTFT p50 converted to milliseconds.
    pub fn ttft_p50_ms(&self) -> f64 {
        self.summary.ttft_p50_steps as f64 * self.ms_per_step
    }

    /// TTFT p99 converted to milliseconds.
    pub fn ttft_p99_ms(&self) -> f64 {
        self.summary.ttft_p99_steps as f64 * self.ms_per_step
    }

    /// p99 inter-token gap converted to milliseconds.
    pub fn per_token_p99_ms(&self) -> f64 {
        self.summary.per_token_p99_steps as f64 * self.ms_per_step
    }

    /// Fraction of finished decode tokens delivered by SLO-meeting
    /// requests (the paper-style goodput ratio, 0..=1).
    pub fn goodput_under_slo(&self) -> f64 {
        self.summary.goodput_tokens as f64 / self.summary.total_tokens.max(1) as f64
    }
}

/// The full serving benchmark: clean + preemption legs, the two
/// fault-drill campaigns, and the prefix-sharing sweep, under one SLO.
#[derive(Clone, Debug)]
pub struct ServingBenchReport {
    /// The SLO every leg is judged against.
    pub slo: SloSpec,
    /// Arrival steps in the load window.
    pub load_steps: usize,
    /// Drill trials per campaign.
    pub drill_trials: u64,
    /// Undisturbed serving at the headline load.
    pub clean: ServingLeg,
    /// Same load under an arena bound that forces the pressure ladder.
    pub preemption: ServingLeg,
    /// Value-side flip campaign (online alarm -> evict-and-requeue).
    pub value_drill: DrillStats,
    /// Key-side flip campaign (scrub finding -> repair in place).
    pub key_drill: DrillStats,
    /// Copy-on-write prefix sharing vs independent admission, and
    /// shared-block batched scoring vs per-reader GEMV decode.
    pub prefix_sharing: PrefixSharingBench,
    /// Speculative decode vs sequential checked decode across the
    /// α × γ grid.
    pub speculative: SpeculativeBench,
}

/// One α × γ point of the speculative-decode sweep. A window is γ
/// positions wide: position 0 carries the token the previous verify
/// pass already committed (a verifier always has exactly one such
/// token in flight — its sampled continuation — whose K/V append rides
/// the next window), and the γ−1 positions behind it are draft tokens
/// that accept independently with probability α. The engine scores all
/// γ positions in one batched pass, commits the head plus the accepted
/// draft prefix, and rolls the rejected tail back exactly; the
/// sequential twin delivers the *same* committed token stream one
/// checked `step_decode` at a time.
#[derive(Clone, Copy, Debug)]
pub struct SpeculativePoint {
    /// Speculative window width (positions scored per sequence per
    /// window: one committed head + γ−1 drafts).
    pub gamma: usize,
    /// Target per-draft acceptance rate α driving the seeded accept
    /// schedule over the γ−1 draft positions.
    pub acceptance_rate: f64,
    /// Realized draft acceptance: accepted drafts / drafted tokens
    /// (the committed head positions are excluded from both sides).
    pub measured_acceptance: f64,
    /// Tokens actually delivered (identical in both variants).
    pub delivered_tokens: usize,
    /// Delivered tokens/s through speculate + resolve windows.
    pub tokens_per_s: f64,
    /// Delivered tokens/s through per-token checked `step_decode`.
    pub sequential_tokens_per_s: f64,
    /// Analytic KV bytes streamed per speculative window step: the K/V
    /// panel is swept once for all γ window positions.
    pub bytes_per_step: f64,
    /// Analytic KV bytes streamed per sequential decode step — one
    /// panel sweep per token, so per *step* the cost matches the
    /// window's single sweep while adjudicating 1 token instead of γ.
    pub sequential_bytes_per_step: f64,
    /// Every accepted window position matched the sequential twin's
    /// output bitwise (the rollback-exactness contract).
    pub decode_bitwise_match: bool,
}

/// The speculative-decode sweep: geometry plus one point per α × γ.
#[derive(Clone, Debug)]
pub struct SpeculativeBench {
    /// Concurrent sequences per variant.
    pub batch: usize,
    /// Prompt tokens admitted per sequence before the timed windows.
    pub prefill_tokens: usize,
    /// Speculative windows timed per point.
    pub windows: usize,
    /// One measurement per (α, γ) pair.
    pub points: Vec<SpeculativePoint>,
}

/// Shared-prefix serving economics at one reader count `k`: one prompt
/// of `prefix + suffix` tokens per reader, admitted either through the
/// prefix registry (register once, `k` suffix admissions adopting the
/// prefix blocks) or as `k` independent full prompts, then decoded with
/// shared-block batched scoring on vs off (per-reader GEMV) over the
/// *same* shared cache.
#[derive(Clone, Copy, Debug)]
pub struct PrefixSharingPoint {
    /// Concurrent readers of the shared prefix.
    pub readers: usize,
    /// Wall ms to deliver `k` ready contexts via the registry.
    pub shared_prefill_ms: f64,
    /// Wall ms to deliver the same contexts as independent prompts.
    pub unshared_prefill_ms: f64,
    /// Delivered context tokens/s — both paths hand the decoder
    /// `k·(prefix+suffix)` tokens of ready context, so both are
    /// normalized by that count (the shared path *computes* only
    /// `prefix + k·suffix` of it).
    pub shared_prefill_tokens_per_s: f64,
    /// Same normalization for the independent path.
    pub unshared_prefill_tokens_per_s: f64,
    /// Live arena blocks after shared admission: `prefix_blocks +
    /// k·suffix_blocks` (the O(L + k·suffix) memory claim).
    pub shared_arena_blocks: usize,
    /// Live arena blocks after independent admission:
    /// `k·(prefix_blocks + suffix_blocks)`.
    pub unshared_arena_blocks: usize,
    /// Decode tokens/s with shared-block batched scoring (one K-panel
    /// sweep per physical block feeding all readers).
    pub shared_decode_tokens_per_s: f64,
    /// Decode tokens/s on an identical shared cache with batching
    /// disabled: one GEMV sweep per reader per block.
    pub gemv_decode_tokens_per_s: f64,
    /// Analytic KV bytes streamed per decode step under batching
    /// (shared blocks counted once).
    pub shared_bytes_per_step: f64,
    /// Analytic KV bytes streamed per decode step under per-reader
    /// GEMV (shared blocks counted once per reader).
    pub gemv_bytes_per_step: f64,
    /// Shared-block score tiles formed during the timed decode.
    pub shared_score_tiles: u64,
    /// Batched and GEMV decode produced bit-identical outputs (the
    /// sharing contract: batching is a scheduling choice, not a
    /// numerics choice).
    pub decode_bitwise_match: bool,
}

/// The prefix-sharing sweep: geometry plus one point per reader count.
#[derive(Clone, Debug)]
pub struct PrefixSharingBench {
    /// Shared-prefix length, tokens (block- and chunk-aligned).
    pub prefix_tokens: usize,
    /// Per-reader private suffix length, tokens.
    pub suffix_tokens: usize,
    /// KV block height used by the sweep's engines.
    pub block_rows: usize,
    /// Timed decode steps per point.
    pub decode_steps: usize,
    /// One measurement per reader count.
    pub points: Vec<PrefixSharingPoint>,
}

/// Headline serving topology: 4:2 GQA, head_dim 8, 4-row blocks —
/// the shape the scheduler unit tests and drills run at.
fn engine() -> DecodeBatch<f64> {
    let mut e = DecodeBatch::<f64>::with_policy(
        HeadTopology::gqa(4, 2, AttentionConfig::new(8)),
        4,
        KvLayout::HeadMajor,
        KvFormat::F64,
        EvictionPolicy::RetainAll,
    );
    e.set_prefill_chunk(4);
    e
}

/// Runs one serving leg: `load_steps` of generated arrivals, then a
/// bounded drain, timing the whole run to get ms/step.
fn run_leg(cfg: ServeConfig, slo: &SloSpec, load_steps: usize, seed: u64) -> ServingLeg {
    let mut sched = Scheduler::new(engine(), cfg);
    let mut gen = LoadGen::new(LoadSpec::default(), seed);
    let start = Instant::now();
    let mut steps_run = 0u64;
    for _ in 0..load_steps {
        let arrivals = gen.step();
        sched.step(&arrivals);
        steps_run += 1;
    }
    for _ in 0..4000 {
        let r = sched.step(&[]);
        steps_run += 1;
        if sched.queue_len() == 0
            && sched.active_decoding().is_empty()
            && r.prefill_tokens == 0
            && r.decode_tokens == 0
            && r.finished == 0
        {
            break;
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    ServingLeg {
        summary: sched.summary(slo),
        steps_run,
        ms_per_step: wall_ms / steps_run.max(1) as f64,
    }
}

/// Prefix-sharing sweep topology: 4:2 GQA at head_dim 128 (q rows 512
/// wide, kv rows 256 wide), 16-row blocks, 16-token prefill chunks — a
/// 512-token prefix is 32 full blocks, and at head_dim 128 each kv
/// head's prefix K panel is 512 KiB, so one decode step's per-reader
/// GEMV re-streams ~2 MiB × k from beyond L2 while the batched sweep
/// reads each physical panel once. Smaller head dims keep everything
/// L1/L2-resident and the bandwidth win drowns in bookkeeping — this
/// shape is the regime the shared-prefix optimization exists for.
const PS_BLOCK_ROWS: usize = 16;
const PS_HEAD_DIM: usize = 128;
const PS_QUERY_HEADS: usize = 4;
const PS_KV_HEADS: usize = 2;

fn ps_engine() -> DecodeBatch<f64> {
    let mut e = DecodeBatch::<f64>::with_policy(
        HeadTopology::gqa(
            PS_QUERY_HEADS,
            PS_KV_HEADS,
            AttentionConfig::new(PS_HEAD_DIM),
        ),
        PS_BLOCK_ROWS,
        KvLayout::HeadMajor,
        KvFormat::F64,
        EvictionPolicy::RetainAll,
    );
    e.set_prefill_chunk(PS_BLOCK_ROWS);
    e
}

/// `a` stacked on top of `b` (same width).
fn vcat(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
    assert_eq!(a.cols(), b.cols());
    Matrix::from_fn(a.rows() + b.rows(), a.cols(), |r, c| {
        if r < a.rows() {
            a[(r, c)]
        } else {
            b[(r - a.rows(), c)]
        }
    })
}

type Prompt = (Matrix<f64>, Matrix<f64>, Matrix<f64>);

fn ps_prompt(rows: usize, seed: u64) -> Prompt {
    let dist = ElementDist::default();
    let (qd, kd) = (PS_QUERY_HEADS * PS_HEAD_DIM, PS_KV_HEADS * PS_HEAD_DIM);
    (
        Matrix::random_seeded(rows, qd, dist, seed),
        Matrix::random_seeded(rows, kd, dist, seed + 1),
        Matrix::random_seeded(rows, kd, dist, seed + 2),
    )
}

/// Registers the prefix once and admits `k` suffix readers through it,
/// draining chunked admission; returns the ready sequence ids.
fn ps_admit_shared(e: &mut DecodeBatch<f64>, prefix: &Prompt, suffixes: &[Prompt]) -> Vec<usize> {
    let id = e.register_prefix(&prefix.0, &prefix.1, &prefix.2);
    let seqs: Vec<usize> = suffixes
        .iter()
        .map(|(q, k, v)| e.enqueue_shared(id, q, k, v))
        .collect();
    while e.prefill_step() > 0 {}
    for &s in &seqs {
        e.take_admitted(s).expect("shared reader admitted");
    }
    seqs
}

/// Admits `k` independent full prompts (prefix‖suffix), draining
/// chunked admission; returns the ready sequence ids.
fn ps_admit_unshared(e: &mut DecodeBatch<f64>, prompts: &[Prompt]) -> Vec<usize> {
    let seqs: Vec<usize> = prompts.iter().map(|(q, k, v)| e.enqueue(q, k, v)).collect();
    while e.prefill_step() > 0 {}
    for &s in &seqs {
        e.take_admitted(s).expect("independent prompt admitted");
    }
    seqs
}

/// Decodes `steps` tokens for every sequence, returning the flattened
/// output rows for bitwise comparison across scoring modes.
fn ps_decode(e: &mut DecodeBatch<f64>, seqs: &[usize], steps: &[Prompt]) -> Vec<Vec<f64>> {
    let mut outs = Vec::with_capacity(seqs.len() * steps.len());
    for (q, k, v) in steps {
        for o in e.step_decode(seqs, q, k, v) {
            outs.push(o.output);
        }
    }
    outs
}

fn measure_prefix_sharing_point(
    prefix: &Prompt,
    readers: usize,
    suffix_tokens: usize,
    decode_steps: usize,
    reps: usize,
) -> PrefixSharingPoint {
    let prefix_tokens = prefix.0.rows();
    let suffixes: Vec<Prompt> = (0..readers)
        .map(|i| ps_prompt(suffix_tokens, 0x9100 + 16 * i as u64))
        .collect();
    let fulls: Vec<Prompt> = suffixes
        .iter()
        .map(|(q, k, v)| (vcat(&prefix.0, q), vcat(&prefix.1, k), vcat(&prefix.2, v)))
        .collect();
    let steps: Vec<Prompt> = (0..decode_steps)
        .map(|t| ps_prompt(readers, 0xD000 + 16 * t as u64))
        .collect();

    let mut shared_prefill_ms = f64::INFINITY;
    let mut unshared_prefill_ms = f64::INFINITY;
    let mut shared_decode_ms = f64::INFINITY;
    let mut gemv_decode_ms = f64::INFINITY;
    let mut shared_arena_blocks = 0;
    let mut unshared_arena_blocks = 0;
    let mut shared_score_tiles = 0;
    let mut decode_bitwise_match = true;
    let mut first_outs: Option<Vec<Vec<f64>>> = None;
    for _ in 0..reps {
        // Registry path: register once, k suffix admissions, then the
        // batched-scoring decode on the shared cache.
        let mut e = ps_engine();
        let t0 = Instant::now();
        let seqs = ps_admit_shared(&mut e, prefix, &suffixes);
        shared_prefill_ms = shared_prefill_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        shared_arena_blocks = e.cache().live_unique_blocks();
        let tiles0 = e.shared_score_tiles();
        let t1 = Instant::now();
        let outs = ps_decode(&mut e, &seqs, &steps);
        shared_decode_ms = shared_decode_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        shared_score_tiles = e.shared_score_tiles() - tiles0;

        // GEMV twin: the identical shared cache, batching disabled —
        // isolates the scoring kernel from the memory layout.
        let mut g = ps_engine();
        g.set_shared_scoring(false);
        let gseqs = ps_admit_shared(&mut g, prefix, &suffixes);
        let t2 = Instant::now();
        let gouts = ps_decode(&mut g, &gseqs, &steps);
        gemv_decode_ms = gemv_decode_ms.min(t2.elapsed().as_secs_f64() * 1e3);

        // Independent path: k full prompts, no registry.
        let mut u = ps_engine();
        let t3 = Instant::now();
        ps_admit_unshared(&mut u, &fulls);
        unshared_prefill_ms = unshared_prefill_ms.min(t3.elapsed().as_secs_f64() * 1e3);
        unshared_arena_blocks = u.cache().live_unique_blocks();

        decode_bitwise_match &= outs == gouts;
        if let Some(first) = &first_outs {
            decode_bitwise_match &= *first == outs;
        } else {
            first_outs = Some(outs);
        }
    }

    // Analytic streamed-KV accounting, exact per step: after the step's
    // append every reader sees prefix + suffix + t + 1 rows. Batching
    // streams each shared physical row once; GEMV streams it per
    // reader. Private suffix rows cost k-fold either way.
    let row_bytes = (2 * PS_KV_HEADS * PS_HEAD_DIM * std::mem::size_of::<f64>()) as f64;
    let (mut shared_bytes, mut gemv_bytes) = (0.0, 0.0);
    for t in 0..decode_steps {
        let private = (suffix_tokens + t + 1) as f64;
        shared_bytes += row_bytes * (prefix_tokens as f64 + readers as f64 * private);
        gemv_bytes += row_bytes * readers as f64 * (prefix_tokens as f64 + private);
    }
    let delivered = (readers * (prefix_tokens + suffix_tokens)) as f64;
    let decoded = (readers * decode_steps) as f64;
    PrefixSharingPoint {
        readers,
        shared_prefill_ms,
        unshared_prefill_ms,
        shared_prefill_tokens_per_s: delivered / shared_prefill_ms * 1e3,
        unshared_prefill_tokens_per_s: delivered / unshared_prefill_ms * 1e3,
        shared_arena_blocks,
        unshared_arena_blocks,
        shared_decode_tokens_per_s: decoded / shared_decode_ms * 1e3,
        gemv_decode_tokens_per_s: decoded / gemv_decode_ms * 1e3,
        shared_bytes_per_step: shared_bytes / decode_steps as f64,
        gemv_bytes_per_step: gemv_bytes / decode_steps as f64,
        shared_score_tiles,
        decode_bitwise_match,
    }
}

/// Runs the prefix-sharing sweep at k ∈ {4, 16, 32} readers.
fn measure_prefix_sharing(quick: bool) -> PrefixSharingBench {
    // Full runs use the headline 512-token prefix (32 full blocks);
    // quick mode shrinks it so the k=32 independent baseline stays CI
    // cheap. Both keep prefix block- and chunk-aligned (no CoW tail:
    // this sweep measures sharing, the CoW paths are property-tested).
    let (prefix_tokens, decode_steps, reps) = if quick { (128, 4, 2) } else { (512, 8, 3) };
    let suffix_tokens = PS_BLOCK_ROWS;
    let prefix = ps_prompt(prefix_tokens, 0x8000);
    let points = [4usize, 16, 32]
        .iter()
        .map(|&k| measure_prefix_sharing_point(&prefix, k, suffix_tokens, decode_steps, reps))
        .collect();
    PrefixSharingBench {
        prefix_tokens,
        suffix_tokens,
        block_rows: PS_BLOCK_ROWS,
        decode_steps,
        points,
    }
}

/// Speculative sweep batch size — the acceptance-criterion shape.
const SP_BATCH: usize = 32;

/// Speculative sweep topology. A window amortizes the *per-step* costs
/// of checked decode — the K/V panel sweep, per-block claim/check
/// bookkeeping, and the fused verdict — across its γ draft positions:
/// one panel stream and one verdict adjudicate γ candidates where the
/// sequential twin pays them once per accepted token. What a window
/// cannot amortize is per-(query, row) score work — bit-identity pins
/// every score to the order-exact scalar `dot` chain, and the window
/// evaluates γ/α more of those chains than the twin. The sweep
/// therefore runs the shape where the amortized per-step costs
/// dominate: head_dim 128 (widest rows, so panel traffic is the
/// per-row cost), one query head per kv head (no extra member dots
/// per streamed row), and a few-hundred-token context. GQA
/// bit-exactness is pinned by the proptests, not measured here.
const SP_HEADS: usize = 1;
const SP_HEAD_DIM: usize = 128;
const SP_BLOCK_ROWS: usize = 16;

/// Per-sequence geometry of one speculative sweep.
#[derive(Clone, Copy)]
struct SpShape {
    query_heads: usize,
    kv_heads: usize,
    head_dim: usize,
    block_rows: usize,
    prefill_tokens: usize,
}

impl SpShape {
    fn q_dim(&self) -> usize {
        self.query_heads * self.head_dim
    }

    fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim
    }
}

/// splitmix64: the deterministic coin behind the accept schedule.
fn sp_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded accepted-prefix length for one (sequence, window): `⌊α·γ⌋`
/// plus a coin on the fractional part, so the realized acceptance
/// converges to α without ever exceeding γ.
fn sp_accept(alpha: f64, gamma: usize, seq: usize, window: usize) -> usize {
    let target = alpha * gamma as f64;
    let base = target.floor() as usize;
    let z = sp_mix(0x5bec_0000_0000_0000 ^ (seq as u64) << 20 ^ window as u64);
    let coin = (z >> 11) as f64 / (1u64 << 53) as f64;
    (base + usize::from(coin < target - base as f64)).min(gamma)
}

/// Seeded row block for the speculative sweep's token streams.
fn sp_rows(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    Matrix::random_seeded(rows, cols, ElementDist::default(), seed)
}

/// Admits `SP_BATCH` seeded prompts on a fresh sweep-shape engine,
/// draining chunked prefill; returns the engine plus ready ids. The
/// result is cloned for every timed run, so prefill cost is paid once
/// per sweep.
fn sp_admit(shape: &SpShape) -> (DecodeBatch<f64>, Vec<usize>) {
    let mut e = DecodeBatch::<f64>::with_policy(
        HeadTopology::gqa(
            shape.query_heads,
            shape.kv_heads,
            AttentionConfig::new(shape.head_dim),
        ),
        shape.block_rows,
        KvLayout::HeadMajor,
        KvFormat::F64,
        EvictionPolicy::RetainAll,
    );
    e.set_prefill_chunk(shape.block_rows);
    let ids: Vec<usize> = (0..SP_BATCH)
        .map(|i| {
            let s = 0xA000 + 64 * i as u64;
            e.enqueue(
                &sp_rows(shape.prefill_tokens, shape.q_dim(), s),
                &sp_rows(shape.prefill_tokens, shape.kv_dim(), s + 1),
                &sp_rows(shape.prefill_tokens, shape.kv_dim(), s + 2),
            )
        })
        .collect();
    while e.prefill_step() > 0 {}
    for &s in &ids {
        e.take_admitted(s)
            .expect("speculative bench prompt admitted");
    }
    (e, ids)
}

/// Measures one α × γ point: precomputes the accept schedule and every
/// draft/step row, then times the speculative window loop and the
/// sequential checked twin over fresh engines, interleaving the
/// variants round-robin across reps, and bit-compares the delivered
/// streams.
fn measure_speculative_point(
    alpha: f64,
    gamma: usize,
    shape: &SpShape,
    base: &DecodeBatch<f64>,
    ids: &[usize],
    windows: usize,
    reps: usize,
) -> SpeculativePoint {
    let (qd, kd) = (shape.q_dim(), shape.kv_dim());
    // Accept schedule + per-window draft matrices, fixed across reps
    // and variants. Position 0 of every window is the committed head
    // (the token the previous verify pass sampled — it cannot reject,
    // so every window delivers at least one token), and α drives the
    // γ−1 draft positions behind it. Accepted position t of sequence i
    // carries the true stream row for its global token index; rejected
    // positions carry rows from a disjoint seed space (they must not
    // collide with any future accepted token).
    let mut accepts: Vec<Vec<usize>> = Vec::with_capacity(windows);
    let mut spec_wins: Vec<Prompt> = Vec::with_capacity(windows);
    let mut seq_steps: Vec<Vec<(Vec<usize>, Prompt)>> = Vec::with_capacity(windows);
    let mut delivered_before = vec![0usize; SP_BATCH];
    let token_seed =
        |i: usize, n: usize, lane: u64| 0xB000_0000 + 4096 * i as u64 + 8 * n as u64 + lane;
    let reject_seed = |i: usize, w: usize, t: usize, lane: u64| {
        0xBAD_0000_0000 + 65536 * i as u64 + 256 * w as u64 + 8 * t as u64 + lane
    };
    for w in 0..windows {
        let acc: Vec<usize> = (0..SP_BATCH)
            .map(|i| 1 + sp_accept(alpha, gamma - 1, i, w))
            .collect();
        let n = SP_BATCH * gamma;
        let (mut q, mut k, mut v) = (
            Matrix::zeros(n, qd),
            Matrix::zeros(n, kd),
            Matrix::zeros(n, kd),
        );
        let mut steps: Vec<(Vec<usize>, Prompt)> = Vec::new();
        for t in 0..gamma {
            let live: Vec<usize> = (0..SP_BATCH).filter(|&i| acc[i] > t).collect();
            let (mut sq, mut sk, mut sv) = (
                Matrix::zeros(live.len(), qd),
                Matrix::zeros(live.len(), kd),
                Matrix::zeros(live.len(), kd),
            );
            for (row, &i) in live.iter().enumerate() {
                let tok = delivered_before[i] + t;
                for (m, sm, cols, lane) in [
                    (&mut q, &mut sq, qd, 0u64),
                    (&mut k, &mut sk, kd, 1),
                    (&mut v, &mut sv, kd, 2),
                ] {
                    let r = sp_rows(1, cols, token_seed(i, tok, lane));
                    for c in 0..cols {
                        m[(i * gamma + t, c)] = r[(0, c)];
                        sm[(row, c)] = r[(0, c)];
                    }
                }
            }
            for i in (0..SP_BATCH).filter(|&i| acc[i] <= t) {
                for (m, cols, lane) in [(&mut q, qd, 0u64), (&mut k, kd, 1), (&mut v, kd, 2)] {
                    let r = sp_rows(1, cols, reject_seed(i, w, t, lane));
                    for c in 0..cols {
                        m[(i * gamma + t, c)] = r[(0, c)];
                    }
                }
            }
            if !live.is_empty() {
                steps.push((live, (sq, sk, sv)));
            }
        }
        for i in 0..SP_BATCH {
            delivered_before[i] += acc[i];
        }
        accepts.push(acc);
        spec_wins.push((q, k, v));
        seq_steps.push(steps);
    }
    let delivered_tokens: usize = accepts.iter().flatten().sum();
    // Draft acceptance over the γ−1 draftable positions: the committed
    // heads (one per sequence per window) come off both sides.
    let heads = windows * SP_BATCH;
    let drafted = heads * (gamma - 1);

    // Noise handling for a shared 1-core host: a scheduling spike that
    // lands mid-timing should only poison the window it hit, not the
    // whole variant. Each window (and its sequential twin's token
    // steps) is timed on its own, the per-window minimum is taken
    // across reps, and the variant's time is the sum of those minima.
    // Both variants get identical treatment — interleaved within every
    // rep, alternating which runs first so neither inherits the
    // other's cache/allocator residue asymmetrically.
    let mut spec_win_ms = vec![f64::INFINITY; windows];
    let mut seq_win_ms = vec![f64::INFINITY; windows];
    let mut decode_bitwise_match = true;

    // State-neutral warmup, identical for both variants: one
    // speculate + full rollback touches the allocator pools and
    // cache lines the timed windows will, commits nothing, and
    // keeps the post-clone cold window out of both measurements.
    let warm = |eng: &mut DecodeBatch<f64>| {
        let (q0, k0, v0) = &spec_wins[0];
        eng.speculate(ids, q0, k0, v0, gamma);
        eng.resolve_speculation(&vec![0; SP_BATCH]);
    };

    // Speculative variant: one batched window pass + prefix resolve
    // per window.
    let run_spec = |win_ms: &mut [f64]| -> Vec<Vec<f64>> {
        let mut e = base.clone();
        warm(&mut e);
        let mut spec_outs: Vec<Vec<f64>> = Vec::new();
        for w in 0..windows {
            let (q, k, v) = &spec_wins[w];
            let t0 = Instant::now();
            let outs = e.speculate(ids, q, k, v, gamma);
            std::hint::black_box(e.resolve_speculation(&accepts[w]));
            win_ms[w] = win_ms[w].min(t0.elapsed().as_secs_f64() * 1e3);
            for t in 0..gamma {
                for (i, o) in outs.iter().enumerate() {
                    if accepts[w][i] > t {
                        spec_outs.push(o[t].output.clone());
                    }
                }
            }
        }
        spec_outs
    };

    // Sequential checked twin: the same accepted stream, one
    // verdict-carrying step_decode per token.
    let run_seq = |win_ms: &mut [f64]| -> Vec<Vec<f64>> {
        let mut g = base.clone();
        warm(&mut g);
        let mut seq_outs: Vec<Vec<f64>> = Vec::new();
        for (w, steps) in seq_steps.iter().enumerate() {
            let live_ids: Vec<Vec<usize>> = steps
                .iter()
                .map(|(live, _)| live.iter().map(|&i| ids[i]).collect())
                .collect();
            let t1 = Instant::now();
            let outs: Vec<_> = steps
                .iter()
                .zip(&live_ids)
                .map(|((_, (q, k, v)), lids)| g.step_decode(lids, q, k, v))
                .collect();
            win_ms[w] = win_ms[w].min(t1.elapsed().as_secs_f64() * 1e3);
            for step in outs {
                for o in step {
                    seq_outs.push(o.output);
                }
            }
        }
        seq_outs
    };

    for rep in 0..reps {
        let (spec_outs, seq_outs) = if rep % 2 == 0 {
            let s = run_spec(&mut spec_win_ms);
            (s, run_seq(&mut seq_win_ms))
        } else {
            let q = run_seq(&mut seq_win_ms);
            (run_spec(&mut spec_win_ms), q)
        };
        if rep == 0 {
            decode_bitwise_match = spec_outs == seq_outs;
        }
    }
    let spec_ms: f64 = spec_win_ms.iter().sum();
    let seq_ms: f64 = seq_win_ms.iter().sum();

    // Analytic streamed-KV accounting: one speculative window sweeps
    // each sequence's K/V panel once (through its in-window tail) for
    // all γ positions. The baseline it replaces is γ full-batch
    // sequential steps, each sweeping the same panel for one token —
    // so per *step* the traffic is unchanged while the window
    // adjudicates γ candidates on its single sweep.
    let row_bytes = (2 * kd * std::mem::size_of::<f64>()) as f64;
    let (mut spec_bytes, mut seq_bytes) = (0.0, 0.0);
    let mut len = vec![shape.prefill_tokens; SP_BATCH];
    for acc in &accepts {
        for &l in &len {
            spec_bytes += row_bytes * (l + gamma) as f64;
            for t in 0..gamma {
                seq_bytes += row_bytes * (l + t + 1) as f64;
            }
        }
        for (l, &a) in len.iter_mut().zip(acc) {
            *l += a;
        }
    }
    SpeculativePoint {
        gamma,
        acceptance_rate: alpha,
        measured_acceptance: (delivered_tokens - heads) as f64 / drafted as f64,
        delivered_tokens,
        tokens_per_s: delivered_tokens as f64 / spec_ms * 1e3,
        sequential_tokens_per_s: delivered_tokens as f64 / seq_ms * 1e3,
        bytes_per_step: spec_bytes / windows as f64,
        sequential_bytes_per_step: seq_bytes / (windows * gamma) as f64,
        decode_bitwise_match,
    }
}

/// Runs the speculative sweep over α ∈ {0.3, 0.6, 0.9} × γ ∈ {2, 4, 8}
/// at batch 32. Full runs use a 256-token context (the batch's K/V
/// panels make the panel sweep the dominant per-step cost without
/// drowning the run in scalar score chains) and take the min over
/// enough reps to ride out scheduler noise on a shared core; quick
/// mode shrinks the context, window count, and reps to stay CI-cheap
/// (the structural claims still hold there, the win just shrinks).
fn measure_speculative(quick: bool) -> SpeculativeBench {
    let (prefill_tokens, windows, reps) = if quick { (128, 4, 2) } else { (256, 12, 13) };
    let shape = SpShape {
        query_heads: SP_HEADS,
        kv_heads: SP_HEADS,
        head_dim: SP_HEAD_DIM,
        block_rows: SP_BLOCK_ROWS,
        prefill_tokens,
    };
    let (base, ids) = sp_admit(&shape);
    let mut points = Vec::new();
    for &gamma in &[2usize, 4, 8] {
        for &alpha in &[0.3f64, 0.6, 0.9] {
            points.push(measure_speculative_point(
                alpha, gamma, &shape, &base, &ids, windows, reps,
            ));
        }
    }
    SpeculativeBench {
        batch: SP_BATCH,
        prefill_tokens,
        windows,
        points,
    }
}

/// Runs the serving benchmark. `quick` shrinks the load window and
/// drill trial counts for CI smoke runs.
pub fn measure(quick: bool) -> ServingBenchReport {
    let (load_steps, drill_trials) = if quick { (40, 6u64) } else { (160, 24u64) };
    let slo = SloSpec {
        ttft_steps: 16,
        per_token_steps: 6,
    };
    let base_cfg = ServeConfig {
        scrub_slo_steps: Some(4),
        ..ServeConfig::default()
    };
    let clean = run_leg(base_cfg, &slo, load_steps, 0xC1EA);

    // Pressure leg: bound the arena at 8 KiB of live KV (8 native
    // blocks at this shape) so the ladder fires — demote first, then
    // evict-and-requeue — while the same load replays (same seed).
    let pressured = ServeConfig {
        max_kv_bytes: Some(8 * 1024),
        ..base_cfg
    };
    let preemption = run_leg(pressured, &slo, load_steps, 0xC1EA);

    let drill = |key_side: bool, seed: u64| {
        run_drill(&DrillSpec::new(drill_trials, seed).with_injections(1, key_side))
    };
    let value_drill = drill(false, 0xD211);
    let key_drill = drill(true, 0xD213);
    let prefix_sharing = measure_prefix_sharing(quick);
    let speculative = measure_speculative(quick);

    ServingBenchReport {
        slo,
        load_steps,
        drill_trials,
        clean,
        preemption,
        value_drill,
        key_drill,
        prefix_sharing,
        speculative,
    }
}

fn leg_json(leg: &ServingLeg) -> String {
    let s = &leg.summary;
    format!(
        "{{\n      \"steps_run\": {}, \"ms_per_step\": {:.6},\n      \
         \"submitted\": {}, \"finished\": {}, \"shed\": {},\n      \
         \"ttft_p50_steps\": {}, \"ttft_p99_steps\": {}, \"per_token_p99_steps\": {},\n      \
         \"ttft_p50_ms\": {:.4}, \"ttft_p99_ms\": {:.4}, \"per_token_p99_ms\": {:.4},\n      \
         \"slo_met\": {}, \"goodput_tokens\": {}, \"total_tokens\": {}, \
         \"goodput_under_slo\": {:.4},\n      \
         \"demotions\": {}, \"preemptions\": {}, \"quarantines\": {}\n    }}",
        leg.steps_run,
        leg.ms_per_step,
        s.submitted,
        s.finished,
        s.shed,
        s.ttft_p50_steps,
        s.ttft_p99_steps,
        s.per_token_p99_steps,
        leg.ttft_p50_ms(),
        leg.ttft_p99_ms(),
        leg.per_token_p99_ms(),
        s.slo_met,
        s.goodput_tokens,
        s.total_tokens,
        leg.goodput_under_slo(),
        s.demotions,
        s.preemptions,
        s.quarantines,
    )
}

fn drill_json(st: &DrillStats) -> String {
    format!(
        "{{\n      \"trials\": {}, \"drained\": {}, \"injections_landed\": {},\n      \
         \"online_alarms\": {}, \"scrub_findings\": {}, \"repaired_blocks\": {}, \
         \"unrecoverable_blocks\": {},\n      \
         \"demotions\": {}, \"preemptions\": {}, \"quarantines\": {},\n      \
         \"finished_both\": {}, \"shed_subject\": {},\n      \
         \"tokens_compared\": {}, \"tokens_divergent\": {}, \"divergent_requests\": {},\n      \
         \"quarantined_requests\": {}, \"recovered_requests\": {},\n      \
         \"detection_pct\": {:.2}, \"recovery_pct\": {:.2}, \"token_fidelity_pct\": {:.2}\n    }}",
        st.trials,
        st.drained_trials,
        st.injections_landed,
        st.online_alarms,
        st.scrub_findings,
        st.repaired_blocks,
        st.unrecoverable_blocks,
        st.demotions,
        st.preemptions,
        st.quarantines,
        st.finished_both,
        st.shed_subject,
        st.tokens_compared,
        st.tokens_divergent,
        st.divergent_requests,
        st.quarantined_requests,
        st.recovered_requests,
        st.detection_pct(),
        st.recovery_pct(),
        st.token_fidelity_pct(),
    )
}

fn prefix_sharing_json(ps: &PrefixSharingBench) -> String {
    let points: Vec<String> = ps
        .points
        .iter()
        .map(|p| {
            format!(
                "      {{ \"readers\": {}, \"shared_prefill_ms\": {:.3}, \
                 \"unshared_prefill_ms\": {:.3},\n        \
                 \"shared_prefill_tokens_per_s\": {:.1}, \
                 \"unshared_prefill_tokens_per_s\": {:.1},\n        \
                 \"shared_arena_blocks\": {}, \"unshared_arena_blocks\": {},\n        \
                 \"shared_decode_tokens_per_s\": {:.1}, \
                 \"gemv_decode_tokens_per_s\": {:.1},\n        \
                 \"shared_bytes_per_step\": {:.0}, \"gemv_bytes_per_step\": {:.0},\n        \
                 \"shared_score_tiles\": {}, \"decode_bitwise_match\": {} }}",
                p.readers,
                p.shared_prefill_ms,
                p.unshared_prefill_ms,
                p.shared_prefill_tokens_per_s,
                p.unshared_prefill_tokens_per_s,
                p.shared_arena_blocks,
                p.unshared_arena_blocks,
                p.shared_decode_tokens_per_s,
                p.gemv_decode_tokens_per_s,
                p.shared_bytes_per_step,
                p.gemv_bytes_per_step,
                p.shared_score_tiles,
                p.decode_bitwise_match,
            )
        })
        .collect();
    format!(
        "{{\n    \"prefix_tokens\": {}, \"suffix_tokens\": {}, \"block_rows\": {}, \
         \"decode_steps\": {},\n    \"points\": [\n{}\n    ]\n  }}",
        ps.prefix_tokens,
        ps.suffix_tokens,
        ps.block_rows,
        ps.decode_steps,
        points.join(",\n"),
    )
}

fn speculative_json(sp: &SpeculativeBench) -> String {
    let points: Vec<String> = sp
        .points
        .iter()
        .map(|p| {
            format!(
                "      {{ \"gamma\": {}, \"acceptance_rate\": {:.2}, \
                 \"measured_acceptance\": {:.4},\n        \
                 \"delivered_tokens\": {}, \"tokens_per_s\": {:.1}, \
                 \"sequential_tokens_per_s\": {:.1},\n        \
                 \"bytes_per_step\": {:.0}, \"sequential_bytes_per_step\": {:.0}, \
                 \"decode_bitwise_match\": {} }}",
                p.gamma,
                p.acceptance_rate,
                p.measured_acceptance,
                p.delivered_tokens,
                p.tokens_per_s,
                p.sequential_tokens_per_s,
                p.bytes_per_step,
                p.sequential_bytes_per_step,
                p.decode_bitwise_match,
            )
        })
        .collect();
    format!(
        "{{\n    \"batch\": {}, \"prefill_tokens\": {}, \"windows\": {},\n    \
         \"points\": [\n{}\n    ]\n  }}",
        sp.batch,
        sp.prefill_tokens,
        sp.windows,
        points.join(",\n"),
    )
}

impl ServingBenchReport {
    /// Serializes the report for `BENCH_serving.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"serving-bench/v1\",\n  \
             \"slo\": {{ \"ttft_steps\": {}, \"per_token_steps\": {} }},\n  \
             \"load_steps\": {},\n  \
             \"clean\": {},\n  \
             \"preemption\": {},\n  \
             \"fault_drill\": {{\n    \"trials\": {},\n    \"value\": {},\n    \"key\": {}\n  }},\n  \
             \"prefix_sharing\": {},\n  \
             \"speculative\": {}\n}}\n",
            self.slo.ttft_steps,
            self.slo.per_token_steps,
            self.load_steps,
            leg_json(&self.clean),
            leg_json(&self.preemption),
            self.drill_trials,
            drill_json(&self.value_drill),
            drill_json(&self.key_drill),
            prefix_sharing_json(&self.prefix_sharing),
            speculative_json(&self.speculative),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_covers_all_three_legs_and_required_keys() {
        let report = measure(true);

        // Clean leg serves and finishes load under the SLO.
        let c = &report.clean.summary;
        assert!(c.finished > 0, "clean leg must finish requests");
        assert_eq!(c.quarantines, 0, "no corruption in the clean leg");
        assert_eq!(c.preemptions, 0, "no pressure in the clean leg");
        assert!(report.clean.ms_per_step > 0.0);
        let g = report.clean.goodput_under_slo();
        assert!((0.0..=1.0).contains(&g));

        // Pressure leg actually exercises the ladder.
        let p = &report.preemption.summary;
        assert!(
            p.demotions + p.preemptions > 0,
            "the 8 KiB bound must force the pressure ladder"
        );
        assert!(p.finished > 0, "pressured serving still finishes requests");

        // Drills: value flips recover bit-exact; key flips keep fidelity.
        assert!(report.value_drill.injections_landed > 0);
        assert_eq!(report.value_drill.tokens_divergent, 0);
        assert!(report.key_drill.injections_landed > 0);
        assert!(report.key_drill.token_fidelity_pct() > 90.0);

        // The JSON carries every key CI greps for.
        let json = report.to_json();
        for key in [
            "ttft_p50_ms",
            "ttft_p99_ms",
            "per_token_p99_ms",
            "goodput_under_slo",
            "fault_drill",
            "preemption",
            "prefix_sharing",
            "speculative",
            "gamma",
            "acceptance_rate",
            "tokens_per_s",
            "bytes_per_step",
            "decode_bitwise_match",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing key {key}");
        }
    }

    #[test]
    fn speculative_sweep_holds_structural_invariants() {
        let sp = measure_speculative(true);
        assert_eq!(sp.batch, 32, "the acceptance criterion is a batch-32 shape");
        assert_eq!(sp.points.len(), 9, "3 gammas x 3 alphas");
        for p in &sp.points {
            let (g, a) = (p.gamma, p.acceptance_rate);
            // Rollback exactness: every delivered window position must
            // equal the sequential twin's checked output bitwise.
            assert!(p.decode_bitwise_match, "γ={g} α={a}: bitwise mismatch");
            // Every window commits at least its head token (the
            // previous verify's sampled continuation cannot reject).
            assert!(
                p.delivered_tokens >= sp.windows * sp.batch,
                "γ={g} α={a}: some window delivered nothing"
            );
            // The seeded accept schedule realizes α over the draft
            // positions within the coin's binomial wiggle.
            assert!(
                (p.measured_acceptance - a).abs() < 0.1,
                "γ={g} α={a}: measured {}",
                p.measured_acceptance
            );
            assert!(p.tokens_per_s > 0.0 && p.sequential_tokens_per_s > 0.0);
            // The headline bytes claim: one speculative window streams
            // the same panel one sequential step does (within the γ
            // in-window draft rows), while adjudicating γ candidates.
            assert!(
                (p.bytes_per_step - p.sequential_bytes_per_step).abs()
                    < p.sequential_bytes_per_step * 0.25,
                "γ={g} α={a}: window bytes {} vs step bytes {}",
                p.bytes_per_step,
                p.sequential_bytes_per_step
            );
        }
    }

    #[test]
    fn prefix_sharing_sweep_holds_structural_invariants() {
        let ps = measure_prefix_sharing(true);
        let prefix_blocks = ps.prefix_tokens / ps.block_rows;
        let suffix_blocks = ps.suffix_tokens.div_ceil(ps.block_rows);
        assert_eq!(ps.prefix_tokens % ps.block_rows, 0, "prefix block-aligned");
        assert_eq!(
            ps.points.iter().map(|p| p.readers).collect::<Vec<_>>(),
            vec![4, 16, 32]
        );
        for p in &ps.points {
            let k = p.readers;
            // The O(L + k·suffix) memory claim, exactly: the registry
            // pins the prefix blocks once and every reader adopts them.
            assert_eq!(
                p.shared_arena_blocks,
                prefix_blocks + k * suffix_blocks,
                "k={k}: shared arena is prefix + k private suffixes"
            );
            assert_eq!(
                p.unshared_arena_blocks,
                k * (prefix_blocks + suffix_blocks),
                "k={k}: independent arena replicates the prefix k times"
            );
            // Batching is a scheduling choice, not a numerics choice.
            assert!(p.decode_bitwise_match, "k={k}: batched == GEMV bitwise");
            assert!(
                p.shared_score_tiles > 0,
                "k={k}: equal-length readers must form score tiles"
            );
            // Analytic bytes: batching streams each shared row once.
            assert!(
                p.shared_bytes_per_step < p.gemv_bytes_per_step,
                "k={k}: batched scoring streams fewer bytes"
            );
            assert!(p.shared_prefill_tokens_per_s > 0.0);
            assert!(p.unshared_prefill_tokens_per_s > 0.0);
            assert!(p.shared_decode_tokens_per_s > 0.0);
            assert!(p.gemv_decode_tokens_per_s > 0.0);
        }
    }
}
