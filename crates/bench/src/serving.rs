//! SLO-aware serving benchmarks: the step-driven scheduler under the
//! seeded bursty/heavy-tail load generator, measured three ways — the
//! numbers behind `BENCH_serving.json`.
//!
//! Three legs:
//!
//! * **clean** — undisturbed serving at the headline load: TTFT
//!   p50/p99, per-token p99, and goodput-under-SLO (decode tokens of
//!   requests that met both the TTFT and inter-token bounds);
//! * **fault_drill** — [`fa_fault::run_drill`] campaigns injecting
//!   value-side flips (online-alarmed, recovered bit-exact) and
//!   key-side flips (residual-coherent, caught by the autotuned
//!   scrubber) into live serving runs, certified against undisturbed
//!   golden twins;
//! * **preemption** — the same load under an arena-bytes bound that
//!   forces the pressure ladder (soft-tier bf16 demotion, then
//!   evict-and-requeue with recompute-on-resume), showing what the
//!   ladder costs in SLO terms.
//!
//! The scheduler is step-driven, so all latencies are native to step
//! units; each leg also measures its wall-clock per step and reports
//! both (`*_steps` and `*_ms`).

use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
use fa_attention::serve::{LoadGen, LoadSpec, Scheduler, ServeConfig, ServeSummary, SloSpec};
use fa_attention::{AttentionConfig, HeadTopology};
use fa_fault::{run_drill, DrillSpec, DrillStats};
use std::time::Instant;

/// One serving leg: aggregate metrics in scheduler steps plus the
/// measured wall-clock cost per step that converts them to wall time.
#[derive(Clone, Copy, Debug)]
pub struct ServingLeg {
    /// Aggregate serving metrics (step units).
    pub summary: ServeSummary,
    /// Scheduler steps executed (load window + drain).
    pub steps_run: u64,
    /// Measured wall-clock milliseconds per scheduler step.
    pub ms_per_step: f64,
}

impl ServingLeg {
    /// TTFT p50 converted to milliseconds.
    pub fn ttft_p50_ms(&self) -> f64 {
        self.summary.ttft_p50_steps as f64 * self.ms_per_step
    }

    /// TTFT p99 converted to milliseconds.
    pub fn ttft_p99_ms(&self) -> f64 {
        self.summary.ttft_p99_steps as f64 * self.ms_per_step
    }

    /// p99 inter-token gap converted to milliseconds.
    pub fn per_token_p99_ms(&self) -> f64 {
        self.summary.per_token_p99_steps as f64 * self.ms_per_step
    }

    /// Fraction of finished decode tokens delivered by SLO-meeting
    /// requests (the paper-style goodput ratio, 0..=1).
    pub fn goodput_under_slo(&self) -> f64 {
        self.summary.goodput_tokens as f64 / self.summary.total_tokens.max(1) as f64
    }
}

/// The full serving benchmark: clean + preemption legs and the two
/// fault-drill campaigns, under one SLO.
#[derive(Clone, Copy, Debug)]
pub struct ServingBenchReport {
    /// The SLO every leg is judged against.
    pub slo: SloSpec,
    /// Arrival steps in the load window.
    pub load_steps: usize,
    /// Drill trials per campaign.
    pub drill_trials: u64,
    /// Undisturbed serving at the headline load.
    pub clean: ServingLeg,
    /// Same load under an arena bound that forces the pressure ladder.
    pub preemption: ServingLeg,
    /// Value-side flip campaign (online alarm -> evict-and-requeue).
    pub value_drill: DrillStats,
    /// Key-side flip campaign (scrub finding -> repair in place).
    pub key_drill: DrillStats,
}

/// Headline serving topology: 4:2 GQA, head_dim 8, 4-row blocks —
/// the shape the scheduler unit tests and drills run at.
fn engine() -> DecodeBatch<f64> {
    let mut e = DecodeBatch::<f64>::with_policy(
        HeadTopology::gqa(4, 2, AttentionConfig::new(8)),
        4,
        KvLayout::HeadMajor,
        KvFormat::F64,
        EvictionPolicy::RetainAll,
    );
    e.set_prefill_chunk(4);
    e
}

/// Runs one serving leg: `load_steps` of generated arrivals, then a
/// bounded drain, timing the whole run to get ms/step.
fn run_leg(cfg: ServeConfig, slo: &SloSpec, load_steps: usize, seed: u64) -> ServingLeg {
    let mut sched = Scheduler::new(engine(), cfg);
    let mut gen = LoadGen::new(LoadSpec::default(), seed);
    let start = Instant::now();
    let mut steps_run = 0u64;
    for _ in 0..load_steps {
        let arrivals = gen.step();
        sched.step(&arrivals);
        steps_run += 1;
    }
    for _ in 0..4000 {
        let r = sched.step(&[]);
        steps_run += 1;
        if sched.queue_len() == 0
            && sched.active_decoding().is_empty()
            && r.prefill_tokens == 0
            && r.decode_tokens == 0
            && r.finished == 0
        {
            break;
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    ServingLeg {
        summary: sched.summary(slo),
        steps_run,
        ms_per_step: wall_ms / steps_run.max(1) as f64,
    }
}

/// Runs the serving benchmark. `quick` shrinks the load window and
/// drill trial counts for CI smoke runs.
pub fn measure(quick: bool) -> ServingBenchReport {
    let (load_steps, drill_trials) = if quick { (40, 6u64) } else { (160, 24u64) };
    let slo = SloSpec {
        ttft_steps: 16,
        per_token_steps: 6,
    };
    let base_cfg = ServeConfig {
        scrub_slo_steps: Some(4),
        ..ServeConfig::default()
    };
    let clean = run_leg(base_cfg, &slo, load_steps, 0xC1EA);

    // Pressure leg: bound the arena at 8 KiB of live KV (8 native
    // blocks at this shape) so the ladder fires — demote first, then
    // evict-and-requeue — while the same load replays (same seed).
    let pressured = ServeConfig {
        max_kv_bytes: Some(8 * 1024),
        ..base_cfg
    };
    let preemption = run_leg(pressured, &slo, load_steps, 0xC1EA);

    let drill = |key_side: bool, seed: u64| {
        run_drill(&DrillSpec::new(drill_trials, seed).with_injections(1, key_side))
    };
    let value_drill = drill(false, 0xD211);
    let key_drill = drill(true, 0xD213);

    ServingBenchReport {
        slo,
        load_steps,
        drill_trials,
        clean,
        preemption,
        value_drill,
        key_drill,
    }
}

fn leg_json(leg: &ServingLeg) -> String {
    let s = &leg.summary;
    format!(
        "{{\n      \"steps_run\": {}, \"ms_per_step\": {:.6},\n      \
         \"submitted\": {}, \"finished\": {}, \"shed\": {},\n      \
         \"ttft_p50_steps\": {}, \"ttft_p99_steps\": {}, \"per_token_p99_steps\": {},\n      \
         \"ttft_p50_ms\": {:.4}, \"ttft_p99_ms\": {:.4}, \"per_token_p99_ms\": {:.4},\n      \
         \"slo_met\": {}, \"goodput_tokens\": {}, \"total_tokens\": {}, \
         \"goodput_under_slo\": {:.4},\n      \
         \"demotions\": {}, \"preemptions\": {}, \"quarantines\": {}\n    }}",
        leg.steps_run,
        leg.ms_per_step,
        s.submitted,
        s.finished,
        s.shed,
        s.ttft_p50_steps,
        s.ttft_p99_steps,
        s.per_token_p99_steps,
        leg.ttft_p50_ms(),
        leg.ttft_p99_ms(),
        leg.per_token_p99_ms(),
        s.slo_met,
        s.goodput_tokens,
        s.total_tokens,
        leg.goodput_under_slo(),
        s.demotions,
        s.preemptions,
        s.quarantines,
    )
}

fn drill_json(st: &DrillStats) -> String {
    format!(
        "{{\n      \"trials\": {}, \"drained\": {}, \"injections_landed\": {},\n      \
         \"online_alarms\": {}, \"scrub_findings\": {}, \"repaired_blocks\": {}, \
         \"unrecoverable_blocks\": {},\n      \
         \"demotions\": {}, \"preemptions\": {}, \"quarantines\": {},\n      \
         \"finished_both\": {}, \"shed_subject\": {},\n      \
         \"tokens_compared\": {}, \"tokens_divergent\": {}, \"divergent_requests\": {},\n      \
         \"quarantined_requests\": {}, \"recovered_requests\": {},\n      \
         \"detection_pct\": {:.2}, \"recovery_pct\": {:.2}, \"token_fidelity_pct\": {:.2}\n    }}",
        st.trials,
        st.drained_trials,
        st.injections_landed,
        st.online_alarms,
        st.scrub_findings,
        st.repaired_blocks,
        st.unrecoverable_blocks,
        st.demotions,
        st.preemptions,
        st.quarantines,
        st.finished_both,
        st.shed_subject,
        st.tokens_compared,
        st.tokens_divergent,
        st.divergent_requests,
        st.quarantined_requests,
        st.recovered_requests,
        st.detection_pct(),
        st.recovery_pct(),
        st.token_fidelity_pct(),
    )
}

impl ServingBenchReport {
    /// Serializes the report for `BENCH_serving.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"serving-bench/v1\",\n  \
             \"slo\": {{ \"ttft_steps\": {}, \"per_token_steps\": {} }},\n  \
             \"load_steps\": {},\n  \
             \"clean\": {},\n  \
             \"preemption\": {},\n  \
             \"fault_drill\": {{\n    \"trials\": {},\n    \"value\": {},\n    \"key\": {}\n  }}\n}}\n",
            self.slo.ttft_steps,
            self.slo.per_token_steps,
            self.load_steps,
            leg_json(&self.clean),
            leg_json(&self.preemption),
            self.drill_trials,
            drill_json(&self.value_drill),
            drill_json(&self.key_drill),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_covers_all_three_legs_and_required_keys() {
        let report = measure(true);

        // Clean leg serves and finishes load under the SLO.
        let c = &report.clean.summary;
        assert!(c.finished > 0, "clean leg must finish requests");
        assert_eq!(c.quarantines, 0, "no corruption in the clean leg");
        assert_eq!(c.preemptions, 0, "no pressure in the clean leg");
        assert!(report.clean.ms_per_step > 0.0);
        let g = report.clean.goodput_under_slo();
        assert!((0.0..=1.0).contains(&g));

        // Pressure leg actually exercises the ladder.
        let p = &report.preemption.summary;
        assert!(
            p.demotions + p.preemptions > 0,
            "the 8 KiB bound must force the pressure ladder"
        );
        assert!(p.finished > 0, "pressured serving still finishes requests");

        // Drills: value flips recover bit-exact; key flips keep fidelity.
        assert!(report.value_drill.injections_landed > 0);
        assert_eq!(report.value_drill.tokens_divergent, 0);
        assert!(report.key_drill.injections_landed > 0);
        assert!(report.key_drill.token_fidelity_pct() > 90.0);

        // The JSON carries every key CI greps for.
        let json = report.to_json();
        for key in [
            "ttft_p50_ms",
            "ttft_p99_ms",
            "per_token_p99_ms",
            "goodput_under_slo",
            "fault_drill",
            "preemption",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing key {key}");
        }
    }
}
