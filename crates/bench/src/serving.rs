//! SLO-aware serving benchmarks: the step-driven scheduler under the
//! seeded bursty/heavy-tail load generator, measured three ways — the
//! numbers behind `BENCH_serving.json`.
//!
//! Three legs:
//!
//! * **clean** — undisturbed serving at the headline load: TTFT
//!   p50/p99, per-token p99, and goodput-under-SLO (decode tokens of
//!   requests that met both the TTFT and inter-token bounds);
//! * **fault_drill** — [`fa_fault::run_drill`] campaigns injecting
//!   value-side flips (online-alarmed, recovered bit-exact) and
//!   key-side flips (residual-coherent, caught by the autotuned
//!   scrubber) into live serving runs, certified against undisturbed
//!   golden twins;
//! * **preemption** — the same load under an arena-bytes bound that
//!   forces the pressure ladder (soft-tier bf16 demotion, then
//!   evict-and-requeue with recompute-on-resume), showing what the
//!   ladder costs in SLO terms.
//!
//! The scheduler is step-driven, so all latencies are native to step
//! units; each leg also measures its wall-clock per step and reports
//! both (`*_steps` and `*_ms`).

use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
use fa_attention::serve::{LoadGen, LoadSpec, Scheduler, ServeConfig, ServeSummary, SloSpec};
use fa_attention::{AttentionConfig, HeadTopology};
use fa_fault::{run_drill, DrillSpec, DrillStats};
use fa_tensor::{random::ElementDist, Matrix};
use std::time::Instant;

/// One serving leg: aggregate metrics in scheduler steps plus the
/// measured wall-clock cost per step that converts them to wall time.
#[derive(Clone, Copy, Debug)]
pub struct ServingLeg {
    /// Aggregate serving metrics (step units).
    pub summary: ServeSummary,
    /// Scheduler steps executed (load window + drain).
    pub steps_run: u64,
    /// Measured wall-clock milliseconds per scheduler step.
    pub ms_per_step: f64,
}

impl ServingLeg {
    /// TTFT p50 converted to milliseconds.
    pub fn ttft_p50_ms(&self) -> f64 {
        self.summary.ttft_p50_steps as f64 * self.ms_per_step
    }

    /// TTFT p99 converted to milliseconds.
    pub fn ttft_p99_ms(&self) -> f64 {
        self.summary.ttft_p99_steps as f64 * self.ms_per_step
    }

    /// p99 inter-token gap converted to milliseconds.
    pub fn per_token_p99_ms(&self) -> f64 {
        self.summary.per_token_p99_steps as f64 * self.ms_per_step
    }

    /// Fraction of finished decode tokens delivered by SLO-meeting
    /// requests (the paper-style goodput ratio, 0..=1).
    pub fn goodput_under_slo(&self) -> f64 {
        self.summary.goodput_tokens as f64 / self.summary.total_tokens.max(1) as f64
    }
}

/// The full serving benchmark: clean + preemption legs, the two
/// fault-drill campaigns, and the prefix-sharing sweep, under one SLO.
#[derive(Clone, Debug)]
pub struct ServingBenchReport {
    /// The SLO every leg is judged against.
    pub slo: SloSpec,
    /// Arrival steps in the load window.
    pub load_steps: usize,
    /// Drill trials per campaign.
    pub drill_trials: u64,
    /// Undisturbed serving at the headline load.
    pub clean: ServingLeg,
    /// Same load under an arena bound that forces the pressure ladder.
    pub preemption: ServingLeg,
    /// Value-side flip campaign (online alarm -> evict-and-requeue).
    pub value_drill: DrillStats,
    /// Key-side flip campaign (scrub finding -> repair in place).
    pub key_drill: DrillStats,
    /// Copy-on-write prefix sharing vs independent admission, and
    /// shared-block batched scoring vs per-reader GEMV decode.
    pub prefix_sharing: PrefixSharingBench,
}

/// Shared-prefix serving economics at one reader count `k`: one prompt
/// of `prefix + suffix` tokens per reader, admitted either through the
/// prefix registry (register once, `k` suffix admissions adopting the
/// prefix blocks) or as `k` independent full prompts, then decoded with
/// shared-block batched scoring on vs off (per-reader GEMV) over the
/// *same* shared cache.
#[derive(Clone, Copy, Debug)]
pub struct PrefixSharingPoint {
    /// Concurrent readers of the shared prefix.
    pub readers: usize,
    /// Wall ms to deliver `k` ready contexts via the registry.
    pub shared_prefill_ms: f64,
    /// Wall ms to deliver the same contexts as independent prompts.
    pub unshared_prefill_ms: f64,
    /// Delivered context tokens/s — both paths hand the decoder
    /// `k·(prefix+suffix)` tokens of ready context, so both are
    /// normalized by that count (the shared path *computes* only
    /// `prefix + k·suffix` of it).
    pub shared_prefill_tokens_per_s: f64,
    /// Same normalization for the independent path.
    pub unshared_prefill_tokens_per_s: f64,
    /// Live arena blocks after shared admission: `prefix_blocks +
    /// k·suffix_blocks` (the O(L + k·suffix) memory claim).
    pub shared_arena_blocks: usize,
    /// Live arena blocks after independent admission:
    /// `k·(prefix_blocks + suffix_blocks)`.
    pub unshared_arena_blocks: usize,
    /// Decode tokens/s with shared-block batched scoring (one K-panel
    /// sweep per physical block feeding all readers).
    pub shared_decode_tokens_per_s: f64,
    /// Decode tokens/s on an identical shared cache with batching
    /// disabled: one GEMV sweep per reader per block.
    pub gemv_decode_tokens_per_s: f64,
    /// Analytic KV bytes streamed per decode step under batching
    /// (shared blocks counted once).
    pub shared_bytes_per_step: f64,
    /// Analytic KV bytes streamed per decode step under per-reader
    /// GEMV (shared blocks counted once per reader).
    pub gemv_bytes_per_step: f64,
    /// Shared-block score tiles formed during the timed decode.
    pub shared_score_tiles: u64,
    /// Batched and GEMV decode produced bit-identical outputs (the
    /// sharing contract: batching is a scheduling choice, not a
    /// numerics choice).
    pub decode_bitwise_match: bool,
}

/// The prefix-sharing sweep: geometry plus one point per reader count.
#[derive(Clone, Debug)]
pub struct PrefixSharingBench {
    /// Shared-prefix length, tokens (block- and chunk-aligned).
    pub prefix_tokens: usize,
    /// Per-reader private suffix length, tokens.
    pub suffix_tokens: usize,
    /// KV block height used by the sweep's engines.
    pub block_rows: usize,
    /// Timed decode steps per point.
    pub decode_steps: usize,
    /// One measurement per reader count.
    pub points: Vec<PrefixSharingPoint>,
}

/// Headline serving topology: 4:2 GQA, head_dim 8, 4-row blocks —
/// the shape the scheduler unit tests and drills run at.
fn engine() -> DecodeBatch<f64> {
    let mut e = DecodeBatch::<f64>::with_policy(
        HeadTopology::gqa(4, 2, AttentionConfig::new(8)),
        4,
        KvLayout::HeadMajor,
        KvFormat::F64,
        EvictionPolicy::RetainAll,
    );
    e.set_prefill_chunk(4);
    e
}

/// Runs one serving leg: `load_steps` of generated arrivals, then a
/// bounded drain, timing the whole run to get ms/step.
fn run_leg(cfg: ServeConfig, slo: &SloSpec, load_steps: usize, seed: u64) -> ServingLeg {
    let mut sched = Scheduler::new(engine(), cfg);
    let mut gen = LoadGen::new(LoadSpec::default(), seed);
    let start = Instant::now();
    let mut steps_run = 0u64;
    for _ in 0..load_steps {
        let arrivals = gen.step();
        sched.step(&arrivals);
        steps_run += 1;
    }
    for _ in 0..4000 {
        let r = sched.step(&[]);
        steps_run += 1;
        if sched.queue_len() == 0
            && sched.active_decoding().is_empty()
            && r.prefill_tokens == 0
            && r.decode_tokens == 0
            && r.finished == 0
        {
            break;
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    ServingLeg {
        summary: sched.summary(slo),
        steps_run,
        ms_per_step: wall_ms / steps_run.max(1) as f64,
    }
}

/// Prefix-sharing sweep topology: 4:2 GQA at head_dim 128 (q rows 512
/// wide, kv rows 256 wide), 16-row blocks, 16-token prefill chunks — a
/// 512-token prefix is 32 full blocks, and at head_dim 128 each kv
/// head's prefix K panel is 512 KiB, so one decode step's per-reader
/// GEMV re-streams ~2 MiB × k from beyond L2 while the batched sweep
/// reads each physical panel once. Smaller head dims keep everything
/// L1/L2-resident and the bandwidth win drowns in bookkeeping — this
/// shape is the regime the shared-prefix optimization exists for.
const PS_BLOCK_ROWS: usize = 16;
const PS_HEAD_DIM: usize = 128;
const PS_QUERY_HEADS: usize = 4;
const PS_KV_HEADS: usize = 2;

fn ps_engine() -> DecodeBatch<f64> {
    let mut e = DecodeBatch::<f64>::with_policy(
        HeadTopology::gqa(
            PS_QUERY_HEADS,
            PS_KV_HEADS,
            AttentionConfig::new(PS_HEAD_DIM),
        ),
        PS_BLOCK_ROWS,
        KvLayout::HeadMajor,
        KvFormat::F64,
        EvictionPolicy::RetainAll,
    );
    e.set_prefill_chunk(PS_BLOCK_ROWS);
    e
}

/// `a` stacked on top of `b` (same width).
fn vcat(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
    assert_eq!(a.cols(), b.cols());
    Matrix::from_fn(a.rows() + b.rows(), a.cols(), |r, c| {
        if r < a.rows() {
            a[(r, c)]
        } else {
            b[(r - a.rows(), c)]
        }
    })
}

type Prompt = (Matrix<f64>, Matrix<f64>, Matrix<f64>);

fn ps_prompt(rows: usize, seed: u64) -> Prompt {
    let dist = ElementDist::default();
    let (qd, kd) = (PS_QUERY_HEADS * PS_HEAD_DIM, PS_KV_HEADS * PS_HEAD_DIM);
    (
        Matrix::random_seeded(rows, qd, dist, seed),
        Matrix::random_seeded(rows, kd, dist, seed + 1),
        Matrix::random_seeded(rows, kd, dist, seed + 2),
    )
}

/// Registers the prefix once and admits `k` suffix readers through it,
/// draining chunked admission; returns the ready sequence ids.
fn ps_admit_shared(e: &mut DecodeBatch<f64>, prefix: &Prompt, suffixes: &[Prompt]) -> Vec<usize> {
    let id = e.register_prefix(&prefix.0, &prefix.1, &prefix.2);
    let seqs: Vec<usize> = suffixes
        .iter()
        .map(|(q, k, v)| e.enqueue_shared(id, q, k, v))
        .collect();
    while e.prefill_step() > 0 {}
    for &s in &seqs {
        e.take_admitted(s).expect("shared reader admitted");
    }
    seqs
}

/// Admits `k` independent full prompts (prefix‖suffix), draining
/// chunked admission; returns the ready sequence ids.
fn ps_admit_unshared(e: &mut DecodeBatch<f64>, prompts: &[Prompt]) -> Vec<usize> {
    let seqs: Vec<usize> = prompts.iter().map(|(q, k, v)| e.enqueue(q, k, v)).collect();
    while e.prefill_step() > 0 {}
    for &s in &seqs {
        e.take_admitted(s).expect("independent prompt admitted");
    }
    seqs
}

/// Decodes `steps` tokens for every sequence, returning the flattened
/// output rows for bitwise comparison across scoring modes.
fn ps_decode(e: &mut DecodeBatch<f64>, seqs: &[usize], steps: &[Prompt]) -> Vec<Vec<f64>> {
    let mut outs = Vec::with_capacity(seqs.len() * steps.len());
    for (q, k, v) in steps {
        for o in e.step_decode(seqs, q, k, v) {
            outs.push(o.output);
        }
    }
    outs
}

fn measure_prefix_sharing_point(
    prefix: &Prompt,
    readers: usize,
    suffix_tokens: usize,
    decode_steps: usize,
    reps: usize,
) -> PrefixSharingPoint {
    let prefix_tokens = prefix.0.rows();
    let suffixes: Vec<Prompt> = (0..readers)
        .map(|i| ps_prompt(suffix_tokens, 0x9100 + 16 * i as u64))
        .collect();
    let fulls: Vec<Prompt> = suffixes
        .iter()
        .map(|(q, k, v)| (vcat(&prefix.0, q), vcat(&prefix.1, k), vcat(&prefix.2, v)))
        .collect();
    let steps: Vec<Prompt> = (0..decode_steps)
        .map(|t| ps_prompt(readers, 0xD000 + 16 * t as u64))
        .collect();

    let mut shared_prefill_ms = f64::INFINITY;
    let mut unshared_prefill_ms = f64::INFINITY;
    let mut shared_decode_ms = f64::INFINITY;
    let mut gemv_decode_ms = f64::INFINITY;
    let mut shared_arena_blocks = 0;
    let mut unshared_arena_blocks = 0;
    let mut shared_score_tiles = 0;
    let mut decode_bitwise_match = true;
    let mut first_outs: Option<Vec<Vec<f64>>> = None;
    for _ in 0..reps {
        // Registry path: register once, k suffix admissions, then the
        // batched-scoring decode on the shared cache.
        let mut e = ps_engine();
        let t0 = Instant::now();
        let seqs = ps_admit_shared(&mut e, prefix, &suffixes);
        shared_prefill_ms = shared_prefill_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        shared_arena_blocks = e.cache().live_unique_blocks();
        let tiles0 = e.shared_score_tiles();
        let t1 = Instant::now();
        let outs = ps_decode(&mut e, &seqs, &steps);
        shared_decode_ms = shared_decode_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        shared_score_tiles = e.shared_score_tiles() - tiles0;

        // GEMV twin: the identical shared cache, batching disabled —
        // isolates the scoring kernel from the memory layout.
        let mut g = ps_engine();
        g.set_shared_scoring(false);
        let gseqs = ps_admit_shared(&mut g, prefix, &suffixes);
        let t2 = Instant::now();
        let gouts = ps_decode(&mut g, &gseqs, &steps);
        gemv_decode_ms = gemv_decode_ms.min(t2.elapsed().as_secs_f64() * 1e3);

        // Independent path: k full prompts, no registry.
        let mut u = ps_engine();
        let t3 = Instant::now();
        ps_admit_unshared(&mut u, &fulls);
        unshared_prefill_ms = unshared_prefill_ms.min(t3.elapsed().as_secs_f64() * 1e3);
        unshared_arena_blocks = u.cache().live_unique_blocks();

        decode_bitwise_match &= outs == gouts;
        if let Some(first) = &first_outs {
            decode_bitwise_match &= *first == outs;
        } else {
            first_outs = Some(outs);
        }
    }

    // Analytic streamed-KV accounting, exact per step: after the step's
    // append every reader sees prefix + suffix + t + 1 rows. Batching
    // streams each shared physical row once; GEMV streams it per
    // reader. Private suffix rows cost k-fold either way.
    let row_bytes = (2 * PS_KV_HEADS * PS_HEAD_DIM * std::mem::size_of::<f64>()) as f64;
    let (mut shared_bytes, mut gemv_bytes) = (0.0, 0.0);
    for t in 0..decode_steps {
        let private = (suffix_tokens + t + 1) as f64;
        shared_bytes += row_bytes * (prefix_tokens as f64 + readers as f64 * private);
        gemv_bytes += row_bytes * readers as f64 * (prefix_tokens as f64 + private);
    }
    let delivered = (readers * (prefix_tokens + suffix_tokens)) as f64;
    let decoded = (readers * decode_steps) as f64;
    PrefixSharingPoint {
        readers,
        shared_prefill_ms,
        unshared_prefill_ms,
        shared_prefill_tokens_per_s: delivered / shared_prefill_ms * 1e3,
        unshared_prefill_tokens_per_s: delivered / unshared_prefill_ms * 1e3,
        shared_arena_blocks,
        unshared_arena_blocks,
        shared_decode_tokens_per_s: decoded / shared_decode_ms * 1e3,
        gemv_decode_tokens_per_s: decoded / gemv_decode_ms * 1e3,
        shared_bytes_per_step: shared_bytes / decode_steps as f64,
        gemv_bytes_per_step: gemv_bytes / decode_steps as f64,
        shared_score_tiles,
        decode_bitwise_match,
    }
}

/// Runs the prefix-sharing sweep at k ∈ {4, 16, 32} readers.
fn measure_prefix_sharing(quick: bool) -> PrefixSharingBench {
    // Full runs use the headline 512-token prefix (32 full blocks);
    // quick mode shrinks it so the k=32 independent baseline stays CI
    // cheap. Both keep prefix block- and chunk-aligned (no CoW tail:
    // this sweep measures sharing, the CoW paths are property-tested).
    let (prefix_tokens, decode_steps, reps) = if quick { (128, 4, 2) } else { (512, 8, 3) };
    let suffix_tokens = PS_BLOCK_ROWS;
    let prefix = ps_prompt(prefix_tokens, 0x8000);
    let points = [4usize, 16, 32]
        .iter()
        .map(|&k| measure_prefix_sharing_point(&prefix, k, suffix_tokens, decode_steps, reps))
        .collect();
    PrefixSharingBench {
        prefix_tokens,
        suffix_tokens,
        block_rows: PS_BLOCK_ROWS,
        decode_steps,
        points,
    }
}

/// Runs the serving benchmark. `quick` shrinks the load window and
/// drill trial counts for CI smoke runs.
pub fn measure(quick: bool) -> ServingBenchReport {
    let (load_steps, drill_trials) = if quick { (40, 6u64) } else { (160, 24u64) };
    let slo = SloSpec {
        ttft_steps: 16,
        per_token_steps: 6,
    };
    let base_cfg = ServeConfig {
        scrub_slo_steps: Some(4),
        ..ServeConfig::default()
    };
    let clean = run_leg(base_cfg, &slo, load_steps, 0xC1EA);

    // Pressure leg: bound the arena at 8 KiB of live KV (8 native
    // blocks at this shape) so the ladder fires — demote first, then
    // evict-and-requeue — while the same load replays (same seed).
    let pressured = ServeConfig {
        max_kv_bytes: Some(8 * 1024),
        ..base_cfg
    };
    let preemption = run_leg(pressured, &slo, load_steps, 0xC1EA);

    let drill = |key_side: bool, seed: u64| {
        run_drill(&DrillSpec::new(drill_trials, seed).with_injections(1, key_side))
    };
    let value_drill = drill(false, 0xD211);
    let key_drill = drill(true, 0xD213);
    let prefix_sharing = measure_prefix_sharing(quick);

    ServingBenchReport {
        slo,
        load_steps,
        drill_trials,
        clean,
        preemption,
        value_drill,
        key_drill,
        prefix_sharing,
    }
}

fn leg_json(leg: &ServingLeg) -> String {
    let s = &leg.summary;
    format!(
        "{{\n      \"steps_run\": {}, \"ms_per_step\": {:.6},\n      \
         \"submitted\": {}, \"finished\": {}, \"shed\": {},\n      \
         \"ttft_p50_steps\": {}, \"ttft_p99_steps\": {}, \"per_token_p99_steps\": {},\n      \
         \"ttft_p50_ms\": {:.4}, \"ttft_p99_ms\": {:.4}, \"per_token_p99_ms\": {:.4},\n      \
         \"slo_met\": {}, \"goodput_tokens\": {}, \"total_tokens\": {}, \
         \"goodput_under_slo\": {:.4},\n      \
         \"demotions\": {}, \"preemptions\": {}, \"quarantines\": {}\n    }}",
        leg.steps_run,
        leg.ms_per_step,
        s.submitted,
        s.finished,
        s.shed,
        s.ttft_p50_steps,
        s.ttft_p99_steps,
        s.per_token_p99_steps,
        leg.ttft_p50_ms(),
        leg.ttft_p99_ms(),
        leg.per_token_p99_ms(),
        s.slo_met,
        s.goodput_tokens,
        s.total_tokens,
        leg.goodput_under_slo(),
        s.demotions,
        s.preemptions,
        s.quarantines,
    )
}

fn drill_json(st: &DrillStats) -> String {
    format!(
        "{{\n      \"trials\": {}, \"drained\": {}, \"injections_landed\": {},\n      \
         \"online_alarms\": {}, \"scrub_findings\": {}, \"repaired_blocks\": {}, \
         \"unrecoverable_blocks\": {},\n      \
         \"demotions\": {}, \"preemptions\": {}, \"quarantines\": {},\n      \
         \"finished_both\": {}, \"shed_subject\": {},\n      \
         \"tokens_compared\": {}, \"tokens_divergent\": {}, \"divergent_requests\": {},\n      \
         \"quarantined_requests\": {}, \"recovered_requests\": {},\n      \
         \"detection_pct\": {:.2}, \"recovery_pct\": {:.2}, \"token_fidelity_pct\": {:.2}\n    }}",
        st.trials,
        st.drained_trials,
        st.injections_landed,
        st.online_alarms,
        st.scrub_findings,
        st.repaired_blocks,
        st.unrecoverable_blocks,
        st.demotions,
        st.preemptions,
        st.quarantines,
        st.finished_both,
        st.shed_subject,
        st.tokens_compared,
        st.tokens_divergent,
        st.divergent_requests,
        st.quarantined_requests,
        st.recovered_requests,
        st.detection_pct(),
        st.recovery_pct(),
        st.token_fidelity_pct(),
    )
}

fn prefix_sharing_json(ps: &PrefixSharingBench) -> String {
    let points: Vec<String> = ps
        .points
        .iter()
        .map(|p| {
            format!(
                "      {{ \"readers\": {}, \"shared_prefill_ms\": {:.3}, \
                 \"unshared_prefill_ms\": {:.3},\n        \
                 \"shared_prefill_tokens_per_s\": {:.1}, \
                 \"unshared_prefill_tokens_per_s\": {:.1},\n        \
                 \"shared_arena_blocks\": {}, \"unshared_arena_blocks\": {},\n        \
                 \"shared_decode_tokens_per_s\": {:.1}, \
                 \"gemv_decode_tokens_per_s\": {:.1},\n        \
                 \"shared_bytes_per_step\": {:.0}, \"gemv_bytes_per_step\": {:.0},\n        \
                 \"shared_score_tiles\": {}, \"decode_bitwise_match\": {} }}",
                p.readers,
                p.shared_prefill_ms,
                p.unshared_prefill_ms,
                p.shared_prefill_tokens_per_s,
                p.unshared_prefill_tokens_per_s,
                p.shared_arena_blocks,
                p.unshared_arena_blocks,
                p.shared_decode_tokens_per_s,
                p.gemv_decode_tokens_per_s,
                p.shared_bytes_per_step,
                p.gemv_bytes_per_step,
                p.shared_score_tiles,
                p.decode_bitwise_match,
            )
        })
        .collect();
    format!(
        "{{\n    \"prefix_tokens\": {}, \"suffix_tokens\": {}, \"block_rows\": {}, \
         \"decode_steps\": {},\n    \"points\": [\n{}\n    ]\n  }}",
        ps.prefix_tokens,
        ps.suffix_tokens,
        ps.block_rows,
        ps.decode_steps,
        points.join(",\n"),
    )
}

impl ServingBenchReport {
    /// Serializes the report for `BENCH_serving.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"serving-bench/v1\",\n  \
             \"slo\": {{ \"ttft_steps\": {}, \"per_token_steps\": {} }},\n  \
             \"load_steps\": {},\n  \
             \"clean\": {},\n  \
             \"preemption\": {},\n  \
             \"fault_drill\": {{\n    \"trials\": {},\n    \"value\": {},\n    \"key\": {}\n  }},\n  \
             \"prefix_sharing\": {}\n}}\n",
            self.slo.ttft_steps,
            self.slo.per_token_steps,
            self.load_steps,
            leg_json(&self.clean),
            leg_json(&self.preemption),
            self.drill_trials,
            drill_json(&self.value_drill),
            drill_json(&self.key_drill),
            prefix_sharing_json(&self.prefix_sharing),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_covers_all_three_legs_and_required_keys() {
        let report = measure(true);

        // Clean leg serves and finishes load under the SLO.
        let c = &report.clean.summary;
        assert!(c.finished > 0, "clean leg must finish requests");
        assert_eq!(c.quarantines, 0, "no corruption in the clean leg");
        assert_eq!(c.preemptions, 0, "no pressure in the clean leg");
        assert!(report.clean.ms_per_step > 0.0);
        let g = report.clean.goodput_under_slo();
        assert!((0.0..=1.0).contains(&g));

        // Pressure leg actually exercises the ladder.
        let p = &report.preemption.summary;
        assert!(
            p.demotions + p.preemptions > 0,
            "the 8 KiB bound must force the pressure ladder"
        );
        assert!(p.finished > 0, "pressured serving still finishes requests");

        // Drills: value flips recover bit-exact; key flips keep fidelity.
        assert!(report.value_drill.injections_landed > 0);
        assert_eq!(report.value_drill.tokens_divergent, 0);
        assert!(report.key_drill.injections_landed > 0);
        assert!(report.key_drill.token_fidelity_pct() > 90.0);

        // The JSON carries every key CI greps for.
        let json = report.to_json();
        for key in [
            "ttft_p50_ms",
            "ttft_p99_ms",
            "per_token_p99_ms",
            "goodput_under_slo",
            "fault_drill",
            "preemption",
            "prefix_sharing",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing key {key}");
        }
    }

    #[test]
    fn prefix_sharing_sweep_holds_structural_invariants() {
        let ps = measure_prefix_sharing(true);
        let prefix_blocks = ps.prefix_tokens / ps.block_rows;
        let suffix_blocks = ps.suffix_tokens.div_ceil(ps.block_rows);
        assert_eq!(ps.prefix_tokens % ps.block_rows, 0, "prefix block-aligned");
        assert_eq!(
            ps.points.iter().map(|p| p.readers).collect::<Vec<_>>(),
            vec![4, 16, 32]
        );
        for p in &ps.points {
            let k = p.readers;
            // The O(L + k·suffix) memory claim, exactly: the registry
            // pins the prefix blocks once and every reader adopts them.
            assert_eq!(
                p.shared_arena_blocks,
                prefix_blocks + k * suffix_blocks,
                "k={k}: shared arena is prefix + k private suffixes"
            );
            assert_eq!(
                p.unshared_arena_blocks,
                k * (prefix_blocks + suffix_blocks),
                "k={k}: independent arena replicates the prefix k times"
            );
            // Batching is a scheduling choice, not a numerics choice.
            assert!(p.decode_bitwise_match, "k={k}: batched == GEMV bitwise");
            assert!(
                p.shared_score_tiles > 0,
                "k={k}: equal-length readers must form score tiles"
            );
            // Analytic bytes: batching streams each shared row once.
            assert!(
                p.shared_bytes_per_step < p.gemv_bytes_per_step,
                "k={k}: batched scoring streams fewer bytes"
            );
            assert!(p.shared_prefill_tokens_per_s > 0.0);
            assert!(p.unshared_prefill_tokens_per_s > 0.0);
            assert!(p.shared_decode_tokens_per_s > 0.0);
            assert!(p.gemv_decode_tokens_per_s > 0.0);
        }
    }
}
