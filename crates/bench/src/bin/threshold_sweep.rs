//! Regenerates the **§IV-B threshold determination**: the paper sets the
//! error bound to 10⁻⁶, "found experimentally for the examined attention
//! layers", to separate fault effects from fault-free rounding noise.
//!
//! This binary measures, per head dimension:
//!  1. the fault-free residual |predicted − actual| across many seeds —
//!     the noise floor the threshold must sit above;
//!  2. the detection/false-alarm trade-off as τ sweeps 10⁻¹²…10⁻¹;
//!  3. (`--ablation`) the same with the *narrow* (BF16 accumulator)
//!     precision policy, showing why wide accumulators are required for
//!     an absolute 10⁻⁶ bound.
//!
//! Usage: `cargo run --release -p fa-bench --bin threshold_sweep [--ablation] [--quick]`

use fa_accel_sim::config::{AcceleratorConfig, PrecisionPolicy};
use fa_accel_sim::Accelerator;
use fa_bench::{campaign_count_from_args, has_flag, TablePrinter};
use fa_fault::{run_campaigns, CampaignSpec, DetectionCriterion};
use fa_models::{LlmModel, Workload, WorkloadSpec};
use fa_numerics::Tolerance;

fn noise_floor(policy: PrecisionPolicy, seeds: u64) -> (f64, f64) {
    let model = LlmModel::Llama31.config();
    let mut worst = 0.0f64;
    let mut sum = 0.0f64;
    for seed in 0..seeds {
        let w = Workload::generate(&model, WorkloadSpec::paper(seed));
        let accel =
            Accelerator::new(AcceleratorConfig::new(16, model.head_dim).with_precision(policy));
        let run = accel.run(&w.q, &w.k, &w.v);
        let r = run.residual().abs();
        worst = worst.max(r);
        sum += r;
    }
    (sum / seeds as f64, worst)
}

fn main() {
    let campaigns = campaign_count_from_args(2_000, 300);
    let ablation = has_flag("--ablation");
    let policy = if ablation {
        PrecisionPolicy::narrow()
    } else {
        PrecisionPolicy::paper()
    };
    println!(
        "Threshold sweep — Llama-3.1 layer (d=128), N=256, policy: {}",
        if ablation {
            "narrow (BF16 accumulators, ablation)"
        } else {
            "paper (wide accumulators)"
        }
    );
    println!();

    let (mean_noise, max_noise) = noise_floor(policy, 10);
    println!("fault-free residual over 10 prompts: mean {mean_noise:.3e}, max {max_noise:.3e}");
    println!(
        "=> an absolute bound of 1e-6 is {} for this policy",
        if max_noise < 1e-6 {
            "VALID (noise floor below it)"
        } else {
            "INVALID (noise floor above it: every run would false-alarm)"
        }
    );
    println!();

    let model = LlmModel::Llama31.config();
    let workload = Workload::generate(&model, WorkloadSpec::paper(2024));
    let accel_cfg = AcceleratorConfig::new(16, model.head_dim).with_precision(policy);

    let mut table = TablePrinter::new(vec![
        "tau",
        "detected",
        "false positive",
        "silent",
        "masked",
    ]);
    for exp in [-12i32, -10, -8, -6, -4, -2, -1] {
        let tau = 10f64.powi(exp);
        let spec = CampaignSpec::new(accel_cfg, campaigns, 9_999)
            .with_criterion(DetectionCriterion::ChecksumDiscrepancy)
            .with_tolerance(Tolerance::Absolute(tau));
        let stats = run_campaigns(&spec, &workload);
        table.row(vec![
            format!("1e{exp}"),
            format!("{:.2}%", stats.pct_of_total(stats.detected)),
            format!("{:.2}%", stats.pct_of_total(stats.false_positive)),
            format!("{:.2}%", stats.pct_of_total(stats.silent)),
            format!("{:.2}%", stats.pct_of_total(stats.masked)),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("reading: below the noise floor every campaign alarms (fault-free runs would");
    println!("too — false alarms); far above it real faults start slipping under the bound");
    println!("(silent grows). The paper's 1e-6 sits in the wide flat region for the wide-");
    println!("accumulator policy; the narrow ablation has no such region below BF16 noise.");
}
