//! Regenerates the **§IV-B multi-fault experiment**: "As the number of
//! injected faults per fault-injection campaign increases (1–5 faults are
//! randomly injected) ... the possibility of having a false alarm is
//! almost zero on average."
//!
//! With several faults per campaign it becomes overwhelmingly likely that
//! at least one hits the (much larger) kernel storage and corrupts the
//! output, so an alarm is almost never *false* — the run needed recovery
//! anyway.
//!
//! Usage: `cargo run --release -p fa-bench --bin multi_fault`
//! (`--quick`, `--campaigns N`).

use fa_accel_sim::config::AcceleratorConfig;
use fa_bench::{campaign_count_from_args, TablePrinter};
use fa_fault::{run_campaigns, CampaignSpec, DetectionCriterion};
use fa_models::{LlmModel, Workload, WorkloadSpec};

fn main() {
    let campaigns = campaign_count_from_args(10_000, 1_000);
    let model = LlmModel::Llama31.config();
    let workload = Workload::generate(&model, WorkloadSpec::paper(2024));
    let accel_cfg = AcceleratorConfig::new(16, model.head_dim);

    println!(
        "Multi-fault experiment — {} (d={}), N=256, {campaigns} campaigns per row",
        model.name, model.head_dim
    );
    println!();

    let mut table = TablePrinter::new(vec![
        "faults/campaign",
        "detected",
        "false positive",
        "silent",
        "masked",
    ]);

    let mut fp_rates = Vec::new();
    for max_faults in 1..=5usize {
        let spec = CampaignSpec::new(accel_cfg, campaigns, 13_000 + max_faults as u64)
            .with_criterion(DetectionCriterion::ChecksumDiscrepancy)
            .with_max_faults(max_faults);
        let stats = run_campaigns(&spec, &workload);
        if max_faults == 1 {
            println!(
                "measured detection latency (single fault): end-of-attention {:.0} cycles, per-pass {:.0} cycles",
                stats.mean_latency_end(),
                stats.mean_latency_pass()
            );
        }
        fp_rates.push(stats.pct_of_total(stats.false_positive));
        table.row(vec![
            if max_faults == 1 {
                "1".to_string()
            } else {
                format!("1..={max_faults}")
            },
            format!("{:.2}%", stats.pct_of_total(stats.detected)),
            format!("{:.2}%", stats.pct_of_total(stats.false_positive)),
            format!("{:.2}%", stats.pct_of_total(stats.silent)),
            format!("{:.2}%", stats.pct_of_total(stats.masked)),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("paper claim: false-alarm probability approaches zero as faults/campaign grow.");
    println!(
        "measured false-positive trend: {} -> {} (first vs last row)",
        format_args!("{:.2}%", fp_rates[0]),
        format_args!("{:.2}%", fp_rates[4]),
    );
}
