//! **Ablation**: sensitivity of the Table I behaviour to sequence length
//! and to the input distribution. The paper evaluates a single prompt at
//! N=256 and asserts stability ("Conducting additional fault-injection
//! campaigns does not change the observed behavior", §IV-B); this sweep
//! substantiates the claim across N and across workload distributions —
//! our substitute for the diversity real PromptBench prompts provide.
//!
//! Usage: `cargo run --release -p fa-bench --bin seq_len_sweep`
//! (`--quick`, `--campaigns N`).

use fa_accel_sim::config::AcceleratorConfig;
use fa_bench::{campaign_count_from_args, TablePrinter};
use fa_fault::{run_campaigns, CampaignSpec, DetectionCriterion};
use fa_models::{LlmModel, Workload, WorkloadSpec};

fn main() {
    let campaigns = campaign_count_from_args(3_000, 500);
    let model = LlmModel::Llama31.config();
    let accel_cfg = AcceleratorConfig::new(16, model.head_dim);

    println!(
        "Sequence-length & distribution sweep — {} (d={}), {campaigns} campaigns/point",
        model.name, model.head_dim
    );
    println!();

    let mut table = TablePrinter::new(vec![
        "N",
        "detected*",
        "false positive*",
        "silent*",
        "masked (all)",
    ]);
    for n in [64usize, 128, 256, 512] {
        let spec_w = WorkloadSpec {
            seq_len: n,
            ..WorkloadSpec::paper(2024)
        };
        let workload = Workload::generate(&model, spec_w);
        let spec = CampaignSpec::new(accel_cfg, campaigns, 17)
            .with_criterion(DetectionCriterion::ChecksumDiscrepancy);
        let stats = run_campaigns(&spec, &workload);
        table.row(vec![
            format!("{n}"),
            format!("{:.2}%", stats.pct_of_consequential(stats.detected)),
            format!("{:.2}%", stats.pct_of_consequential(stats.false_positive)),
            format!("{:.2}%", stats.pct_of_consequential(stats.silent)),
            format!("{:.2}%", stats.pct_of_total(stats.masked)),
        ]);
    }
    print!("{}", table.render());
    println!("(* percentages over consequential faults, paper-style)");
    println!();

    let mut dist_table = TablePrinter::new(vec![
        "distribution",
        "detected*",
        "false positive*",
        "silent*",
    ]);
    let base = WorkloadSpec::paper(2024);
    let mut variants = vec![("paper gaussian(1.0)".to_string(), base)];
    for (i, v) in WorkloadSpec::sweep_variants(2024).into_iter().enumerate() {
        let name = match i {
            0 => "gaussian(0.5)",
            1 => "gaussian(2.0)",
            2 => "uniform(-2,2)",
            _ => "heavy-tail",
        };
        variants.push((name.to_string(), v));
    }
    for (name, spec_w) in variants {
        let workload = Workload::generate(&model, spec_w);
        let spec = CampaignSpec::new(accel_cfg, campaigns, 18)
            .with_criterion(DetectionCriterion::ChecksumDiscrepancy);
        let stats = run_campaigns(&spec, &workload);
        dist_table.row(vec![
            name,
            format!("{:.2}%", stats.pct_of_consequential(stats.detected)),
            format!("{:.2}%", stats.pct_of_consequential(stats.false_positive)),
            format!("{:.2}%", stats.pct_of_consequential(stats.silent)),
        ]);
    }
    print!("{}", dist_table.render());
    println!();
    println!("the Detected/FP/Silent shape is stable across N and input distributions,");
    println!("supporting the synthetic-workload substitution documented in DESIGN.md.");
}
