//! Regenerates **Table I**: fault-detection accuracy for a single
//! injected bit flip, sequence length 256, error bound 10⁻⁶, for the four
//! LLM head dimensions (Bert 64, Phi-3-mini 96, Llama-3.1 128, Gemma2
//! 256).
//!
//! The paper's criterion is the checksum-level discrepancy (§IV-B); this
//! binary reports that table *and* the strict hardware-comparator
//! breakdown, plus the Masked category a bit-accurate simulation
//! necessarily exposes (see EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p fa-bench --bin table1_fault_detection`
//! (`--quick` = 1 000 campaigns instead of 10 000; `--campaigns N`).

use fa_accel_sim::config::AcceleratorConfig;
use fa_bench::{campaign_count_from_args, TablePrinter};
use fa_fault::{run_campaigns, CampaignSpec, DetectionCriterion};
use fa_models::{Workload, WorkloadSpec, PAPER_MODELS};

fn main() {
    let campaigns = campaign_count_from_args(10_000, 1_000);
    let parallel_queries = 16;
    println!(
        "Table I reproduction — single fault, N=256, tau=1e-6, {campaigns} campaigns per model, {parallel_queries} parallel queries"
    );
    println!();

    for criterion in [
        DetectionCriterion::ChecksumDiscrepancy,
        DetectionCriterion::HardwareComparator,
    ] {
        let label = match criterion {
            DetectionCriterion::ChecksumDiscrepancy => {
                "paper criterion: checksum-level discrepancy (reproduces Table I)"
            }
            DetectionCriterion::HardwareComparator => {
                "strict criterion: runtime comparator only (additional analysis)"
            }
        };
        println!("== {label}");
        let mut table = TablePrinter::new(vec!["behavior", "d=64", "d=96", "d=128", "d=256"]);
        let mut detected = Vec::new();
        let mut fp = Vec::new();
        let mut silent = Vec::new();
        let mut masked = Vec::new();
        let mut checker_frac = Vec::new();

        for model in PAPER_MODELS {
            let cfg = model.config();
            let workload = Workload::generate(&cfg, WorkloadSpec::paper(2024));
            let accel_cfg = AcceleratorConfig::new(parallel_queries, cfg.head_dim);
            let spec = CampaignSpec::new(accel_cfg, campaigns, 7_777).with_criterion(criterion);
            let stats = run_campaigns(&spec, &workload);

            // Paper-style percentages over consequential faults (the
            // paper's three rows sum to 100%).
            detected.push(format!(
                "{:.2}%",
                stats.pct_of_consequential(stats.detected)
            ));
            fp.push(format!(
                "{:.2}%",
                stats.pct_of_consequential(stats.false_positive)
            ));
            silent.push(format!("{:.2}%", stats.pct_of_consequential(stats.silent)));
            masked.push(format!("{:.2}%", stats.pct_of_total(stats.masked)));
            checker_frac.push(format!(
                "{:.2}%",
                100.0
                    * fa_accel_sim::Accelerator::new(accel_cfg)
                        .storage_map()
                        .checker_bit_fraction()
            ));
        }

        let mut push = |name: &str, vals: Vec<String>| {
            let mut row = vec![name.to_string()];
            row.extend(vals);
            table.row(row);
        };
        push("Detected", detected);
        push("False Positive", fp);
        push("Silent", silent);
        push("[Masked, % of all]", masked);
        push("[checker storage share]", checker_frac);
        print!("{}", table.render());
        println!();
    }

    println!("paper Table I (for comparison):");
    println!("  Detected        96.94%  97.56%  98.45%  98.87%");
    println!("  False Positive   2.66%   1.99%   1.25%   0.62%");
    println!("  Silent           0.40%   0.45%   0.30%   0.51%");
}
