//! **Recovery economics** (extension): detection latency and expected
//! re-execution overhead for the paper's end-of-attention check versus a
//! per-pass checking extension, across fault rates.
//!
//! Usage: `cargo run --release -p fa-bench --bin recovery_report`

use fa_accel_sim::config::AcceleratorConfig;
use fa_bench::TablePrinter;
use fa_fault::{CheckGranularity, RecoveryModel};

fn main() {
    let cfg = AcceleratorConfig::new(16, 128);
    let n = 256;
    println!("Recovery model — 16-block accelerator, d=128, N={n} (16 passes x 258 cycles)");
    println!();

    let end = RecoveryModel::new(&cfg, CheckGranularity::EndOfAttention, n, n);
    let pass = RecoveryModel::new(&cfg, CheckGranularity::PerPass, n, n);

    let mut lat = TablePrinter::new(vec![
        "granularity",
        "worst latency (cycles)",
        "mean latency (cycles)",
        "re-exec cost (cycles)",
    ]);
    for (name, m) in [
        ("end-of-attention (paper)", &end),
        ("per-pass (extension)", &pass),
    ] {
        lat.row(vec![
            name.to_string(),
            format!("{}", m.worst_detection_latency()),
            format!("{:.0}", m.mean_detection_latency()),
            format!("{}", m.reexecution_cycles()),
        ]);
    }
    print!("{}", lat.render());
    println!();

    let mut ovh = TablePrinter::new(vec![
        "alarm probability",
        "overhead end-of-attention",
        "overhead per-pass",
    ]);
    for p in [1e-6, 1e-4, 1e-2, 0.1] {
        ovh.row(vec![
            format!("{p:.0e}"),
            format!("{:.4}%", 100.0 * end.expected_overhead(p)),
            format!("{:.4}%", 100.0 * pass.expected_overhead(p)),
        ]);
    }
    print!("{}", ovh.render());
    println!();
    println!("per-pass checking divides both detection latency and re-execution cost by");
    println!("the pass count at the price of one comparator activation per pass — the");
    println!("\"detected online, ideally within a few cycles\" goal of the paper's intro.");
}
