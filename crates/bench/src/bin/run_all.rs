//! Convenience driver: runs every experiment binary in sequence with the
//! given flags, printing section headers — regenerates the full
//! EXPERIMENTS.md evidence in one command.
//!
//! Usage: `cargo run --release -p fa-bench --bin run_all [--quick]`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig4_area_power",
    "table1_fault_detection",
    "multi_fault",
    "threshold_sweep",
    "overhead_report",
    "coverage_report",
    "criticality_report",
    "recovery_report",
    "seq_len_sweep",
];

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .to_path_buf();

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("{}", "=".repeat(78));
        println!("== {name}");
        println!("{}", "=".repeat(78));
        let status = Command::new(exe_dir.join(name))
            .args(&passthrough)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("{name} failed to launch: {e} (build with `cargo build --release -p fa-bench` first)");
                failures.push(*name);
            }
        }
        println!();
    }
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
