//! Convenience driver: benchmarks the kernel layer (emitting
//! `BENCH_kernels.json`), then runs every experiment binary in sequence
//! with the given flags, printing section headers — regenerates the full
//! EXPERIMENTS.md evidence in one command.
//!
//! Usage: `cargo run --release -p fa-bench --bin run_all [--quick]`

use fa_bench::TablePrinter;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig4_area_power",
    "table1_fault_detection",
    "multi_fault",
    "threshold_sweep",
    "overhead_report",
    "coverage_report",
    "criticality_report",
    "recovery_report",
    "seq_len_sweep",
];

/// Benchmarks the kernel layer and writes `BENCH_kernels.json` so the
/// performance trajectory is machine-readable across PRs.
fn kernel_benchmarks(quick: bool) {
    println!("{}", "=".repeat(78));
    println!("== kernel_layer (matmul / flash2 / fused checksum)");
    println!("{}", "=".repeat(78));
    let report = fa_bench::kernels::measure(quick);

    let mut table = TablePrinter::new(vec!["kernel", "baseline ms", "optimized ms", "speedup"]);
    let row = |t: &fa_bench::kernels::KernelTiming| {
        vec![
            format!("{:.3}", t.baseline_ms),
            format!("{:.3}", t.optimized_ms),
            format!("{:.2}x", t.speedup()),
        ]
    };
    let named = |name: &str, t: &fa_bench::kernels::KernelTiming| {
        let mut cells = vec![name.to_string()];
        cells.extend(row(t));
        cells
    };
    let n = report.matmul_n;
    let s = report.flash2_seq_len;
    table.row(named(&format!("matmul bf16 {n}x{n}"), &report.matmul_bf16));
    table.row(named(&format!("matmul f64 {n}x{n}"), &report.matmul_f64));
    table.row(named(
        &format!("matmul f64-acc bf16 {n}x{n}"),
        &report.matmul_f64_acc_bf16,
    ));
    table.row(named(&format!("flash2 par/serial N={s}"), &report.flash2));
    table.row(named("fused checksum vs flash2", &report.fused_checksum));
    print!("{}", table.render());
    println!(
        "blocked bf16 matmul: {:.2} GFLOP/s | flash2: {:.0} tokens/s | \
         checksum overhead: {:.2}% | host threads: {}",
        report.matmul_bf16_gflops,
        report.flash2_tokens_per_s,
        report.checksum_overhead_pct(),
        report.host_threads
    );

    let path = "BENCH_kernels.json";
    match std::fs::write(path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!();
}

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    kernel_benchmarks(passthrough.iter().any(|a| a == "--quick"));
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .to_path_buf();

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("{}", "=".repeat(78));
        println!("== {name}");
        println!("{}", "=".repeat(78));
        let status = Command::new(exe_dir.join(name)).args(&passthrough).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("{name} failed to launch: {e} (build with `cargo build --release -p fa-bench` first)");
                failures.push(*name);
            }
        }
        println!();
    }
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
