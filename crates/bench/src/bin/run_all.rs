//! Convenience driver: benchmarks the kernel layer (emitting
//! `BENCH_kernels.json`), then runs every experiment binary in sequence
//! with the given flags, printing section headers — regenerates the full
//! EXPERIMENTS.md evidence in one command.
//!
//! Usage: `cargo run --release -p fa-bench --bin run_all [--quick]`

use fa_bench::TablePrinter;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig4_area_power",
    "table1_fault_detection",
    "multi_fault",
    "threshold_sweep",
    "overhead_report",
    "coverage_report",
    "criticality_report",
    "recovery_report",
    "seq_len_sweep",
];

/// Benchmarks the kernel layer and writes `BENCH_kernels.json` so the
/// performance trajectory is machine-readable across PRs.
fn kernel_benchmarks(quick: bool) {
    println!("{}", "=".repeat(78));
    println!("== kernel_layer (matmul / flash2 / fused checksum / dot / decode)");
    println!("{}", "=".repeat(78));
    let report = fa_bench::kernels::measure(quick);

    let mut table = TablePrinter::new(vec!["kernel", "baseline ms", "optimized ms", "speedup"]);
    let named = |name: &str, t: &fa_bench::kernels::KernelTiming| {
        vec![
            name.to_string(),
            format!("{:.3}", t.baseline_ms),
            format!("{:.3}", t.optimized_ms),
            format!("{:.2}x", t.speedup()),
        ]
    };
    for p in &report.matmul {
        let n = p.n;
        table.row(named(&format!("matmul bf16 {n}x{n}"), &p.bf16));
        table.row(named(&format!("matmul f64 {n}x{n}"), &p.f64_mm));
        table.row(named(
            &format!("matmul f64-acc bf16 {n}x{n}"),
            &p.f64_acc_bf16,
        ));
    }
    for p in &report.flash2 {
        let s = p.seq_len;
        table.row(named(&format!("flash2 par/serial N={s}"), &p.parallel));
        table.row(named(
            &format!("fused checksum vs flash2 N={s}"),
            &p.fused_checksum,
        ));
    }
    let len = report.dot_simd.len;
    table.row(named(
        &format!("dot f64 len={len}"),
        &report.dot_simd.f64_dot,
    ));
    table.row(named(
        &format!("dot bf16 len={len}"),
        &report.dot_simd.bf16_dot,
    ));
    print!("{}", table.render());
    println!(
        "blocked bf16 matmul: {:.2} GFLOP/s | flash2: {:.0} tokens/s | \
         checksum overhead: {:.2}% | host threads: {}",
        report.matmul.last().map_or(0.0, |p| p.bf16_gflops),
        report.flash2.last().map_or(0.0, |p| p.tokens_per_s),
        report
            .flash2
            .last()
            .map_or(0.0, |p| p.checksum_overhead_pct()),
        report.host_threads
    );

    let shape = report.decode_shape;
    let mut decode = TablePrinter::new(vec![
        "batch",
        "per-seq loop ms",
        "batched ms",
        "speedup",
        "tokens/s",
        "check ovh %",
    ]);
    for p in &report.decode_batched {
        decode.row(vec![
            format!("{}", p.batch),
            format!("{:.3}", p.baseline_ms),
            format!("{:.3}", p.batched_ms),
            format!("{:.2}x", p.speedup()),
            format!("{:.0}", p.batched_tokens_per_s),
            format!("{:.2}", p.checked_overhead_pct),
        ]);
    }
    println!(
        "decode (d={}, heads={}, prefill={}, steps={}): single-seq \
         {:.0} tokens/s unchecked, {:.0} checked",
        shape.head_dim,
        shape.heads,
        shape.prefill,
        shape.steps,
        report.decode_single.unchecked_tokens_per_s,
        report.decode_single.checked_tokens_per_s,
    );
    print!("{}", decode.render());
    let kv = &report.decode_kv_bf16;
    println!(
        "bf16 KV cache @ batch {}: {:.3} ms vs f64 {:.3} ms ({:.2}x, {:.0} tokens/s)",
        kv.batch,
        kv.bf16_cache_ms,
        kv.f64_cache_ms,
        kv.speedup(),
        kv.bf16_tokens_per_s
    );
    let cont = &report.decode_continuous;
    println!(
        "continuous batching @ batch {} (retire+admit every {} steps): \
         f64 {:.0} tokens/s ({:.2} MB/step), bf16 {:.0} tokens/s ({:.2} MB/step); \
         {} blocks recycled, arena {} blocks",
        cont.batch,
        cont.churn_every,
        cont.f64_cache.tokens_per_s,
        cont.f64_cache.bytes_per_step / 1e6,
        cont.bf16_cache.tokens_per_s,
        cont.bf16_cache.bytes_per_step / 1e6,
        cont.recycled_blocks,
        cont.arena_blocks,
    );

    let mixed = &report.decode_mixed_format;
    println!(
        "mixed-format policy @ batch {} (chunked admission {} tokens/step, churn every {}, \
         block {} rows, burst {}):\n  f64   {:.0} tok/s aggregate ({:.0} decode, {:.2} MB/step)\n  \
         bf16  {:.0} tok/s aggregate ({:.0} decode, {:.2} MB/step)\n  mixed {:.0} tok/s aggregate \
         ({:.0} decode, {:.2} MB/step); {} rows demoted, arena {}+{} blocks",
        mixed.batch,
        mixed.prefill_chunk,
        mixed.churn_every,
        mixed.block_rows,
        mixed.burst_blocks,
        mixed.f64_cache.tokens_per_s,
        mixed.f64_cache.decode_tokens_per_s,
        mixed.f64_cache.bytes_per_step / 1e6,
        mixed.bf16_cache.tokens_per_s,
        mixed.bf16_cache.decode_tokens_per_s,
        mixed.bf16_cache.bytes_per_step / 1e6,
        mixed.mixed_cache.tokens_per_s,
        mixed.mixed_cache.decode_tokens_per_s,
        mixed.mixed_cache.bytes_per_step / 1e6,
        mixed.mixed_demoted_rows,
        mixed.mixed_arena_blocks,
        mixed.mixed_arena_blocks16,
    );
    println!(
        "  steady decode, committed-point geometry ({}-row blocks, burst {}, batch {}): \
         f64 {:.0} tok/s ({:.2} MB/step), \
         bf16 {:.0} tok/s ({:.2} MB/step), mixed {:.0} tok/s ({:.2} MB/step)",
        mixed.steady_block_rows,
        mixed.steady_burst_blocks,
        mixed.batch,
        mixed.f64_steady.tokens_per_s,
        mixed.f64_steady.bytes_per_step / 1e6,
        mixed.bf16_steady.tokens_per_s,
        mixed.bf16_steady.bytes_per_step / 1e6,
        mixed.mixed_steady.tokens_per_s,
        mixed.mixed_steady.bytes_per_step / 1e6,
    );
    let sw = &report.decode_sliding_window;
    println!(
        "sliding-window eviction @ batch {} (window {} x {} rows): retain-all {:.0} decode tok/s \
         ({:.2} MB/step, arena {}), windowed {:.0} decode tok/s ({:.2} MB/step, arena {}), \
         {} rows evicted/seq",
        sw.batch,
        sw.window_blocks,
        sw.block_rows,
        sw.retain_all.decode_tokens_per_s,
        sw.retain_all.bytes_per_step / 1e6,
        sw.retain_arena_blocks,
        sw.sliding.decode_tokens_per_s,
        sw.sliding.bytes_per_step / 1e6,
        sw.sliding_arena_blocks,
        sw.evicted_rows,
    );
    let ps = &report.prefix_sharing;
    for p in &ps.points {
        println!(
            "shared-block scoring ({} x {} panel, {} queries): per-query GEMV {:.3} ms, \
             multi sweep {:.3} ms ({:.2}x), bitwise {}",
            ps.n_rows,
            ps.d,
            p.queries,
            p.gemv_ms,
            p.multi_ms,
            p.speedup(),
            p.bitwise_match,
        );
    }

    let path = "BENCH_kernels.json";
    match std::fs::write(path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!();
}

/// Runs the live fault-injection campaigns against the serving engine
/// and writes `BENCH_faults.json`: detection latency, localization
/// accuracy, and recovery cost under batched decode load.
fn fault_benchmarks(quick: bool) {
    println!("{}", "=".repeat(78));
    println!("== fault_tolerance (live injection: detect / localize / recover)");
    println!("{}", "=".repeat(78));
    let report = fa_bench::faults::measure(quick);

    let mut table = TablePrinter::new(vec![
        "site",
        "trials",
        "detected",
        "fp",
        "silent",
        "masked",
        "online",
        "scrub",
        "steps-to-verdict",
        "localized",
        "accuracy %",
        "recoveries",
        "rows",
        "divergent",
    ]);
    for s in &report.sites {
        let st = &s.stats;
        table.row(vec![
            format!("{:?}", s.site),
            format!("{}", st.total()),
            format!("{}", st.base.detected),
            format!("{}", st.base.false_positive),
            format!("{}", st.base.silent),
            format!("{}", st.base.masked),
            format!("{}", st.online_detected),
            format!("{}", st.scrub_detected),
            format!("{:.2}", st.mean_steps_to_verdict()),
            format!("{}", st.localized),
            format!("{:.1}", st.localization_accuracy_pct()),
            format!("{}", st.recoveries),
            format!("{}", st.recovered_rows),
            format!("{}", st.post_recovery_divergent),
        ]);
    }
    print!("{}", table.render());
    println!(
        "load: batch {} x prefill {} + {} decode steps, {} trials/site; \
         audit {:.4} ms, block recovery {:.4} ms ({} rows)",
        report.batch,
        report.prefill,
        report.steps,
        report.trials,
        report.audit_ms,
        report.recover_block_ms,
        report.recovered_rows,
    );
    for leg in &report.policy_sweep {
        let st = &leg.stats;
        println!(
            "  policy {:?}/{:?}: {} trials, {} detected, {} silent, {} localized, \
             {} recoveries, {} divergent, {} evicted-before-detect",
            leg.format,
            leg.eviction,
            st.total(),
            st.base.detected,
            st.base.silent,
            st.localized,
            st.recoveries,
            st.post_recovery_divergent,
            st.evicted_before_detect,
        );
    }
    for leg in &report.scrub_sweep {
        let st = &leg.stats;
        println!(
            "  scrub {} blocks/step (bound {} steps): mean verdict {:.2} steps, \
             worst {} steps, {} online / {} scrub, {} blocks scrubbed",
            leg.blocks_per_step,
            leg.latency_bound_steps,
            st.mean_steps_to_verdict(),
            st.detection_steps_max,
            st.online_detected,
            st.scrub_detected,
            st.scrubbed_blocks,
        );
    }
    for leg in &report.multi_fault {
        let st = &leg.stats;
        println!(
            "  burst k={}: {} flips, {} localized / {} mislocalized ({:.1}%), \
             {} recoveries, {} divergent",
            leg.flips_per_trial,
            st.injected_flips,
            st.localized,
            st.mislocalized,
            st.localization_accuracy_pct(),
            st.recoveries,
            st.post_recovery_divergent,
        );
    }

    let sp = &report.shared_prefix_drill;
    println!(
        "  shared-prefix drill ({} prefix tokens, share {:.0}%, speculation gamma={}): \
         {} trials ({} drained), {} landed, {} alarms / {} scrub findings, \
         {} blocks repaired, {} quarantined / {} recovered, fidelity {:.2}% \
         ({} tokens, {} divergent)",
        report.shared_prefix_tokens,
        report.shared_prefix_share_prob * 100.0,
        report.shared_prefix_gamma,
        sp.trials,
        sp.drained_trials,
        sp.injections_landed,
        sp.online_alarms,
        sp.scrub_findings,
        sp.repaired_blocks,
        sp.quarantined_requests,
        sp.recovered_requests,
        sp.token_fidelity_pct(),
        sp.tokens_compared,
        sp.tokens_divergent,
    );

    let path = "BENCH_faults.json";
    match std::fs::write(path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!();
}

/// Runs the SLO-aware serving legs (clean / fault drill / pressure
/// preemption) and writes `BENCH_serving.json`.
fn serving_benchmarks(quick: bool) {
    println!("{}", "=".repeat(78));
    println!("== slo_serving (clean / fault drill / memory-pressure preemption)");
    println!("{}", "=".repeat(78));
    let report = fa_bench::serving::measure(quick);

    let mut table = TablePrinter::new(vec![
        "leg",
        "steps",
        "finished",
        "shed",
        "ttft p50 ms",
        "ttft p99 ms",
        "tok p99 ms",
        "goodput/SLO",
        "demote",
        "preempt",
        "quarantine",
    ]);
    for (name, leg) in [("clean", &report.clean), ("preemption", &report.preemption)] {
        let s = &leg.summary;
        table.row(vec![
            name.to_string(),
            format!("{}", leg.steps_run),
            format!("{}", s.finished),
            format!("{}", s.shed),
            format!("{:.4}", leg.ttft_p50_ms()),
            format!("{:.4}", leg.ttft_p99_ms()),
            format!("{:.4}", leg.per_token_p99_ms()),
            format!("{:.3}", leg.goodput_under_slo()),
            format!("{}", s.demotions),
            format!("{}", s.preemptions),
            format!("{}", s.quarantines),
        ]);
    }
    print!("{}", table.render());
    for (name, st) in [
        ("value drill", &report.value_drill),
        ("key drill", &report.key_drill),
    ] {
        println!(
            "  {name}: {} trials, {} landed, {} alarms / {} scrub findings, \
             {} quarantines, detection {:.1}%, recovery {:.1}%, fidelity {:.2}%",
            st.trials,
            st.injections_landed,
            st.online_alarms,
            st.scrub_findings,
            st.quarantines,
            st.detection_pct(),
            st.recovery_pct(),
            st.token_fidelity_pct(),
        );
    }
    println!(
        "SLO: TTFT <= {} steps, inter-token <= {} steps; load window {} steps",
        report.slo.ttft_steps, report.slo.per_token_steps, report.load_steps
    );
    let ps = &report.prefix_sharing;
    println!(
        "prefix sharing ({}+{} tokens, {}-row blocks):",
        ps.prefix_tokens, ps.suffix_tokens, ps.block_rows
    );
    for p in &ps.points {
        println!(
            "  k={:<2} | prefill {:.0} vs {:.0} tok/s (shared vs independent) | arena {} vs {} \
             blocks | decode {:.0} vs {:.0} tok/s (batched vs GEMV, {} tiles, bitwise {})",
            p.readers,
            p.shared_prefill_tokens_per_s,
            p.unshared_prefill_tokens_per_s,
            p.shared_arena_blocks,
            p.unshared_arena_blocks,
            p.shared_decode_tokens_per_s,
            p.gemv_decode_tokens_per_s,
            p.shared_score_tiles,
            p.decode_bitwise_match,
        );
    }

    let sp = &report.speculative;
    println!(
        "speculative decode (batch {}, prefill {}, {} windows, draft-and-verify vs sequential twin):",
        sp.batch, sp.prefill_tokens, sp.windows
    );
    for p in &sp.points {
        println!(
            "  gamma={} alpha={:.1} | measured accept {:.2} | {:.0} vs {:.0} tok/s \
             (spec vs sequential, {:.2}x) | {:.2} vs {:.2} MB/step | bitwise {}",
            p.gamma,
            p.acceptance_rate,
            p.measured_acceptance,
            p.tokens_per_s,
            p.sequential_tokens_per_s,
            p.tokens_per_s / p.sequential_tokens_per_s,
            p.bytes_per_step / 1e6,
            p.sequential_bytes_per_step / 1e6,
            p.decode_bitwise_match,
        );
    }

    let path = "BENCH_serving.json";
    match std::fs::write(path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!();
}

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let quick = passthrough.iter().any(|a| a == "--quick");
    kernel_benchmarks(quick);
    fault_benchmarks(quick);
    serving_benchmarks(quick);
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .to_path_buf();

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("{}", "=".repeat(78));
        println!("== {name}");
        println!("{}", "=".repeat(78));
        let status = Command::new(exe_dir.join(name)).args(&passthrough).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("{name} failed to launch: {e} (build with `cargo build --release -p fa-bench` first)");
                failures.push(*name);
            }
        }
        println!();
    }
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
