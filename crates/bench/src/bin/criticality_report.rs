//! **Extension experiment** (the paper's stated future work, §IV-B
//! closing paragraph): are the injected faults actually *critical* for
//! the LLM application?
//!
//! Each campaign injects one bit flip, classifies it (Table I
//! categories), and additionally propagates the faulty attention output
//! through a synthetic readout head, measuring logit KL divergence and
//! top-1 decision flips. The interesting quantities:
//!
//! * what fraction of *Detected* faults were actually critical (the
//!   checker's precision against application-level impact);
//! * what fraction of *Silent* faults were critical (the residual risk
//!   Flash-ABFT leaves on the table).
//!
//! Usage: `cargo run --release -p fa-bench --bin criticality_report`
//! (`--quick`, `--campaigns N`).

use fa_accel_sim::config::AcceleratorConfig;
use fa_accel_sim::Accelerator;
use fa_bench::{campaign_count_from_args, TablePrinter};
use fa_fault::campaign::CampaignSpec;
use fa_fault::{classify, CriticalityProbe, DetectionCriterion, FaultCategory};
use fa_models::{LlmModel, Workload, WorkloadSpec};
use fa_numerics::Tolerance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Default, Clone, Copy)]
struct Bucket {
    count: u64,
    critical: u64,
    kl_sum: f64,
    flips: u64,
}

fn main() {
    let campaigns = campaign_count_from_args(4_000, 500);
    let model = LlmModel::Llama31.config();
    let workload = Workload::generate(&model, WorkloadSpec::paper(2024));
    let accel_cfg = AcceleratorConfig::new(16, model.head_dim);
    let accel = Accelerator::new(accel_cfg);
    let golden = accel.run(&workload.q, &workload.k, &workload.v);
    let probe = CriticalityProbe::new(model.head_dim, 64, 555);
    let spec = CampaignSpec::new(accel_cfg, campaigns, 31_415)
        .with_criterion(DetectionCriterion::ChecksumDiscrepancy);
    let kl_bound = 1e-3;

    println!(
        "Criticality analysis — {} (d={}), N=256, {} single-fault campaigns,",
        model.name, model.head_dim, campaigns
    );
    println!("synthetic 64-class readout head, critical = top-1 flip, invalid logits, or KL > {kl_bound}");
    println!();

    let map = accel.storage_map();
    let total_cycles = accel_cfg.total_cycles(workload.seq_len(), workload.seq_len());
    let golden_f64 = golden.output.to_f64();

    let mut buckets: std::collections::HashMap<FaultCategory, Bucket> =
        std::collections::HashMap::new();
    for i in 0..campaigns {
        let mut rng = StdRng::seed_from_u64(
            spec.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64),
        );
        let (target, bit) = map.locate_bit(rng.gen_range(0..map.total_bits()));
        let fault = fa_accel_sim::fault::Fault {
            cycle: rng.gen_range(0..total_cycles),
            target,
            bit,
        };
        let faulty = accel.run_faulted(
            &workload.q,
            &workload.k,
            &workload.v,
            &[fault],
            Some(&golden),
        );
        let classified = classify(
            &golden,
            &faulty,
            fault.target.is_checker(),
            spec.criterion,
            Tolerance::PAPER,
            1e-6,
        );
        let report = probe.assess(&golden_f64, &faulty.output.to_f64());
        let bucket = buckets.entry(classified.category).or_default();
        bucket.count += 1;
        bucket.kl_sum += if report.max_kl.is_finite() {
            report.max_kl
        } else {
            0.0
        };
        bucket.flips += report.top1_flips as u64;
        if report.is_critical(kl_bound) {
            bucket.critical += 1;
        }
    }

    let mut table = TablePrinter::new(vec![
        "category",
        "faults",
        "critical",
        "critical %",
        "mean max-KL",
        "top-1 flips",
    ]);
    for cat in [
        FaultCategory::Detected,
        FaultCategory::FalsePositive,
        FaultCategory::Silent,
        FaultCategory::Masked,
    ] {
        let b = buckets.get(&cat).copied().unwrap_or_default();
        let pct = if b.count > 0 {
            100.0 * b.critical as f64 / b.count as f64
        } else {
            0.0
        };
        let mean_kl = if b.count > 0 {
            b.kl_sum / b.count as f64
        } else {
            0.0
        };
        table.row(vec![
            format!("{cat:?}"),
            format!("{}", b.count),
            format!("{}", b.critical),
            format!("{pct:.1}%"),
            format!("{mean_kl:.2e}"),
            format!("{}", b.flips),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("reading: Detected faults are frequently application-critical (the checker");
    println!("earns its area); Masked faults are never critical (bit flips below the");
    println!("tolerance do not move the readout); Silent faults quantify residual risk.");
}
