//! Regenerates the **§I/§III overhead comparison**: one fused check for
//! the whole attention versus traditional per-matmul (two-step) ABFT.
//!
//! Reports analytic operation counts, the memory traffic the two-step
//! baseline needs for materializing the N×N score/softmax matrices, an
//! energy-style combined comparison, and measured wall-clock of the
//! software kernels.
//!
//! Usage: `cargo run --release -p fa-bench --bin overhead_report`

use fa_abft::cost::{
    flash2_kernel, flash_abft_overhead, overhead_ratio, scheme_energy, two_step_overhead,
    two_step_score_traffic_bytes, OpWeights,
};
use fa_abft::two_step;
use fa_attention::AttentionConfig;
use fa_bench::TablePrinter;
use fa_numerics::Tolerance;
use fa_tensor::{random::ElementDist, Matrix};
use flash_abft::FlashAbft;
use std::time::Instant;

fn main() {
    println!("Fused vs two-step checking overhead");
    println!();

    // Analytic op counts.
    let mut table = TablePrinter::new(vec![
        "N",
        "d",
        "kernel ops",
        "fused ops",
        "fused %",
        "two-step ops",
        "2-step traffic KiB",
        "energy ratio 2step/fused",
    ]);
    let w = OpWeights::default();
    for (n, d) in [(256u64, 64u64), (256, 128), (1024, 128), (4096, 128)] {
        let kernel = flash2_kernel(n, d);
        let fused = flash_abft_overhead(n, d);
        let two = two_step_overhead(n, d);
        let traffic = two_step_score_traffic_bytes(n, 2);
        let e_fused = scheme_energy(fused, 0, 2, &w, 25.0);
        let e_two = scheme_energy(two, traffic, 2, &w, 25.0);
        table.row(vec![
            format!("{n}"),
            format!("{d}"),
            format!("{}", kernel.total()),
            format!("{}", fused.total()),
            format!("{:.2}%", 100.0 * overhead_ratio(fused, kernel)),
            format!("{}", two.total()),
            format!("{}", traffic / 1024),
            format!("{:.2}x", e_two / e_fused),
        ]);
    }
    print!("{}", table.render());
    println!();

    // Measured wall-clock of the software implementations.
    let n = 256;
    let d = 128;
    let cfg = AttentionConfig::new(d);
    let q = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 1);
    let k = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 2);
    let v = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 3);
    let reps = 5;

    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = fa_attention::flash2::attention(&q, &k, &v, &cfg);
    }
    let unchecked = t0.elapsed() / reps;

    let engine = FlashAbft::new(cfg);
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = engine.compute(&q, &k, &v);
    }
    let fused = t0.elapsed() / reps;

    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = two_step::checked_attention(&q, &k, &v, &cfg, Tolerance::PAPER, None);
    }
    let two = t0.elapsed() / reps;

    println!("measured wall-clock (N={n}, d={d}, f64, mean of {reps}):");
    println!("  unchecked FlashAttention-2 : {unchecked:?}");
    println!(
        "  Flash-ABFT fused check     : {fused:?} ({:+.1}% vs unchecked)",
        100.0 * (fused.as_secs_f64() / unchecked.as_secs_f64() - 1.0)
    );
    println!(
        "  two-step ABFT (materializes S): {two:?} ({:+.1}% vs unchecked)",
        100.0 * (two.as_secs_f64() / unchecked.as_secs_f64() - 1.0)
    );
    println!();
    println!("shape check: fused overhead stays a few percent of the kernel; the two-step");
    println!("baseline pays for materializing and re-reading the N x N score matrix, which");
    println!("the fused online checksum eliminates entirely (the paper's core claim).");
}
