//! Regenerates **Fig. 4**: area and average power of the FlashAttention-2
//! accelerator extended with the Flash-ABFT checker, for 16 and 32
//! parallel query vectors at d = 128, with the checker's contribution
//! broken out.
//!
//! Paper reference points: checker area overhead ≤ 5.3 % (average
//! 4.55 %), power overhead < 1.9 % (average 1.53 %); the shared left
//! checksum adder "contributes less to the total area overhead".
//!
//! Usage: `cargo run --release -p fa-bench --bin fig4_area_power`
//! (`--no-shared` replicates the sumrow tree per block — the ablation;
//! `--activity` scales power by switching activity measured from an LLM
//! workload run, the analogue of the paper's PowerPro methodology).

use fa_accel_sim::activity::{activity_scaled_power, measure_activity};
use fa_accel_sim::area::AreaReport;
use fa_accel_sim::components::ComponentCosts;
use fa_accel_sim::config::AcceleratorConfig;
use fa_accel_sim::power::PowerReport;
use fa_bench::{has_flag, TablePrinter};
use fa_models::{LlmModel, Workload, WorkloadSpec};

fn main() {
    let shared = !has_flag("--no-shared");
    let use_activity = has_flag("--activity");
    let costs = ComponentCosts::default();
    let d = 128;
    let keys_per_pass = 256;

    println!("Fig. 4 reproduction — area & power, d = {d}, 28 nm-relative units");
    println!(
        "sumrow adder tree: {}",
        if shared {
            "shared across blocks (Fig. 3)"
        } else {
            "replicated per block (ablation)"
        }
    );
    println!();

    let mut area_table = TablePrinter::new(vec![
        "queries",
        "kernel um^2",
        "checker um^2",
        "total um^2",
        "checker share",
    ]);
    let mut power_table = TablePrinter::new(vec![
        "queries",
        "kernel mW",
        "checker mW",
        "total mW",
        "checker share",
    ]);

    let mut area_shares = Vec::new();
    let mut power_shares = Vec::new();
    for p in [16u64, 32] {
        let a = AreaReport::compute(p, d, shared, &costs);
        area_shares.push(a.checker_share());
        area_table.row(vec![
            format!("{p}"),
            format!(
                "{:.0}",
                a.kernel_area * fa_accel_sim::components::physical::UM2_PER_AREA_UNIT
            ),
            format!("{:.0}", a.checker_um2()),
            format!("{:.0}", a.total_um2()),
            format!("{:.2}%", 100.0 * a.checker_share()),
        ]);

        let mut w = PowerReport::compute(p, d, keys_per_pass, &costs);
        if use_activity {
            let model = LlmModel::Llama31.config();
            let workload = Workload::generate(
                &model,
                WorkloadSpec {
                    seq_len: 64,
                    ..WorkloadSpec::paper(7)
                },
            );
            let cfg = AcceleratorConfig::new(p as usize, d as usize);
            let profile = measure_activity(&cfg, &workload.q, &workload.k, &workload.v);
            w = activity_scaled_power(&w, &profile, &costs);
            println!(
                "  measured activity ({} blocks): rescale path active {:.1}% of cycles, mean weight {:.3}",
                p,
                100.0 * profile.rescale_active,
                profile.mean_weight
            );
        }
        power_shares.push(w.checker_share());
        power_table.row(vec![
            format!("{p}"),
            format!("{:.2}", w.total_mw() - w.checker_mw()),
            format!("{:.2}", w.checker_mw()),
            format!("{:.2}", w.total_mw()),
            format!("{:.2}%", 100.0 * w.checker_share()),
        ]);
    }

    println!("Area (paper: <=5.3% overhead, avg 4.55%)");
    print!("{}", area_table.render());
    println!(
        "average checker area share: {:.2}%",
        100.0 * (area_shares[0] + area_shares[1]) / 2.0
    );
    println!();
    println!("Average power (paper: <1.9% overhead, avg 1.53%)");
    print!("{}", power_table.render());
    println!(
        "average checker power share: {:.2}%",
        100.0 * (power_shares[0] + power_shares[1]) / 2.0
    );
    println!();
    println!(
        "trend check: 32-query share below 16-query share (shared tree amortizes): area {} | power {}",
        area_shares[1] < area_shares[0],
        power_shares[1] < power_shares[0],
    );
}
