//! **Coverage comparison** across checking techniques (paper §I's
//! positioning): where in the attention pipeline can each detector see?
//!
//! Injects controlled corruptions at three pipeline points — the score
//! matrix, the softmax output, and the final output — and reports which
//! of the three checkers raises an alarm:
//!
//! * two-step ABFT (per-matmul checks, the "traditional" baseline);
//! * ATTNChecker-style extreme-value scanning;
//! * Flash-ABFT (the fused attention-level checksum).
//!
//! Usage: `cargo run --release -p fa-bench --bin coverage_report`

use fa_abft::extreme::ExtremeChecker;
use fa_abft::two_step::{self, InjectionPoint};
use fa_attention::AttentionConfig;
use fa_bench::TablePrinter;
use fa_numerics::Tolerance;
use fa_tensor::{random::ElementDist, Matrix};
use flash_abft::FlashAbft;

fn main() {
    let n = 64;
    let d = 32;
    let cfg = AttentionConfig::new(d);
    let q = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 1);
    let k = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 2);
    let v = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 3);
    let trials = 200;
    let delta = 0.2;

    println!(
        "Detector coverage by injection point — N={n}, d={d}, {trials} trials/point, delta={delta}"
    );
    println!();

    let mut table = TablePrinter::new(vec![
        "injection point",
        "two-step ABFT",
        "extreme-value scan",
        "Flash-ABFT (fused)",
    ]);

    let engine = FlashAbft::new(cfg);
    let extreme = ExtremeChecker::default();

    for (label, point) in [
        ("score matrix (Q*K^T)", InjectionPoint::Scores),
        ("softmax output", InjectionPoint::Softmax),
        ("final output (S*V)", InjectionPoint::Output),
    ] {
        let mut caught = [0u64; 3];
        for t in 0..trials {
            let r = (t * 7) % n;
            let c = (t * 13) % n;
            let c_out = (t * 13) % d;
            let (rr, cc) = match point {
                InjectionPoint::Output => (r, c_out),
                _ => (r, c),
            };
            // Two-step pipeline with the injection; its own checks:
            let report = two_step::checked_attention(
                &q,
                &k,
                &v,
                &cfg,
                Tolerance::PAPER,
                Some((point, rr, cc, delta)),
            );
            if report.any_alarm() {
                caught[0] += 1;
            }
            // Extreme-value scan of the produced output:
            if extreme.any_extreme(&report.output) {
                caught[1] += 1;
            }
            // Flash-ABFT verifying the produced output. In this
            // *post-hoc software* deployment the prediction is recomputed
            // from the clean inputs, so even score-level corruption is
            // exposed (unlike the fused hardware checker, whose score
            // path is shared with the kernel — see DESIGN.md).
            if engine.verify(&q, &k, &v, &report.output).is_alarm() {
                caught[2] += 1;
            }
        }
        let pct = |x: u64| format!("{:.0}%", 100.0 * x as f64 / trials as f64);
        table.row(vec![
            label.to_string(),
            pct(caught[0]),
            pct(caught[1]),
            pct(caught[2]),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("two-step ABFT misses score faults landing after its check window and is");
    println!("blind to softmax corruption by construction; the extreme-value scan only");
    println!("fires on INF/NaN (never here). Post-hoc Flash-ABFT verification predicts the");
    println!("checksum from clean inputs and covers all three points with ONE comparison.");
    println!("(In the fused hardware checker the score path is shared with the kernel, so");
    println!("score-register faults are coherent there — see DESIGN.md finding #1.)");
}
