//! # fa-bench
//!
//! Benchmark harness regenerating every table and figure of the
//! Flash-ABFT paper. Each experiment is a binary (see DESIGN.md's
//! experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig4_area_power` | Fig. 4 — area & power with checker share |
//! | `table1_fault_detection` | Table I — single-fault detection accuracy |
//! | `multi_fault` | §IV-B — 1–5 faults per campaign |
//! | `threshold_sweep` | §IV-B — the 10⁻⁶ error bound determination |
//! | `overhead_report` | §I/III — fused vs two-step checking cost |
//!
//! Criterion benches (`cargo bench -p fa-bench`) measure kernel and
//! checker throughput: `attention_kernels`, `overhead`, `checksum`.

pub mod faults;
pub mod kernels;
pub mod serving;

/// Simple fixed-width table printer for experiment reports.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a printer with column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TablePrinter {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Parses `--quick` / `--campaigns N` style flags shared by the
/// experiment binaries. Returns the campaign count: `default_n`, reduced
/// to `quick_n` when `--quick` is present, or an explicit `--campaigns`.
pub fn campaign_count_from_args(default_n: usize, quick_n: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--campaigns") {
        if let Some(n) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            return n;
        }
    }
    if args.iter().any(|a| a == "--quick") {
        quick_n
    } else {
        default_n
    }
}

/// Whether a flag is present on the command line.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TablePrinter::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "22222"]);
        let s = t.render();
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| name  | value |"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_mismatch_panics() {
        let mut t = TablePrinter::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn campaign_count_default() {
        // No flags in the test harness invocation: default applies.
        assert_eq!(campaign_count_from_args(500, 50), 500);
    }
}
