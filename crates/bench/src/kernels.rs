//! Kernel-layer benchmark: the perf trajectory record for the blocked
//! matmul, parallel FlashAttention-2, and the fused online checksum.
//!
//! [`measure`] times each kernel against its frozen seed baseline and
//! [`KernelBenchReport::to_json`] renders the result as the
//! `BENCH_kernels.json` artifact `run_all` emits, so speedups are tracked
//! across PRs on whatever host CI runs on (`host_threads` is recorded —
//! the parallel-attention speedup is only meaningful on multi-core hosts).

use fa_attention::{flash2, AttentionConfig};
use fa_numerics::BF16;
use fa_tensor::{ops, random::ElementDist, Matrix};
use std::time::Instant;

/// One kernel-vs-baseline measurement.
#[derive(Clone, Copy, Debug)]
pub struct KernelTiming {
    /// Baseline (seed implementation) time, milliseconds.
    pub baseline_ms: f64,
    /// Optimized kernel time, milliseconds.
    pub optimized_ms: f64,
}

impl KernelTiming {
    /// Baseline time over optimized time.
    pub fn speedup(&self) -> f64 {
        self.baseline_ms / self.optimized_ms
    }
}

/// The full kernel-layer benchmark result.
#[derive(Clone, Debug)]
pub struct KernelBenchReport {
    /// Worker threads available to the rayon pool on this host.
    pub host_threads: usize,
    /// Square matmul problem size.
    pub matmul_n: usize,
    /// BF16 datapath matmul (per-MAC rounding) vs the seed triple loop.
    pub matmul_bf16: KernelTiming,
    /// f64 matmul vs the seed triple loop.
    pub matmul_f64: KernelTiming,
    /// BF16 matmul with widening f64 accumulation vs its seed loop.
    pub matmul_f64_acc_bf16: KernelTiming,
    /// Blocked BF16 matmul throughput, GFLOP/s (2·n³ ops).
    pub matmul_bf16_gflops: f64,
    /// FlashAttention-2 sequence length.
    pub flash2_seq_len: usize,
    /// Parallel flash2 vs the serial kernel (≈1.0 on single-core hosts).
    pub flash2: KernelTiming,
    /// Parallel flash2 throughput, tokens/s.
    pub flash2_tokens_per_s: f64,
    /// Fused checksum kernel time vs unchecked flash2 (same pass count).
    pub fused_checksum: KernelTiming,
}

impl KernelBenchReport {
    /// Fused-checksum overhead over unchecked flash2, percent.
    pub fn checksum_overhead_pct(&self) -> f64 {
        (self.fused_checksum.optimized_ms / self.fused_checksum.baseline_ms - 1.0) * 100.0
    }

    /// Renders the report as a JSON object (written by hand — the offline
    /// serde stand-in has no format backend).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"host_threads\": {},\n  \"matmul\": {{\n    \"n\": {},\n    \
             \"bf16\": {},\n    \"f64\": {},\n    \"f64_acc_bf16\": {},\n    \
             \"bf16_gflops\": {:.3}\n  }},\n  \"flash2\": {{\n    \"seq_len\": {},\n    \
             \"parallel_vs_serial\": {},\n    \"tokens_per_s\": {:.1}\n  }},\n  \
             \"fused_checksum\": {{\n    \"vs_unchecked_flash2\": {},\n    \
             \"overhead_pct\": {:.2}\n  }}\n}}\n",
            self.host_threads,
            self.matmul_n,
            timing_json(&self.matmul_bf16),
            timing_json(&self.matmul_f64),
            timing_json(&self.matmul_f64_acc_bf16),
            self.matmul_bf16_gflops,
            self.flash2_seq_len,
            timing_json(&self.flash2),
            self.flash2_tokens_per_s,
            timing_json(&self.fused_checksum),
            self.checksum_overhead_pct(),
        )
    }
}

fn timing_json(t: &KernelTiming) -> String {
    format!(
        "{{ \"baseline_ms\": {:.3}, \"optimized_ms\": {:.3}, \"speedup\": {:.2} }}",
        t.baseline_ms,
        t.optimized_ms,
        t.speedup()
    )
}

/// Best-of-`reps` wall-clock milliseconds for `f` (after one warmup call).
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Runs the kernel-layer benchmark. `quick` shrinks problem sizes for CI
/// smoke runs.
pub fn measure(quick: bool) -> KernelBenchReport {
    let (n, seq_len, reps) = if quick { (128, 256, 2) } else { (256, 1024, 3) };

    let af = Matrix::<f64>::random_seeded(n, n, ElementDist::default(), 1);
    let bf = Matrix::<f64>::random_seeded(n, n, ElementDist::default(), 2);
    let ab: Matrix<BF16> = af.cast();
    let bb: Matrix<BF16> = bf.cast();

    let matmul_bf16 = KernelTiming {
        baseline_ms: time_ms(reps, || ops::matmul_reference(&ab, &bb)),
        optimized_ms: time_ms(reps, || ab.matmul(&bb)),
    };
    let matmul_f64 = KernelTiming {
        baseline_ms: time_ms(reps, || ops::matmul_reference(&af, &bf)),
        optimized_ms: time_ms(reps, || af.matmul(&bf)),
    };
    let matmul_f64_acc_bf16 = KernelTiming {
        baseline_ms: time_ms(reps, || ops::matmul_f64_acc_reference(&ab, &bb)),
        optimized_ms: time_ms(reps, || ops::matmul_f64_acc(&ab, &bb)),
    };
    let flops = 2.0 * (n as f64).powi(3);
    let matmul_bf16_gflops = flops / (matmul_bf16.optimized_ms * 1e-3) / 1e9;

    let d = 64;
    let q = Matrix::<f64>::random_seeded(seq_len, d, ElementDist::default(), 10);
    let k = Matrix::<f64>::random_seeded(seq_len, d, ElementDist::default(), 11);
    let v = Matrix::<f64>::random_seeded(seq_len, d, ElementDist::default(), 12);
    let cfg = AttentionConfig::new(d);

    let flash2_timing = KernelTiming {
        baseline_ms: time_ms(reps, || flash2::attention_serial(&q, &k, &v, &cfg)),
        optimized_ms: time_ms(reps, || flash2::attention(&q, &k, &v, &cfg)),
    };
    let flash2_tokens_per_s = seq_len as f64 / (flash2_timing.optimized_ms * 1e-3);

    let fused_checksum = KernelTiming {
        baseline_ms: flash2_timing.optimized_ms,
        optimized_ms: time_ms(reps, || flash_abft::flash2_with_checksum(&q, &k, &v, &cfg)),
    };

    KernelBenchReport {
        host_threads: rayon::current_num_threads(),
        matmul_n: n,
        matmul_bf16,
        matmul_f64,
        matmul_f64_acc_bf16,
        matmul_bf16_gflops,
        flash2_seq_len: seq_len,
        flash2: flash2_timing,
        flash2_tokens_per_s,
        fused_checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_produces_sane_report() {
        let report = measure(true);
        assert!(report.matmul_bf16.baseline_ms > 0.0);
        assert!(report.matmul_bf16.optimized_ms > 0.0);
        assert!(report.flash2_tokens_per_s > 0.0);
        assert!(report.checksum_overhead_pct().is_finite());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = measure(true);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "host_threads",
            "bf16_gflops",
            "tokens_per_s",
            "overhead_pct",
            "speedup",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
