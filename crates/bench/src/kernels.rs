//! Kernel-layer benchmark: the perf trajectory record for the blocked
//! matmul, parallel FlashAttention-2, the fused online checksum, the SIMD
//! dot/axpy inner kernels and the batched KV-cache decode engine.
//!
//! [`measure`] times each kernel against its frozen seed baseline and
//! [`KernelBenchReport::to_json`] renders the result as the
//! `BENCH_kernels.json` artifact `run_all` emits, so speedups are tracked
//! across PRs on whatever host CI runs on (`host_threads` is recorded —
//! parallel speedups are only meaningful on multi-core hosts). Quick mode
//! (CI smoke) shrinks problem sizes and drops the largest matmul/flash2
//! points; the canonical committed JSON comes from a full run.

use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
use fa_attention::decode::DecodeSession;
use fa_attention::multihead::MultiHeadConfig;
use fa_attention::{flash2, AttentionConfig, HeadTopology};
use fa_numerics::BF16;
use fa_tensor::{ops, random::ElementDist, Matrix};
use flash_abft::decode::CheckedDecodeSession;
use std::time::Instant;

/// One kernel-vs-baseline measurement.
#[derive(Clone, Copy, Debug)]
pub struct KernelTiming {
    /// Baseline (seed implementation) time, milliseconds.
    pub baseline_ms: f64,
    /// Optimized kernel time, milliseconds.
    pub optimized_ms: f64,
}

impl KernelTiming {
    /// Baseline time over optimized time.
    pub fn speedup(&self) -> f64 {
        self.baseline_ms / self.optimized_ms
    }
}

/// Matmul timings at one problem size.
#[derive(Clone, Debug)]
pub struct MatmulPoint {
    /// Square problem size.
    pub n: usize,
    /// BF16 datapath matmul (per-MAC rounding) vs the seed triple loop.
    pub bf16: KernelTiming,
    /// f64 matmul vs the seed triple loop.
    pub f64_mm: KernelTiming,
    /// BF16 matmul with widening f64 accumulation vs its seed loop.
    pub f64_acc_bf16: KernelTiming,
    /// Blocked BF16 matmul throughput, GFLOP/s (2·n³ ops).
    pub bf16_gflops: f64,
}

/// Flash2 + fused-checksum timings at one sequence length.
#[derive(Clone, Debug)]
pub struct Flash2Point {
    /// Sequence length.
    pub seq_len: usize,
    /// Parallel flash2 vs the serial kernel (≈1.0 on single-core hosts).
    pub parallel: KernelTiming,
    /// Parallel flash2 throughput, tokens/s.
    pub tokens_per_s: f64,
    /// Fused checksum kernel time vs unchecked flash2 (same pass count).
    pub fused_checksum: KernelTiming,
}

impl Flash2Point {
    /// Fused-checksum overhead over unchecked flash2, percent.
    pub fn checksum_overhead_pct(&self) -> f64 {
        (self.fused_checksum.optimized_ms / self.fused_checksum.baseline_ms - 1.0) * 100.0
    }
}

/// SIMD dot-product timings vs the seed's sequential add chain.
#[derive(Clone, Debug)]
pub struct DotBench {
    /// Slice length.
    pub len: usize,
    /// f64 slices.
    pub f64_dot: KernelTiming,
    /// BF16 slices (widening conversions inside the kernel).
    pub bf16_dot: KernelTiming,
}

/// Single-sequence decode throughput (the per-sequence serving path).
#[derive(Clone, Debug)]
pub struct DecodeSingle {
    /// Unchecked per-head `DecodeSession` decode, aggregate tokens/s.
    pub unchecked_tokens_per_s: f64,
    /// Checked per-head `CheckedDecodeSession` decode, aggregate tokens/s.
    pub checked_tokens_per_s: f64,
}

/// Batched checked decode vs the per-sequence-loop baseline at one batch
/// size.
#[derive(Clone, Debug)]
pub struct DecodeBatchPoint {
    /// Number of concurrent sequences.
    pub batch: usize,
    /// Per-sequence loop of `CheckedDecodeSession`s (today's checked
    /// serving path), milliseconds for the whole decode.
    pub baseline_ms: f64,
    /// `DecodeBatch::step_all` (checked), milliseconds.
    pub batched_ms: f64,
    /// Baseline aggregate throughput, tokens/s.
    pub baseline_tokens_per_s: f64,
    /// Batched aggregate throughput, tokens/s.
    pub batched_tokens_per_s: f64,
    /// Checked `step_all` vs `step_all_unchecked`, percent.
    pub checked_overhead_pct: f64,
}

impl DecodeBatchPoint {
    /// Baseline time over batched time.
    pub fn speedup(&self) -> f64 {
        self.baseline_ms / self.batched_ms
    }
}

/// One cache-format leg of the continuous-batching sweep.
#[derive(Clone, Copy, Debug)]
pub struct ContinuousCachePoint {
    /// End-to-end time: initial batched admission, every decode step,
    /// and all mid-flight retire+admit churn, milliseconds.
    pub total_ms: f64,
    /// Aggregate serving throughput: decode tokens **plus** admitted
    /// prompt tokens (all checksum-covered), per second.
    pub tokens_per_s: f64,
    /// Decode tokens alone per second (comparable to `decode_batched`,
    /// though here the time also pays for churn admissions).
    pub decode_tokens_per_s: f64,
    /// Mean analytic KV bytes streamed per decode step
    /// (`Σ_live seq_len · width · 2 sides · elem_bytes`) — the
    /// bandwidth-bound quantity the cache element format halves.
    pub bytes_per_step: f64,
}

/// Continuous batching at serving scale: a steady-state batch decoded
/// under the fused checksum with periodic mid-flight retire+admit churn,
/// prompts checked through the batched prefill, and retired sequences'
/// cache blocks recycled through the free list.
#[derive(Clone, Debug)]
pub struct DecodeContinuous {
    /// Steady-state live sequences.
    pub batch: usize,
    /// Decode steps timed.
    pub steps: usize,
    /// Every `churn_every` steps the oldest sequence is retired and a
    /// fresh prompt admitted in its place.
    pub churn_every: usize,
    /// f64 KV cache leg.
    pub f64_cache: ContinuousCachePoint,
    /// BF16 KV cache leg (half the streamed bytes per step).
    pub bf16_cache: ContinuousCachePoint,
    /// Block claims served from the free list during one run — evidence
    /// the churn reuses retired sequences' blocks.
    pub recycled_blocks: usize,
    /// Arena size (blocks) at the end of a run: bounded by live tokens,
    /// not total traffic.
    pub arena_blocks: usize,
}

/// The mixed-format policy sweep: prompt-heavy continuous serving
/// (chunked admission interleaved with decode, retire+enqueue churn)
/// measured under the three `KvFormat` policies on the same traffic —
/// pure f64 (fast admission, heavy decode bytes), pure BF16 (light
/// decode bytes), and `Mixed` (f64 prefill burst → BF16 steady state,
/// the both-ends lever).
#[derive(Clone, Debug)]
pub struct DecodeMixedFormat {
    /// Steady-state live sequences.
    pub batch: usize,
    /// Decode steps timed.
    pub steps: usize,
    /// Every `churn_every` steps the oldest sequence retires and a fresh
    /// prompt is **enqueued** (admitted chunk by chunk by later steps).
    pub churn_every: usize,
    /// Prompt tokens each pending prompt advances per step.
    pub prefill_chunk: usize,
    /// Cache block rows (the demotion/eviction granularity).
    pub block_rows: usize,
    /// Full native blocks retained per sequence under `Mixed`.
    pub burst_blocks: usize,
    /// `KvFormat::F64` leg.
    pub f64_cache: ContinuousCachePoint,
    /// `KvFormat::Bf16` leg.
    pub bf16_cache: ContinuousCachePoint,
    /// `KvFormat::Mixed { burst_blocks }` leg.
    pub mixed_cache: ContinuousCachePoint,
    /// Block rows of the steady-decode legs below (the `decode_batched`
    /// / `decode_kv_bf16` committed-point geometry, for apples-to-apples
    /// comparison across PRs).
    pub steady_block_rows: usize,
    /// Burst of the mixed steady leg: 0 = every *full* block demotes as
    /// it ages; the partial block being filled is the f64 burst fresh
    /// tokens ride.
    pub steady_burst_blocks: usize,
    /// Steady-state decode under the `decode_kv_bf16` harness (same
    /// traffic, prefill untimed, decode steps timed — directly comparable
    /// to the committed decode points), per format.
    pub f64_steady: SteadyDecodePoint,
    /// Pure-BF16 steady decode.
    pub bf16_steady: SteadyDecodePoint,
    /// Mixed-format steady decode.
    pub mixed_steady: SteadyDecodePoint,
    /// Rows demoted across the mixed run (summed over live sequences at
    /// the end — evidence the burst actually ages out).
    pub mixed_demoted_rows: usize,
    /// Native + BF16 arena blocks at the end of the mixed run.
    pub mixed_arena_blocks: usize,
    /// BF16-arena blocks at the end of the mixed run.
    pub mixed_arena_blocks16: usize,
}

/// One steady-state decode measurement: aggregate tokens/s over pure
/// batched decode steps, plus the mean analytic KV bytes those steps
/// stream.
#[derive(Clone, Copy, Debug)]
pub struct SteadyDecodePoint {
    /// Aggregate decode throughput, tokens/s.
    pub tokens_per_s: f64,
    /// Mean analytic KV bytes streamed per decode step.
    pub bytes_per_step: f64,
}

/// The sliding-window eviction sweep: long-running decode with and
/// without `EvictionPolicy::SlidingWindow`. Eviction masks and frees
/// out-of-window blocks, so the windowed leg streams a **bounded**
/// number of bytes per step and holds a bounded arena while the
/// retain-all leg keeps growing with the history.
#[derive(Clone, Debug)]
pub struct DecodeSlidingWindow {
    /// Live sequences.
    pub batch: usize,
    /// Decode steps timed.
    pub steps: usize,
    /// Cache block rows.
    pub block_rows: usize,
    /// Whole blocks retained behind the newest position.
    pub window_blocks: usize,
    /// Full-history leg (`RetainAll`, no mask).
    pub retain_all: ContinuousCachePoint,
    /// Windowed leg (`SlidingWindow { window_blocks }`).
    pub sliding: ContinuousCachePoint,
    /// Rows evicted per sequence by the end of the windowed run.
    pub evicted_rows: usize,
    /// Arena blocks held by the retain-all leg at the end.
    pub retain_arena_blocks: usize,
    /// Arena blocks held by the windowed leg at the end (bounded).
    pub sliding_arena_blocks: usize,
}

/// One group-size leg of the GQA decode sweep: the same query-head count
/// and traffic, with `kv_heads = query_heads / group_size` shared K/V
/// streams in the paged cache.
#[derive(Clone, Copy, Debug)]
pub struct DecodeGqaPoint {
    /// Query heads sharing each kv head (1 = the MHA reference leg).
    pub group_size: usize,
    /// KV heads the cache stores (`query_heads / group_size`).
    pub kv_heads: usize,
    /// Checked `step_all` time for the whole decode, milliseconds.
    pub checked_ms: f64,
    /// Aggregate decode throughput, tokens/s.
    pub tokens_per_s: f64,
    /// Checked decode time with the same topology over a BF16 KV cache
    /// (the grouped + narrowed serving configuration), milliseconds.
    pub bf16_checked_ms: f64,
    /// BF16-cache aggregate decode throughput, tokens/s.
    pub bf16_tokens_per_s: f64,
    /// Mean analytic KV bytes streamed per decode step — divided by
    /// `group_size` relative to the MHA leg, since the cache holds one
    /// stream per kv head.
    pub bytes_per_step: f64,
    /// Arena blocks at the end of the run (block *rows* are shared; each
    /// row is `kv_heads · head_dim` wide, so arena bytes shrink with the
    /// group too).
    pub arena_blocks: usize,
}

/// The GQA-native serving sweep: batch-32 checked decode at fixed query
/// heads across group sizes. On a KV-bandwidth-bound host the grouped
/// legs win by streaming `1/group_size` of the bytes per step while
/// computing the same number of query-head passes.
#[derive(Clone, Debug)]
pub struct DecodeGqa {
    /// Concurrent sequences.
    pub batch: usize,
    /// Decode steps timed.
    pub steps: usize,
    /// Prompt tokens prefilled before timing.
    pub prefill: usize,
    /// Query heads in every leg.
    pub query_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// One leg per group size (1, 4, 8), interleaved round-robin.
    pub points: Vec<DecodeGqaPoint>,
}

/// Checked batched decode with a BF16 KV cache vs the f64 cache (the
/// halved-bandwidth serving configuration).
#[derive(Clone, Debug)]
pub struct DecodeKvBf16 {
    /// Number of concurrent sequences.
    pub batch: usize,
    /// Checked `step_all` with the f64 cache, milliseconds.
    pub f64_cache_ms: f64,
    /// Checked `step_all` with the BF16 cache, milliseconds.
    pub bf16_cache_ms: f64,
    /// BF16-cache aggregate throughput, tokens/s.
    pub bf16_tokens_per_s: f64,
}

impl DecodeKvBf16 {
    /// f64-cache time over BF16-cache time.
    pub fn speedup(&self) -> f64 {
        self.f64_cache_ms / self.bf16_cache_ms
    }
}

/// Decode benchmark geometry (shared by single and batched sections).
#[derive(Clone, Copy, Debug)]
pub struct DecodeShape {
    /// Per-head dimension.
    pub head_dim: usize,
    /// Heads per sequence.
    pub heads: usize,
    /// Prompt tokens pre-filled before timing.
    pub prefill: usize,
    /// Decode steps timed.
    pub steps: usize,
}

/// Shared-block scoring at one packed-query count: one K-panel sweep
/// feeding all queries ([`ops::dot_then_scale_rows_multi`], rows outer /
/// queries inner) vs one [`ops::dot_then_scale_rows`] GEMV sweep per
/// query — the kernel under the shared-prefix decode win.
#[derive(Clone, Copy, Debug)]
pub struct MultiScorePoint {
    /// Queries packed into the multi sweep (readers of the block).
    pub queries: usize,
    /// Per-query GEMV sweeps, milliseconds.
    pub gemv_ms: f64,
    /// Single rows-outer multi sweep, milliseconds.
    pub multi_ms: f64,
    /// Both kernels produced bit-identical score panels (the sharing
    /// contract: same `dot_f64` per (query, row)).
    pub bitwise_match: bool,
}

impl MultiScorePoint {
    /// GEMV time over multi-sweep time.
    pub fn speedup(&self) -> f64 {
        self.gemv_ms / self.multi_ms
    }
}

/// The prefix-sharing kernel sweep: score a fixed K panel against 1, 4,
/// 16, and 32 packed queries both ways.
#[derive(Clone, Debug)]
pub struct PrefixSharingKernel {
    /// Query / key row width.
    pub d: usize,
    /// Rows in the scored K panel.
    pub n_rows: usize,
    /// Sweeps per timed call (amortizes timer overhead).
    pub iters: usize,
    /// One measurement per packed-query count.
    pub points: Vec<MultiScorePoint>,
}

/// The full kernel-layer benchmark result.
#[derive(Clone, Debug)]
pub struct KernelBenchReport {
    /// Worker threads available to the rayon pool on this host.
    pub host_threads: usize,
    /// Matmul kernels at each measured size (128 and, in full runs, 256).
    pub matmul: Vec<MatmulPoint>,
    /// Flash2 + fused checksum at each measured sequence length.
    pub flash2: Vec<Flash2Point>,
    /// SIMD dot product vs the sequential seed loop.
    pub dot_simd: DotBench,
    /// Decode geometry.
    pub decode_shape: DecodeShape,
    /// Single-sequence decode throughput.
    pub decode_single: DecodeSingle,
    /// Batched decode at each batch size.
    pub decode_batched: Vec<DecodeBatchPoint>,
    /// BF16-KV-cache decode at the largest batch size.
    pub decode_kv_bf16: DecodeKvBf16,
    /// Continuous batching with admit/retire churn at the largest batch
    /// size.
    pub decode_continuous: DecodeContinuous,
    /// KV-format policy sweep under prompt-heavy chunked-admission
    /// serving.
    pub decode_mixed_format: DecodeMixedFormat,
    /// Sliding-window eviction vs retain-all decode.
    pub decode_sliding_window: DecodeSlidingWindow,
    /// GQA decode sweep across group sizes at fixed query heads.
    pub decode_gqa: DecodeGqa,
    /// Shared-block multi-query scoring vs per-query GEMV.
    pub prefix_sharing: PrefixSharingKernel,
}

impl KernelBenchReport {
    /// Renders the report as a JSON object (written by hand — the offline
    /// serde stand-in has no format backend).
    pub fn to_json(&self) -> String {
        let matmul: Vec<String> = self
            .matmul
            .iter()
            .map(|p| {
                format!(
                    "    {{\n      \"n\": {},\n      \"bf16\": {},\n      \"f64\": {},\n      \
                     \"f64_acc_bf16\": {},\n      \"bf16_gflops\": {:.3}\n    }}",
                    p.n,
                    timing_json(&p.bf16),
                    timing_json(&p.f64_mm),
                    timing_json(&p.f64_acc_bf16),
                    p.bf16_gflops,
                )
            })
            .collect();
        let flash2: Vec<String> = self
            .flash2
            .iter()
            .map(|p| {
                format!(
                    "    {{\n      \"seq_len\": {},\n      \"parallel_vs_serial\": {},\n      \
                     \"tokens_per_s\": {:.1},\n      \"fused_checksum\": {{ \
                     \"vs_unchecked_flash2\": {}, \"overhead_pct\": {:.2} }}\n    }}",
                    p.seq_len,
                    timing_json(&p.parallel),
                    p.tokens_per_s,
                    timing_json(&p.fused_checksum),
                    p.checksum_overhead_pct(),
                )
            })
            .collect();
        let decode: Vec<String> = self
            .decode_batched
            .iter()
            .map(|p| {
                format!(
                    "      {{ \"batch\": {}, \"baseline_ms\": {:.3}, \"batched_ms\": {:.3}, \
                     \"baseline_tokens_per_s\": {:.1}, \"batched_tokens_per_s\": {:.1}, \
                     \"speedup\": {:.2}, \"checked_overhead_pct\": {:.2} }}",
                    p.batch,
                    p.baseline_ms,
                    p.batched_ms,
                    p.baseline_tokens_per_s,
                    p.batched_tokens_per_s,
                    p.speedup(),
                    p.checked_overhead_pct,
                )
            })
            .collect();
        let shape = self.decode_shape;
        let continuous_point = |p: &ContinuousCachePoint| {
            format!(
                "{{ \"total_ms\": {:.3}, \"tokens_per_s\": {:.1}, \
                 \"decode_tokens_per_s\": {:.1}, \"bytes_per_step\": {:.0} }}",
                p.total_ms, p.tokens_per_s, p.decode_tokens_per_s, p.bytes_per_step,
            )
        };
        let cont = &self.decode_continuous;
        let mixed = &self.decode_mixed_format;
        let sw = &self.decode_sliding_window;
        let gq = &self.decode_gqa;
        let gqa_points: Vec<String> = gq
            .points
            .iter()
            .map(|p| {
                format!(
                    "      {{ \"group_size\": {}, \"kv_heads\": {}, \"checked_ms\": {:.3}, \
                     \"tokens_per_s\": {:.1}, \"bf16_checked_ms\": {:.3}, \
                     \"bf16_tokens_per_s\": {:.1}, \"bytes_per_step\": {:.0}, \
                     \"arena_blocks\": {} }}",
                    p.group_size,
                    p.kv_heads,
                    p.checked_ms,
                    p.tokens_per_s,
                    p.bf16_checked_ms,
                    p.bf16_tokens_per_s,
                    p.bytes_per_step,
                    p.arena_blocks,
                )
            })
            .collect();
        let ps = &self.prefix_sharing;
        let ps_points: Vec<String> = ps
            .points
            .iter()
            .map(|p| {
                format!(
                    "      {{ \"queries\": {}, \"gemv_ms\": {:.3}, \"multi_ms\": {:.3}, \
                     \"speedup\": {:.2}, \"bitwise_match\": {} }}",
                    p.queries,
                    p.gemv_ms,
                    p.multi_ms,
                    p.speedup(),
                    p.bitwise_match,
                )
            })
            .collect();
        format!(
            "{{\n  \"host_threads\": {},\n  \"matmul\": [\n{}\n  ],\n  \"flash2\": [\n{}\n  ],\n  \
             \"dot_simd\": {{\n    \"len\": {},\n    \"f64\": {},\n    \"bf16\": {}\n  }},\n  \
             \"decode_single\": {{\n    \"head_dim\": {}, \"heads\": {}, \"prefill\": {}, \
             \"steps\": {},\n    \"unchecked_tokens_per_s\": {:.1},\n    \
             \"checked_tokens_per_s\": {:.1}\n  }},\n  \"decode_batched\": {{\n    \
             \"head_dim\": {}, \"heads\": {}, \"prefill\": {}, \"steps\": {},\n    \
             \"points\": [\n{}\n    ]\n  }},\n  \"decode_kv_bf16\": {{ \"batch\": {}, \
             \"f64_cache_ms\": {:.3}, \"bf16_cache_ms\": {:.3}, \"speedup\": {:.2}, \
             \"bf16_tokens_per_s\": {:.1} }},\n  \"decode_continuous\": {{\n    \
             \"batch\": {}, \"steps\": {}, \"churn_every\": {}, \"prefill\": {},\n    \
             \"f64\": {},\n    \"bf16\": {},\n    \
             \"recycled_blocks\": {}, \"arena_blocks\": {}\n  }},\n  \
             \"decode_mixed_format\": {{\n    \
             \"batch\": {}, \"steps\": {}, \"churn_every\": {}, \"prefill\": {}, \
             \"prefill_chunk\": {}, \"block_rows\": {}, \"burst_blocks\": {},\n    \
             \"f64\": {},\n    \"bf16\": {},\n    \"mixed\": {},\n    \
             \"steady_block_rows\": {}, \"steady_burst_blocks\": {},\n    \
             \"f64_steady\": {},\n    \"bf16_steady\": {},\n    \"mixed_steady\": {},\n    \
             \"mixed_demoted_rows\": {}, \"mixed_arena_blocks\": {}, \
             \"mixed_arena_blocks16\": {}\n  }},\n  \
             \"decode_sliding_window\": {{\n    \
             \"batch\": {}, \"steps\": {}, \"prefill\": {}, \"block_rows\": {}, \
             \"window_blocks\": {},\n    \
             \"retain_all\": {},\n    \"sliding_window\": {},\n    \
             \"evicted_rows\": {}, \"retain_arena_blocks\": {}, \
             \"sliding_arena_blocks\": {}\n  }},\n  \
             \"decode_gqa\": {{\n    \
             \"batch\": {}, \"steps\": {}, \"prefill\": {}, \"query_heads\": {}, \
             \"head_dim\": {},\n    \
             \"points\": [\n{}\n    ]\n  }},\n  \
             \"prefix_sharing\": {{\n    \
             \"d\": {}, \"n_rows\": {}, \"iters\": {},\n    \
             \"points\": [\n{}\n    ]\n  }}\n}}\n",
            self.host_threads,
            matmul.join(",\n"),
            flash2.join(",\n"),
            self.dot_simd.len,
            timing_json(&self.dot_simd.f64_dot),
            timing_json(&self.dot_simd.bf16_dot),
            shape.head_dim,
            shape.heads,
            shape.prefill,
            shape.steps,
            self.decode_single.unchecked_tokens_per_s,
            self.decode_single.checked_tokens_per_s,
            shape.head_dim,
            shape.heads,
            shape.prefill,
            shape.steps,
            decode.join(",\n"),
            self.decode_kv_bf16.batch,
            self.decode_kv_bf16.f64_cache_ms,
            self.decode_kv_bf16.bf16_cache_ms,
            self.decode_kv_bf16.speedup(),
            self.decode_kv_bf16.bf16_tokens_per_s,
            cont.batch,
            cont.steps,
            cont.churn_every,
            shape.prefill,
            continuous_point(&cont.f64_cache),
            continuous_point(&cont.bf16_cache),
            cont.recycled_blocks,
            cont.arena_blocks,
            mixed.batch,
            mixed.steps,
            mixed.churn_every,
            shape.prefill,
            mixed.prefill_chunk,
            mixed.block_rows,
            mixed.burst_blocks,
            continuous_point(&mixed.f64_cache),
            continuous_point(&mixed.bf16_cache),
            continuous_point(&mixed.mixed_cache),
            mixed.steady_block_rows,
            mixed.steady_burst_blocks,
            steady_json(&mixed.f64_steady),
            steady_json(&mixed.bf16_steady),
            steady_json(&mixed.mixed_steady),
            mixed.mixed_demoted_rows,
            mixed.mixed_arena_blocks,
            mixed.mixed_arena_blocks16,
            sw.batch,
            sw.steps,
            shape.prefill,
            sw.block_rows,
            sw.window_blocks,
            continuous_point(&sw.retain_all),
            continuous_point(&sw.sliding),
            sw.evicted_rows,
            sw.retain_arena_blocks,
            sw.sliding_arena_blocks,
            gq.batch,
            gq.steps,
            gq.prefill,
            gq.query_heads,
            gq.head_dim,
            gqa_points.join(",\n"),
            ps.d,
            ps.n_rows,
            ps.iters,
            ps_points.join(",\n"),
        )
    }
}

fn steady_json(p: &SteadyDecodePoint) -> String {
    format!(
        "{{ \"tokens_per_s\": {:.1}, \"bytes_per_step\": {:.0} }}",
        p.tokens_per_s, p.bytes_per_step,
    )
}

fn timing_json(t: &KernelTiming) -> String {
    format!(
        "{{ \"baseline_ms\": {:.3}, \"optimized_ms\": {:.3}, \"speedup\": {:.2} }}",
        t.baseline_ms,
        t.optimized_ms,
        t.speedup()
    )
}

/// Best-of-`reps` wall-clock milliseconds for `f` (after one warmup call).
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn measure_matmul(n: usize, reps: usize) -> MatmulPoint {
    let af = Matrix::<f64>::random_seeded(n, n, ElementDist::default(), 1);
    let bf = Matrix::<f64>::random_seeded(n, n, ElementDist::default(), 2);
    let ab: Matrix<BF16> = af.cast();
    let bb: Matrix<BF16> = bf.cast();

    let bf16 = KernelTiming {
        baseline_ms: time_ms(reps, || ops::matmul_reference(&ab, &bb)),
        optimized_ms: time_ms(reps, || ab.matmul(&bb)),
    };
    let f64_mm = KernelTiming {
        baseline_ms: time_ms(reps, || ops::matmul_reference(&af, &bf)),
        optimized_ms: time_ms(reps, || af.matmul(&bf)),
    };
    let f64_acc_bf16 = KernelTiming {
        baseline_ms: time_ms(reps, || ops::matmul_f64_acc_reference(&ab, &bb)),
        optimized_ms: time_ms(reps, || ops::matmul_f64_acc(&ab, &bb)),
    };
    let flops = 2.0 * (n as f64).powi(3);
    let bf16_gflops = flops / (bf16.optimized_ms * 1e-3) / 1e9;
    MatmulPoint {
        n,
        bf16,
        f64_mm,
        f64_acc_bf16,
        bf16_gflops,
    }
}

fn measure_flash2(seq_len: usize, reps: usize) -> Flash2Point {
    let d = 64;
    let q = Matrix::<f64>::random_seeded(seq_len, d, ElementDist::default(), 10);
    let k = Matrix::<f64>::random_seeded(seq_len, d, ElementDist::default(), 11);
    let v = Matrix::<f64>::random_seeded(seq_len, d, ElementDist::default(), 12);
    let cfg = AttentionConfig::new(d);

    // Interleave the three variants round-robin (see `timed_once`): the
    // checksum overhead is a small ratio of two large numbers, and
    // measuring the variants in separate blocks lets host-speed drift
    // masquerade as multiple points of overhead. Extra rounds here (the
    // section is cheap) because both ratios are drift-dominated on a
    // shared core — on a 1-thread pool the "parallel" entry point IS the
    // serial code path, so parallel_vs_serial measures pure container
    // drift and should read ≈1.0.
    let reps = reps + 2;
    let (mut serial_ms, mut parallel_ms, mut checked_ms) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for rep in 0..=reps {
        let a = timed_once(|| (), |_| flash2::attention_serial(&q, &k, &v, &cfg));
        let b = timed_once(|| (), |_| flash2::attention(&q, &k, &v, &cfg));
        let c = timed_once(
            || (),
            |_| flash_abft::flash2_with_checksum(&q, &k, &v, &cfg),
        );
        if rep > 0 {
            serial_ms = serial_ms.min(a);
            parallel_ms = parallel_ms.min(b);
            checked_ms = checked_ms.min(c);
        }
    }
    let parallel = KernelTiming {
        baseline_ms: serial_ms,
        optimized_ms: parallel_ms,
    };
    Flash2Point {
        seq_len,
        parallel,
        tokens_per_s: seq_len as f64 / (parallel_ms * 1e-3),
        fused_checksum: KernelTiming {
            baseline_ms: parallel_ms,
            optimized_ms: checked_ms,
        },
    }
}

fn measure_dot(len: usize, iters: usize, reps: usize) -> DotBench {
    let a = Matrix::<f64>::random_seeded(1, len, ElementDist::default(), 21);
    let b = Matrix::<f64>::random_seeded(1, len, ElementDist::default(), 22);
    let (af, bf) = (a.as_slice(), b.as_slice());
    let ab: Matrix<BF16> = a.cast();
    let bb: Matrix<BF16> = b.cast();
    let (a16, b16) = (ab.as_slice(), bb.as_slice());

    let f64_dot = KernelTiming {
        baseline_ms: time_ms(reps, || {
            (0..iters)
                .map(|_| ops::dot_f64_reference(std::hint::black_box(af), bf))
                .sum::<f64>()
        }),
        optimized_ms: time_ms(reps, || {
            (0..iters)
                .map(|_| ops::dot_f64(std::hint::black_box(af), bf))
                .sum::<f64>()
        }),
    };
    let bf16_dot = KernelTiming {
        baseline_ms: time_ms(reps, || {
            (0..iters)
                .map(|_| ops::dot_f64_reference(std::hint::black_box(a16), b16))
                .sum::<f64>()
        }),
        optimized_ms: time_ms(reps, || {
            (0..iters)
                .map(|_| ops::dot_f64(std::hint::black_box(a16), b16))
                .sum::<f64>()
        }),
    };
    DotBench {
        len,
        f64_dot,
        bf16_dot,
    }
}

/// Pre-generated decode traffic for `batch` sequences — packed batch-row
/// matrices for the engine, per-(step, sequence, head) slices for the
/// per-sequence baselines, per-(sequence, head) prompt matrices — so no
/// data generation, widening or slicing lands inside a timed region.
struct DecodeInputs {
    batch: usize,
    heads: usize,
    /// Packed `batch × model_dim` inputs, one per step.
    qs: Vec<Matrix<f64>>,
    ks: Vec<Matrix<f64>>,
    vs: Vec<Matrix<f64>>,
    /// Packed prompts, one per sequence.
    k_prompt: Vec<Matrix<f64>>,
    v_prompt: Vec<Matrix<f64>>,
    /// Per-head slices, indexed `(t·batch + s)·heads + h`.
    q_sliced: Vec<Vec<f64>>,
    k_sliced: Vec<Vec<f64>>,
    v_sliced: Vec<Vec<f64>>,
    /// Per-head prompts, indexed `s·heads + h`.
    k_prompt_h: Vec<Matrix<f64>>,
    v_prompt_h: Vec<Matrix<f64>>,
}

/// Extracts head `h` of an `N × model_dim` matrix as an `N × d` matrix.
fn head_matrix(m: &Matrix<f64>, h: usize, d: usize) -> Matrix<f64> {
    Matrix::from_fn(m.rows(), d, |r, c| m[(r, h * d + c)])
}

fn decode_inputs(shape: DecodeShape, batch: usize) -> DecodeInputs {
    let d = shape.head_dim;
    let dim = shape.heads * d;
    let mk = |seed: u64, rows: usize| {
        Matrix::<f64>::random_seeded(rows, dim, ElementDist::default(), seed)
    };
    let qs: Vec<_> = (0..shape.steps)
        .map(|t| mk(3000 + t as u64, batch))
        .collect();
    let ks: Vec<_> = (0..shape.steps)
        .map(|t| mk(4000 + t as u64, batch))
        .collect();
    let vs: Vec<_> = (0..shape.steps)
        .map(|t| mk(5000 + t as u64, batch))
        .collect();
    let k_prompt: Vec<_> = (0..batch)
        .map(|s| mk(6000 + s as u64, shape.prefill))
        .collect();
    let v_prompt: Vec<_> = (0..batch)
        .map(|s| mk(7000 + s as u64, shape.prefill))
        .collect();
    let slice_all = |ms: &[Matrix<f64>]| {
        let mut out = Vec::with_capacity(shape.steps * batch * shape.heads);
        for m in ms {
            for s in 0..batch {
                for h in 0..shape.heads {
                    out.push(m.row(s)[h * d..(h + 1) * d].to_vec());
                }
            }
        }
        out
    };
    let prompt_heads = |ms: &[Matrix<f64>]| {
        let mut out = Vec::with_capacity(batch * shape.heads);
        for m in ms {
            for h in 0..shape.heads {
                out.push(head_matrix(m, h, d));
            }
        }
        out
    };
    DecodeInputs {
        batch,
        heads: shape.heads,
        q_sliced: slice_all(&qs),
        k_sliced: slice_all(&ks),
        v_sliced: slice_all(&vs),
        k_prompt_h: prompt_heads(&k_prompt),
        v_prompt_h: prompt_heads(&v_prompt),
        qs,
        ks,
        vs,
        k_prompt,
        v_prompt,
    }
}

impl DecodeInputs {
    fn sliced(&self, t: usize, s: usize, h: usize) -> (&[f64], &[f64], &[f64]) {
        let idx = (t * self.batch + s) * self.heads + h;
        (
            &self.q_sliced[idx],
            &self.k_sliced[idx],
            &self.v_sliced[idx],
        )
    }
}

/// One timed decode run: `setup()` rebuilds fresh state (decode mutates
/// its cache, so state cannot be reused across runs; setup stays
/// untimed), `run` is measured. Decode variants are compared by
/// *interleaving* these single-shot measurements round-robin — on
/// shared/throttled hosts a slow phase then biases every variant equally
/// instead of poisoning whichever one it landed on — and taking the best
/// round per variant.
fn timed_once<S, R>(mut setup: impl FnMut() -> S, mut run: impl FnMut(&mut S) -> R) -> f64 {
    let mut state = setup();
    let start = Instant::now();
    std::hint::black_box(run(&mut state));
    start.elapsed().as_secs_f64() * 1e3
}

/// The per-sequence-loop baseline: one `CheckedDecodeSession` per
/// (sequence, head), prefilled, then — like any real serving loop — all
/// sequences advanced one token per step (step-major order; tokens
/// depend on previous outputs, so steps cannot be batched per sequence).
/// This is the per-sequence checked serving path: the same SIMD inner
/// kernels as the batched engine (bit-identical, by the property tests)
/// but with per-row cache allocations and one kernel invocation per
/// sequence×head.
fn baseline_sessions(shape: DecodeShape, inputs: &DecodeInputs) -> Vec<CheckedDecodeSession> {
    let head_cfg = AttentionConfig::new(shape.head_dim);
    let mut sessions = Vec::with_capacity(inputs.batch * shape.heads);
    for s in 0..inputs.batch {
        for h in 0..shape.heads {
            let mut session = CheckedDecodeSession::new(head_cfg);
            session.prefill(
                &inputs.k_prompt_h[s * shape.heads + h],
                &inputs.v_prompt_h[s * shape.heads + h],
            );
            sessions.push(session);
        }
    }
    sessions
}

fn run_baseline(
    shape: DecodeShape,
    inputs: &DecodeInputs,
    sessions: &mut [CheckedDecodeSession],
) -> f64 {
    let mut acc = 0.0;
    for t in 0..shape.steps {
        for s in 0..inputs.batch {
            for h in 0..shape.heads {
                let (q, k, v) = inputs.sliced(t, s, h);
                let step = sessions[s * shape.heads + h].step(q, k, v);
                acc += step.output[0];
            }
        }
    }
    acc
}

/// The batched engine: one prefilled `DecodeBatch` over all sequences,
/// advanced with one `step_all` per step. Generic over the cache element
/// format — the BF16 instantiation measures the halved-KV-traffic
/// serving configuration.
fn batched_engine<T: fa_tensor::Scalar>(
    shape: DecodeShape,
    k_prompt: &[Matrix<T>],
    v_prompt: &[Matrix<T>],
) -> (DecodeBatch<T>, Vec<usize>) {
    let cfg = MultiHeadConfig::new(shape.heads, AttentionConfig::new(shape.head_dim));
    let mut engine = DecodeBatch::<T>::new(cfg, 64);
    let ids: Vec<usize> = (0..k_prompt.len()).map(|_| engine.add_sequence()).collect();
    for (s, &id) in ids.iter().enumerate() {
        engine.prefill(id, &k_prompt[s], &v_prompt[s]);
    }
    // Capacity hint: keep decode-path block claims reallocation-free.
    engine.reserve_rows(k_prompt.len() * shape.steps);
    (engine, ids)
}

fn run_batched<T: fa_tensor::Scalar>(
    shape: DecodeShape,
    qs: &[Matrix<T>],
    ks: &[Matrix<T>],
    vs: &[Matrix<T>],
    state: &mut (DecodeBatch<T>, Vec<usize>),
    checked: bool,
) -> f64 {
    let (engine, ids) = state;
    let mut acc = 0.0;
    for t in 0..shape.steps {
        if checked {
            let outs = engine.step_all(ids, &qs[t], &ks[t], &vs[t]);
            acc += outs[0].output[0];
        } else {
            let outs = engine.step_all_unchecked(ids, &qs[t], &ks[t], &vs[t]);
            acc += outs[0][0];
        }
    }
    acc
}

fn measure_decode_single(shape: DecodeShape, reps: usize) -> DecodeSingle {
    let inputs = decode_inputs(shape, 1);
    let head_cfg = AttentionConfig::new(shape.head_dim);
    let (mut unchecked_ms, mut checked_ms) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..=reps {
        let a = timed_once(
            || {
                (0..shape.heads)
                    .map(|h| {
                        let mut session = DecodeSession::<f64>::new(head_cfg);
                        session.prefill(&inputs.k_prompt_h[h], &inputs.v_prompt_h[h]);
                        session
                    })
                    .collect::<Vec<_>>()
            },
            |sessions| {
                let mut acc = 0.0;
                for t in 0..shape.steps {
                    for (h, session) in sessions.iter_mut().enumerate() {
                        let (q, k, v) = inputs.sliced(t, 0, h);
                        acc += session.step(q, k, v)[0];
                    }
                }
                acc
            },
        );
        let b = timed_once(
            || baseline_sessions(shape, &inputs),
            |sessions| run_baseline(shape, &inputs, sessions),
        );
        if rep > 0 {
            // Round 0 is warmup.
            unchecked_ms = unchecked_ms.min(a);
            checked_ms = checked_ms.min(b);
        }
    }
    DecodeSingle {
        unchecked_tokens_per_s: shape.steps as f64 / (unchecked_ms * 1e-3),
        checked_tokens_per_s: shape.steps as f64 / (checked_ms * 1e-3),
    }
}

fn measure_decode_batched(shape: DecodeShape, batch: usize, reps: usize) -> DecodeBatchPoint {
    let inputs = decode_inputs(shape, batch);
    let (mut baseline_ms, mut batched_ms, mut unchecked_ms) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for rep in 0..=reps {
        let a = timed_once(
            || baseline_sessions(shape, &inputs),
            |sessions| run_baseline(shape, &inputs, sessions),
        );
        let b = timed_once(
            || batched_engine(shape, &inputs.k_prompt, &inputs.v_prompt),
            |state| run_batched(shape, &inputs.qs, &inputs.ks, &inputs.vs, state, true),
        );
        let c = timed_once(
            || batched_engine(shape, &inputs.k_prompt, &inputs.v_prompt),
            |state| run_batched(shape, &inputs.qs, &inputs.ks, &inputs.vs, state, false),
        );
        if rep > 0 {
            baseline_ms = baseline_ms.min(a);
            batched_ms = batched_ms.min(b);
            unchecked_ms = unchecked_ms.min(c);
        }
    }
    let tokens = (batch * shape.steps) as f64;
    DecodeBatchPoint {
        batch,
        baseline_ms,
        batched_ms,
        baseline_tokens_per_s: tokens / (baseline_ms * 1e-3),
        batched_tokens_per_s: tokens / (batched_ms * 1e-3),
        checked_overhead_pct: (batched_ms / unchecked_ms - 1.0) * 100.0,
    }
}

/// At serving batch sizes the single-core decode sweep is KV-bandwidth
/// bound, so the remaining single-thread lever is the cache element
/// format: a BF16 KV cache halves the streamed bytes. This measures
/// checked batched decode with a BF16 cache against the same engine with
/// the f64 cache.
fn measure_decode_bf16(shape: DecodeShape, batch: usize, reps: usize) -> DecodeKvBf16 {
    let inputs = decode_inputs(shape, batch);
    let cast_all =
        |ms: &[Matrix<f64>]| -> Vec<Matrix<BF16>> { ms.iter().map(|m| m.cast()).collect() };
    let (qs16, ks16, vs16) = (
        cast_all(&inputs.qs),
        cast_all(&inputs.ks),
        cast_all(&inputs.vs),
    );
    let (kp16, vp16) = (cast_all(&inputs.k_prompt), cast_all(&inputs.v_prompt));
    let (mut f64_cache_ms, mut bf16_cache_ms) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..=reps {
        let a = timed_once(
            || batched_engine(shape, &inputs.k_prompt, &inputs.v_prompt),
            |state| run_batched(shape, &inputs.qs, &inputs.ks, &inputs.vs, state, true),
        );
        let b = timed_once(
            || batched_engine(shape, &kp16, &vp16),
            |state| run_batched(shape, &qs16, &ks16, &vs16, state, true),
        );
        if rep > 0 {
            f64_cache_ms = f64_cache_ms.min(a);
            bf16_cache_ms = bf16_cache_ms.min(b);
        }
    }
    let tokens = (batch * shape.steps) as f64;
    DecodeKvBf16 {
        batch,
        f64_cache_ms,
        bf16_cache_ms,
        bf16_tokens_per_s: tokens / (bf16_cache_ms * 1e-3),
    }
}

/// Decode traffic for the continuous-batching sweep: initial prompts,
/// churn prompts (with queries — admission checks the prompt), and
/// per-step decode rows.
struct ContinuousInputs<T> {
    initial: Vec<(Matrix<T>, Matrix<T>, Matrix<T>)>,
    churn: Vec<(Matrix<T>, Matrix<T>, Matrix<T>)>,
    qs: Vec<Matrix<T>>,
    ks: Vec<Matrix<T>>,
    vs: Vec<Matrix<T>>,
}

fn continuous_inputs(
    shape: DecodeShape,
    batch: usize,
    churn_every: usize,
) -> ContinuousInputs<f64> {
    let dim = shape.heads * shape.head_dim;
    let mk = |seed: u64, rows: usize| {
        Matrix::<f64>::random_seeded(rows, dim, ElementDist::default(), seed)
    };
    let prompt = |seed: u64| {
        (
            mk(seed, shape.prefill),
            mk(seed + 1, shape.prefill),
            mk(seed + 2, shape.prefill),
        )
    };
    let churn_count = shape.steps / churn_every;
    ContinuousInputs {
        initial: (0..batch).map(|s| prompt(20_000 + 10 * s as u64)).collect(),
        churn: (0..churn_count)
            .map(|c| prompt(30_000 + 10 * c as u64))
            .collect(),
        qs: (0..shape.steps)
            .map(|t| mk(40_000 + t as u64, batch))
            .collect(),
        ks: (0..shape.steps)
            .map(|t| mk(41_000 + t as u64, batch))
            .collect(),
        vs: (0..shape.steps)
            .map(|t| mk(42_000 + t as u64, batch))
            .collect(),
    }
}

fn cast_prompts(
    ps: &[(Matrix<f64>, Matrix<f64>, Matrix<f64>)],
) -> Vec<(Matrix<BF16>, Matrix<BF16>, Matrix<BF16>)> {
    ps.iter()
        .map(|(q, k, v)| (q.cast(), k.cast(), v.cast()))
        .collect()
}

/// One end-to-end continuous-batching run: batched admission of the
/// initial prompts, `steps` checked decode steps over the live batch,
/// and every `churn_every` steps a retire of the oldest sequence plus a
/// checked admission of a fresh prompt onto the recycled blocks. Returns
/// the engine for post-run cache statistics (read outside the timer).
fn run_continuous<T: fa_tensor::Scalar>(
    shape: DecodeShape,
    churn_every: usize,
    inputs: &ContinuousInputs<T>,
) -> fa_attention::batch::DecodeBatch<T> {
    let cfg = MultiHeadConfig::new(shape.heads, AttentionConfig::new(shape.head_dim));
    let mut engine = fa_attention::batch::DecodeBatch::<T>::new(cfg, 64);
    let refs: Vec<(&Matrix<T>, &Matrix<T>, &Matrix<T>)> =
        inputs.initial.iter().map(|(q, k, v)| (q, k, v)).collect();
    let mut live: Vec<usize> = engine.admit_all(&refs).iter().map(|a| a.seq).collect();
    let mut churned = 0usize;
    let mut acc = 0.0;
    for t in 0..shape.steps {
        let outs = engine.step_all(&live, &inputs.qs[t], &inputs.ks[t], &inputs.vs[t]);
        acc += outs[0].output[0];
        if (t + 1) % churn_every == 0 && churned < inputs.churn.len() {
            let victim = live.remove(0);
            engine.retire(victim);
            let (q, k, v) = &inputs.churn[churned];
            live.push(engine.admit(q, k, v).seq);
            churned += 1;
        }
    }
    std::hint::black_box(acc);
    engine
}

/// Analytic KV bytes streamed per decode step under the continuous
/// schedule: each step every live sequence's pass reads its whole cached
/// history (K and V) once, post-append. Replays the schedule's lengths
/// without running kernels.
fn continuous_bytes_per_step(
    shape: DecodeShape,
    batch: usize,
    churn_every: usize,
    elem_bytes: usize,
) -> f64 {
    let width = shape.heads * shape.head_dim;
    let mut lens = vec![shape.prefill; batch];
    let mut total = 0usize;
    let churn_count = shape.steps / churn_every;
    let mut churned = 0;
    for t in 0..shape.steps {
        for len in lens.iter_mut() {
            *len += 1; // append, then stream the whole history
            total += *len * width * 2 * elem_bytes;
        }
        if (t + 1) % churn_every == 0 && churned < churn_count {
            lens.remove(0);
            lens.push(shape.prefill);
            churned += 1;
        }
    }
    total as f64 / shape.steps as f64
}

fn measure_decode_continuous(
    shape: DecodeShape,
    batch: usize,
    churn_every: usize,
    reps: usize,
) -> DecodeContinuous {
    let inputs = continuous_inputs(shape, batch, churn_every);
    let inputs16 = ContinuousInputs::<BF16> {
        initial: cast_prompts(&inputs.initial),
        churn: cast_prompts(&inputs.churn),
        qs: inputs.qs.iter().map(|m| m.cast()).collect(),
        ks: inputs.ks.iter().map(|m| m.cast()).collect(),
        vs: inputs.vs.iter().map(|m| m.cast()).collect(),
    };
    // Warmup round doubles as the cache-statistics probe (the schedule is
    // deterministic, so any run reports the same block counts).
    let warm = run_continuous(shape, churn_every, &inputs);
    let stats = (
        warm.cache().recycled_blocks(),
        warm.cache().allocated_blocks(),
    );
    drop(warm);
    std::hint::black_box(run_continuous(shape, churn_every, &inputs16));
    let (mut f64_ms, mut bf16_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let a = timed_once(|| (), |_| run_continuous(shape, churn_every, &inputs));
        let b = timed_once(|| (), |_| run_continuous(shape, churn_every, &inputs16));
        f64_ms = f64_ms.min(a);
        bf16_ms = bf16_ms.min(b);
    }
    let churn_count = shape.steps / churn_every;
    let decode_tokens = (batch * shape.steps) as f64;
    let prompt_tokens = ((batch + churn_count) * shape.prefill) as f64;
    let point = |ms: f64, elem_bytes: usize| ContinuousCachePoint {
        total_ms: ms,
        tokens_per_s: (decode_tokens + prompt_tokens) / (ms * 1e-3),
        decode_tokens_per_s: decode_tokens / (ms * 1e-3),
        bytes_per_step: continuous_bytes_per_step(shape, batch, churn_every, elem_bytes),
    };
    DecodeContinuous {
        batch,
        steps: shape.steps,
        churn_every,
        f64_cache: point(f64_ms, 8),
        bf16_cache: point(bf16_ms, 2),
        recycled_blocks: stats.0,
        arena_blocks: stats.1,
    }
}

/// One end-to-end policy-serving run: synchronous admission of the
/// opening batch, then `steps` checked decode steps over the live batch.
/// Every `churn_every` steps the oldest sequence retires and a fresh
/// prompt is **enqueued**: the following steps' interleaved prefill
/// chunks admit it while the rest of the batch keeps decoding, and it
/// joins the decode batch when complete — the prompt-heavy continuous
/// schedule the mixed-format lever targets. `on_step` observes the
/// engine after each decode step (pass a no-op when timing).
/// Token counts one policy-serving run actually processed: decode tokens
/// stepped (the live batch shrinks while churned prompts admit) and
/// prompt tokens cached+scored (a prompt enqueued by the final churn may
/// have chunks that never ran — those are **not** credited).
#[derive(Clone, Copy, Debug)]
struct PolicyRunTokens {
    decode: usize,
    prompt: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_policy_serving(
    shape: DecodeShape,
    churn_every: usize,
    prefill_chunk: usize,
    block_rows: usize,
    format: KvFormat,
    eviction: EvictionPolicy,
    inputs: &ContinuousInputs<f64>,
    mut on_step: impl FnMut(&DecodeBatch<f64>, &[usize]),
) -> (DecodeBatch<f64>, PolicyRunTokens) {
    let cfg = MultiHeadConfig::new(shape.heads, AttentionConfig::new(shape.head_dim));
    let mut engine =
        DecodeBatch::<f64>::with_policy(cfg, block_rows, KvLayout::HeadMajor, format, eviction);
    engine.set_prefill_chunk(prefill_chunk);
    let refs: Vec<(&Matrix<f64>, &Matrix<f64>, &Matrix<f64>)> =
        inputs.initial.iter().map(|(q, k, v)| (q, k, v)).collect();
    let mut live: Vec<usize> = engine.admit_all(&refs).iter().map(|a| a.seq).collect();
    let mut tokens = PolicyRunTokens {
        decode: 0,
        prompt: 0,
    };
    let mut pending: Vec<usize> = Vec::new();
    let mut churned = 0usize;
    let mut acc = 0.0;
    for t in 0..shape.steps {
        // The live batch shrinks while a churned prompt admits: slice the
        // pre-generated step rows down to the current live set.
        let take = |m: &Matrix<f64>| Matrix::from_fn(live.len(), m.cols(), |r, c| m[(r, c)]);
        let outs = engine.step_all(
            &live,
            &take(&inputs.qs[t]),
            &take(&inputs.ks[t]),
            &take(&inputs.vs[t]),
        );
        acc += outs[0].output[0];
        tokens.decode += live.len();
        on_step(&engine, &live);
        // Admissions completed by this step's interleaved prefill join
        // the decode batch.
        pending.retain(|&s| {
            if engine.is_pending(s) {
                true
            } else {
                let _ = engine.take_admitted(s);
                live.push(s);
                false
            }
        });
        if (t + 1) % churn_every == 0 && churned < inputs.churn.len() {
            let victim = live.remove(0);
            engine.retire(victim);
            let (q, k, v) = &inputs.churn[churned];
            pending.push(engine.enqueue(q, k, v));
            churned += 1;
        }
    }
    // Credit only prompt tokens whose prefill actually ran: every retired
    // victim was fully admitted before retiring (`churned` of them), live
    // and still-pending sequences report exactly their processed chunks —
    // a prompt enqueued by the final churn contributes only what the
    // remaining steps advanced.
    tokens.prompt = churned * shape.prefill;
    for s in live.iter().chain(&pending) {
        tokens.prompt += engine.prompt_len(*s);
    }
    std::hint::black_box(acc);
    (engine, tokens)
}

/// Analytic KV bytes one decode step streams under a policy engine's
/// current state: per live sequence, the **visible** rows of each
/// retained block at that block's element width (8 bytes native, 2
/// demoted), K and V sides. Masked (out-of-window) and evicted rows
/// stream nothing — exactly what the block kernels touch.
fn policy_step_bytes(engine: &DecodeBatch<f64>, live: &[usize]) -> f64 {
    let cache = engine.cache();
    let width = cache.width();
    let block_rows = cache.block_rows();
    let mut bytes = 0usize;
    for &s in live {
        let len = cache.seq_len(s);
        let lo = match cache.eviction_window_tokens() {
            Some(w) => len.saturating_sub(w),
            None => 0,
        };
        let first_retained = cache.first_retained(s);
        for (bi, blk) in cache.seq_blocks(s).iter().enumerate() {
            let b_first = first_retained + bi * block_rows;
            let rows_valid = (len - b_first).min(block_rows);
            let r1 = b_first + rows_valid;
            let r0 = b_first.max(lo);
            if r0 >= r1 {
                continue;
            }
            let elem = if blk.bf16 { 2 } else { 8 };
            bytes += (r1 - r0) * width * 2 * elem;
        }
    }
    bytes as f64
}

/// Serving-schedule token counts (decode tokens actually stepped, prompt
/// tokens actually prefilled) and analytic bytes, from one untimed probe
/// run of the deterministic schedule.
struct PolicyProbe {
    tokens: PolicyRunTokens,
    bytes_per_step: f64,
    engine: DecodeBatch<f64>,
}

fn policy_probe(
    shape: DecodeShape,
    churn_every: usize,
    prefill_chunk: usize,
    block_rows: usize,
    format: KvFormat,
    eviction: EvictionPolicy,
    inputs: &ContinuousInputs<f64>,
) -> PolicyProbe {
    let mut bytes = 0.0f64;
    let (engine, tokens) = run_policy_serving(
        shape,
        churn_every,
        prefill_chunk,
        block_rows,
        format,
        eviction,
        inputs,
        |engine, live| {
            bytes += policy_step_bytes(engine, live);
        },
    );
    PolicyProbe {
        tokens,
        bytes_per_step: bytes / shape.steps as f64,
        engine,
    }
}

fn measure_decode_mixed_format(
    shape: DecodeShape,
    batch: usize,
    churn_every: usize,
    block_rows: usize,
    steady_block_rows: usize,
    reps: usize,
) -> DecodeMixedFormat {
    let burst_blocks = 1usize;
    let prefill_chunk = shape.prefill.div_ceil(4).max(1);
    let inputs = continuous_inputs(shape, batch, churn_every);
    let legs = [
        KvFormat::F64,
        KvFormat::Bf16,
        KvFormat::Mixed { burst_blocks },
    ];
    // Untimed probes: schedule token counts, analytic bytes/step, and
    // the mixed leg's demotion evidence (the schedule is deterministic,
    // so any run reports the same counts). Doubles as warmup.
    let probes: Vec<PolicyProbe> = legs
        .iter()
        .map(|&format| {
            policy_probe(
                shape,
                churn_every,
                prefill_chunk,
                block_rows,
                format,
                EvictionPolicy::RetainAll,
                &inputs,
            )
        })
        .collect();
    let mixed_engine = &probes[2].engine;
    let live: Vec<usize> = (0..mixed_engine.num_sequences())
        .filter(|&s| !mixed_engine.is_retired(s))
        .collect();
    let mixed_demoted_rows = live.iter().map(|&s| mixed_engine.demoted_len(s)).sum();
    let mixed_arena_blocks = mixed_engine.cache().allocated_blocks();
    let mixed_arena_blocks16 = mixed_engine.cache().allocated_blocks16();

    // Steady-state decode legs under the exact `decode_kv_bf16` harness:
    // same pre-generated traffic (`decode_inputs`), same block geometry
    // as the committed decode points, prefill untimed, decode steps
    // timed — so these numbers compare directly against the committed
    // `decode_batched` / `decode_kv_bf16` points across PRs. The mixed
    // leg runs burst 0: every full block demotes as it ages, the partial
    // block being filled is the f64 burst fresh tokens ride.
    let steady_burst_blocks = 0;
    let steady_formats = [
        KvFormat::F64,
        KvFormat::Bf16,
        KvFormat::Mixed {
            burst_blocks: steady_burst_blocks,
        },
    ];
    let dec_inputs = decode_inputs(shape, batch);
    let settle = |format: KvFormat| -> (DecodeBatch<f64>, Vec<usize>) {
        let cfg = MultiHeadConfig::new(shape.heads, AttentionConfig::new(shape.head_dim));
        let mut engine = DecodeBatch::<f64>::with_policy(
            cfg,
            steady_block_rows,
            KvLayout::HeadMajor,
            format,
            EvictionPolicy::RetainAll,
        );
        let ids: Vec<usize> = (0..batch).map(|_| engine.add_sequence()).collect();
        for (s, &id) in ids.iter().enumerate() {
            engine.prefill(id, &dec_inputs.k_prompt[s], &dec_inputs.v_prompt[s]);
        }
        engine.reserve_rows(batch * shape.steps);
        (engine, ids)
    };
    // Untimed steady bytes probe per leg (deterministic schedule).
    let steady_bytes: Vec<f64> = steady_formats
        .iter()
        .map(|&format| {
            let (mut engine, ids) = settle(format);
            let mut bytes = 0.0;
            for t in 0..shape.steps {
                let _ = engine.step_all(
                    &ids,
                    &dec_inputs.qs[t],
                    &dec_inputs.ks[t],
                    &dec_inputs.vs[t],
                );
                bytes += policy_step_bytes(&engine, &ids);
            }
            bytes / shape.steps as f64
        })
        .collect();

    // Timed legs, interleaved round-robin (drift policy) and best-of:
    // each rep measures all three serving legs and all three steady legs
    // before the next rep, so host drift biases every variant equally.
    let mut best = [f64::INFINITY; 3];
    let mut best_steady = [f64::INFINITY; 3];
    for _ in 0..reps {
        for (i, &format) in legs.iter().enumerate() {
            let ms = timed_once(
                || (),
                |_| {
                    run_policy_serving(
                        shape,
                        churn_every,
                        prefill_chunk,
                        block_rows,
                        format,
                        EvictionPolicy::RetainAll,
                        &inputs,
                        |_, _| {},
                    )
                },
            );
            best[i] = best[i].min(ms);
            let ms = timed_once(
                || settle(steady_formats[i]),
                |state| {
                    run_batched(
                        shape,
                        &dec_inputs.qs,
                        &dec_inputs.ks,
                        &dec_inputs.vs,
                        state,
                        true,
                    )
                },
            );
            best_steady[i] = best_steady[i].min(ms);
        }
    }
    let point = |i: usize| ContinuousCachePoint {
        total_ms: best[i],
        tokens_per_s: (probes[i].tokens.decode + probes[i].tokens.prompt) as f64 / (best[i] * 1e-3),
        decode_tokens_per_s: probes[i].tokens.decode as f64 / (best[i] * 1e-3),
        bytes_per_step: probes[i].bytes_per_step,
    };
    let steady_point = |i: usize| SteadyDecodePoint {
        tokens_per_s: (batch * shape.steps) as f64 / (best_steady[i] * 1e-3),
        bytes_per_step: steady_bytes[i],
    };
    DecodeMixedFormat {
        batch,
        steps: shape.steps,
        churn_every,
        prefill_chunk,
        block_rows,
        burst_blocks,
        steady_block_rows,
        steady_burst_blocks,
        f64_cache: point(0),
        bf16_cache: point(1),
        mixed_cache: point(2),
        f64_steady: steady_point(0),
        bf16_steady: steady_point(1),
        mixed_steady: steady_point(2),
        mixed_demoted_rows,
        mixed_arena_blocks,
        mixed_arena_blocks16,
    }
}

fn measure_decode_sliding_window(
    shape: DecodeShape,
    batch: usize,
    block_rows: usize,
    window_blocks: usize,
    reps: usize,
) -> DecodeSlidingWindow {
    // Pure decode (no churn): the window's effect is cleanest on a
    // steadily growing history.
    let no_churn = shape.steps + 1;
    let inputs = continuous_inputs(shape, batch, no_churn);
    let legs = [
        EvictionPolicy::RetainAll,
        EvictionPolicy::SlidingWindow { window_blocks },
    ];
    let probes: Vec<PolicyProbe> = legs
        .iter()
        .map(|&eviction| {
            policy_probe(
                shape,
                no_churn,
                shape.prefill.max(1),
                block_rows,
                KvFormat::F64,
                eviction,
                &inputs,
            )
        })
        .collect();
    let sliding_engine = &probes[1].engine;
    let evicted_rows = (0..sliding_engine.num_sequences())
        .filter(|&s| !sliding_engine.is_retired(s))
        .map(|s| sliding_engine.evicted_len(s))
        .max()
        .unwrap_or(0);

    let mut best = [f64::INFINITY; 2];
    for _ in 0..reps {
        for (i, &eviction) in legs.iter().enumerate() {
            let ms = timed_once(
                || (),
                |_| {
                    run_policy_serving(
                        shape,
                        no_churn,
                        shape.prefill.max(1),
                        block_rows,
                        KvFormat::F64,
                        eviction,
                        &inputs,
                        |_, _| {},
                    )
                },
            );
            best[i] = best[i].min(ms);
        }
    }
    let point = |i: usize| ContinuousCachePoint {
        total_ms: best[i],
        tokens_per_s: (probes[i].tokens.decode + probes[i].tokens.prompt) as f64 / (best[i] * 1e-3),
        decode_tokens_per_s: probes[i].tokens.decode as f64 / (best[i] * 1e-3),
        bytes_per_step: probes[i].bytes_per_step,
    };
    DecodeSlidingWindow {
        batch,
        steps: shape.steps,
        block_rows,
        window_blocks,
        retain_all: point(0),
        sliding: point(1),
        evicted_rows,
        retain_arena_blocks: probes[0].engine.cache().allocated_blocks(),
        sliding_arena_blocks: probes[1].engine.cache().allocated_blocks(),
    }
}

/// The GQA sweep: fixed query heads, group sizes 1/4/8, identical decode
/// schedule per leg — only the kv-head count (and therefore the cached
/// K/V width the DRAM-bound sweep streams) changes. Legs are interleaved
/// round-robin per rep (the established drift protocol) and best-of is
/// taken per leg.
fn measure_decode_gqa(shape: DecodeShape, batch: usize, reps: usize) -> DecodeGqa {
    let query_heads = 8usize;
    let d = shape.head_dim;
    let group_sizes = [1usize, 4, 8];
    let legs: Vec<HeadTopology> = group_sizes
        .iter()
        .map(|&gs| HeadTopology::gqa(query_heads, query_heads / gs, AttentionConfig::new(d)))
        .collect();
    let mk = |rows: usize, cols: usize, seed: u64| {
        Matrix::<f64>::random_seeded(rows, cols, ElementDist::default(), seed)
    };
    struct GqaLegInputs {
        qs: Vec<Matrix<f64>>,
        ks: Vec<Matrix<f64>>,
        vs: Vec<Matrix<f64>>,
        k_prompt: Vec<Matrix<f64>>,
        v_prompt: Vec<Matrix<f64>>,
    }
    let inputs: Vec<GqaLegInputs> = legs
        .iter()
        .map(|t| GqaLegInputs {
            qs: (0..shape.steps)
                .map(|i| mk(batch, t.q_dim(), 50_000 + i as u64))
                .collect(),
            ks: (0..shape.steps)
                .map(|i| mk(batch, t.kv_dim(), 51_000 + i as u64))
                .collect(),
            vs: (0..shape.steps)
                .map(|i| mk(batch, t.kv_dim(), 52_000 + i as u64))
                .collect(),
            k_prompt: (0..batch)
                .map(|s| mk(shape.prefill, t.kv_dim(), 53_000 + s as u64))
                .collect(),
            v_prompt: (0..batch)
                .map(|s| mk(shape.prefill, t.kv_dim(), 54_000 + s as u64))
                .collect(),
        })
        .collect();
    let settle = |li: usize, format: KvFormat| -> (DecodeBatch<f64>, Vec<usize>) {
        let mut engine = DecodeBatch::<f64>::with_policy(
            legs[li],
            64,
            KvLayout::HeadMajor,
            format,
            EvictionPolicy::RetainAll,
        );
        let ids: Vec<usize> = (0..batch).map(|_| engine.add_sequence()).collect();
        for (s, &id) in ids.iter().enumerate() {
            engine.prefill(id, &inputs[li].k_prompt[s], &inputs[li].v_prompt[s]);
        }
        engine.reserve_rows(batch * shape.steps);
        (engine, ids)
    };
    let run = |state: &mut (DecodeBatch<f64>, Vec<usize>), li: usize| {
        let (engine, ids) = state;
        let mut acc = 0.0;
        for t in 0..shape.steps {
            let outs =
                engine.step_all(ids, &inputs[li].qs[t], &inputs[li].ks[t], &inputs[li].vs[t]);
            acc += outs[0].output[0];
        }
        acc
    };
    // Untimed probes (deterministic schedule): analytic bytes/step and
    // final arena size per leg. Doubles as warmup.
    let probes: Vec<(f64, usize)> = (0..legs.len())
        .map(|li| {
            let (mut engine, ids) = settle(li, KvFormat::F64);
            let mut bytes = 0.0;
            for t in 0..shape.steps {
                let _ = engine.step_all(
                    &ids,
                    &inputs[li].qs[t],
                    &inputs[li].ks[t],
                    &inputs[li].vs[t],
                );
                bytes += policy_step_bytes(&engine, &ids);
            }
            (
                bytes / shape.steps as f64,
                engine.cache().allocated_blocks(),
            )
        })
        .collect();
    // Two format legs per group size — native f64 and the BF16 cache
    // (grouping and narrowing compose) — interleaved round-robin.
    let mut best = vec![f64::INFINITY; legs.len()];
    let mut best16 = vec![f64::INFINITY; legs.len()];
    for _ in 0..reps {
        for li in 0..legs.len() {
            let ms = timed_once(|| settle(li, KvFormat::F64), |state| run(state, li));
            best[li] = best[li].min(ms);
            let ms16 = timed_once(|| settle(li, KvFormat::Bf16), |state| run(state, li));
            best16[li] = best16[li].min(ms16);
        }
    }
    let tokens = (batch * shape.steps) as f64;
    DecodeGqa {
        batch,
        steps: shape.steps,
        prefill: shape.prefill,
        query_heads,
        head_dim: d,
        points: group_sizes
            .iter()
            .enumerate()
            .map(|(li, &gs)| DecodeGqaPoint {
                group_size: gs,
                kv_heads: query_heads / gs,
                checked_ms: best[li],
                tokens_per_s: tokens / (best[li] * 1e-3),
                bf16_checked_ms: best16[li],
                bf16_tokens_per_s: tokens / (best16[li] * 1e-3),
                bytes_per_step: probes[li].0,
                arena_blocks: probes[li].1,
            })
            .collect(),
    }
}

/// Runs the kernel-layer benchmark. `quick` shrinks problem sizes and
/// drops the largest matmul/flash2 points for CI smoke runs.
fn measure_prefix_sharing_kernel(n_rows: usize, iters: usize, reps: usize) -> PrefixSharingKernel {
    // kv-row width of the headline serving shapes: the panel a decode
    // step actually sweeps per shared block batch.
    let d = 64usize;
    let scale = 1.0 / (d as f64).sqrt();
    let panel = Matrix::<f64>::random_seeded(n_rows, d, ElementDist::default(), 71);
    let rows = panel.as_slice();
    let points = [1usize, 4, 16, 32]
        .iter()
        .map(|&nq| {
            let qmat = Matrix::<f64>::random_seeded(nq, d, ElementDist::default(), 72);
            let qs = qmat.as_slice();
            let mut out = Vec::new();
            let gemv_ms = time_ms(reps, || {
                for _ in 0..iters {
                    for qi in 0..nq {
                        ops::dot_then_scale_rows(
                            &qs[qi * d..(qi + 1) * d],
                            rows,
                            d,
                            n_rows,
                            scale,
                            &mut out,
                        );
                        std::hint::black_box(&out);
                    }
                }
            });
            let multi_ms = time_ms(reps, || {
                for _ in 0..iters {
                    ops::dot_then_scale_rows_multi(qs, d, rows, d, n_rows, scale, &mut out);
                    std::hint::black_box(&out);
                }
            });
            // The contract behind the timing: identical bits, only the
            // sweep order (and therefore the bandwidth bill) differs.
            let mut multi = Vec::new();
            ops::dot_then_scale_rows_multi(qs, d, rows, d, n_rows, scale, &mut multi);
            let mut gemv = Vec::with_capacity(nq * n_rows);
            for qi in 0..nq {
                ops::dot_then_scale_rows(
                    &qs[qi * d..(qi + 1) * d],
                    rows,
                    d,
                    n_rows,
                    scale,
                    &mut out,
                );
                gemv.extend_from_slice(&out);
            }
            let bitwise_match = multi
                .iter()
                .zip(&gemv)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            MultiScorePoint {
                queries: nq,
                gemv_ms,
                multi_ms,
                bitwise_match,
            }
        })
        .collect();
    PrefixSharingKernel {
        d,
        n_rows,
        iters,
        points,
    }
}

pub fn measure(quick: bool) -> KernelBenchReport {
    let (matmul_sizes, flash2_sizes, reps): (&[usize], &[usize], usize) = if quick {
        (&[128], &[256], 2)
    } else {
        (&[128, 256], &[256, 1024], 3)
    };
    // Decode timings are memory-sensitive; best-of-5 tames the variance
    // the big KV working sets introduce.
    let (dot_iters, decode_reps, decode_shape) = if quick {
        (
            64,
            2,
            DecodeShape {
                head_dim: 64,
                heads: 4,
                prefill: 16,
                steps: 8,
            },
        )
    } else {
        (
            256,
            5,
            DecodeShape {
                head_dim: 64,
                heads: 4,
                prefill: 128,
                steps: 32,
            },
        )
    };

    let (largest_batch, churn_every) = if quick { (8, 2) } else { (32, 4) };

    let matmul = matmul_sizes
        .iter()
        .map(|&n| measure_matmul(n, reps))
        .collect();
    let flash2 = flash2_sizes
        .iter()
        .map(|&s| measure_flash2(s, reps))
        .collect();
    let dot_simd = measure_dot(4096, dot_iters, reps);
    let decode_single = measure_decode_single(decode_shape, decode_reps);
    let decode_batched: Vec<DecodeBatchPoint> = [1usize, 8, 32]
        .iter()
        .map(|&b| measure_decode_batched(decode_shape, b, decode_reps))
        .collect();
    let decode_kv_bf16 = measure_decode_bf16(decode_shape, largest_batch, decode_reps);
    let decode_continuous =
        measure_decode_continuous(decode_shape, largest_batch, churn_every, decode_reps);
    // Policy-layer geometry: blocks small enough that the mixed burst and
    // the eviction window actually exercise at these history lengths.
    // The steady legs use the committed decode points' 64-row blocks in
    // full runs (apples-to-apples); quick histories are too short to fill
    // one, so CI smoke shrinks them.
    let (mixed_block_rows, steady_block_rows, sw_block_rows, sw_window_blocks) =
        if quick { (4, 4, 4, 2) } else { (16, 64, 32, 2) };
    let decode_mixed_format = measure_decode_mixed_format(
        decode_shape,
        largest_batch,
        churn_every,
        mixed_block_rows,
        steady_block_rows,
        decode_reps,
    );
    let decode_sliding_window = measure_decode_sliding_window(
        decode_shape,
        largest_batch,
        sw_block_rows,
        sw_window_blocks,
        decode_reps,
    );
    let decode_gqa = measure_decode_gqa(decode_shape, largest_batch, decode_reps);
    let (ps_rows, ps_iters) = if quick { (128, 4) } else { (512, 16) };
    let prefix_sharing = measure_prefix_sharing_kernel(ps_rows, ps_iters, reps);

    KernelBenchReport {
        host_threads: rayon::current_num_threads(),
        matmul,
        flash2,
        dot_simd,
        decode_shape,
        decode_single,
        decode_batched,
        decode_kv_bf16,
        decode_continuous,
        decode_mixed_format,
        decode_sliding_window,
        decode_gqa,
        prefix_sharing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_produces_sane_report() {
        let report = measure(true);
        assert_eq!(report.matmul.len(), 1);
        assert!(report.matmul[0].bf16.baseline_ms > 0.0);
        assert!(report.matmul[0].bf16.optimized_ms > 0.0);
        assert_eq!(report.flash2.len(), 1);
        assert!(report.flash2[0].tokens_per_s > 0.0);
        assert!(report.flash2[0].checksum_overhead_pct().is_finite());
        assert!(report.dot_simd.f64_dot.speedup() > 0.0);
        assert!(report.decode_single.checked_tokens_per_s > 0.0);
        assert_eq!(report.decode_batched.len(), 3);
        for p in &report.decode_batched {
            assert!(p.batched_tokens_per_s > 0.0, "batch {}", p.batch);
            assert!(p.checked_overhead_pct.is_finite());
        }
        assert!(report.decode_kv_bf16.speedup() > 0.0);
        let cont = &report.decode_continuous;
        assert!(cont.f64_cache.tokens_per_s > 0.0);
        assert!(cont.bf16_cache.tokens_per_s > 0.0);
        assert!(
            cont.bf16_cache.bytes_per_step * 3.9 < cont.f64_cache.bytes_per_step,
            "bf16 KV cache quarters the streamed bytes per step"
        );
        assert!(cont.recycled_blocks > 0, "churn must recycle blocks");
        assert!(cont.arena_blocks > 0);
        let mixed = &report.decode_mixed_format;
        assert!(mixed.f64_cache.tokens_per_s > 0.0);
        assert!(mixed.bf16_cache.tokens_per_s > 0.0);
        assert!(mixed.mixed_cache.tokens_per_s > 0.0);
        assert!(mixed.mixed_demoted_rows > 0, "the burst must age out");
        assert!(mixed.mixed_arena_blocks16 > 0, "demoted blocks exist");
        assert!(mixed.f64_steady.tokens_per_s > 0.0);
        assert!(mixed.bf16_steady.tokens_per_s > 0.0);
        assert!(mixed.mixed_steady.tokens_per_s > 0.0);
        assert!(
            mixed.bf16_steady.bytes_per_step <= mixed.mixed_steady.bytes_per_step
                && mixed.mixed_steady.bytes_per_step < mixed.f64_steady.bytes_per_step,
            "steady decode bytes order: bf16 <= mixed < f64"
        );
        assert!(
            mixed.bf16_cache.bytes_per_step <= mixed.mixed_cache.bytes_per_step
                && mixed.mixed_cache.bytes_per_step < mixed.f64_cache.bytes_per_step,
            "mixed streams between pure bf16 and pure f64: {} <= {} < {}",
            mixed.bf16_cache.bytes_per_step,
            mixed.mixed_cache.bytes_per_step,
            mixed.f64_cache.bytes_per_step,
        );
        let gq = &report.decode_gqa;
        assert_eq!(gq.points.len(), 3);
        assert_eq!(gq.points[0].group_size, 1);
        for p in &gq.points {
            assert!(p.tokens_per_s > 0.0, "group {}", p.group_size);
            assert!(p.bf16_tokens_per_s > 0.0, "bf16 group {}", p.group_size);
            assert!(p.bf16_checked_ms > 0.0);
            assert_eq!(p.kv_heads * p.group_size, gq.query_heads);
        }
        // Sharing K/V across a group divides the streamed bytes/step by
        // exactly group_size (same retained positions, kv-proportional
        // row width): the group-4 leg streams 1/4 of the MHA leg.
        let mha_bytes = gq.points[0].bytes_per_step;
        assert!(
            gq.points[1].bytes_per_step * 3.9 < mha_bytes
                && mha_bytes < gq.points[1].bytes_per_step * 4.1,
            "group 4 streams 1/4 the bytes: {} vs {}",
            gq.points[1].bytes_per_step,
            mha_bytes,
        );
        assert!(
            gq.points[2].bytes_per_step * 7.8 < mha_bytes,
            "group 8 streams 1/8 the bytes"
        );
        let sw = &report.decode_sliding_window;
        assert!(sw.retain_all.tokens_per_s > 0.0);
        assert!(sw.sliding.tokens_per_s > 0.0);
        assert!(sw.evicted_rows > 0, "the window must evict");
        assert!(
            sw.sliding.bytes_per_step < sw.retain_all.bytes_per_step,
            "the window bounds streamed bytes"
        );
        assert!(
            sw.sliding_arena_blocks <= sw.retain_arena_blocks,
            "the window bounds the arena"
        );
        let ps = &report.prefix_sharing;
        assert_eq!(
            ps.points.iter().map(|p| p.queries).collect::<Vec<_>>(),
            vec![1, 4, 16, 32]
        );
        for p in &ps.points {
            assert!(p.gemv_ms > 0.0 && p.multi_ms > 0.0, "queries {}", p.queries);
            assert!(
                p.bitwise_match,
                "queries {}: multi sweep must be bit-identical to per-query GEMV",
                p.queries
            );
        }
    }

    #[test]
    fn continuous_bytes_replay_matches_engine_lengths() {
        // The analytic bytes/step replay must agree with what the engine
        // actually holds: run the same schedule and compare final lengths.
        let shape = DecodeShape {
            head_dim: 4,
            heads: 2,
            prefill: 6,
            steps: 8,
        };
        let (batch, churn_every) = (3, 2);
        let inputs = continuous_inputs(shape, batch, churn_every);
        let engine = run_continuous(shape, churn_every, &inputs);
        // Replay lengths.
        let mut lens = vec![shape.prefill; batch];
        let mut churned = 0;
        for t in 0..shape.steps {
            for len in lens.iter_mut() {
                *len += 1;
            }
            if (t + 1) % churn_every == 0 && churned < inputs.churn.len() {
                lens.remove(0);
                lens.push(shape.prefill);
                churned += 1;
            }
        }
        let mut live: Vec<usize> = (0..engine.num_sequences())
            .filter(|&s| !engine.is_retired(s))
            .collect();
        live.sort_by_key(|&s| engine.seq_len(s));
        lens.sort_unstable();
        assert_eq!(live.len(), lens.len());
        for (&s, &len) in live.iter().zip(&lens) {
            assert_eq!(engine.seq_len(s), len);
        }
        assert!(continuous_bytes_per_step(shape, batch, churn_every, 8) > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = measure(true);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "host_threads",
            "matmul",
            "bf16_gflops",
            "flash2",
            "tokens_per_s",
            "fused_checksum",
            "overhead_pct",
            "dot_simd",
            "decode_single",
            "decode_batched",
            "decode_kv_bf16",
            "decode_continuous",
            "decode_mixed_format",
            "decode_sliding_window",
            "mixed_demoted_rows",
            "window_blocks",
            "evicted_rows",
            "bytes_per_step",
            "recycled_blocks",
            "speedup",
            "decode_gqa",
            "group_size",
            "bf16_checked_ms",
            "prefix_sharing",
            "queries",
            "multi_ms",
            "bitwise_match",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
