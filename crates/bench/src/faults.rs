//! Serving-scale fault-tolerance benchmarks: live injection campaigns
//! against the continuous-batching engine under load, measuring
//! detection latency (steps to verdict), localization accuracy, and
//! block-granular recovery cost — the numbers behind `BENCH_faults.json`.
//!
//! Two layers:
//!
//! * **per-site campaigns** ([`fa_fault::run_live`]) at the headline
//!   load (batch 32 full / batch 8 quick), one per
//!   [`InjectionSite`] — the detection/localization/recovery matrix;
//! * **a policy sweep** over KvFormat × EvictionPolicy for the
//!   storage-injection site, showing how demotion laundering and
//!   window eviction move the outcome mix;
//! * **a scrub sweep** over background-scrubber bandwidths for the
//!   Key site (invisible to the online check), tracing the detection
//!   latency vs. scrub bandwidth tradeoff against its analytical
//!   worst-case bound;
//! * **a multi-fault sweep** over burst sizes k ∈ {1, 2, 4}
//!   simultaneous flips, checking block-exact localization and
//!   bounding unexplained post-repair divergence;
//! * **micro-timings** of the structural audit and one block recovery
//!   on a loaded engine — the steady-state cost of scrubbing and the
//!   price of a repair.

use fa_attention::batch::guard::InjectionSite;
use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
use fa_attention::{AttentionConfig, HeadTopology};
use fa_fault::{run_drill, run_live, DrillSpec, DrillStats, LiveCampaignSpec, LiveCampaignStats};
use fa_tensor::{random::ElementDist, Matrix};
use std::time::Instant;

/// One site's campaign under the headline configuration.
#[derive(Clone, Copy, Debug)]
pub struct SiteCampaign {
    /// The injection site.
    pub site: InjectionSite,
    /// Aggregated campaign outcomes.
    pub stats: LiveCampaignStats,
}

/// One leg of the policy sweep (storage-value injection under a
/// format × eviction combination).
#[derive(Clone, Copy, Debug)]
pub struct PolicyLeg {
    /// Storage format under test.
    pub format: KvFormat,
    /// Eviction policy under test.
    pub eviction: EvictionPolicy,
    /// Aggregated campaign outcomes.
    pub stats: LiveCampaignStats,
}

/// One bandwidth point of the scrub sweep: a Key-site campaign (the
/// residual-coherent class only a structural walk can see) with the
/// background scrubber budgeted at `blocks_per_step`. The 0 point is
/// the scrub-off baseline where detection waits for the end-of-run
/// audit.
#[derive(Clone, Copy, Debug)]
pub struct ScrubLeg {
    /// Scrub bandwidth: live blocks audited per decode step (0 = off).
    pub blocks_per_step: usize,
    /// The analytical worst-case detection latency at this bandwidth:
    /// ceil(peak live blocks / blocks_per_step) decode steps (0 when
    /// the scrubber is off).
    pub latency_bound_steps: u64,
    /// Aggregated campaign outcomes.
    pub stats: LiveCampaignStats,
}

/// One burst size of the multi-fault sweep: a Value-site campaign
/// injecting `flips_per_trial` simultaneous flips, measuring whether
/// localization stays block-exact as damage compounds.
#[derive(Clone, Copy, Debug)]
pub struct MultiFaultLeg {
    /// Simultaneous bit flips injected at the fault step.
    pub flips_per_trial: u32,
    /// Aggregated campaign outcomes.
    pub stats: LiveCampaignStats,
}

/// The full fault-tolerance benchmark report.
#[derive(Clone, Debug)]
pub struct FaultBenchReport {
    /// Concurrent sequences per trial.
    pub batch: usize,
    /// Prompt tokens per sequence.
    pub prefill: usize,
    /// Decode steps per trial.
    pub steps: usize,
    /// Trials per campaign.
    pub trials: u64,
    /// Verdict tolerance τ.
    pub tolerance: f64,
    /// One campaign per injection site (f64 + retain-all: the canonical
    /// detection/localization/recovery matrix).
    pub sites: Vec<SiteCampaign>,
    /// Value-site campaigns across the policy matrix.
    pub policy_sweep: Vec<PolicyLeg>,
    /// Key-site campaigns across scrub bandwidths (the
    /// detection-latency / scrub-bandwidth tradeoff curve).
    pub scrub_sweep: Vec<ScrubLeg>,
    /// Value-site campaigns across burst sizes k (simultaneous flips).
    pub multi_fault: Vec<MultiFaultLeg>,
    /// Golden-twin drill campaign whose flips land inside *registered
    /// shared-prefix* blocks while a speculating scheduler serves load:
    /// the blast-radius-maximizing placement (every reader scores
    /// through the corrupt panel), certified bit-exact against the
    /// undisturbed twin.
    pub shared_prefix_drill: DrillStats,
    /// Shared-prefix length the drill registers, tokens.
    pub shared_prefix_tokens: usize,
    /// Probability an arriving request adopts the shared prefix.
    pub shared_prefix_share_prob: f64,
    /// Speculative window width the drill's scheduler runs at.
    pub shared_prefix_gamma: usize,
    /// One structural audit of a loaded sequence, milliseconds.
    pub audit_ms: f64,
    /// One block recovery (rewrite + re-checksum + sumrow refresh) on
    /// that sequence, milliseconds.
    pub recover_block_ms: f64,
    /// Rows the timed recovery rewrote.
    pub recovered_rows: usize,
}

fn site_key(site: InjectionSite) -> &'static str {
    match site {
        InjectionSite::Key => "key",
        InjectionSite::Value => "value",
        InjectionSite::Sumrow => "sumrow",
        InjectionSite::Accumulator => "accumulator",
    }
}

fn format_key(format: KvFormat) -> &'static str {
    match format {
        KvFormat::F64 => "f64",
        KvFormat::Bf16 => "bf16",
        KvFormat::Mixed { .. } => "mixed",
    }
}

fn eviction_key(eviction: EvictionPolicy) -> &'static str {
    match eviction {
        EvictionPolicy::RetainAll => "retain_all",
        EvictionPolicy::SlidingWindow { .. } => "sliding_window",
    }
}

/// Times the audit walk and one block recovery on an engine loaded to
/// the campaign shape.
fn micro_timings(spec: &LiveCampaignSpec) -> (f64, f64, usize) {
    let topo = HeadTopology::gqa(
        spec.query_heads,
        spec.kv_heads,
        AttentionConfig::new(spec.head_dim),
    );
    let mut engine = DecodeBatch::<f64>::with_policy(
        topo,
        spec.block_rows,
        KvLayout::HeadMajor,
        KvFormat::F64,
        EvictionPolicy::RetainAll,
    );
    engine.enable_recovery_log();
    let ids: Vec<usize> = (0..spec.batch).map(|_| engine.add_sequence()).collect();
    let mk = |rows: usize, cols: usize, seed: u64| {
        Matrix::<f64>::random_seeded(rows, cols, ElementDist::default(), seed)
    };
    for (i, &id) in ids.iter().enumerate() {
        let k = mk(spec.prefill, topo.kv_dim(), 90_000 + i as u64);
        let v = mk(spec.prefill, topo.kv_dim(), 91_000 + i as u64);
        engine.prefill(id, &k, &v);
    }
    for t in 0..spec.steps {
        let qs = mk(spec.batch, topo.q_dim(), 92_000 + t as u64);
        let ks = mk(spec.batch, topo.kv_dim(), 93_000 + t as u64);
        let vs = mk(spec.batch, topo.kv_dim(), 94_000 + t as u64);
        let _ = engine.step_all(&ids, &qs, &ks, &vs);
    }
    let reps = 5;
    let mut audit_ms = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(engine.audit(ids[0], spec.tolerance));
        audit_ms = audit_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let mut recover_ms = f64::INFINITY;
    let mut rows = 0;
    for _ in 0..reps {
        let start = Instant::now();
        rows = std::hint::black_box(engine.recover_block(ids[0], 0));
        recover_ms = recover_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (audit_ms, recover_ms, rows)
}

/// Runs the fault-tolerance benchmark. `quick` shrinks load and trial
/// counts for CI smoke runs; the full run measures at batch-32 load.
pub fn measure(quick: bool) -> FaultBenchReport {
    let (batch, prefill, steps, trials, sweep_trials) = if quick {
        (8, 16, 8, 16u64, 8u64)
    } else {
        (32, 64, 32, 120u64, 32u64)
    };
    let base = |site: InjectionSite, trials: u64| {
        let mut spec = LiveCampaignSpec::new(site, trials, 99)
            .with_batch(batch)
            .with_shape(prefill, steps)
            .with_format(KvFormat::F64)
            .with_eviction(EvictionPolicy::RetainAll);
        spec.query_heads = 4;
        spec.kv_heads = 2;
        spec.head_dim = 16;
        spec.block_rows = 8;
        spec
    };
    let sites: Vec<SiteCampaign> = InjectionSite::ALL
        .iter()
        .map(|&site| SiteCampaign {
            site,
            stats: run_live(&base(site, trials)),
        })
        .collect();
    let mut policy_sweep = Vec::new();
    for format in [
        KvFormat::F64,
        KvFormat::Bf16,
        KvFormat::Mixed { burst_blocks: 1 },
    ] {
        for eviction in [
            EvictionPolicy::RetainAll,
            EvictionPolicy::SlidingWindow { window_blocks: 2 },
        ] {
            let spec = base(InjectionSite::Value, sweep_trials)
                .with_format(format)
                .with_eviction(eviction);
            policy_sweep.push(PolicyLeg {
                format,
                eviction,
                stats: run_live(&spec),
            });
        }
    }
    // Scrub tradeoff curve: Key flips are invisible to the online
    // check, so steps-to-verdict here is purely a function of how much
    // audit bandwidth the scrubber spends per decode step.
    let probe = base(InjectionSite::Value, 1);
    let peak_live_blocks = (batch * (prefill + steps).div_ceil(probe.block_rows)) as u64;
    let scrub_sweep: Vec<ScrubLeg> = [0usize, 1, 4, 16]
        .iter()
        .map(|&bps| {
            let spec = base(InjectionSite::Key, sweep_trials).with_scrub(bps);
            ScrubLeg {
                blocks_per_step: bps,
                latency_bound_steps: if bps == 0 {
                    0
                } else {
                    peak_live_blocks.div_ceil(bps as u64)
                },
                stats: run_live(&spec),
            }
        })
        .collect();
    // Multi-fault sweep: does block-exact localization survive bursts
    // of simultaneous flips, and how much damage escapes repair?
    let multi_fault: Vec<MultiFaultLeg> = [1u32, 2, 4]
        .iter()
        .map(|&k| MultiFaultLeg {
            flips_per_trial: k,
            stats: run_live(&base(InjectionSite::Value, sweep_trials).with_flips(k)),
        })
        .collect();
    // Shared-prefix campaign: flips constrained to registered prefix
    // blocks (the rows every adopting reader scores through) while the
    // scheduler speculates γ=4 windows over the shared cache.
    let (shared_prefix_tokens, shared_prefix_share_prob, shared_prefix_gamma) = (12usize, 0.8, 4);
    let shared_prefix_drill = run_drill(
        &DrillSpec::new(sweep_trials, 0xD217)
            .with_injections(1, false)
            .with_shared_prefix(shared_prefix_tokens, shared_prefix_share_prob)
            .with_speculation(shared_prefix_gamma, 0.8),
    );
    let (audit_ms, recover_block_ms, recovered_rows) = micro_timings(&probe);
    FaultBenchReport {
        batch,
        prefill,
        steps,
        trials,
        tolerance: probe.tolerance,
        sites,
        policy_sweep,
        scrub_sweep,
        multi_fault,
        shared_prefix_drill,
        shared_prefix_tokens,
        shared_prefix_share_prob,
        shared_prefix_gamma,
        audit_ms,
        recover_block_ms,
        recovered_rows,
    }
}

impl FaultBenchReport {
    /// Renders the report as the `BENCH_faults.json` document: a
    /// `detection_latency` section (per-site verdict mix and
    /// steps-to-verdict), a `localization` section (audit accuracy), a
    /// `recovery` section (repair volume, bit-identity certification,
    /// audit/recovery micro-costs), the raw policy sweep, a `scrub`
    /// section (detection latency vs. scrub bandwidth, with the
    /// analytical bound each point must respect), and a `multi_fault`
    /// section (localization accuracy vs. burst size).
    pub fn to_json(&self) -> String {
        let detection: Vec<String> = self
            .sites
            .iter()
            .map(|s| {
                let st = &s.stats;
                let (lo, hi) = st.base.wilson95(st.base.detected);
                format!(
                    "    \"{}\": {{ \"trials\": {}, \"detected\": {}, \"false_positive\": {}, \
                     \"silent\": {}, \"masked\": {}, \"online_detected\": {}, \
                     \"scrub_detected\": {}, \"mean_steps_to_verdict\": {:.3}, \
                     \"detected_pct_lo\": {:.2}, \"detected_pct_hi\": {:.2} }}",
                    site_key(s.site),
                    st.total(),
                    st.base.detected,
                    st.base.false_positive,
                    st.base.silent,
                    st.base.masked,
                    st.online_detected,
                    st.scrub_detected,
                    st.mean_steps_to_verdict(),
                    lo,
                    hi,
                )
            })
            .collect();
        let localization: Vec<String> = self
            .sites
            .iter()
            .map(|s| {
                let st = &s.stats;
                format!(
                    "    \"{}\": {{ \"localized\": {}, \"mislocalized\": {}, \
                     \"accuracy_pct\": {:.2}, \"evicted_before_detect\": {} }}",
                    site_key(s.site),
                    st.localized,
                    st.mislocalized,
                    st.localization_accuracy_pct(),
                    st.evicted_before_detect,
                )
            })
            .collect();
        let recovery: Vec<String> = self
            .sites
            .iter()
            .map(|s| {
                let st = &s.stats;
                format!(
                    "    \"{}\": {{ \"recoveries\": {}, \"recovered_rows\": {}, \
                     \"post_recovery_divergent\": {} }}",
                    site_key(s.site),
                    st.recoveries,
                    st.recovered_rows,
                    st.post_recovery_divergent,
                )
            })
            .collect();
        let sweep: Vec<String> = self
            .policy_sweep
            .iter()
            .map(|leg| {
                let st = &leg.stats;
                format!(
                    "    {{ \"format\": \"{}\", \"eviction\": \"{}\", \"trials\": {}, \
                     \"detected\": {}, \"silent\": {}, \"localized\": {}, \
                     \"recoveries\": {}, \"post_recovery_divergent\": {}, \
                     \"evicted_before_detect\": {} }}",
                    format_key(leg.format),
                    eviction_key(leg.eviction),
                    st.total(),
                    st.base.detected,
                    st.base.silent,
                    st.localized,
                    st.recoveries,
                    st.post_recovery_divergent,
                    st.evicted_before_detect,
                )
            })
            .collect();
        let scrub: Vec<String> = self
            .scrub_sweep
            .iter()
            .map(|leg| {
                let st = &leg.stats;
                format!(
                    "    {{ \"blocks_per_step\": {}, \"latency_bound_steps\": {}, \
                     \"trials\": {}, \"detected\": {}, \"silent\": {}, \
                     \"online_detected\": {}, \"scrub_detected\": {}, \
                     \"mean_steps_to_verdict\": {:.3}, \"detection_steps_max\": {}, \
                     \"scrubbed_blocks\": {} }}",
                    leg.blocks_per_step,
                    leg.latency_bound_steps,
                    st.total(),
                    st.base.detected,
                    st.base.silent,
                    st.online_detected,
                    st.scrub_detected,
                    st.mean_steps_to_verdict(),
                    st.detection_steps_max,
                    st.scrubbed_blocks,
                )
            })
            .collect();
        let multi: Vec<String> = self
            .multi_fault
            .iter()
            .map(|leg| {
                let st = &leg.stats;
                format!(
                    "    {{ \"flips_per_trial\": {}, \"injected_flips\": {}, \
                     \"localized\": {}, \"mislocalized\": {}, \"accuracy_pct\": {:.2}, \
                     \"recoveries\": {}, \"recovered_rows\": {}, \
                     \"post_recovery_divergent\": {} }}",
                    leg.flips_per_trial,
                    st.injected_flips,
                    st.localized,
                    st.mislocalized,
                    st.localization_accuracy_pct(),
                    st.recoveries,
                    st.recovered_rows,
                    st.post_recovery_divergent,
                )
            })
            .collect();
        let sp = &self.shared_prefix_drill;
        let shared_prefix = format!(
            "{{\n    \"prefix_tokens\": {}, \"share_prob\": {:.2}, \"gamma\": {},\n    \
             \"trials\": {}, \"drained\": {}, \"injections_landed\": {},\n    \
             \"online_alarms\": {}, \"scrub_findings\": {}, \"repaired_blocks\": {},\n    \
             \"quarantined_requests\": {}, \"recovered_requests\": {},\n    \
             \"tokens_compared\": {}, \"tokens_divergent\": {},\n    \
             \"detection_pct\": {:.2}, \"recovery_pct\": {:.2}, \
             \"token_fidelity_pct\": {:.2}\n  }}",
            self.shared_prefix_tokens,
            self.shared_prefix_share_prob,
            self.shared_prefix_gamma,
            sp.trials,
            sp.drained_trials,
            sp.injections_landed,
            sp.online_alarms,
            sp.scrub_findings,
            sp.repaired_blocks,
            sp.quarantined_requests,
            sp.recovered_requests,
            sp.tokens_compared,
            sp.tokens_divergent,
            sp.detection_pct(),
            sp.recovery_pct(),
            sp.token_fidelity_pct(),
        );
        format!(
            "{{\n  \"batch\": {},\n  \"prefill\": {},\n  \"steps\": {},\n  \
             \"trials\": {},\n  \"tolerance\": {:e},\n  \
             \"detection_latency\": {{\n{}\n  }},\n  \
             \"localization\": {{\n{}\n  }},\n  \
             \"recovery\": {{\n{},\n    \"audit_ms\": {:.4}, \"recover_block_ms\": {:.4}, \
             \"timed_recovery_rows\": {}\n  }},\n  \
             \"policy_sweep\": [\n{}\n  ],\n  \
             \"scrub\": [\n{}\n  ],\n  \
             \"multi_fault\": [\n{}\n  ],\n  \
             \"shared_prefix_drill\": {}\n}}\n",
            self.batch,
            self.prefill,
            self.steps,
            self.trials,
            self.tolerance,
            detection.join(",\n"),
            localization.join(",\n"),
            recovery.join(",\n"),
            self.audit_ms,
            self.recover_block_ms,
            self.recovered_rows,
            sweep.join(",\n"),
            scrub.join(",\n"),
            multi.join(",\n"),
            shared_prefix,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fault_measurement_is_sane() {
        let report = measure(true);
        assert_eq!(report.sites.len(), 4);
        assert_eq!(report.policy_sweep.len(), 6);
        for s in &report.sites {
            assert_eq!(s.stats.total(), report.trials, "{:?}", s.site);
        }
        let value = &report.sites[1];
        assert_eq!(value.site, InjectionSite::Value);
        assert!(value.stats.alarmed() > 0, "value flips alarm: {value:?}");
        assert!(value.stats.recoveries > 0, "alarms recover: {value:?}");
        assert_eq!(
            value.stats.post_recovery_divergent, 0,
            "f64 retain-all recovery resumes bit-identical"
        );
        assert_eq!(value.stats.mislocalized, 0, "audits pin the block");
        let key = &report.sites[0];
        assert_eq!(key.site, InjectionSite::Key);
        assert!(
            key.stats.scrub_detected > 0,
            "key flips are the scrub's story: {key:?}"
        );
        assert!(report.audit_ms >= 0.0 && report.audit_ms.is_finite());
        assert!(report.recover_block_ms >= 0.0 && report.recover_block_ms.is_finite());
        assert!(report.recovered_rows > 0);

        // Scrub sweep: a baseline plus >= 3 nonzero bandwidth points,
        // each honoring its analytical latency bound, with latency
        // monotonically improving (weakly) as bandwidth grows.
        assert_eq!(report.scrub_sweep[0].blocks_per_step, 0);
        assert!(report.scrub_sweep.len() >= 4);
        assert_eq!(report.scrub_sweep[0].stats.scrubbed_blocks, 0);
        let baseline_mean = report.scrub_sweep[0].stats.mean_steps_to_verdict();
        for leg in &report.scrub_sweep[1..] {
            assert!(leg.blocks_per_step > 0);
            assert!(leg.stats.scrubbed_blocks > 0, "{leg:?}");
            assert!(
                leg.stats.detection_steps_max <= leg.latency_bound_steps.max(report.steps as u64),
                "latency bound violated: {leg:?}"
            );
            // Per-trial, a mid-run scrub verdict always lands no later
            // than the end-of-run audit the baseline waits for.
            assert!(
                leg.stats.mean_steps_to_verdict() <= baseline_mean + 1e-9,
                "scrubbing slower than the audit backstop: {leg:?}"
            );
        }

        // Multi-fault sweep: every flip gets judged, and unexplained
        // post-repair divergence never happens (divergence is bounded
        // by the mislocalized/absorbed residue quarantine exists for).
        assert_eq!(report.multi_fault.len(), 3);
        for leg in &report.multi_fault {
            let st = &leg.stats;
            assert_eq!(
                st.injected_flips,
                st.total() * leg.flips_per_trial as u64,
                "{leg:?}"
            );
            assert_eq!(
                st.localized + st.mislocalized + st.evicted_before_detect,
                st.injected_flips,
                "every flip judged: {leg:?}"
            );
            assert!(st.localization_accuracy_pct() >= 90.0, "{leg:?}");
            assert!(st.post_recovery_divergent <= st.mislocalized, "{leg:?}");
        }

        // Shared-prefix drill: flips inside registered prefix blocks
        // under a speculating scheduler still alarm, repair, and stay
        // bit-exact against the golden twin.
        let sp = &report.shared_prefix_drill;
        assert!(sp.drained_trials > 0, "{sp:?}");
        assert!(sp.injections_landed > 0, "{sp:?}");
        assert_eq!(sp.tokens_divergent, 0, "shared-prefix fidelity: {sp:?}");
        assert_eq!(
            sp.recovered_requests, sp.quarantined_requests,
            "every quarantined reader recovers: {sp:?}"
        );
    }

    #[test]
    fn fault_json_has_required_sections() {
        let report = measure(true);
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "detection_latency",
            "localization",
            "recovery",
            "mean_steps_to_verdict",
            "online_detected",
            "scrub_detected",
            "accuracy_pct",
            "evicted_before_detect",
            "recovered_rows",
            "post_recovery_divergent",
            "audit_ms",
            "recover_block_ms",
            "policy_sweep",
            "\"scrub\"",
            "multi_fault",
            "blocks_per_step",
            "latency_bound_steps",
            "detection_steps_max",
            "scrubbed_blocks",
            "flips_per_trial",
            "injected_flips",
            "shared_prefix_drill",
            "token_fidelity_pct",
            "\"key\"",
            "\"value\"",
            "\"sumrow\"",
            "\"accumulator\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
