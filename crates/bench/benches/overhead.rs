//! Criterion bench: checking overhead — unchecked FlashAttention-2 vs
//! the fused Flash-ABFT kernel vs traditional two-step ABFT (the software
//! analogue of the paper's energy-overhead comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_abft::two_step;
use fa_attention::{flash2, AttentionConfig};
use fa_numerics::Tolerance;
use fa_tensor::{random::ElementDist, Matrix};
use flash_abft::FlashAbft;
use std::hint::black_box;

fn bench_overhead(c: &mut Criterion) {
    let d = 64;
    let mut group = c.benchmark_group("checking_overhead");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let q = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 1);
        let k = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 2);
        let v = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 3);
        let cfg = AttentionConfig::new(d);
        let engine = FlashAbft::new(cfg);

        group.bench_with_input(BenchmarkId::new("unchecked_flash2", n), &n, |b, _| {
            b.iter(|| black_box(flash2::attention(&q, &k, &v, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("flash_abft_fused", n), &n, |b, _| {
            b.iter(|| black_box(engine.compute(&q, &k, &v)))
        });
        group.bench_with_input(BenchmarkId::new("two_step_abft", n), &n, |b, _| {
            b.iter(|| {
                black_box(two_step::checked_attention(
                    &q,
                    &k,
                    &v,
                    &cfg,
                    Tolerance::PAPER,
                    None,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
