//! Criterion bench: the attention kernel zoo (naive / lazy / flash2 /
//! tiled) across sequence lengths — the substrate performance baseline
//! referenced by the overhead experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_attention::{flash2, lazy, naive, tiled, AttentionConfig};
use fa_tensor::{random::ElementDist, Matrix};
use std::hint::black_box;

fn qkv(n: usize, d: usize) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
    (
        Matrix::random_seeded(n, d, ElementDist::default(), 1),
        Matrix::random_seeded(n, d, ElementDist::default(), 2),
        Matrix::random_seeded(n, d, ElementDist::default(), 3),
    )
}

fn bench_kernels(c: &mut Criterion) {
    let d = 64;
    let mut group = c.benchmark_group("attention_kernels");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let (q, k, v) = qkv(n, d);
        let cfg = AttentionConfig::new(d);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(naive::attention(&q, &k, &v, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("lazy_alg1", n), &n, |b, _| {
            b.iter(|| black_box(lazy::attention(&q, &k, &v, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("flash2_alg2", n), &n, |b, _| {
            b.iter(|| black_box(flash2::attention(&q, &k, &v, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("tiled_b32", n), &n, |b, _| {
            b.iter(|| black_box(tiled::attention(&q, &k, &v, &cfg, 32)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
