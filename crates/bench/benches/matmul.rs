//! Criterion bench: the blocked matmul layer vs the seed's triple loop,
//! and parallel vs serial FlashAttention-2 — the acceptance benchmarks of
//! the kernel-layer PR, mirrored in `BENCH_kernels.json` by `run_all`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_numerics::BF16;
use fa_tensor::ops::matmul_f64_acc;
use fa_tensor::{random::ElementDist, Matrix};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for n in [128usize, 256] {
        let af = Matrix::<f64>::random_seeded(n, n, ElementDist::default(), 1);
        let bf = Matrix::<f64>::random_seeded(n, n, ElementDist::default(), 2);
        let ab: Matrix<BF16> = af.cast();
        let bb: Matrix<BF16> = bf.cast();

        group.bench_with_input(BenchmarkId::new("blocked_f64", n), &n, |b, _| {
            b.iter(|| black_box(af.matmul(&bf)))
        });
        group.bench_with_input(BenchmarkId::new("reference_f64", n), &n, |b, _| {
            b.iter(|| black_box(fa_tensor::ops::matmul_reference(&af, &bf)))
        });
        group.bench_with_input(BenchmarkId::new("blocked_bf16", n), &n, |b, _| {
            b.iter(|| black_box(ab.matmul(&bb)))
        });
        group.bench_with_input(BenchmarkId::new("reference_bf16", n), &n, |b, _| {
            b.iter(|| black_box(fa_tensor::ops::matmul_reference(&ab, &bb)))
        });
        group.bench_with_input(BenchmarkId::new("blocked_f64_acc_bf16", n), &n, |b, _| {
            b.iter(|| black_box(matmul_f64_acc(&ab, &bb)))
        });
    }
    group.finish();
}

fn bench_flash2_parallel(c: &mut Criterion) {
    use fa_attention::{flash2, AttentionConfig};
    let d = 64;
    let mut group = c.benchmark_group("flash2_parallel");
    group.sample_size(10);
    for n in [256usize, 1024] {
        let q = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 1);
        let k = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 2);
        let v = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 3);
        let cfg = AttentionConfig::new(d);
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| black_box(flash2::attention(&q, &k, &v, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| black_box(flash2::attention_serial(&q, &k, &v, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_flash2_parallel);
criterion_main!(benches);
