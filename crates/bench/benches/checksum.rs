//! Criterion bench: checksum primitives — the closed-form Eq. 5
//! prediction (materializes softmax, O(N²)), the per-query Eq. 8 form
//! (O(N·(N+d)) streaming), the merged-accumulator step, and the
//! accelerator simulator's full run (golden) vs targeted fault
//! re-simulation — the quantity that makes 10 000-campaign tables cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use fa_accel_sim::config::AcceleratorConfig;
use fa_accel_sim::fault::{Fault, RegAddr};
use fa_accel_sim::Accelerator;
use fa_attention::AttentionConfig;
use fa_numerics::BF16;
use fa_tensor::{random::ElementDist, Matrix};
use flash_abft::checksum::{predicted_checksum_eq5, predicted_checksum_eq8};
use flash_abft::MergedAccumulator;
use std::hint::black_box;

fn bench_checksum(c: &mut Criterion) {
    let n = 128;
    let d = 64;
    let q = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 1);
    let k = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 2);
    let v = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 3);
    let cfg = AttentionConfig::new(d);

    let mut group = c.benchmark_group("checksum_prediction");
    group.sample_size(10);
    group.bench_function("eq5_closed_form", |b| {
        b.iter(|| black_box(predicted_checksum_eq5(&q, &k, &v, &cfg)))
    });
    group.bench_function("eq8_per_query", |b| {
        b.iter(|| black_box(predicted_checksum_eq8(&q, &k, &v, &cfg)))
    });
    group.bench_function("merged_accumulator_128_steps", |b| {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| v.row(i).to_vec()).collect();
        b.iter(|| {
            let mut acc = MergedAccumulator::new(d);
            for (i, row) in rows.iter().enumerate() {
                acc.step(i as f64 * 0.01, row);
            }
            black_box(acc.finalize())
        })
    });
    group.finish();

    let qb: Matrix<BF16> = q.cast();
    let kb: Matrix<BF16> = k.cast();
    let vb: Matrix<BF16> = v.cast();
    let accel = Accelerator::new(AcceleratorConfig::new(16, d));
    let golden = accel.run(&qb, &kb, &vb);
    let fault = Fault {
        cycle: 40,
        target: RegAddr::Output { block: 3, lane: 5 },
        bit: 60,
    };

    let mut group = c.benchmark_group("accel_sim");
    group.sample_size(10);
    group.bench_function("golden_full_run", |b| {
        b.iter(|| black_box(accel.run(&qb, &kb, &vb)))
    });
    group.bench_function("targeted_fault_resim", |b| {
        b.iter(|| black_box(accel.run_faulted(&qb, &kb, &vb, &[fault], Some(&golden))))
    });
    group.finish();
}

criterion_group!(benches, bench_checksum);
criterion_main!(benches);
