//! Property-based tests for the numerics substrate: BFloat16 rounding
//! semantics, the exponential units, compensated summation, and the
//! tolerance comparator.

use fa_numerics::bits::{classify_f64, flip_f64_bit, ulp_distance_f64, FpClass};
use fa_numerics::exp::{ExpUnit, PolyExp, TableExp};
use fa_numerics::{check_abs, CheckOutcome, KahanSum, OnlineSoftmax, BF16};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round-to-nearest: the BF16 result is always one of the two
    /// representable neighbours, and never farther than half an ULP.
    #[test]
    fn bf16_rounding_is_nearest(x in -1e37f32..1e37) {
        let r = BF16::from_f32(x);
        prop_assume!(r.is_finite());
        let rf = r.to_f32();
        // Neighbours via bit manipulation on the BF16 lattice.
        let up = BF16::from_bits(r.to_bits().wrapping_add(1)).to_f32();
        let down = BF16::from_bits(r.to_bits().wrapping_sub(1)).to_f32();
        let err = (rf - x).abs();
        if up.is_finite() {
            prop_assert!(err <= (up - x).abs() + f32::EPSILON * x.abs());
        }
        if down.is_finite() {
            prop_assert!(err <= (down - x).abs() + f32::EPSILON * x.abs());
        }
    }

    /// BF16 conversion is monotone: x <= y implies bf16(x) <= bf16(y).
    #[test]
    fn bf16_conversion_monotone(a in -1e30f32..1e30, b in -1e30f32..1e30) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(BF16::from_f32(lo) <= BF16::from_f32(hi));
    }

    /// Exact BF16 values survive the roundtrip bit-exactly.
    #[test]
    fn bf16_idempotent(bits in 0u16..0x7F80) {
        let v = BF16::from_bits(bits);
        prop_assert_eq!(BF16::from_f32(v.to_f32()).to_bits(), bits);
    }

    /// Negation is always a pure sign-bit flip.
    #[test]
    fn bf16_negation_is_sign_flip(x in -1e30f32..1e30) {
        let v = BF16::from_f32(x);
        prop_assert_eq!((-v).to_bits(), v.to_bits() ^ 0x8000);
    }

    /// BF16 addition is commutative (each operand rounds identically).
    #[test]
    fn bf16_add_commutative(a in -1e3f32..1e3, b in -1e3f32..1e3) {
        let (x, y) = (BF16::from_f32(a), BF16::from_f32(b));
        prop_assert_eq!((x + y).to_bits(), (y + x).to_bits());
    }

    /// Both exp units agree with libm within their documented bounds over
    /// the softmax domain.
    #[test]
    fn exp_units_accuracy(x in -80.0f64..0.0) {
        let exact = x.exp();
        let poly = PolyExp::new().eval(x);
        let table = TableExp::new().eval(x);
        prop_assert!(((poly - exact) / exact).abs() < 1e-8, "poly at {x}");
        prop_assert!(((table - exact) / exact).abs() < 1e-6, "table at {x}");
    }

    /// Compensated summation is at least as accurate as naive summation.
    #[test]
    fn kahan_not_worse_than_naive(xs in proptest::collection::vec(-1e8f64..1e8, 1..200)) {
        // Exact reference via pairwise over sorted magnitudes (good proxy).
        let exact: f64 = {
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("finite"));
            let mut acc = KahanSum::new();
            acc.extend(sorted.iter().copied());
            acc.value()
        };
        let kahan: KahanSum = xs.iter().copied().collect();
        let naive: f64 = xs.iter().sum();
        prop_assert!((kahan.value() - exact).abs() <= (naive - exact).abs() + 1e-6);
    }

    /// Online softmax never overflows for any finite score sequence and
    /// its sum-of-exponentials stays in (0, n].
    #[test]
    fn online_softmax_bounded(scores in proptest::collection::vec(-1e300f64..1e300, 1..50)) {
        let mut os = OnlineSoftmax::new();
        for &s in &scores {
            os.push(s);
        }
        prop_assert!(os.sum_exp().is_finite());
        prop_assert!(os.sum_exp() > 0.0);
        prop_assert!(os.sum_exp() <= scores.len() as f64 + 1e-9);
        prop_assert_eq!(os.max(), scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// The comparator is symmetric and NaN-silent.
    #[test]
    fn comparator_symmetric(a in -1e6f64..1e6, b in -1e6f64..1e6, tol in 1e-9f64..1.0) {
        prop_assert_eq!(check_abs(a, b, tol), check_abs(b, a, tol));
        prop_assert_eq!(check_abs(f64::NAN, b, tol), CheckOutcome::NanSilent);
    }

    /// Bit flips are involutive and classified flips behave: a sign-bit
    /// flip never changes the class of a finite non-zero number.
    #[test]
    fn f64_flip_properties(x in -1e100f64..1e100, bit in 0u32..64) {
        prop_assume!(x != 0.0);
        prop_assert_eq!(flip_f64_bit(flip_f64_bit(x, bit), bit), x);
        let sign_flipped = flip_f64_bit(x, 63);
        prop_assert_eq!(classify_f64(sign_flipped), classify_f64(x));
        prop_assert_eq!(sign_flipped, -x);
    }

    /// ULP distance is a metric-ish: zero iff equal (same sign), and one
    /// bit-step away is distance 1.
    #[test]
    fn ulp_distance_properties(x in 1e-300f64..1e300) {
        prop_assert_eq!(ulp_distance_f64(x, x), Some(0));
        let next = f64::from_bits(x.to_bits() + 1);
        prop_assert_eq!(ulp_distance_f64(x, next), Some(1));
        prop_assert_eq!(classify_f64(x), FpClass::Normal);
    }
}
