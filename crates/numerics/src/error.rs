//! NaN-aware tolerance comparison — the detection rule of the paper.
//!
//! Flash-ABFT raises an alarm when the predicted checksum differs from the
//! actual output checksum "by more than 10⁻⁶" (§IV-B). A hardware comparator
//! implementing `|a − b| > τ` evaluates to *false* whenever the difference
//! is NaN, which is exactly why the paper's category 3 ("Silent") includes
//! faults that produce invalid floating-point values: the comparison can
//! never fire on NaN. This module encodes those semantics precisely so the
//! fault-injection results inherit them.

/// Detection threshold configuration.
///
/// The paper uses an absolute bound of 10⁻⁶ "found experimentally"; a
/// relative variant is provided for the threshold-sweep ablation.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Tolerance {
    /// Alarm when `|a − b| > bound`.
    Absolute(f64),
    /// Alarm when `|a − b| > bound · max(|a|, |b|, floor)`; `floor`
    /// prevents a zero reference from making every discrepancy relative to
    /// nothing.
    Relative {
        /// Relative bound.
        bound: f64,
        /// Magnitude floor for the scale factor.
        floor: f64,
    },
}

impl Tolerance {
    /// The paper's operating point: absolute 10⁻⁶.
    pub const PAPER: Tolerance = Tolerance::Absolute(1e-6);
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance::PAPER
    }
}

/// Result of comparing a predicted checksum against an actual one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CheckOutcome {
    /// Discrepancy within tolerance: no alarm.
    Pass,
    /// Discrepancy exceeds tolerance: alarm raised.
    Alarm,
    /// The difference is NaN (either side NaN, or ∞ − ∞): a hardware
    /// magnitude comparator does **not** fire. Distinguished from `Pass`
    /// so campaigns can attribute silence to invalid arithmetic.
    NanSilent,
}

impl CheckOutcome {
    /// Whether the checker flagged an error.
    #[inline]
    pub fn is_alarm(self) -> bool {
        matches!(self, CheckOutcome::Alarm)
    }
}

/// Compares with an absolute bound, with hardware comparator semantics.
///
/// ```
/// use fa_numerics::{check_abs, CheckOutcome};
/// assert_eq!(check_abs(1.0, 1.0 + 1e-9, 1e-6), CheckOutcome::Pass);
/// assert_eq!(check_abs(1.0, 1.1, 1e-6), CheckOutcome::Alarm);
/// assert_eq!(check_abs(f64::NAN, 1.0, 1e-6), CheckOutcome::NanSilent);
/// ```
pub fn check_abs(predicted: f64, actual: f64, bound: f64) -> CheckOutcome {
    let diff = (predicted - actual).abs();
    if diff.is_nan() {
        CheckOutcome::NanSilent
    } else if diff > bound {
        CheckOutcome::Alarm
    } else {
        CheckOutcome::Pass
    }
}

/// Compares with a relative bound (see [`Tolerance::Relative`]).
pub fn check_rel(predicted: f64, actual: f64, bound: f64, floor: f64) -> CheckOutcome {
    let diff = (predicted - actual).abs();
    if diff.is_nan() {
        return CheckOutcome::NanSilent;
    }
    let scale = predicted.abs().max(actual.abs()).max(floor);
    if diff > bound * scale {
        CheckOutcome::Alarm
    } else {
        CheckOutcome::Pass
    }
}

impl Tolerance {
    /// Applies this tolerance to a predicted/actual pair.
    pub fn check(&self, predicted: f64, actual: f64) -> CheckOutcome {
        match *self {
            Tolerance::Absolute(bound) => check_abs(predicted, actual, bound),
            Tolerance::Relative { bound, floor } => check_rel(predicted, actual, bound, floor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tolerance_is_1e6_absolute() {
        assert_eq!(Tolerance::PAPER, Tolerance::Absolute(1e-6));
        assert_eq!(Tolerance::default(), Tolerance::PAPER);
    }

    #[test]
    fn abs_check_boundary() {
        // Exactly at the bound: no alarm ("more than 1e-6").
        assert_eq!(check_abs(0.0, 1e-6, 1e-6), CheckOutcome::Pass);
        assert_eq!(check_abs(0.0, 1.0000001e-6, 1e-6), CheckOutcome::Alarm);
    }

    #[test]
    fn nan_never_alarms() {
        assert_eq!(check_abs(f64::NAN, 0.0, 1e-6), CheckOutcome::NanSilent);
        assert_eq!(check_abs(0.0, f64::NAN, 1e-6), CheckOutcome::NanSilent);
        assert_eq!(
            check_abs(f64::INFINITY, f64::INFINITY, 1e-6),
            CheckOutcome::NanSilent,
            "inf - inf is NaN: comparator silent"
        );
    }

    #[test]
    fn mismatched_infinities_do_alarm() {
        // inf - finite = inf > bound: the comparator fires.
        assert_eq!(check_abs(f64::INFINITY, 1.0, 1e-6), CheckOutcome::Alarm);
        assert_eq!(
            check_abs(f64::NEG_INFINITY, f64::INFINITY, 1e-6),
            CheckOutcome::Alarm
        );
    }

    #[test]
    fn relative_check_scales() {
        // 0.1% discrepancy on a value of 1e6 passes a 1% relative bound
        // but would fail the absolute paper bound.
        assert_eq!(check_rel(1e6, 1e6 + 1e3, 0.01, 1e-30), CheckOutcome::Pass);
        assert_eq!(check_abs(1e6, 1e6 + 1e3, 1e-6), CheckOutcome::Alarm);
        assert_eq!(check_rel(1e6, 1.2e6, 0.01, 1e-30), CheckOutcome::Alarm);
    }

    #[test]
    fn relative_floor_handles_zero_reference() {
        // Both near zero: floor keeps tiny noise from alarming.
        assert_eq!(check_rel(0.0, 1e-12, 1e-6, 1.0), CheckOutcome::Pass);
        assert_eq!(check_rel(0.0, 1e-3, 1e-6, 1.0), CheckOutcome::Alarm);
    }

    #[test]
    fn tolerance_dispatch() {
        let t = Tolerance::Absolute(1e-6);
        assert!(t.check(1.0, 2.0).is_alarm());
        let r = Tolerance::Relative {
            bound: 1e-3,
            floor: 1e-30,
        };
        assert!(!r.check(1000.0, 1000.5).is_alarm());
        assert!(r.check(1000.0, 1002.0).is_alarm());
    }

    #[test]
    fn outcome_is_alarm() {
        assert!(CheckOutcome::Alarm.is_alarm());
        assert!(!CheckOutcome::Pass.is_alarm());
        assert!(!CheckOutcome::NanSilent.is_alarm());
    }
}
