//! Hardware-style exponential units.
//!
//! The FlashAttention-2 datapath evaluates `exp(s_i − m_i)` and
//! `exp(m_{i−1} − m_i)` every cycle (Alg. 2/3 of the paper). An HLS flow
//! maps these onto either a range-reduced polynomial evaluator or a
//! lookup-table unit. Both are modelled here, and both operate on
//! **non-positive** arguments only — online softmax guarantees
//! `s_i − m_i ≤ 0` and `m_{i−1} − m_i ≤ 0` — which hardware exploits
//! because the result is always in `(0, 1]`.
//!
//! Faults can make arguments positive (a flipped sign bit in a score
//! register), so the units must also behave sensibly out of range; we
//! follow hardware practice and evaluate correctly rather than clamping,
//! since a multiplier/adder pipeline has no range check.

use crate::BF16;

/// log2(e), used for base-2 range reduction.
const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// ln(2).
const LN_2: f64 = std::f64::consts::LN_2;

/// A software model of a hardware exponential unit.
///
/// Both implementations take and return `f64` internally; the BF16 entry
/// point [`ExpUnit::eval_bf16`] rounds the result to BFloat16 exactly as
/// the datapath would.
pub trait ExpUnit: std::fmt::Debug {
    /// Evaluates `e^x`.
    fn eval(&self, x: f64) -> f64;

    /// Evaluates `e^x` in the BF16 pipeline: the argument is a BF16
    /// register value and the result is rounded back to BF16.
    fn eval_bf16(&self, x: BF16) -> BF16 {
        BF16::from_f64(self.eval(x.to_f64()))
    }

    /// Maximum relative error of this unit against libm `exp` over the
    /// softmax-relevant domain `[-88, 0]`, measured by dense sampling.
    /// Exposed so tests and the area model can reason about accuracy/cost.
    fn max_relative_error(&self) -> f64 {
        let mut worst: f64 = 0.0;
        let mut x = -88.0f64;
        while x <= 0.0 {
            let exact = x.exp();
            if exact > 0.0 {
                let got = self.eval(x);
                worst = worst.max(((got - exact) / exact).abs());
            }
            x += 0.0137; // irrational-ish step to avoid hitting only breakpoints
        }
        worst
    }
}

/// Range-reduced polynomial exponential: `e^x = 2^k · 2^f` with
/// `x·log2(e) = k + f`, `f ∈ [-0.5, 0.5)`, and `2^f` evaluated by a
/// degree-5 minimax-style polynomial. This is what Catapult HLS typically
/// produces for `exp` on a shared FP pipeline.
///
/// ```
/// use fa_numerics::exp::{ExpUnit, PolyExp};
/// let unit = PolyExp::new();
/// let y = unit.eval(-1.0);
/// assert!((y - (-1.0f64).exp()).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct PolyExp;

impl PolyExp {
    /// Creates the unit.
    pub fn new() -> Self {
        PolyExp
    }
}

impl ExpUnit for PolyExp {
    fn eval(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if x == f64::INFINITY {
            return f64::INFINITY;
        }
        if x <= -746.0 {
            return 0.0; // underflow of e^x in f64
        }
        if x >= 710.0 {
            return f64::INFINITY;
        }
        let t = x * LOG2_E;
        let k = t.round();
        let f = t - k; // f in [-0.5, 0.5]
        let z = f * LN_2;
        // e^x = 2^k * e^z with |z| <= ln2/2; the degree-9 Taylor
        // polynomial for e^z keeps truncation error below 1e-11 relative.
        let p = 1.0
            + z * (1.0
                + z * (0.5
                    + z * (1.0 / 6.0
                        + z * (1.0 / 24.0
                            + z * (1.0 / 120.0
                                + z * (1.0 / 720.0
                                    + z * (1.0 / 5040.0
                                        + z * (1.0 / 40320.0 + z * (1.0 / 362880.0)))))))));
        // Scale by 2^k exactly via exponent manipulation.
        let ik = k as i32;
        scale_by_pow2(p, ik)
    }
}

/// Table-driven exponential: `e^x = 2^k · T1[i] · T2[j] · poly(r)` where the
/// fractional part is split into a coarse index `i` (64-entry table), a fine
/// index `j` (64-entry table) and a tiny residual `r` handled by a
/// degree-2 polynomial. This mirrors LUT-based exp units used in
/// fixed-latency accelerator datapaths.
#[derive(Clone, Debug)]
pub struct TableExp {
    coarse: [f64; 64],
    fine: [f64; 64],
}

impl Default for TableExp {
    fn default() -> Self {
        Self::new()
    }
}

impl TableExp {
    /// Builds the two 64-entry tables: `coarse[i] = 2^(i/64)`,
    /// `fine[j] = 2^(j/4096)`.
    pub fn new() -> Self {
        let mut coarse = [0.0; 64];
        let mut fine = [0.0; 64];
        for i in 0..64 {
            coarse[i] = 2f64.powf(i as f64 / 64.0);
            fine[i] = 2f64.powf(i as f64 / 4096.0);
        }
        TableExp { coarse, fine }
    }
}

impl ExpUnit for TableExp {
    fn eval(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if x == f64::INFINITY {
            return f64::INFINITY;
        }
        if x <= -746.0 {
            return 0.0;
        }
        if x >= 710.0 {
            return f64::INFINITY;
        }
        let t = x * LOG2_E; // e^x = 2^t
        let k = t.floor();
        let frac = t - k; // in [0, 1)
        let scaled = frac * 4096.0;
        let idx = scaled as usize; // 0..4095
        let i = idx >> 6; // coarse: top 6 bits
        let j = idx & 63; // fine: bottom 6 bits
        let r = (scaled - idx as f64) / 4096.0 * LN_2; // residual, |r| < ln2/4096
        let poly = 1.0 + r * (1.0 + 0.5 * r);
        scale_by_pow2(self.coarse[i] * self.fine[j] * poly, k as i32)
    }
}

/// Multiplies `x` by 2^k using exponent arithmetic (`ldexp`), saturating to
/// 0 or infinity. This is the "shift the exponent field" operation a
/// hardware unit performs for free.
#[inline]
pub fn scale_by_pow2(x: f64, k: i32) -> f64 {
    // f64 exponent range is wide; build 2^k in at most two steps to avoid
    // overflow of the intermediate for extreme k.
    if (-1022..=1023).contains(&k) {
        x * f64::from_bits(((k + 1023) as u64) << 52)
    } else if k > 1023 {
        let hi = x * f64::from_bits(((1023 + 1023) as u64) << 52);
        hi * f64::from_bits((((k - 1023) + 1023).clamp(0, 2046) as u64) << 52)
    } else {
        let lo = x * f64::from_bits(1u64 << 52); // 2^-1022... use subnormal-safe two-step
        lo * f64::from_bits((((k + 1022) + 1023).clamp(0, 2046) as u64) << 52)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_rel_close(a: f64, b: f64, tol: f64) {
        if b == 0.0 {
            assert!(a.abs() < 1e-300, "{a} vs {b}");
        } else {
            assert!(((a - b) / b).abs() < tol, "{a} vs {b}");
        }
    }

    #[test]
    fn poly_exp_matches_libm_on_softmax_domain() {
        let unit = PolyExp::new();
        for i in 0..=2000 {
            let x = -20.0 * i as f64 / 2000.0;
            assert_rel_close(unit.eval(x), x.exp(), 1e-9);
        }
    }

    #[test]
    fn table_exp_matches_libm_on_softmax_domain() {
        let unit = TableExp::new();
        for i in 0..=2000 {
            let x = -30.0 * i as f64 / 2000.0;
            assert_rel_close(unit.eval(x), x.exp(), 1e-7);
        }
    }

    #[test]
    fn units_handle_positive_arguments() {
        // Faults can flip sign bits, sending positive args into the unit.
        let poly = PolyExp::new();
        let table = TableExp::new();
        for x in [0.5, 3.0, 20.0, 80.0] {
            assert_rel_close(poly.eval(x), x.exp(), 1e-9);
            assert_rel_close(table.eval(x), x.exp(), 1e-6);
        }
    }

    #[test]
    fn units_handle_specials() {
        for unit in [&PolyExp::new() as &dyn ExpUnit, &TableExp::new()] {
            assert!(unit.eval(f64::NAN).is_nan());
            assert_eq!(unit.eval(f64::NEG_INFINITY), 0.0);
            assert_eq!(unit.eval(f64::INFINITY), f64::INFINITY);
            assert_eq!(unit.eval(-1000.0), 0.0);
            assert_eq!(unit.eval(1000.0), f64::INFINITY);
        }
    }

    #[test]
    fn exp_zero_is_one_exactly() {
        assert_eq!(PolyExp::new().eval(0.0), 1.0);
        assert_eq!(TableExp::new().eval(0.0), 1.0);
    }

    #[test]
    fn bf16_entry_point_rounds() {
        let unit = PolyExp::new();
        let y = unit.eval_bf16(BF16::from_f32(-0.5));
        let exact = BF16::from_f64((-0.5f64).exp());
        assert_eq!(y.to_bits(), exact.to_bits());
    }

    #[test]
    fn reported_max_relative_error_is_small() {
        assert!(PolyExp::new().max_relative_error() < 1e-8);
        assert!(TableExp::new().max_relative_error() < 1e-6);
    }

    #[test]
    fn scale_by_pow2_matches_powi() {
        for k in [-100, -1, 0, 1, 7, 100, 1000] {
            assert_eq!(scale_by_pow2(1.5, k), 1.5 * 2f64.powi(k));
        }
    }

    #[test]
    fn scale_by_pow2_saturates() {
        assert_eq!(scale_by_pow2(1.0, 2000), f64::INFINITY);
        assert_eq!(scale_by_pow2(1.0, -1200), 0.0);
    }
}
