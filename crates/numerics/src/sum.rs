//! Compensated and pairwise summation.
//!
//! The ABFT comparison `|predicted − actual| > τ` is only as trustworthy as
//! the reference checksums it compares. Golden-model checksums in the fault
//! injector are computed with Kahan (compensated) summation so that
//! detection decisions are never confounded by accumulation error in the
//! *checker of the checker*.

/// Compensated summation accumulator (Kahan–Neumaier).
///
/// Tracks a running compensation term that captures the low-order bits lost
/// on each addition. The Neumaier variant also survives the case where an
/// incoming term is much larger than the running sum, which plain Kahan
/// does not.
///
/// # Example
///
/// ```
/// use fa_numerics::KahanSum;
///
/// let mut acc = KahanSum::new();
/// for _ in 0..10_000_000 {
///     acc.add(0.1);
/// }
/// assert!((acc.value() - 1_000_000.0).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        KahanSum {
            sum: 0.0,
            compensation: 0.0,
        }
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The current compensated sum.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl Extend<f64> for KahanSum {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = KahanSum::new();
        acc.extend(iter);
        acc
    }
}

/// Pairwise (cascade) summation: recursively splits the slice and adds the
/// halves, giving O(log n) error growth with no extra state. This is the
/// summation order a balanced hardware adder tree performs, so the
/// simulator's sum-row unit uses it.
///
/// ```
/// use fa_numerics::pairwise_sum;
/// assert_eq!(pairwise_sum(&[1.0, 2.0, 3.0, 4.0]), 10.0);
/// assert_eq!(pairwise_sum(&[]), 0.0);
/// ```
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => 0.0,
        1 => xs[0],
        2 => xs[0] + xs[1],
        n => {
            let mid = n / 2;
            pairwise_sum(&xs[..mid]) + pairwise_sum(&xs[mid..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_beats_naive_on_pathological_input() {
        // 1 + 1e16 - 1e16 repeated: naive summation loses the 1s.
        let mut kahan = KahanSum::new();
        let mut naive = 0.0f64;
        for _ in 0..1000 {
            for x in [1.0, 1e16, -1e16] {
                kahan.add(x);
                naive += x;
            }
        }
        assert_eq!(kahan.value(), 1000.0);
        // Demonstrate the naive sum actually went wrong (it collapses to 0).
        assert_ne!(naive, 1000.0);
    }

    #[test]
    fn kahan_from_iterator() {
        let acc: KahanSum = [0.5, 0.25, 0.125].into_iter().collect();
        assert_eq!(acc.value(), 0.875);
    }

    #[test]
    fn kahan_extend() {
        let mut acc = KahanSum::new();
        acc.extend([1.0, 2.0]);
        acc.extend([3.0]);
        assert_eq!(acc.value(), 6.0);
    }

    #[test]
    fn kahan_empty_is_zero() {
        assert_eq!(KahanSum::new().value(), 0.0);
    }

    #[test]
    fn pairwise_matches_exact_on_integers() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(pairwise_sum(&xs), 5050.0);
    }

    #[test]
    fn pairwise_edge_cases() {
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[7.0]), 7.0);
        assert_eq!(pairwise_sum(&[7.0, -7.0]), 0.0);
        assert_eq!(pairwise_sum(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn pairwise_more_accurate_than_sequential() {
        // Sum of n copies of x: pairwise error grows O(log n), naive O(n).
        let xs = vec![0.1f64; 1 << 16];
        let exact = 6553.6f64;
        let pw = (pairwise_sum(&xs) - exact).abs();
        let naive = (xs.iter().sum::<f64>() - exact).abs();
        assert!(pw <= naive);
    }
}
