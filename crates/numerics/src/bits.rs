//! Floating-point bit manipulation and classification.
//!
//! The fault model of the paper flips a uniformly random bit of a uniformly
//! random storage element at a random clock cycle (§IV-B). Storage elements
//! in the simulated accelerator hold either BFloat16 (datapath registers) or
//! `f64` (the running sum-of-exponents ℓ and every checksum accumulator), so
//! this module provides flip/classify helpers for both widths plus ULP
//! distance used by tolerance checks and tests.

use crate::BF16;

/// Width of a storage element, in bits, as seen by the fault injector.
///
/// ```
/// use fa_numerics::bits::StorageWidth;
/// assert_eq!(StorageWidth::Bf16.bits(), 16);
/// assert_eq!(StorageWidth::F64.bits(), 64);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum StorageWidth {
    /// A 16-bit BFloat16 register.
    Bf16,
    /// A 64-bit double-precision register.
    F64,
}

impl StorageWidth {
    /// Number of bits in a register of this width.
    #[inline]
    pub const fn bits(self) -> u32 {
        match self {
            StorageWidth::Bf16 => 16,
            StorageWidth::F64 => 64,
        }
    }
}

/// Flips bit `bit` of an `f64` (0 = mantissa LSB, 63 = sign).
///
/// # Panics
///
/// Panics if `bit >= 64`.
///
/// ```
/// use fa_numerics::bits::flip_f64_bit;
/// assert_eq!(flip_f64_bit(1.0, 63), -1.0);
/// ```
#[inline]
pub fn flip_f64_bit(value: f64, bit: u32) -> f64 {
    assert!(bit < 64, "f64 has 64 bits, got bit index {bit}");
    f64::from_bits(value.to_bits() ^ (1u64 << bit))
}

/// Flips bit `bit` of an `f32` (0 = mantissa LSB, 31 = sign).
///
/// # Panics
///
/// Panics if `bit >= 32`.
#[inline]
pub fn flip_f32_bit(value: f32, bit: u32) -> f32 {
    assert!(bit < 32, "f32 has 32 bits, got bit index {bit}");
    f32::from_bits(value.to_bits() ^ (1u32 << bit))
}

/// IEEE-754 class of a value, used to report *why* a fault went silent
/// (the paper's category 3 explicitly calls out bit flips that produce
/// "invalid floating point numbers such as NaN").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FpClass {
    /// Normal finite number.
    Normal,
    /// Subnormal finite number.
    Subnormal,
    /// Positive or negative zero.
    Zero,
    /// Positive or negative infinity.
    Infinite,
    /// Not a number.
    Nan,
}

/// Classifies an `f64`.
///
/// ```
/// use fa_numerics::bits::{classify_f64, FpClass};
/// assert_eq!(classify_f64(1.0), FpClass::Normal);
/// assert_eq!(classify_f64(f64::NAN), FpClass::Nan);
/// ```
#[inline]
pub fn classify_f64(value: f64) -> FpClass {
    use std::num::FpCategory;
    match value.classify() {
        FpCategory::Nan => FpClass::Nan,
        FpCategory::Infinite => FpClass::Infinite,
        FpCategory::Zero => FpClass::Zero,
        FpCategory::Subnormal => FpClass::Subnormal,
        FpCategory::Normal => FpClass::Normal,
    }
}

/// Classifies a [`BF16`].
#[inline]
pub fn classify_bf16(value: BF16) -> FpClass {
    if value.is_nan() {
        FpClass::Nan
    } else if value.is_infinite() {
        FpClass::Infinite
    } else if value.to_bits() & 0x7FFF == 0 {
        FpClass::Zero
    } else if value.is_subnormal() {
        FpClass::Subnormal
    } else {
        FpClass::Normal
    }
}

/// Distance in units-in-the-last-place between two `f64`s sharing a sign.
///
/// Returns `None` when either input is NaN or the signs differ (ULP
/// distance across zero is not meaningful for our tolerance checks).
pub fn ulp_distance_f64(a: f64, b: f64) -> Option<u64> {
    if a.is_nan() || b.is_nan() {
        return None;
    }
    if a.is_sign_negative() != b.is_sign_negative() {
        return if a == b { Some(0) } else { None }; // ±0 case
    }
    let (x, y) = (a.to_bits() & !(1 << 63), b.to_bits() & !(1 << 63));
    Some(x.abs_diff(y))
}

/// The magnitude of the value change caused by flipping a given bit,
/// relative to the original magnitude. Infinite for flips that produce
/// NaN/Inf from finite values. Used by tests to verify that high exponent
/// bits dominate error magnitude.
pub fn relative_flip_impact_f64(value: f64, bit: u32) -> f64 {
    let flipped = flip_f64_bit(value, bit);
    if !flipped.is_finite() || !value.is_finite() {
        return f64::INFINITY;
    }
    if value == 0.0 {
        return flipped.abs();
    }
    ((flipped - value) / value).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_width_bits() {
        assert_eq!(StorageWidth::Bf16.bits(), 16);
        assert_eq!(StorageWidth::F64.bits(), 64);
    }

    #[test]
    fn flip_f64_sign_bit() {
        assert_eq!(flip_f64_bit(2.5, 63), -2.5);
        assert_eq!(flip_f64_bit(-2.5, 63), 2.5);
    }

    #[test]
    fn flip_f64_mantissa_lsb_is_one_ulp() {
        let x = 1.0f64;
        let y = flip_f64_bit(x, 0);
        assert_eq!(ulp_distance_f64(x, y), Some(1));
    }

    #[test]
    fn flip_is_involutive() {
        let x = 123.456f64;
        for bit in [0, 17, 35, 52, 62, 63] {
            assert_eq!(flip_f64_bit(flip_f64_bit(x, bit), bit), x);
        }
    }

    #[test]
    #[should_panic(expected = "64 bits")]
    fn flip_f64_out_of_range_panics() {
        let _ = flip_f64_bit(1.0, 64);
    }

    #[test]
    fn flip_f32_works() {
        assert_eq!(flip_f32_bit(1.5f32, 31), -1.5f32);
        assert_eq!(flip_f32_bit(flip_f32_bit(0.1f32, 5), 5), 0.1f32);
    }

    #[test]
    fn exponent_flip_creates_inf_or_huge() {
        // 1.0 has exponent 0x3FF; flipping exponent bit 62 gives 0x7FF... -> huge or inf
        let y = flip_f64_bit(1.0, 62);
        assert!(!(0.0..=1e300).contains(&y) || y.is_infinite());
    }

    #[test]
    fn classify_covers_all_classes() {
        assert_eq!(classify_f64(1.0), FpClass::Normal);
        assert_eq!(classify_f64(0.0), FpClass::Zero);
        assert_eq!(classify_f64(-0.0), FpClass::Zero);
        assert_eq!(classify_f64(f64::INFINITY), FpClass::Infinite);
        assert_eq!(classify_f64(f64::NAN), FpClass::Nan);
        assert_eq!(classify_f64(f64::MIN_POSITIVE / 2.0), FpClass::Subnormal);
    }

    #[test]
    fn classify_bf16_covers_all_classes() {
        assert_eq!(classify_bf16(BF16::ONE), FpClass::Normal);
        assert_eq!(classify_bf16(BF16::ZERO), FpClass::Zero);
        assert_eq!(classify_bf16(BF16::NEG_ZERO), FpClass::Zero);
        assert_eq!(classify_bf16(BF16::INFINITY), FpClass::Infinite);
        assert_eq!(classify_bf16(BF16::NAN), FpClass::Nan);
        assert_eq!(classify_bf16(BF16::from_bits(0x0001)), FpClass::Subnormal);
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance_f64(1.0, 1.0), Some(0));
        assert_eq!(
            ulp_distance_f64(1.0, f64::from_bits(1.0f64.to_bits() + 3)),
            Some(3)
        );
        assert_eq!(ulp_distance_f64(f64::NAN, 1.0), None);
        assert_eq!(ulp_distance_f64(-1.0, 1.0), None);
        assert_eq!(ulp_distance_f64(0.0, -0.0), Some(0));
    }

    #[test]
    fn relative_impact_grows_with_bit_position() {
        let v = 1.2345f64;
        let low = relative_flip_impact_f64(v, 0);
        let mid = relative_flip_impact_f64(v, 40);
        let high = relative_flip_impact_f64(v, 61);
        assert!(low < mid && mid < high, "{low} {mid} {high}");
    }

    #[test]
    fn relative_impact_inf_for_nan_producing_flips() {
        // Flip every exponent bit of 1.0 at once is not possible with one
        // flip, but bit 62 on a large number overflows to inf.
        let huge = f64::MAX;
        assert!(
            relative_flip_impact_f64(huge, 62).is_infinite()
                || relative_flip_impact_f64(huge, 62) > 0.0
        );
        assert!(relative_flip_impact_f64(f64::INFINITY, 0).is_infinite());
    }
}
