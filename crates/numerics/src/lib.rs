//! # fa-numerics
//!
//! Bit-accurate numerics substrate for the Flash-ABFT reproduction.
//!
//! The paper's accelerator datapath computes in **BFloat16** while every
//! checksum accumulator is kept in **double precision** ("Arithmetic
//! operators inside the accelerator refer to reduced precision BFloat16
//! format, while all checksum accumulators are built with double-precision
//! floats", §IV-A). Reproducing the fault-injection results therefore
//! requires a software BFloat16 that matches hardware behaviour bit for bit:
//! rounding (round-to-nearest-even), overflow to infinity, NaN propagation,
//! and subnormal handling.
//!
//! This crate provides:
//!
//! * [`BF16`] — a bit-accurate BFloat16 with RNE rounding through `f32`;
//! * [`bits`] — bit-flip and classification utilities used by the fault
//!   injector (every storage element in the simulator is a bit pattern);
//! * [`exp`] — hardware-style exponential units (range-reduced polynomial
//!   and LUT variants) mirroring what an HLS flow would synthesize;
//! * [`online`] — the scalar recurrences of online softmax (running max,
//!   rescaled sum-of-exponentials) shared by every kernel in the workspace;
//! * [`sum`] — compensated (Kahan) and pairwise summation for reference
//!   checksums;
//! * [`error`] — NaN-aware tolerance comparisons implementing the paper's
//!   `|predicted − actual| > 10⁻⁶` detection rule.
//!
//! # Example
//!
//! ```
//! use fa_numerics::BF16;
//!
//! let a = BF16::from_f32(1.5);
//! let b = BF16::from_f32(2.25);
//! let c = a * b;
//! assert_eq!(c.to_f32(), 3.375);
//! ```

pub mod bits;
pub mod error;
pub mod exp;
pub mod online;
pub mod sum;

mod bf16;

pub use bf16::BF16;
pub use error::{check_abs, check_rel, CheckOutcome, Tolerance};
pub use online::{OnlineSoftmax, RescaleStep};
pub use sum::{pairwise_sum, KahanSum};
