//! Scalar recurrences of online softmax.
//!
//! FlashAttention-2 (Alg. 2 of the paper) maintains, per query, a running
//! maximum `m_i`, a rescaled sum of exponentials `ℓ_i`, and an output
//! accumulator. The checksum accumulator `c_i` of Flash-ABFT (Alg. 3) obeys
//! the *same* recurrence as the output. This module factors that recurrence
//! into a reusable [`OnlineSoftmax`] state so the reference kernels, the
//! Flash-ABFT checker and the cycle-level simulator all share one verified
//! implementation.

/// The pair of exponential factors applied on each online-softmax step:
/// `scale_old = e^{m_{i−1} − m_i}` rescales every accumulator, and
/// `weight_new = e^{s_i − m_i}` weights the incoming element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RescaleStep {
    /// `e^{m_{i−1} − m_i}` — multiplies all running accumulators.
    pub scale_old: f64,
    /// `e^{s_i − m_i}` — weights the new contribution.
    pub weight_new: f64,
}

/// Running online-softmax state for a single query: the maximum score seen
/// so far and the rescaled sum of exponentials (Alg. 2, lines 4–5).
///
/// # Example
///
/// ```
/// use fa_numerics::OnlineSoftmax;
///
/// let scores = [0.3, -1.2, 2.5, 0.0];
/// let mut os = OnlineSoftmax::new();
/// for &s in &scores {
///     os.push(s);
/// }
/// let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
/// let direct: f64 = scores.iter().map(|s| (s - max).exp()).sum();
/// assert!((os.sum_exp() - direct).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnlineSoftmax {
    max: f64,
    sum_exp: f64,
    count: usize,
}

impl Default for OnlineSoftmax {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineSoftmax {
    /// Creates an empty state: `m_0 = −∞`, `ℓ_0 = 0`.
    pub fn new() -> Self {
        OnlineSoftmax {
            max: f64::NEG_INFINITY,
            sum_exp: 0.0,
            count: 0,
        }
    }

    /// Feeds one score `s_i`, returning the [`RescaleStep`] that callers
    /// must apply to any accumulators that ride along with this state (the
    /// output vector `o_i` and, in Flash-ABFT, the checksum `c_i`).
    ///
    /// `#[inline(always)]` is load-bearing: this sits in the innermost
    /// loop of every attention kernel (once per score), and under thin
    /// LTO the cross-crate call stops inlining with plain `#[inline]` —
    /// measured in PR 1 as a 48% fused-checksum overhead against ~2%
    /// inlined. Do not weaken the attribute without re-running the
    /// `fused_checksum` benchmark.
    #[inline(always)]
    pub fn push(&mut self, score: f64) -> RescaleStep {
        let new_max = if score > self.max { score } else { self.max };
        // First element: m_0 = -inf makes e^{m0 - m1} = 0, exactly
        // clearing the (zero) accumulators — matching hardware where the
        // registers reset on the first cycle of a new query.
        let scale_old = if self.max == f64::NEG_INFINITY {
            0.0
        } else {
            (self.max - new_max).exp()
        };
        let weight_new = (score - new_max).exp();
        self.sum_exp = self.sum_exp * scale_old + weight_new;
        self.max = new_max;
        self.count += 1;
        RescaleStep {
            scale_old,
            weight_new,
        }
    }

    /// The running maximum `m_i` (−∞ before the first push).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The rescaled sum of exponentials `ℓ_i = Σ e^{s_j − m_i}`.
    #[inline]
    pub fn sum_exp(&self) -> f64 {
        self.sum_exp
    }

    /// Number of scores consumed.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether any score has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The true (un-rescaled) softmax denominator `Σ e^{s_j}` — only
    /// finite when the scores are small; used by tests against the naive
    /// formula.
    pub fn denominator_unshifted(&self) -> f64 {
        self.sum_exp * self.max.exp()
    }

    /// Merges another online state into this one (the standard associative
    /// combine used when attention is tiled across key blocks).
    pub fn merge(&mut self, other: &OnlineSoftmax) -> RescaleStep {
        if other.count == 0 {
            return RescaleStep {
                scale_old: 1.0,
                weight_new: 0.0,
            };
        }
        if self.count == 0 {
            *self = *other;
            return RescaleStep {
                scale_old: 0.0,
                weight_new: 1.0,
            };
        }
        let new_max = self.max.max(other.max);
        let scale_old = (self.max - new_max).exp();
        let weight_new = (other.max - new_max).exp();
        self.sum_exp = self.sum_exp * scale_old + other.sum_exp * weight_new;
        self.max = new_max;
        self.count += other.count;
        RescaleStep {
            scale_old,
            weight_new,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_sum_exp(scores: &[f64]) -> (f64, f64) {
        let m = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (m, scores.iter().map(|s| (s - m).exp()).sum())
    }

    #[test]
    fn matches_two_pass_softmax() {
        let scores = [0.3, -1.2, 2.5, 0.0, 2.5, -7.0];
        let mut os = OnlineSoftmax::new();
        for &s in &scores {
            os.push(s);
        }
        let (m, l) = reference_sum_exp(&scores);
        assert_eq!(os.max(), m);
        assert!((os.sum_exp() - l).abs() < 1e-12);
        assert_eq!(os.len(), scores.len());
    }

    #[test]
    fn first_push_initializes() {
        let mut os = OnlineSoftmax::new();
        assert!(os.is_empty());
        let step = os.push(5.0);
        assert_eq!(step.scale_old, 0.0, "first step clears accumulators");
        assert_eq!(step.weight_new, 1.0, "e^{{s-m}} with s=m");
        assert_eq!(os.max(), 5.0);
        assert_eq!(os.sum_exp(), 1.0);
    }

    #[test]
    fn rescale_step_values() {
        let mut os = OnlineSoftmax::new();
        os.push(1.0);
        // Next score below the max: old scale 1, new weight e^{0 - 1}... no:
        let step = os.push(0.0);
        assert_eq!(step.scale_old, 1.0);
        assert!((step.weight_new - (-1.0f64).exp()).abs() < 1e-15);
        // Next score above the max: accumulators rescale by e^{1-3}.
        let step = os.push(3.0);
        assert!((step.scale_old - (-2.0f64).exp()).abs() < 1e-15);
        assert_eq!(step.weight_new, 1.0);
    }

    #[test]
    fn monotone_scores_never_rescale_down() {
        let mut os = OnlineSoftmax::new();
        os.push(0.0);
        for i in 1..10 {
            let step = os.push(-(i as f64));
            assert_eq!(step.scale_old, 1.0, "max unchanged, no rescale");
        }
    }

    #[test]
    fn handles_large_scores_without_overflow() {
        // Naive sum of e^1000 overflows; online version must not.
        let mut os = OnlineSoftmax::new();
        for s in [1000.0, 1001.0, 999.0] {
            os.push(s);
        }
        assert!(os.sum_exp().is_finite());
        let direct = (-1.0f64).exp() + 1.0 + (-2.0f64).exp();
        assert!((os.sum_exp() - direct).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let scores = [0.4, -2.0, 3.3, 1.1, -0.7, 2.2, 0.0];
        let (left, right) = scores.split_at(3);
        let mut a = OnlineSoftmax::new();
        for &s in left {
            a.push(s);
        }
        let mut b = OnlineSoftmax::new();
        for &s in right {
            b.push(s);
        }
        a.merge(&b);

        let mut seq = OnlineSoftmax::new();
        for &s in &scores {
            seq.push(s);
        }
        assert_eq!(a.max(), seq.max());
        assert!((a.sum_exp() - seq.sum_exp()).abs() < 1e-12);
        assert_eq!(a.len(), seq.len());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineSoftmax::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineSoftmax::new());
        assert_eq!(a, before);

        let mut empty = OnlineSoftmax::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn denominator_unshifted_matches_naive_for_small_scores() {
        let scores = [0.1, 0.2, -0.3];
        let mut os = OnlineSoftmax::new();
        for &s in &scores {
            os.push(s);
        }
        let naive: f64 = scores.iter().map(|s| s.exp()).sum();
        assert!((os.denominator_unshifted() - naive).abs() < 1e-12);
    }
}
