//! Bit-accurate BFloat16.
//!
//! BFloat16 is the upper half of an IEEE-754 `binary32`: 1 sign bit, 8
//! exponent bits, 7 explicit mantissa bits. Conversion from `f32` rounds to
//! nearest, ties to even — the same behaviour as Google TPU / Intel AVX-512
//! BF16 hardware and what Catapult HLS synthesizes for the paper's
//! accelerator. All arithmetic is performed by widening to `f32`, operating
//! exactly, and rounding back, which is bit-identical to a fused
//! convert-compute-convert hardware pipeline for single operations.

use core::cmp::Ordering;
use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A bit-accurate BFloat16 value.
///
/// The in-memory representation is the raw 16-bit pattern, making it usable
/// directly as a fault-injection target: flipping bit *k* of the storage is
/// `BF16::from_bits(x.to_bits() ^ (1 << k))`.
///
/// # Example
///
/// ```
/// use fa_numerics::BF16;
/// let x = BF16::from_f32(0.1);
/// // BF16 has ~3 decimal digits of precision.
/// assert!((x.to_f32() - 0.1).abs() < 1e-3);
/// ```
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct BF16(u16);

impl BF16 {
    /// Positive zero.
    pub const ZERO: BF16 = BF16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: BF16 = BF16(0x8000);
    /// One.
    pub const ONE: BF16 = BF16(0x3F80);
    /// Negative one.
    pub const NEG_ONE: BF16 = BF16(0xBF80);
    /// Positive infinity.
    pub const INFINITY: BF16 = BF16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: BF16 = BF16(0xFF80);
    /// A quiet NaN.
    pub const NAN: BF16 = BF16(0x7FC0);
    /// Smallest positive normal value (2⁻¹²⁶).
    pub const MIN_POSITIVE: BF16 = BF16(0x0080);
    /// Largest finite value (≈ 3.3895 × 10³⁸).
    pub const MAX: BF16 = BF16(0x7F7F);
    /// Most negative finite value.
    pub const MIN: BF16 = BF16(0xFF7F);
    /// Machine epsilon: the difference between 1.0 and the next larger
    /// representable value (2⁻⁷ = 0.0078125).
    pub const EPSILON: BF16 = BF16(0x3C00);

    /// Number of storage bits; used by the fault injector to weight targets.
    pub const BITS: u32 = 16;

    /// Creates a value from its raw bit pattern.
    ///
    /// ```
    /// use fa_numerics::BF16;
    /// assert_eq!(BF16::from_bits(0x3F80), BF16::ONE);
    /// ```
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        BF16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    ///
    /// This is the hardware truncation rule: take the upper 16 bits and
    /// round based on the lower 16, with ties going to the even
    /// significand. NaNs are preserved (quietened to avoid producing an
    /// infinity bit pattern from a signalling NaN whose payload lives
    /// entirely in the truncated half).
    #[inline]
    pub fn from_f32(value: f32) -> Self {
        let x = value.to_bits();
        if value.is_nan() {
            // Preserve sign and the upper payload bits; force the quiet bit
            // so a signalling NaN whose payload lived entirely in the
            // truncated half does not become an infinity.
            return BF16(((x >> 16) as u16) | 0x0040);
        }
        // Round-to-nearest-even: add 0x7FFF plus the LSB of the kept half,
        // then truncate. Overflow carries into the exponent, correctly
        // rounding up to the next binade or to infinity.
        let lsb = (x >> 16) & 1;
        let rounded = x.wrapping_add(0x0000_7FFF + lsb);
        BF16((rounded >> 16) as u16)
    }

    /// Converts from `f64` (double rounding through `f32` is acceptable
    /// here because the simulator always stages through `f32` exactly as a
    /// widening hardware pipeline would).
    #[inline]
    pub fn from_f64(value: f64) -> Self {
        Self::from_f32(value as f32)
    }

    /// Widens to `f32` exactly (BFloat16 ⊂ binary32, so this is lossless).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Widens to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Returns `true` if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// Returns `true` if this value is ±∞.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7F80
    }

    /// Returns `true` if this value is neither NaN nor infinite.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }

    /// Returns `true` for subnormals (exponent all zeros, mantissa non-zero).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7F80) == 0 && (self.0 & 0x007F) != 0
    }

    /// Returns `true` if the sign bit is set (including -0 and NaNs with
    /// the sign bit set).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        BF16(self.0 & 0x7FFF)
    }

    /// Flips bit `bit` (0 = LSB of mantissa, 15 = sign) — the fault model.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 16`.
    #[inline]
    pub fn with_flipped_bit(self, bit: u32) -> Self {
        assert!(bit < 16, "BF16 has 16 bits, got bit index {bit}");
        BF16(self.0 ^ (1 << bit))
    }

    /// The larger of two values, propagating NaN like hardware max units
    /// (if either operand is NaN the result is NaN). The running-maximum
    /// register in the FlashAttention-2 datapath behaves this way.
    #[inline]
    pub fn max_nan_propagating(self, other: Self) -> Self {
        if self.is_nan() || other.is_nan() {
            BF16::NAN
        } else if self.to_f32() >= other.to_f32() {
            self
        } else {
            other
        }
    }

    /// Exponential computed in the BF16 pipeline: widen, `exp`, round back.
    /// The accelerator's exp unit (see [`crate::exp`]) is validated against
    /// this reference.
    #[inline]
    pub fn exp(self) -> Self {
        BF16::from_f32(self.to_f32().exp())
    }
}

impl fmt::Debug for BF16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BF16({}; 0x{:04X})", self.to_f32(), self.0)
    }
}

impl fmt::Display for BF16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::LowerHex for BF16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for BF16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for BF16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl PartialEq for BF16 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for BF16 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<f32> for BF16 {
    fn from(value: f32) -> Self {
        BF16::from_f32(value)
    }
}

impl From<BF16> for f32 {
    fn from(value: BF16) -> Self {
        value.to_f32()
    }
}

impl From<BF16> for f64 {
    fn from(value: BF16) -> Self {
        value.to_f64()
    }
}

macro_rules! bf16_binop {
    ($trait:ident, $method:ident, $op:tt, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for BF16 {
            type Output = BF16;
            #[inline]
            fn $method(self, rhs: BF16) -> BF16 {
                BF16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for BF16 {
            #[inline]
            fn $assign_method(&mut self, rhs: BF16) {
                *self = *self $op rhs;
            }
        }
    };
}

bf16_binop!(Add, add, +, AddAssign, add_assign);
bf16_binop!(Sub, sub, -, SubAssign, sub_assign);
bf16_binop!(Mul, mul, *, MulAssign, mul_assign);
bf16_binop!(Div, div, /, DivAssign, div_assign);

impl Neg for BF16 {
    type Output = BF16;
    #[inline]
    fn neg(self) -> BF16 {
        BF16(self.0 ^ 0x8000)
    }
}

impl Sum for BF16 {
    fn sum<I: Iterator<Item = BF16>>(iter: I) -> Self {
        iter.fold(BF16::ZERO, |acc, x| acc + x)
    }
}

impl Product for BF16 {
    fn product<I: Iterator<Item = BF16>>(iter: I) -> Self {
        iter.fold(BF16::ONE, |acc, x| acc * x)
    }
}

impl serde::Serialize for BF16 {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f32(self.to_f32())
    }
}

impl<'de> serde::Deserialize<'de> for BF16 {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f32::deserialize(deserializer).map(BF16::from_f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_bit_patterns() {
        assert_eq!(BF16::ZERO.to_bits(), 0x0000);
        assert_eq!(BF16::ONE.to_f32(), 1.0);
        assert_eq!(BF16::NEG_ONE.to_f32(), -1.0);
        assert!(BF16::INFINITY.is_infinite());
        assert!(BF16::NEG_INFINITY.is_infinite());
        assert!(BF16::NAN.is_nan());
        assert_eq!(BF16::EPSILON.to_f32(), 2.0f32.powi(-7));
        assert_eq!(BF16::MAX.to_f32(), 3.3895314e38);
    }

    #[test]
    fn roundtrip_exact_values() {
        // All values with ≤7 mantissa bits survive a roundtrip exactly.
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1.5, 100.0, -0.375, 1024.0] {
            assert_eq!(BF16::from_f32(v).to_f32(), v, "roundtrip of {v}");
        }
    }

    #[test]
    fn rne_rounds_ties_to_even() {
        // 1.0 + eps/2 lies exactly between 1.0 (even mantissa) and 1.0+eps.
        let tie = f32::from_bits(0x3F80_8000); // 1.00390625
        assert_eq!(BF16::from_f32(tie).to_bits(), 0x3F80, "tie rounds to even");
        // The next tie above an odd mantissa rounds up to even.
        let tie_odd = f32::from_bits(0x3F81_8000);
        assert_eq!(BF16::from_f32(tie_odd).to_bits(), 0x3F82);
    }

    #[test]
    fn rounding_is_nearest() {
        // Slightly above a tie rounds up; slightly below rounds down.
        let up = f32::from_bits(0x3F80_8001);
        assert_eq!(BF16::from_f32(up).to_bits(), 0x3F81);
        let down = f32::from_bits(0x3F80_7FFF);
        assert_eq!(BF16::from_f32(down).to_bits(), 0x3F80);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        // f32::MAX is far beyond BF16::MAX and must round to +inf.
        assert!(BF16::from_f32(f32::MAX).is_infinite());
        assert!(BF16::from_f32(f32::MIN).is_infinite());
        assert!(BF16::from_f32(f32::MIN).is_sign_negative());
        // Large finite values below the rounding boundary stay finite.
        assert_eq!(
            BF16::from_f32(BF16::MAX.to_f32()).to_bits(),
            BF16::MAX.to_bits()
        );
        assert!(BF16::from_f32(3.38e38).is_finite());
    }

    #[test]
    fn nan_is_preserved_and_quiet() {
        let n = BF16::from_f32(f32::NAN);
        assert!(n.is_nan());
        // A NaN whose payload is entirely in the low 16 bits must stay NaN.
        let sneaky = f32::from_bits(0x7F80_0001);
        assert!(sneaky.is_nan());
        assert!(BF16::from_f32(sneaky).is_nan());
    }

    #[test]
    fn arithmetic_matches_f32_with_rounding() {
        let a = BF16::from_f32(1.5);
        let b = BF16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((a - b).to_f32(), -0.75);
        assert_eq!((b / a).to_f32(), 1.5);
    }

    #[test]
    fn neg_flips_only_sign_bit() {
        let x = BF16::from_f32(2.75);
        assert_eq!((-x).to_bits(), x.to_bits() ^ 0x8000);
        assert_eq!((-BF16::NAN).to_bits(), BF16::NAN.to_bits() ^ 0x8000);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let x = BF16::from_f32(1.0);
        for bit in 0..16 {
            let y = x.with_flipped_bit(bit);
            assert_eq!((x.to_bits() ^ y.to_bits()).count_ones(), 1);
            assert_eq!(y.with_flipped_bit(bit).to_bits(), x.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "16 bits")]
    fn bit_flip_out_of_range_panics() {
        let _ = BF16::ONE.with_flipped_bit(16);
    }

    #[test]
    fn sign_bit_flip_negates() {
        let x = BF16::from_f32(3.5);
        assert_eq!(x.with_flipped_bit(15).to_f32(), -3.5);
    }

    #[test]
    fn exponent_msb_flip_is_catastrophic() {
        // Flipping the exponent MSB of 1.0 (0x3F80) gives 0xBF80? No:
        // bit 14 is the exponent MSB. 0x3F80 ^ 0x4000 = 0x7F80 = +inf.
        let x = BF16::ONE.with_flipped_bit(14);
        assert!(x.is_infinite());
    }

    #[test]
    fn subnormals_classify() {
        let tiny = BF16::from_bits(0x0001);
        assert!(tiny.is_subnormal());
        assert!(tiny.is_finite());
        assert!(!tiny.is_nan());
        assert!(tiny.to_f32() > 0.0);
    }

    #[test]
    fn max_nan_propagating_behaviour() {
        let a = BF16::from_f32(1.0);
        let b = BF16::from_f32(2.0);
        assert_eq!(a.max_nan_propagating(b), b);
        assert_eq!(b.max_nan_propagating(a), b);
        assert!(a.max_nan_propagating(BF16::NAN).is_nan());
        assert!(BF16::NAN.max_nan_propagating(a).is_nan());
    }

    #[test]
    fn sum_and_product_fold_in_order() {
        let xs = [1.0f32, 2.0, 3.0, 4.0].map(BF16::from_f32);
        assert_eq!(xs.iter().copied().sum::<BF16>().to_f32(), 10.0);
        assert_eq!(xs.iter().copied().product::<BF16>().to_f32(), 24.0);
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", BF16::ONE), "1");
        assert!(format!("{:?}", BF16::ZERO).contains("0x0000"));
        assert_eq!(format!("{:04X}", BF16::ONE), "3F80");
    }

    #[test]
    fn exp_widens_and_rounds() {
        let e = BF16::ONE.exp();
        assert!((e.to_f32() - std::f32::consts::E).abs() < 0.02);
        // exp(-inf) = 0, exp(+inf) = +inf, exp(NaN) = NaN.
        assert_eq!(BF16::NEG_INFINITY.exp(), BF16::ZERO);
        assert!(BF16::INFINITY.exp().is_infinite());
        assert!(BF16::NAN.exp().is_nan());
    }

    #[test]
    fn abs_clears_sign() {
        assert_eq!(BF16::from_f32(-2.5).abs().to_f32(), 2.5);
        assert_eq!(BF16::NEG_ZERO.abs().to_bits(), 0x0000);
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;

    /// Every one of the 65 536 bit patterns survives decode → encode
    /// bit-exactly (NaNs keep their quiet form). This is the total
    /// correctness guarantee the fault injector relies on: a flipped
    /// register pattern decodes to exactly the value hardware would hold.
    #[test]
    fn all_patterns_roundtrip() {
        for bits in 0..=u16::MAX {
            let v = BF16::from_bits(bits);
            if v.is_nan() {
                assert!(BF16::from_f32(v.to_f32()).is_nan(), "0x{bits:04X}");
                continue;
            }
            let round = BF16::from_f32(v.to_f32());
            assert_eq!(round.to_bits(), bits, "0x{bits:04X}");
        }
    }

    /// Decoding is monotone over the positive range ordered by bit
    /// pattern (IEEE ordering property), and symmetric for negatives.
    #[test]
    fn positive_patterns_decode_monotonically() {
        let mut prev = f32::NEG_INFINITY;
        for bits in 0..0x7F80u16 {
            let v = BF16::from_bits(bits).to_f32();
            assert!(v > prev, "0x{bits:04X}: {v} !> {prev}");
            prev = v;
        }
    }

    /// Every finite pattern's f32 widening is exact: converting back via
    /// truncation (no rounding needed) recovers the pattern.
    #[test]
    fn widening_is_exact_truncation() {
        for bits in (0..=u16::MAX).step_by(7) {
            let v = BF16::from_bits(bits);
            if !v.is_finite() {
                continue;
            }
            let wide = v.to_f32().to_bits();
            assert_eq!(wide & 0xFFFF, 0, "0x{bits:04X} has low bits set");
            assert_eq!((wide >> 16) as u16, bits);
        }
    }
}
