//! Property-based tests for the matrix substrate.

use fa_numerics::BF16;
use fa_tensor::checksum::predicted_matmul_checksum;
use fa_tensor::ops::{dot_f64, matmul_f64_acc};
use fa_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-8.0f64..8.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transpose is an involution and reverses products:
    /// (A·B)ᵀ = Bᵀ·Aᵀ (exactly, in f64 the operations commute elementwise
    /// up to identical summation order — we use the f64-accumulated form
    /// on both sides).
    #[test]
    fn transpose_product_identity(a in matrix(4, 3), b in matrix(3, 5)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let lhs = matmul_f64_acc(&a, &b).transpose();
        let rhs = matmul_f64_acc(&b.transpose(), &a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    /// Matrix product distributes over addition up to f64 rounding.
    #[test]
    fn matmul_distributes(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let sum = Matrix::from_fn(4, 2, |r, j| b[(r, j)] + c[(r, j)]);
        let lhs = a.matmul(&sum);
        let ab = a.matmul(&b);
        let ac = a.matmul(&c);
        let rhs = Matrix::from_fn(3, 2, |r, j| ab[(r, j)] + ac[(r, j)]);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    /// Identity is a two-sided unit.
    #[test]
    fn identity_is_unit(a in matrix(4, 4)) {
        let i = Matrix::<f64>::identity(4);
        prop_assert_eq!(a.matmul(&i), a.clone());
        prop_assert_eq!(i.matmul(&a), a.clone());
    }

    /// Row sums and column sums both total to the full sum.
    #[test]
    fn sums_are_consistent(a in matrix(5, 7)) {
        let by_rows: f64 = a.row_sums().iter().sum();
        let by_cols: f64 = a.col_sums().iter().sum();
        let direct = a.sum_all();
        prop_assert!((by_rows - direct).abs() < 1e-9);
        prop_assert!((by_cols - direct).abs() < 1e-9);
    }

    /// The Huang–Abraham prediction is invariant under simultaneous row
    /// permutation of B and column permutation of A (the checksums are
    /// order-free).
    #[test]
    fn checksum_permutation_invariance(a in matrix(3, 4), b in matrix(4, 3), swap in 0usize..3) {
        let base = predicted_matmul_checksum(&a, &b);
        // Swap inner-dimension indices `swap` and `swap+1` coherently.
        let (i, j) = (swap, swap + 1);
        let ap = Matrix::from_fn(3, 4, |r, c| {
            let c2 = if c == i { j } else if c == j { i } else { c };
            a[(r, c2)]
        });
        let bp = Matrix::from_fn(4, 3, |r, c| {
            let r2 = if r == i { j } else if r == j { i } else { r };
            b[(r2, c)]
        });
        let permuted = predicted_matmul_checksum(&ap, &bp);
        prop_assert!((base - permuted).abs() < 1e-9);
    }

    /// dot_f64 is symmetric and linear in each argument.
    #[test]
    fn dot_properties(
        x in proptest::collection::vec(-5.0f64..5.0, 6),
        y in proptest::collection::vec(-5.0f64..5.0, 6),
        s in -3.0f64..3.0,
    ) {
        prop_assert_eq!(dot_f64(&x, &y), dot_f64(&y, &x));
        let sx: Vec<f64> = x.iter().map(|v| v * s).collect();
        prop_assert!((dot_f64(&sx, &y) - s * dot_f64(&x, &y)).abs() < 1e-9);
    }

    /// Casting f64 → BF16 → f64 is idempotent (the second cast is exact).
    #[test]
    fn bf16_cast_idempotent(a in matrix(3, 3)) {
        let once: Matrix<BF16> = a.cast();
        let twice: Matrix<BF16> = once.to_f64().cast();
        for (x, y) in once.as_slice().iter().zip(twice.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// max_abs_diff is a metric on finite matrices: zero iff equal,
    /// symmetric, triangle inequality.
    #[test]
    fn max_abs_diff_is_metric(a in matrix(3, 3), b in matrix(3, 3), c in matrix(3, 3)) {
        prop_assert_eq!(a.max_abs_diff(&a), 0.0);
        prop_assert_eq!(a.max_abs_diff(&b), b.max_abs_diff(&a));
        let ab = a.max_abs_diff(&b);
        let bc = b.max_abs_diff(&c);
        let ac = a.max_abs_diff(&c);
        prop_assert!(ac <= ab + bc + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cache-blocked packed-panel matmul is bit-identical to the seed
    /// reference triple loop in f64 — same per-MAC rounding, same
    /// ascending-k accumulation order, any shape.
    #[test]
    fn blocked_matmul_exact_vs_reference_f64(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        use fa_tensor::random::ElementDist;
        let a = Matrix::<f64>::random_seeded(m, k, ElementDist::default(), seed);
        let b = Matrix::<f64>::random_seeded(k, n, ElementDist::default(), seed + 1);
        prop_assert_eq!(a.matmul(&b), fa_tensor::ops::matmul_reference(&a, &b));
        prop_assert_eq!(
            matmul_f64_acc(&a, &b),
            fa_tensor::ops::matmul_f64_acc_reference(&a, &b)
        );
    }

    /// Same in BF16: the blocked kernel reproduces the reference loop's
    /// per-MAC rounding bit for bit (stronger than "within rounding").
    #[test]
    fn blocked_matmul_exact_vs_reference_bf16(
        m in 1usize..32,
        k in 1usize..32,
        n in 1usize..32,
        seed in 0u64..1_000_000,
    ) {
        use fa_tensor::random::ElementDist;
        let a = Matrix::<BF16>::random_seeded(m, k, ElementDist::default(), seed);
        let b = Matrix::<BF16>::random_seeded(k, n, ElementDist::default(), seed + 1);
        let blocked = a.matmul(&b);
        let reference = fa_tensor::ops::matmul_reference(&a, &b);
        for (x, y) in blocked.as_slice().iter().zip(reference.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let wide = matmul_f64_acc(&a, &b);
        let wide_ref = fa_tensor::ops::matmul_f64_acc_reference(&a, &b);
        for (x, y) in wide.as_slice().iter().zip(wide_ref.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Row-parallel execution never changes a single bit, for any thread
    /// count (shapes above the parallelization threshold).
    #[test]
    fn parallel_matmul_bit_identical(
        threads in 1usize..9,
        n in 2usize..24,
        seed in 0u64..1_000_000,
    ) {
        use fa_tensor::random::ElementDist;
        // 96 rows crosses the kernels' PAR_MIN_ROWS threshold.
        let a = Matrix::<f64>::random_seeded(96, 24, ElementDist::default(), seed);
        let b = Matrix::<f64>::random_seeded(24, n, ElementDist::default(), seed + 1);
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| (a.matmul(&b), matmul_f64_acc(&a, &b)));
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| (a.matmul(&b), matmul_f64_acc(&a, &b)));
        prop_assert_eq!(serial.0, parallel.0);
        prop_assert_eq!(serial.1, parallel.1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The dispatched dot product equals the portable lane-blocked
    /// reference bit for bit, for every element format and any length
    /// (including tails and sub-lane slices) — host SIMD must never
    /// change a result.
    #[test]
    fn dot_dispatch_bit_identical_to_portable(
        data in proptest::collection::vec((-8.0f64..8.0, -8.0f64..8.0), 0..200),
    ) {
        use fa_tensor::ops::{dot_f64_portable, dot_then_scale};
        let (a, b): (Vec<f64>, Vec<f64>) = data.into_iter().unzip();
        prop_assert_eq!(dot_f64(&a, &b).to_bits(), dot_f64_portable(&a, &b).to_bits());
        prop_assert_eq!(
            dot_then_scale(&a, &b, 0.125).to_bits(),
            (dot_f64_portable(&a, &b) * 0.125).to_bits()
        );

        let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        prop_assert_eq!(
            dot_f64(&a32, &b32).to_bits(),
            dot_f64_portable(&a32, &b32).to_bits()
        );

        let a16: Vec<BF16> = a.iter().map(|&x| BF16::from_f64(x)).collect();
        let b16: Vec<BF16> = b.iter().map(|&x| BF16::from_f64(x)).collect();
        prop_assert_eq!(
            dot_f64(&a16, &b16).to_bits(),
            dot_f64_portable(&a16, &b16).to_bits()
        );
    }

    /// The native BF16 dot kernel (f32 products, one widening per
    /// product) is pinned to its portable combine-order definition AND to
    /// the per-element-widening `dot_f64` path, bit for bit — the
    /// exactness of f32 BF16 products is what lets the mixed-format cache
    /// change the kernel without changing a single result. The mixed
    /// f64×BF16 kernel is likewise pinned to `dot_f64` over pre-widened
    /// keys.
    #[test]
    fn bf16_native_and_mixed_dots_bit_identical_to_widening(
        data in proptest::collection::vec((-8.0f64..8.0, -8.0f64..8.0), 0..200),
    ) {
        use fa_tensor::ops::{
            dot_bf16_native, dot_bf16_native_portable, dot_f64_bf16, dot_f64_bf16_portable,
            dot_f64_portable,
        };
        let (a, b): (Vec<f64>, Vec<f64>) = data.into_iter().unzip();
        let a16: Vec<BF16> = a.iter().map(|&x| BF16::from_f64(x)).collect();
        let b16: Vec<BF16> = b.iter().map(|&x| BF16::from_f64(x)).collect();

        let native = dot_bf16_native(&a16, &b16);
        prop_assert_eq!(native.to_bits(), dot_bf16_native_portable(&a16, &b16).to_bits());
        prop_assert_eq!(native.to_bits(), dot_f64_portable(&a16, &b16).to_bits());

        let b_wide: Vec<f64> = b16.iter().map(|x| x.to_f64()).collect();
        let mixed = dot_f64_bf16(&a, &b16);
        prop_assert_eq!(mixed.to_bits(), dot_f64_bf16_portable(&a, &b16).to_bits());
        prop_assert_eq!(mixed.to_bits(), dot_f64(&a, &b_wide).to_bits());
    }

    /// The dispatched axpy equals the portable element-wise loop bit for
    /// bit for every format, length and coefficient pair.
    #[test]
    fn axpy_dispatch_bit_identical_to_portable(
        data in proptest::collection::vec((-8.0f64..8.0, -8.0f64..8.0), 0..150),
        c1 in -2.0f64..2.0,
        c2 in -2.0f64..2.0,
    ) {
        use fa_tensor::ops::{axpy_f64, axpy_f64_portable};
        let (acc0, x): (Vec<f64>, Vec<f64>) = data.into_iter().unzip();

        let mut fast = acc0.clone();
        axpy_f64(&mut fast, &x, c1, c2);
        let mut slow = acc0.clone();
        axpy_f64_portable(&mut slow, &x, c1, c2);
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert_eq!(f.to_bits(), s.to_bits());
        }

        let x16: Vec<BF16> = x.iter().map(|&v| BF16::from_f64(v)).collect();
        let mut fast = acc0.clone();
        axpy_f64(&mut fast, &x16, c1, c2);
        let mut slow = acc0;
        axpy_f64_portable(&mut slow, &x16, c1, c2);
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert_eq!(f.to_bits(), s.to_bits());
        }
    }
}
