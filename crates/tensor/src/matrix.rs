//! The dense row-major matrix type.

use crate::Scalar;
use std::fmt;

/// A dense, row-major matrix of [`Scalar`] elements.
///
/// Dimensions are fixed at construction; all accessors bounds-check in
/// debug and release builds (attention kernels index with loop variables
/// derived from validated dimensions, so the checks never fire on the hot
/// path after inlining).
///
/// # Example
///
/// ```
/// use fa_tensor::Matrix;
///
/// let m = Matrix::<f64>::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); len],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "row {i} has length {} but row 0 has length {cols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat vector length {} does not match {rows}×{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The flat row-major element slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The flat row-major element slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat element vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Applies `f` to every element, producing a new matrix of the same
    /// shape (possibly in a different scalar format).
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Converts every element to `f64` (exact for all supported formats).
    pub fn to_f64(&self) -> Matrix<f64> {
        self.map(|x| x.to_f64())
    }

    /// Rounds every element into scalar format `U`.
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        self.map(|x| U::from_f64(x.to_f64()))
    }

    /// Largest absolute element difference against another matrix of the
    /// same shape; NaN if any compared pair involves a NaN.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch in max_abs_diff"
        );
        let mut worst = 0.0f64;
        for (a, b) in self.data.iter().zip(&other.data) {
            let d = (a.to_f64() - b.to_f64()).abs();
            if d.is_nan() {
                return f64::NAN;
            }
            if d > worst {
                worst = d;
            }
        }
        worst
    }

    /// Whether all elements are finite (no NaN/Inf anywhere).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Frobenius norm, accumulated in f64.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|x| {
                let v = x.to_f64();
                v * v
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Sum of all elements, accumulated in f64.
    pub fn sum_all(&self) -> f64 {
        self.data.iter().map(|x| x.to_f64()).sum()
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}×{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}×{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix<{}> {}×{} [", T::NAME, self.rows, self.cols)?;
        let max_rows = 8;
        for (i, row) in self.iter_rows().take(max_rows).enumerate() {
            write!(f, "  [")?;
            for (j, x) in row.iter().take(8).enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", x)?;
            }
            if row.len() > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]{}", if i + 1 < self.rows { "," } else { "" })?;
        }
        if self.rows > max_rows {
            writeln!(f, "  … {} more rows", self.rows - max_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_numerics::BF16;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::<f64>::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::<f64>::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::<f64>::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_rows_and_row_access() {
        let m = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let rows: Vec<_> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::<f64>::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::<f64>::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::<f64>::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn map_and_cast() {
        let m = Matrix::<f64>::from_rows(&[&[1.0, 2.5]]);
        let doubled = m.map(|x| x * 2.0);
        assert_eq!(doubled.as_slice(), &[2.0, 5.0]);
        let b: Matrix<BF16> = m.cast();
        assert_eq!(b[(0, 1)].to_f64(), 2.5);
        let back = b.to_f64();
        assert_eq!(back, m);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::<f64>::from_rows(&[&[1.5, 2.0]]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn max_abs_diff_nan_poisons() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, f64::NAN]]);
        let b = Matrix::<f64>::from_rows(&[&[1.0, 2.0]]);
        assert!(a.max_abs_diff(&b).is_nan());
    }

    #[test]
    fn all_finite_detects_inf_and_nan() {
        let mut m = Matrix::<f64>::zeros(2, 2);
        assert!(m.all_finite());
        m[(0, 1)] = f64::INFINITY;
        assert!(!m.all_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn frobenius_and_sum() {
        let m = Matrix::<f64>::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.sum_all(), 7.0);
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::<f64>::zeros(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.sum_all(), 0.0);
        assert!(m.all_finite());
    }

    #[test]
    fn debug_output_truncates() {
        let m = Matrix::<f64>::zeros(20, 20);
        let s = format!("{:?}", m);
        assert!(s.contains("more rows"));
        assert!(s.contains("20×20"));
    }

    #[test]
    fn into_vec_roundtrip() {
        let m = Matrix::<f64>::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.clone().into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }
}
