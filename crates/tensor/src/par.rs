//! The workspace's single parallelization policy.
//!
//! Every kernel that can fork onto the rayon pool — matmul row blocks,
//! attention query rows, GQA heads, fused-checksum queries — decides with
//! the predicates here, so the fork threshold is tuned in one place. The
//! guiding constraint: fault campaigns feed the simulator thousands of
//! tiny kernels per second, and those must stay on the calling thread;
//! long-sequence inference shapes must fork.

/// Minimum output rows before a matmul kernel forks row blocks.
pub const MATMUL_MIN_ROWS: usize = 64;

/// Row-block granularity matmul kernels hand to the pool.
pub const MATMUL_ROW_BLOCK: usize = 32;

/// Whether forking can win *at all* in the current context: the pool must
/// have more than one worker, and the caller must not already be on a
/// worker thread. Nested parallel calls run inline in this pool, so taking
/// the parallel entry from inside a worker pays the item-list
/// materialization for a guaranteed zero-way fork — on a 1-thread host
/// (`host_threads: 1` in `BENCH_kernels.json`) that pure overhead is how
/// the "parallel" flash2 path managed to measure *slower* than serial.
/// With this guard the parallel entry points collapse to exactly the
/// serial code path whenever no fork can happen.
///
/// SWAP NOTE (upstream rayon): the `current_thread_index` guard is tuned
/// to the offline shim, where `ThreadPool::install` runs its closure on
/// the *calling* thread and nested terminals run inline. Upstream rayon
/// runs `install` closures ON a pool worker (`current_thread_index()` is
/// `Some` there) and makes nested `par_iter` cheap via work stealing — so
/// when `[workspace.dependencies]` is switched to upstream, delete the
/// `current_thread_index` clause (keep the `current_num_threads` one) or
/// every `pool.install(|| kernel(..))` call site silently serializes.
#[inline]
fn forking_possible() -> bool {
    // SWAP NOTE enforcement: under the shim, `install` overrides live on
    // the calling thread and pool workers are fresh scoped threads, so a
    // worker carrying an install override is impossible — that combination
    // is the upstream-rayon execution model (where `install` runs ON a
    // worker), i.e. exactly the configuration in which the
    // `current_thread_index` clause below silently serializes every
    // `pool.install(|| kernel)` call site. `install_override_active` is
    // shim-only API, so an upstream swap that skips the SWAP NOTE fails
    // loudly at compile time right here; if the shim's execution model
    // itself ever drifts, the assert fires in debug runs.
    debug_assert!(
        !(rayon::current_thread_index().is_some() && rayon::install_override_active()),
        "fork policy: pool worker carries an install override — `install` no longer \
         runs on the calling thread; drop the `current_thread_index` clause (SWAP NOTE)"
    );
    rayon::current_num_threads() > 1 && rayon::current_thread_index().is_none()
}

/// Whether an attention-style kernel over `rows` independent units, each
/// touching `keys × d` elements, is worth forking onto the rayon pool.
#[inline]
pub fn worth_parallelizing(rows: usize, keys: usize, d: usize) -> bool {
    rows >= 16 && rows * keys * d >= 1 << 15 && forking_possible()
}

/// Whether a matmul over `rows` output rows is worth forking.
#[inline]
pub fn worth_parallelizing_matmul(rows: usize) -> bool {
    rows >= MATMUL_MIN_ROWS && forking_possible()
}

/// Whether a fork over `units` independent work items, each touching
/// roughly `elems_per_unit` elements, is worth it. Unlike
/// [`worth_parallelizing`] there is no minimum unit count beyond "more
/// than one": admission-style workloads (prompt×head prefill passes)
/// have few, very large units, where even a 2-way fork pays for itself.
#[inline]
pub fn worth_parallelizing_units(units: usize, elems_per_unit: usize) -> bool {
    units >= 2 && units.saturating_mul(elems_per_unit) >= 1 << 15 && forking_possible()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_shapes_stay_serial() {
        // Simulator-sized shapes must never fork, whatever the host.
        assert!(!worth_parallelizing(16, 16, 8));
        assert!(!worth_parallelizing(4, 1024, 64));
        assert!(!worth_parallelizing_matmul(16));
    }

    #[test]
    fn inference_shapes_fork_on_multicore_hosts() {
        let forked = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| {
                (
                    worth_parallelizing(1024, 1024, 64),
                    worth_parallelizing_matmul(256),
                )
            });
        assert_eq!(forked, (true, true));
    }

    #[test]
    fn single_thread_pools_never_fork() {
        let forked = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| worth_parallelizing(1024, 1024, 64));
        assert!(!forked);
    }

    #[test]
    fn unit_threshold_forks_few_huge_units_but_not_tiny_ones() {
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| {
                // Two 4096-token prompt×head prefill passes: must fork.
                assert!(worth_parallelizing_units(2, 4096 * 4096 / 2 * 64));
                // A single unit, or simulator-sized units, must not.
                assert!(!worth_parallelizing_units(1, 1 << 30));
                assert!(!worth_parallelizing_units(8, 16));
            });
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| worth_parallelizing_units(2, 1 << 30));
        assert!(!one, "1-thread pools never fork");
    }

    #[test]
    fn worker_threads_never_fork_again() {
        // Inside a pool worker, nested parallel calls run inline — the
        // threshold must send them down the serial entry.
        use rayon::prelude::*;
        let nested: Vec<(bool, bool)> = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| {
                (0..4usize)
                    .into_par_iter()
                    .map(|_| {
                        (
                            worth_parallelizing(1024, 1024, 64),
                            worth_parallelizing_matmul(256),
                        )
                    })
                    .collect()
            });
        for (attn, mm) in nested {
            assert!(!attn && !mm);
        }
    }
}
