//! The workspace's single parallelization policy.
//!
//! Every kernel that can fork onto the rayon pool — matmul row blocks,
//! attention query rows, GQA heads, fused-checksum queries — decides with
//! the predicates here, so the fork threshold is tuned in one place. The
//! guiding constraint: fault campaigns feed the simulator thousands of
//! tiny kernels per second, and those must stay on the calling thread;
//! long-sequence inference shapes must fork.

/// Minimum output rows before a matmul kernel forks row blocks.
pub const MATMUL_MIN_ROWS: usize = 64;

/// Row-block granularity matmul kernels hand to the pool.
pub const MATMUL_ROW_BLOCK: usize = 32;

/// Whether an attention-style kernel over `rows` independent units, each
/// touching `keys × d` elements, is worth forking onto the rayon pool.
#[inline]
pub fn worth_parallelizing(rows: usize, keys: usize, d: usize) -> bool {
    rows >= 16 && rows * keys * d >= 1 << 15 && rayon::current_num_threads() > 1
}

/// Whether a matmul over `rows` output rows is worth forking.
#[inline]
pub fn worth_parallelizing_matmul(rows: usize) -> bool {
    rows >= MATMUL_MIN_ROWS && rayon::current_num_threads() > 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_shapes_stay_serial() {
        // Simulator-sized shapes must never fork, whatever the host.
        assert!(!worth_parallelizing(16, 16, 8));
        assert!(!worth_parallelizing(4, 1024, 64));
        assert!(!worth_parallelizing_matmul(16));
    }

    #[test]
    fn inference_shapes_fork_on_multicore_hosts() {
        let forked = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| {
                (
                    worth_parallelizing(1024, 1024, 64),
                    worth_parallelizing_matmul(256),
                )
            });
        assert_eq!(forked, (true, true));
    }

    #[test]
    fn single_thread_pools_never_fork() {
        let forked = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| worth_parallelizing(1024, 1024, 64));
        assert!(!forked);
    }
}
