//! # fa-tensor
//!
//! Dense row-major matrix library underpinning every kernel in the
//! Flash-ABFT reproduction workspace.
//!
//! Attention operates on three matrices — queries `Q` (N×d), keys `K`
//! (N×d) and values `V` (N×d) — and ABFT operates on their row/column
//! checksum vectors. This crate provides:
//!
//! * [`Matrix<T>`] over a sealed [`Scalar`] trait implemented for `f32`,
//!   `f64` and [`BF16`](fa_numerics::BF16), so the same kernel code can run
//!   as a double-precision golden model or as the accelerator's
//!   reduced-precision datapath;
//! * matrix products with selectable accumulator precision ([`ops`]);
//! * row/column checksum vectors — the primitives of Huang–Abraham ABFT
//!   ([`checksum`]);
//! * reproducible random generation with the distributions used by the
//!   workload generator ([`random`]).
//!
//! # Example
//!
//! ```
//! use fa_tensor::Matrix;
//!
//! let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::<f64>::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

pub mod checksum;
pub mod ops;
pub mod par;
pub mod random;

mod matrix;
mod scalar;
mod simd;

pub use matrix::Matrix;
pub use scalar::Scalar;
