//! Row and column checksum vectors — the ABFT primitives.
//!
//! Classic Huang–Abraham ABFT for `C = A·B` augments `A` with a bottom row
//! of per-**column** sums and `B` with a right column of per-**row** sums;
//! the dot product of those two vectors predicts the sum of all elements of
//! `C`. The paper reuses exactly these primitives: `sumrow_k(V)` (Eq. 4) is
//! the per-row checksum of `V`, and `sumcol_k(S)` (Eq. 3) is the per-column
//! checksum of the softmax matrix.
//!
//! All checksums here accumulate in `f64` regardless of the element format,
//! matching the paper's double-precision checksum accumulators.

use crate::{Matrix, Scalar};
use fa_numerics::KahanSum;

impl<T: Scalar> Matrix<T> {
    /// Per-row sums: element `k` is `Σ_j self[k][j]` — the paper's
    /// `sumrow_k` (Eq. 4), accumulated in f64.
    ///
    /// ```
    /// use fa_tensor::Matrix;
    /// let v = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    /// assert_eq!(v.row_sums(), vec![3.0, 7.0]);
    /// ```
    pub fn row_sums(&self) -> Vec<f64> {
        self.iter_rows()
            .map(|row| row.iter().map(|x| x.to_f64()).sum())
            .collect()
    }

    /// Per-column sums: element `k` is `Σ_i self[i][k]` — the paper's
    /// `sumcol_k` (Eq. 3), accumulated in f64.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0f64; self.cols()];
        for row in self.iter_rows() {
            for (s, x) in sums.iter_mut().zip(row) {
                *s += x.to_f64();
            }
        }
        sums
    }

    /// Per-row sums with compensated (Kahan–Neumaier) accumulation, for
    /// golden-model use where the checksum itself must not drift.
    pub fn row_sums_compensated(&self) -> Vec<f64> {
        self.iter_rows()
            .map(|row| {
                let mut acc = KahanSum::new();
                for x in row {
                    acc.add(x.to_f64());
                }
                acc.value()
            })
            .collect()
    }

    /// Sum of all elements via compensated accumulation.
    pub fn sum_all_compensated(&self) -> f64 {
        let mut acc = KahanSum::new();
        for x in self.as_slice() {
            acc.add(x.to_f64());
        }
        acc.value()
    }
}

/// The Huang–Abraham predicted checksum for `C = A·B`: the dot product of
/// `A`'s column sums with `B`'s row sums, all in f64.
///
/// If no fault occurred, this equals `Σ_ij C[i][j]` up to floating-point
/// reordering error.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn predicted_matmul_checksum<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> f64 {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimensions differ in checksum prediction"
    );
    a.col_sums()
        .iter()
        .zip(b.row_sums())
        .map(|(&ca, rb)| ca * rb)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_numerics::BF16;

    #[test]
    fn row_and_col_sums_known_answer() {
        let m = Matrix::<f64>::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.row_sums(), vec![6.0, 15.0]);
        assert_eq!(m.col_sums(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn sums_of_empty_matrix() {
        let m = Matrix::<f64>::zeros(0, 3);
        assert!(m.row_sums().is_empty());
        assert_eq!(m.col_sums(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn bf16_sums_accumulate_in_f64() {
        // 256 copies of bf16(0.01): a BF16 accumulator would absorb terms;
        // the f64 accumulator must not.
        let v = BF16::from_f32(0.01).to_f64();
        let m = Matrix::<BF16>::from_fn(1, 256, |_, _| BF16::from_f32(0.01));
        let expected = v * 256.0;
        assert!((m.row_sums()[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn compensated_matches_plain_on_benign_input() {
        let m = Matrix::<f64>::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        assert_eq!(m.row_sums(), m.row_sums_compensated());
        assert_eq!(m.sum_all(), m.sum_all_compensated());
    }

    #[test]
    fn predicted_checksum_equals_actual_sum() {
        let a = Matrix::<f64>::from_fn(5, 7, |r, c| ((r * 7 + c) % 11) as f64 - 5.0);
        let b = Matrix::<f64>::from_fn(7, 4, |r, c| ((r * 4 + c) % 13) as f64 / 3.0);
        let c = a.matmul(&b);
        let predicted = predicted_matmul_checksum(&a, &b);
        assert!((predicted - c.sum_all()).abs() < 1e-9);
    }

    #[test]
    fn predicted_checksum_detects_corruption() {
        let a = Matrix::<f64>::from_fn(3, 3, |r, c| (r + c) as f64);
        let b = Matrix::<f64>::identity(3);
        let mut c = a.matmul(&b);
        let predicted = predicted_matmul_checksum(&a, &b);
        assert!((predicted - c.sum_all()).abs() < 1e-12);
        c[(1, 1)] += 0.5; // inject
        assert!((predicted - c.sum_all()).abs() > 0.4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn predicted_checksum_shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 2);
        let _ = predicted_matmul_checksum(&a, &b);
    }
}
