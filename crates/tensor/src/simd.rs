//! SIMD microkernels.
//!
//! The BF16 datapath matmul rounds *every* MAC to BF16, so its cost is
//! dominated by rounding arithmetic, not memory traffic. The scalar kernel
//! pays ~10 cycles per MAC in convert/round ops; the AVX2 kernel here
//! processes eight output columns per vector with the identical rounding
//! math per lane (`round32(a·b)` → RNE-to-BF16 → `f32` add → RNE-to-BF16,
//! the [`crate::Scalar::mac_fast`] sequence, itself provably bit-identical
//! to the seed's f64 round-trip `mac`). Four column tiles are interleaved
//! so four independent rounding dependency chains hide each other's
//! latency.
//!
//! Each output element's `k` terms still accumulate in ascending order in
//! a private lane, so the result is **bit-identical** to
//! [`crate::ops::matmul_reference`] — the property tests compare them
//! directly. Dispatch is runtime-gated on AVX2; other hosts fall back to
//! the scalar blocked kernel.

#![cfg(target_arch = "x86_64")]

use crate::{Matrix, Scalar};
use core::any::TypeId;
use core::arch::x86_64::*;
use fa_numerics::BF16;
use rayon::prelude::*;

/// Reinterprets a slice of `A` as a slice of `B` after proving the types
/// identical via `TypeId` — the monomorphization-time downcast the SIMD
/// dispatch of the sealed [`Scalar`] trait uses.
///
/// # Panics
///
/// Panics if the types differ.
fn slice_cast<A: 'static, B: 'static>(x: &[A]) -> &[B] {
    assert_eq!(
        TypeId::of::<A>(),
        TypeId::of::<B>(),
        "slice_cast requires identical types"
    );
    // SAFETY: A and B are the same type (checked above), so layout and
    // validity are identical.
    unsafe { core::slice::from_raw_parts(x.as_ptr().cast::<B>(), x.len()) }
}

// ---------------------------------------------------------------------------
// Blocked dot product (the inner kernel of every attention score loop).
// ---------------------------------------------------------------------------

/// AVX2 dot product dispatch: `Some(dot)` when the host has AVX2, `None`
/// to fall back to [`crate::ops::dot_f64_portable`]. Bit-identical to the
/// portable kernel: same lane assignment (element `16i+l` → lane `l`),
/// same combine tree, same ascending tail.
pub(crate) fn dot_f64<T: Scalar>(a: &[T], b: &[T]) -> Option<f64> {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return None;
    }
    let t = TypeId::of::<T>();
    // SAFETY (all three arms): AVX2 presence checked above.
    if t == TypeId::of::<f64>() {
        Some(unsafe { dot_avx2_f64(slice_cast(a), slice_cast(b)) })
    } else if t == TypeId::of::<f32>() {
        Some(unsafe { dot_avx2_f32(slice_cast(a), slice_cast(b)) })
    } else if t == TypeId::of::<BF16>() {
        // The native kernel is bit-identical to the per-element widening
        // path (f32 BF16 products are exact within f32's normal range;
        // the in-kernel range guard falls back to the widening kernel
        // when any product could leave it) and much cheaper.
        Some(unsafe { dot_avx2_bf16_native(slice_cast(a), slice_cast(b)) })
    } else {
        None
    }
}

/// AVX2 dispatch for [`crate::ops::dot_bf16_native`]: `None` when the
/// host lacks AVX2.
pub(crate) fn dot_bf16_native(a: &[BF16], b: &[BF16]) -> Option<f64> {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return None;
    }
    // SAFETY: AVX2 presence checked above.
    Some(unsafe { dot_avx2_bf16_native(a, b) })
}

/// AVX2 dispatch for [`crate::ops::dot_f64_bf16`]: `None` when the host
/// lacks AVX2.
pub(crate) fn dot_f64_bf16(q: &[f64], k: &[BF16]) -> Option<f64> {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return None;
    }
    // SAFETY: AVX2 presence checked above.
    Some(unsafe { dot_avx2_f64_bf16(q, k) })
}

/// Combines the four accumulator vectors and the scalar tail exactly like
/// the portable kernel: `(v0+v2) + (v1+v3)` as vector adds, then the
/// horizontal `(u0+u1) + (u2+u3)`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn dot_combine(v0: __m256d, v1: __m256d, v2: __m256d, v3: __m256d) -> f64 {
    let u = _mm256_add_pd(_mm256_add_pd(v0, v2), _mm256_add_pd(v1, v3));
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), u);
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

#[target_feature(enable = "avx2")]
unsafe fn dot_avx2_f64(a: &[f64], b: &[f64]) -> f64 {
    let lanes = crate::ops::DOT_LANES;
    let chunks = a.len() / lanes;
    // −0.0 seeds: the portable kernel's fold identity (see
    // `dot_f64_portable`), so signed-zero edge cases match bit for bit.
    let mut v0 = _mm256_set1_pd(-0.0);
    let mut v1 = _mm256_set1_pd(-0.0);
    let mut v2 = _mm256_set1_pd(-0.0);
    let mut v3 = _mm256_set1_pd(-0.0);
    for c in 0..chunks {
        let pa = a.as_ptr().add(c * lanes);
        let pb = b.as_ptr().add(c * lanes);
        v0 = _mm256_add_pd(v0, _mm256_mul_pd(_mm256_loadu_pd(pa), _mm256_loadu_pd(pb)));
        v1 = _mm256_add_pd(
            v1,
            _mm256_mul_pd(_mm256_loadu_pd(pa.add(4)), _mm256_loadu_pd(pb.add(4))),
        );
        v2 = _mm256_add_pd(
            v2,
            _mm256_mul_pd(_mm256_loadu_pd(pa.add(8)), _mm256_loadu_pd(pb.add(8))),
        );
        v3 = _mm256_add_pd(
            v3,
            _mm256_mul_pd(_mm256_loadu_pd(pa.add(12)), _mm256_loadu_pd(pb.add(12))),
        );
    }
    let mut s = dot_combine(v0, v1, v2, v3);
    for k in chunks * lanes..a.len() {
        s += a[k] * b[k];
    }
    s
}

/// Widens four consecutive `f32`s starting at `p` to an `f64x4` (exact).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn load_f32x4_as_f64(p: *const f32) -> __m256d {
    _mm256_cvtps_pd(_mm_loadu_ps(p))
}

#[target_feature(enable = "avx2")]
unsafe fn dot_avx2_f32(a: &[f32], b: &[f32]) -> f64 {
    let lanes = crate::ops::DOT_LANES;
    let chunks = a.len() / lanes;
    // −0.0 seeds: the portable kernel's fold identity (see
    // `dot_f64_portable`), so signed-zero edge cases match bit for bit.
    let mut v0 = _mm256_set1_pd(-0.0);
    let mut v1 = _mm256_set1_pd(-0.0);
    let mut v2 = _mm256_set1_pd(-0.0);
    let mut v3 = _mm256_set1_pd(-0.0);
    for c in 0..chunks {
        let pa = a.as_ptr().add(c * lanes);
        let pb = b.as_ptr().add(c * lanes);
        v0 = _mm256_add_pd(
            v0,
            _mm256_mul_pd(load_f32x4_as_f64(pa), load_f32x4_as_f64(pb)),
        );
        v1 = _mm256_add_pd(
            v1,
            _mm256_mul_pd(load_f32x4_as_f64(pa.add(4)), load_f32x4_as_f64(pb.add(4))),
        );
        v2 = _mm256_add_pd(
            v2,
            _mm256_mul_pd(load_f32x4_as_f64(pa.add(8)), load_f32x4_as_f64(pb.add(8))),
        );
        v3 = _mm256_add_pd(
            v3,
            _mm256_mul_pd(load_f32x4_as_f64(pa.add(12)), load_f32x4_as_f64(pb.add(12))),
        );
    }
    let mut s = dot_combine(v0, v1, v2, v3);
    for k in chunks * lanes..a.len() {
        s += a[k] as f64 * b[k] as f64;
    }
    s
}

/// Widens four consecutive BF16 patterns starting at `p` to an `f64x4`:
/// `u16 << 16` is the exact BF16→f32 embedding, f32→f64 is exact.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn load_bf16x4_as_f64(p: *const BF16) -> __m256d {
    let raw = _mm_loadl_epi64(p.cast::<__m128i>());
    let widened = _mm_slli_epi32::<16>(_mm_cvtepu16_epi32(raw));
    _mm256_cvtps_pd(_mm_castsi128_ps(widened))
}

/// Widens eight consecutive BF16 patterns starting at `p` to an `f32x8`
/// (`u16 << 16` is the exact BF16→f32 embedding).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn load_bf16x8_as_f32(p: *const BF16) -> __m256 {
    let raw = _mm_loadu_si128(p.cast::<__m128i>());
    _mm256_castsi256_ps(_mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(raw)))
}

/// The native BF16 dot kernel: eight lanes converted per instruction,
/// products formed 8-wide in `f32` (exact — 8+8-bit significands fit 24),
/// then widened once to `f64` for accumulation in the portable kernel's
/// lane order (product of element `16c+l` lands in accumulator lane `l`).
/// Bit-identical to both `dot_bf16_native_portable` and, because the f32
/// products are exact, to `dot_f64_portable` on the same slices.
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2_bf16_native(a: &[BF16], b: &[BF16]) -> f64 {
    let lanes = crate::ops::DOT_LANES;
    let chunks = a.len() / lanes;
    // −0.0 seeds: the portable kernel's fold identity (see
    // `dot_f64_portable`), so signed-zero edge cases match bit for bit.
    let mut v0 = _mm256_set1_pd(-0.0);
    let mut v1 = _mm256_set1_pd(-0.0);
    let mut v2 = _mm256_set1_pd(-0.0);
    let mut v3 = _mm256_set1_pd(-0.0);
    // Range guard: an f32 product of two BF16 operands is exact only
    // while it stays in f32's **normal** range — overflow saturates to
    // ±inf and underflow loses significand bits (or flushes to zero),
    // either of which would break the bit-identity to the f64-product
    // order. Track the running |product| min/max with sticky NaN/inf
    // propagation (new value as the FIRST max/min operand: x86 min/max
    // return the second operand on unordered compares, so a NaN that
    // enters the state never leaves it); one scalar check at the end
    // routes any suspicious slice through the per-element widening
    // kernel instead. Exact zeros (a zero operand) also trip the guard —
    // conservative, rare in hot data, and merely slower, never wrong.
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
    let mut max_abs = _mm256_setzero_ps();
    let mut min_abs = _mm256_set1_ps(f32::INFINITY);
    for c in 0..chunks {
        let pa = a.as_ptr().add(c * lanes);
        let pb = b.as_ptr().add(c * lanes);
        let p_lo = _mm256_mul_ps(load_bf16x8_as_f32(pa), load_bf16x8_as_f32(pb));
        let p_hi = _mm256_mul_ps(load_bf16x8_as_f32(pa.add(8)), load_bf16x8_as_f32(pb.add(8)));
        let abs_lo = _mm256_and_ps(p_lo, abs_mask);
        let abs_hi = _mm256_and_ps(p_hi, abs_mask);
        max_abs = _mm256_max_ps(_mm256_max_ps(abs_lo, abs_hi), max_abs);
        min_abs = _mm256_min_ps(_mm256_min_ps(abs_lo, abs_hi), min_abs);
        v0 = _mm256_add_pd(v0, _mm256_cvtps_pd(_mm256_castps256_ps128(p_lo)));
        v1 = _mm256_add_pd(v1, _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(p_lo)));
        v2 = _mm256_add_pd(v2, _mm256_cvtps_pd(_mm256_castps256_ps128(p_hi)));
        v3 = _mm256_add_pd(v3, _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(p_hi)));
    }
    if chunks > 0 {
        // A lane is suspicious when its |product| overflowed (inf), is
        // NaN (the `_UQ` predicates return true on unordered), or dipped
        // below f32's smallest normal (underflow / exact zero). Two
        // vector compares + one movemask — cheap enough to pay per call
        // even for decode-sized d.
        let over = _mm256_cmp_ps::<_CMP_NLT_UQ>(max_abs, _mm256_set1_ps(f32::INFINITY));
        let under = _mm256_cmp_ps::<_CMP_NGE_UQ>(min_abs, _mm256_set1_ps(f32::MIN_POSITIVE));
        if _mm256_movemask_ps(_mm256_or_ps(over, under)) != 0 {
            return dot_avx2_bf16_widening(a, b);
        }
    }
    let mut s = dot_combine(v0, v1, v2, v3);
    for k in chunks * lanes..a.len() {
        // Tail products widen per element — always exact.
        s += a[k].to_f64() * b[k].to_f64();
    }
    s
}

/// The per-element-widening BF16 dot (each operand widened BF16→f64 via
/// an exact 4-lane convert before the multiply): slower than the native
/// kernel but exact at every magnitude — the fallback the range guard
/// routes overflow/underflow-prone slices through, and the semantics
/// both kernels are pinned to.
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2_bf16_widening(a: &[BF16], b: &[BF16]) -> f64 {
    let lanes = crate::ops::DOT_LANES;
    let chunks = a.len() / lanes;
    // −0.0 seeds: the portable kernel's fold identity (see
    // `dot_f64_portable`), so signed-zero edge cases match bit for bit.
    let mut v0 = _mm256_set1_pd(-0.0);
    let mut v1 = _mm256_set1_pd(-0.0);
    let mut v2 = _mm256_set1_pd(-0.0);
    let mut v3 = _mm256_set1_pd(-0.0);
    for c in 0..chunks {
        let pa = a.as_ptr().add(c * lanes);
        let pb = b.as_ptr().add(c * lanes);
        v0 = _mm256_add_pd(
            v0,
            _mm256_mul_pd(load_bf16x4_as_f64(pa), load_bf16x4_as_f64(pb)),
        );
        v1 = _mm256_add_pd(
            v1,
            _mm256_mul_pd(load_bf16x4_as_f64(pa.add(4)), load_bf16x4_as_f64(pb.add(4))),
        );
        v2 = _mm256_add_pd(
            v2,
            _mm256_mul_pd(load_bf16x4_as_f64(pa.add(8)), load_bf16x4_as_f64(pb.add(8))),
        );
        v3 = _mm256_add_pd(
            v3,
            _mm256_mul_pd(
                load_bf16x4_as_f64(pa.add(12)),
                load_bf16x4_as_f64(pb.add(12)),
            ),
        );
    }
    let mut s = dot_combine(v0, v1, v2, v3);
    for k in chunks * lanes..a.len() {
        s += a[k].to_f64() * b[k].to_f64();
    }
    s
}

/// Mixed-operand dot: `f64` query lanes against BF16 key lanes widened
/// 4-at-a-time (exact), in the portable kernel's lane order — bit-identical
/// to `dot_f64_bf16_portable` and to `dot_f64` on a pre-widened key row.
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2_f64_bf16(q: &[f64], k: &[BF16]) -> f64 {
    let lanes = crate::ops::DOT_LANES;
    let chunks = q.len() / lanes;
    // −0.0 seeds: the portable kernel's fold identity (see
    // `dot_f64_portable`), so signed-zero edge cases match bit for bit.
    let mut v0 = _mm256_set1_pd(-0.0);
    let mut v1 = _mm256_set1_pd(-0.0);
    let mut v2 = _mm256_set1_pd(-0.0);
    let mut v3 = _mm256_set1_pd(-0.0);
    for c in 0..chunks {
        let pq = q.as_ptr().add(c * lanes);
        let pk = k.as_ptr().add(c * lanes);
        v0 = _mm256_add_pd(
            v0,
            _mm256_mul_pd(_mm256_loadu_pd(pq), load_bf16x4_as_f64(pk)),
        );
        v1 = _mm256_add_pd(
            v1,
            _mm256_mul_pd(_mm256_loadu_pd(pq.add(4)), load_bf16x4_as_f64(pk.add(4))),
        );
        v2 = _mm256_add_pd(
            v2,
            _mm256_mul_pd(_mm256_loadu_pd(pq.add(8)), load_bf16x4_as_f64(pk.add(8))),
        );
        v3 = _mm256_add_pd(
            v3,
            _mm256_mul_pd(_mm256_loadu_pd(pq.add(12)), load_bf16x4_as_f64(pk.add(12))),
        );
    }
    let mut s = dot_combine(v0, v1, v2, v3);
    for i in chunks * lanes..q.len() {
        s += q[i] * k[i].to_f64();
    }
    s
}

// ---------------------------------------------------------------------------
// Rescale-accumulate (the online-softmax accumulator update).
// ---------------------------------------------------------------------------

/// AVX2 axpy dispatch: `true` when handled, `false` to fall back to the
/// portable loop. Element-wise `acc·c1 + x·c2` with the same two
/// roundings per lane as the scalar expression — bit-identical by IEEE
/// semantics (mul and add vectorize lane-exact; no FMA contraction).
pub(crate) fn axpy_f64<T: Scalar>(acc: &mut [f64], x: &[T], c1: f64, c2: f64) -> bool {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return false;
    }
    let t = TypeId::of::<T>();
    // SAFETY (all three arms): AVX2 presence checked above.
    if t == TypeId::of::<f64>() {
        unsafe { axpy_avx2_f64(acc, slice_cast(x), c1, c2) }
    } else if t == TypeId::of::<f32>() {
        unsafe { axpy_avx2_f32(acc, slice_cast(x), c1, c2) }
    } else if t == TypeId::of::<BF16>() {
        unsafe { axpy_avx2_bf16(acc, slice_cast(x), c1, c2) }
    } else {
        return false;
    }
    true
}

#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2_f64(acc: &mut [f64], x: &[f64], c1: f64, c2: f64) {
    let vc1 = _mm256_set1_pd(c1);
    let vc2 = _mm256_set1_pd(c2);
    let chunks = acc.len() / 4;
    for i in 0..chunks {
        let pa = acc.as_mut_ptr().add(i * 4);
        let vx = _mm256_loadu_pd(x.as_ptr().add(i * 4));
        let r = _mm256_add_pd(
            _mm256_mul_pd(_mm256_loadu_pd(pa), vc1),
            _mm256_mul_pd(vx, vc2),
        );
        _mm256_storeu_pd(pa, r);
    }
    for k in chunks * 4..acc.len() {
        acc[k] = acc[k] * c1 + x[k] * c2;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2_f32(acc: &mut [f64], x: &[f32], c1: f64, c2: f64) {
    let vc1 = _mm256_set1_pd(c1);
    let vc2 = _mm256_set1_pd(c2);
    let chunks = acc.len() / 4;
    for i in 0..chunks {
        let pa = acc.as_mut_ptr().add(i * 4);
        let vx = load_f32x4_as_f64(x.as_ptr().add(i * 4));
        let r = _mm256_add_pd(
            _mm256_mul_pd(_mm256_loadu_pd(pa), vc1),
            _mm256_mul_pd(vx, vc2),
        );
        _mm256_storeu_pd(pa, r);
    }
    for k in chunks * 4..acc.len() {
        acc[k] = acc[k] * c1 + x[k] as f64 * c2;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2_bf16(acc: &mut [f64], x: &[BF16], c1: f64, c2: f64) {
    let vc1 = _mm256_set1_pd(c1);
    let vc2 = _mm256_set1_pd(c2);
    let chunks = acc.len() / 4;
    for i in 0..chunks {
        let pa = acc.as_mut_ptr().add(i * 4);
        let vx = load_bf16x4_as_f64(x.as_ptr().add(i * 4));
        let r = _mm256_add_pd(
            _mm256_mul_pd(_mm256_loadu_pd(pa), vc1),
            _mm256_mul_pd(vx, vc2),
        );
        _mm256_storeu_pd(pa, r);
    }
    for k in chunks * 4..acc.len() {
        acc[k] = acc[k] * c1 + x[k].to_f64() * c2;
    }
}

/// Tries the AVX2 BF16 kernel; `None` if the host lacks AVX2.
pub(crate) fn matmul_bf16(a: &Matrix<BF16>, b: &Matrix<BF16>) -> Option<Matrix<BF16>> {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return None;
    }
    // SAFETY: AVX2 presence checked above.
    Some(unsafe { matmul_bf16_avx2(a, b) })
}

/// Rounds each f32 lane to BF16 precision, returning the BF16 value
/// *widened back to f32* (upper 16 bits of the f32 pattern). Per lane this
/// is exactly `BF16::from_f32(x).to_f32()`: round-to-nearest-even via the
/// carry-propagating magic add, NaN lanes quietened with the scalar path's
/// `(bits >> 16) | 0x40` payload rule.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn round_bf16(x: __m256) -> __m256 {
    let bits = _mm256_castps_si256(x);
    let lsb = _mm256_and_si256(_mm256_srli_epi32::<16>(bits), _mm256_set1_epi32(1));
    let magic = _mm256_add_epi32(_mm256_set1_epi32(0x7FFF), lsb);
    let rounded = _mm256_add_epi32(bits, magic);
    let kept = _mm256_and_si256(rounded, _mm256_set1_epi32(-65536)); // 0xFFFF_0000
                                                                     // NaN lanes: keep the upper payload bits, force the quiet bit.
    let nan_bits = _mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi32(-65536)),
        _mm256_set1_epi32(0x0040_0000),
    );
    let nan_mask = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
    _mm256_blendv_ps(
        _mm256_castsi256_ps(kept),
        _mm256_castsi256_ps(nan_bits),
        nan_mask,
    )
}

/// One fused step of the per-lane accumulator chain:
/// `round(acc + round(a·b))` — the `mac_fast` sequence, vectorized.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mac_step(acc: __m256, va: __m256, vb: __m256) -> __m256 {
    round_bf16(_mm256_add_ps(acc, round_bf16(_mm256_mul_ps(va, vb))))
}

/// Narrows eight widened-BF16 f32 lanes back to their 16-bit patterns
/// (exact: the lanes hold values `round_bf16` already produced).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn store_tile(acc: __m256, dst: &mut [BF16]) {
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    for (d, l) in dst.iter_mut().zip(lanes) {
        *d = BF16::from_bits((l.to_bits() >> 16) as u16);
    }
}

/// Fills a block of consecutive output rows starting at `row0`.
#[target_feature(enable = "avx2")]
unsafe fn fill_rows_avx2(
    apack: &[f32],
    panels: &[f32],
    b: &Matrix<BF16>,
    kdim: usize,
    n: usize,
    row0: usize,
    block: &mut [BF16],
) {
    let n_tiles = n / 8;
    let tile_stride = kdim * 8;
    for (local, out_row) in block.chunks_mut(n).enumerate() {
        let a_row = &apack[(row0 + local) * kdim..(row0 + local + 1) * kdim];
        // Four tiles (32 columns) per sweep: four independent
        // round→add→round dependency chains in flight.
        let mut tile = 0;
        while tile + 4 <= n_tiles {
            let p0 = &panels[tile * tile_stride..(tile + 1) * tile_stride];
            let p1 = &panels[(tile + 1) * tile_stride..(tile + 2) * tile_stride];
            let p2 = &panels[(tile + 2) * tile_stride..(tile + 3) * tile_stride];
            let p3 = &panels[(tile + 3) * tile_stride..(tile + 4) * tile_stride];
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            for (k, &av) in a_row.iter().enumerate() {
                let va = _mm256_set1_ps(av);
                acc0 = mac_step(acc0, va, _mm256_loadu_ps(p0.as_ptr().add(k * 8)));
                acc1 = mac_step(acc1, va, _mm256_loadu_ps(p1.as_ptr().add(k * 8)));
                acc2 = mac_step(acc2, va, _mm256_loadu_ps(p2.as_ptr().add(k * 8)));
                acc3 = mac_step(acc3, va, _mm256_loadu_ps(p3.as_ptr().add(k * 8)));
            }
            for (i, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                store_tile(acc, &mut out_row[(tile + i) * 8..(tile + i) * 8 + 8]);
            }
            tile += 4;
        }
        while tile < n_tiles {
            let p0 = &panels[tile * tile_stride..(tile + 1) * tile_stride];
            let mut acc0 = _mm256_setzero_ps();
            for (k, &av) in a_row.iter().enumerate() {
                let va = _mm256_set1_ps(av);
                acc0 = mac_step(acc0, va, _mm256_loadu_ps(p0.as_ptr().add(k * 8)));
            }
            store_tile(acc0, &mut out_row[tile * 8..tile * 8 + 8]);
            tile += 1;
        }
        // Scalar tail for n % 8 columns, same mac_fast sequence.
        for j in n_tiles * 8..n {
            let mut acc = BF16::ZERO;
            for (k, &av) in a_row.iter().enumerate() {
                let prod = BF16::from_f32(av * b[(k, j)].to_f32());
                acc = BF16::from_f32(acc.to_f32() + prod.to_f32());
            }
            out_row[j] = acc;
        }
    }
}

#[target_feature(enable = "avx2")]
unsafe fn matmul_bf16_avx2(a: &Matrix<BF16>, b: &Matrix<BF16>) -> Matrix<BF16> {
    let (m, kdim, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 || kdim == 0 {
        return out;
    }

    // Widen A to f32 once (a plain bit shift per element).
    let apack: Vec<f32> = a.as_slice().iter().map(|x| x.to_f32()).collect();

    // Pack B into 8-column tiles, k-major inside each tile:
    // panel[tile][k*8 + t] = B[k][8*tile + t], widened to f32.
    let n_tiles = n / 8;
    let tile_stride = kdim * 8;
    let mut panels = vec![0.0f32; n_tiles * tile_stride];
    for (k, brow) in b.iter_rows().enumerate() {
        for t in 0..n_tiles {
            let dst = &mut panels[t * tile_stride + k * 8..t * tile_stride + k * 8 + 8];
            for (d, x) in dst.iter_mut().zip(&brow[t * 8..t * 8 + 8]) {
                *d = x.to_f32();
            }
        }
    }

    if crate::par::worth_parallelizing_matmul(m) {
        let apack = &apack;
        let panels = &panels;
        out.as_mut_slice()
            .par_chunks_mut(crate::par::MATMUL_ROW_BLOCK * n)
            .enumerate()
            .for_each(|(blk, block)| {
                // SAFETY: only reached after the AVX2 runtime check.
                unsafe {
                    fill_rows_avx2(
                        apack,
                        panels,
                        b,
                        kdim,
                        n,
                        blk * crate::par::MATMUL_ROW_BLOCK,
                        block,
                    )
                }
            });
    } else {
        fill_rows_avx2(&apack, &panels, b, kdim, n, 0, out.as_mut_slice());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{axpy_f64_portable, dot_f64_portable, matmul_reference};
    use crate::random::ElementDist;

    fn rand_vec(len: usize, seed: u64) -> Vec<f64> {
        Matrix::<f64>::random_seeded(1, len, ElementDist::default(), seed)
            .as_slice()
            .to_vec()
    }

    #[test]
    fn avx2_dot_bit_identical_to_portable_all_formats() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for len in [0, 1, 3, 15, 16, 17, 31, 64, 100, 1000] {
            let a = rand_vec(len, 40 + len as u64);
            let b = rand_vec(len, 90 + len as u64);
            let fast = dot_f64(&a, &b).expect("avx2 detected");
            assert_eq!(
                fast.to_bits(),
                dot_f64_portable(&a, &b).to_bits(),
                "f64 {len}"
            );

            let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
            let fast = dot_f64(&a32, &b32).expect("avx2 detected");
            assert_eq!(
                fast.to_bits(),
                dot_f64_portable(&a32, &b32).to_bits(),
                "f32 {len}"
            );

            let a16: Vec<BF16> = a.iter().map(|&x| BF16::from_f64(x)).collect();
            let b16: Vec<BF16> = b.iter().map(|&x| BF16::from_f64(x)).collect();
            let fast = dot_f64(&a16, &b16).expect("avx2 detected");
            assert_eq!(
                fast.to_bits(),
                dot_f64_portable(&a16, &b16).to_bits(),
                "bf16 {len}"
            );
        }
    }

    #[test]
    fn avx2_axpy_bit_identical_to_portable() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for len in [0, 1, 3, 4, 5, 64, 65, 127] {
            let x = rand_vec(len, 7 + len as u64);
            let acc0 = rand_vec(len, 77 + len as u64);
            for (c1, c2) in [(1.0, 0.5), (0.125, 1.0), (0.9817, 0.0213)] {
                let mut fast = acc0.clone();
                assert!(axpy_f64(&mut fast, &x, c1, c2), "avx2 detected");
                let mut slow = acc0.clone();
                axpy_f64_portable(&mut slow, &x, c1, c2);
                for (f, s) in fast.iter().zip(&slow) {
                    assert_eq!(f.to_bits(), s.to_bits(), "f64 len {len}");
                }

                let x16: Vec<BF16> = x.iter().map(|&v| BF16::from_f64(v)).collect();
                let mut fast = acc0.clone();
                assert!(axpy_f64(&mut fast, &x16, c1, c2));
                let mut slow = acc0.clone();
                axpy_f64_portable(&mut slow, &x16, c1, c2);
                for (f, s) in fast.iter().zip(&slow) {
                    assert_eq!(f.to_bits(), s.to_bits(), "bf16 len {len}");
                }
            }
        }
    }

    #[test]
    fn avx2_kernel_bit_identical_to_reference() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for (m, k, n) in [(1, 1, 1), (3, 7, 9), (17, 33, 40), (64, 31, 72), (5, 64, 8)] {
            let a = Matrix::<BF16>::random_seeded(m, k, ElementDist::default(), 7 + m as u64);
            let b = Matrix::<BF16>::random_seeded(k, n, ElementDist::default(), 8 + n as u64);
            let fast = matmul_bf16(&a, &b).expect("avx2 detected");
            let reference = matmul_reference(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn avx2_kernel_handles_nonfinite() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        // Saturating products overflow to infinity; rounding must carry
        // into the exponent exactly like the scalar path.
        let a = Matrix::<BF16>::from_fn(2, 16, |_, c| {
            if c % 2 == 0 {
                BF16::MAX
            } else {
                BF16::from_f32(2.0)
            }
        });
        let b = Matrix::<BF16>::from_fn(16, 16, |r, _| {
            if r % 3 == 0 {
                BF16::MAX
            } else {
                BF16::from_f32(-1.5)
            }
        });
        let fast = matmul_bf16(&a, &b).expect("avx2 detected");
        let reference = matmul_reference(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
