//! The sealed scalar trait.

use fa_numerics::BF16;

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for fa_numerics::BF16 {}
}

/// Element type of a [`Matrix`](crate::Matrix).
///
/// Sealed: implemented exactly for `f32`, `f64` and [`BF16`]. All
/// arithmetic is defined in terms of conversions through `f64` plus the
/// type's own rounding, which models a hardware datapath that widens
/// operands into its internal pipeline and rounds results back to the
/// storage format.
///
/// ```
/// use fa_tensor::Scalar;
/// assert_eq!(<f64 as Scalar>::from_f64(1.5).to_f64(), 1.5);
/// ```
pub trait Scalar:
    private::Sealed + Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static
{
    /// Human-readable name of the format ("f32", "f64", "bf16").
    const NAME: &'static str;
    /// Storage width in bits.
    const BIT_WIDTH: u32;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Converts from `f64`, rounding to this format.
    fn from_f64(value: f64) -> Self;
    /// Widens to `f64` exactly (all three formats embed in f64).
    fn to_f64(self) -> f64;

    /// `self + rhs` rounded to this format.
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::from_f64(self.to_f64() + rhs.to_f64())
    }
    /// `self - rhs` rounded to this format.
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::from_f64(self.to_f64() - rhs.to_f64())
    }
    /// `self * rhs` rounded to this format.
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::from_f64(self.to_f64() * rhs.to_f64())
    }
    /// `self / rhs` rounded to this format.
    #[inline]
    fn div(self, rhs: Self) -> Self {
        Self::from_f64(self.to_f64() / rhs.to_f64())
    }
    /// Fused multiply-accumulate in the format's own precision:
    /// `acc + a*b` with each step rounded (two roundings, as a
    /// non-fused hardware MAC performs).
    #[inline]
    fn mac(self, a: Self, b: Self) -> Self {
        self.add(a.mul(b))
    }

    /// [`mac`](Self::mac) with identical rounding semantics computed in
    /// the cheapest equivalent arithmetic for the format — the hot-path
    /// form the blocked matmul kernels call.
    ///
    /// Bit-identical to `mac` for every finite or infinite input: formats
    /// narrower than `binary32` round through `f32` instead of `f64`,
    /// which is exact for products (a 7+7-bit significand product fits 24
    /// bits) and safe for sums by the double-rounding theorem (`f64`'s 53
    /// significand bits ≥ 2·24+2, so `round32(round64(x)) = round32(x)`
    /// for sums of `f32`-representable operands). NaN *payload*
    /// propagation is implementation-defined in both paths.
    #[inline]
    fn mac_fast(self, a: Self, b: Self) -> Self {
        self.mac(a, b)
    }

    /// Whether the value is NaN.
    fn is_nan(self) -> bool;
    /// Whether the value is finite.
    fn is_finite(self) -> bool;
}

impl Scalar for f32 {
    const NAME: &'static str = "f32";
    const BIT_WIDTH: u32 = 32;

    // round32(round64(x)) = round32(x) for f32-operand sums/products
    // (53 ≥ 2·24+2), so native f32 arithmetic is bit-identical to the
    // default widening round-trip.
    #[inline]
    fn mac_fast(self, a: Self, b: Self) -> Self {
        self + a * b
    }

    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(value: f64) -> Self {
        value as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Scalar for f64 {
    const NAME: &'static str = "f64";
    const BIT_WIDTH: u32 = 64;

    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(value: f64) -> Self {
        value
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    // Native f64 arithmetic: the default widening round-trip is exact here
    // but the direct forms are clearer and faster.
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self / rhs
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl Scalar for BF16 {
    const NAME: &'static str = "bf16";
    const BIT_WIDTH: u32 = 16;

    // BF16 products are exact in f32 (7+7-bit significands) and BF16 sums
    // satisfy the double-rounding theorem through f32, so staying in f32
    // reproduces the default f64 round-trip bit for bit while skipping
    // four f32↔f64 conversions per MAC.
    #[inline]
    fn mac_fast(self, a: Self, b: Self) -> Self {
        let prod = BF16::from_f32(a.to_f32() * b.to_f32());
        BF16::from_f32(self.to_f32() + prod.to_f32())
    }

    #[inline]
    fn zero() -> Self {
        BF16::ZERO
    }
    #[inline]
    fn one() -> Self {
        BF16::ONE
    }
    #[inline]
    fn from_f64(value: f64) -> Self {
        BF16::from_f64(value)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        BF16::to_f64(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        BF16::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        BF16::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_bits() {
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f64::NAME, "f64");
        assert_eq!(BF16::NAME, "bf16");
        assert_eq!(<f32 as Scalar>::BIT_WIDTH, 32);
        assert_eq!(<f64 as Scalar>::BIT_WIDTH, 64);
        assert_eq!(<BF16 as Scalar>::BIT_WIDTH, 16);
    }

    #[test]
    fn identities() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f32 as Scalar>::one(), 1.0);
        assert_eq!(<BF16 as Scalar>::one(), BF16::ONE);
    }

    #[test]
    fn f64_arithmetic_is_native() {
        assert_eq!(Scalar::add(0.1f64, 0.2), 0.1 + 0.2);
        assert_eq!(Scalar::mul(3.0f64, 7.0), 21.0);
        assert_eq!(Scalar::div(1.0f64, 3.0), 1.0 / 3.0);
    }

    #[test]
    fn bf16_arithmetic_rounds() {
        let a = BF16::from_f32(1.0);
        let eps = BF16::from_f32(0.001);
        // 1.0 + 0.001 is below half an ULP of 1.0 in BF16: absorbed.
        assert_eq!(Scalar::add(a, eps), a);
    }

    #[test]
    fn mac_double_rounds() {
        // In BF16, mac(acc, a, b) = round(acc + round(a*b)).
        let acc = BF16::from_f32(100.0);
        let a = BF16::from_f32(1.02);
        let b = BF16::from_f32(1.02);
        let product = Scalar::mul(a, b);
        assert_eq!(Scalar::mac(acc, a, b), Scalar::add(acc, product));
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(<f64 as Scalar>::is_nan(f64::NAN));
        assert!(!<f64 as Scalar>::is_finite(f64::INFINITY));
        assert!(<BF16 as Scalar>::is_nan(BF16::NAN));
        assert!(<f32 as Scalar>::is_finite(1.0f32));
    }
}
