//! Reproducible random matrix generation.
//!
//! The paper drives its fault-injection campaigns with embeddings from real
//! LLM prompts. Our substitute (see DESIGN.md) generates Q/K/V matrices
//! from parameterized distributions chosen to cover the same value ranges;
//! campaigns sweep the distributions to demonstrate the checker is
//! insensitive to the exact inputs.

use crate::{Matrix, Scalar};
use rand::distributions::Distribution;
use rand::Rng;
use rand::SeedableRng;

/// Distribution of generated matrix elements.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ElementDist {
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Zero-mean Gaussian with the given standard deviation (Box–Muller).
    Gaussian {
        /// Standard deviation.
        std_dev: f64,
    },
    /// Student-t-like heavy tails: Gaussian divided by sqrt of a uniform,
    /// producing occasional large outliers like post-LayerNorm activations
    /// with attention sinks.
    HeavyTail {
        /// Scale of the central mass.
        scale: f64,
    },
}

impl Default for ElementDist {
    /// Embedding-like default: N(0, 1/√d) is applied by callers; the raw
    /// default is a unit Gaussian.
    fn default() -> Self {
        ElementDist::Gaussian { std_dev: 1.0 }
    }
}

impl ElementDist {
    /// Samples one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ElementDist::Uniform { lo, hi } => rng.gen_range(lo..hi),
            ElementDist::Gaussian { std_dev } => gaussian(rng) * std_dev,
            ElementDist::HeavyTail { scale } => {
                let g = gaussian(rng);
                let u: f64 = rng.gen_range(0.05f64..1.0);
                g * scale / u.sqrt()
            }
        }
    }
}

impl Distribution<f64> for ElementDist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        ElementDist::sample(self, rng)
    }
}

/// One standard Gaussian sample via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl<T: Scalar> Matrix<T> {
    /// Generates a matrix with elements drawn from `dist` using `rng`.
    pub fn random<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        dist: ElementDist,
        rng: &mut R,
    ) -> Self {
        Matrix::from_fn(rows, cols, |_, _| T::from_f64(dist.sample(rng)))
    }

    /// Generates a matrix from a fixed seed — the reproducibility entry
    /// point used by every experiment binary.
    ///
    /// ```
    /// use fa_tensor::{Matrix, random::ElementDist};
    /// let a = Matrix::<f64>::random_seeded(4, 4, ElementDist::default(), 42);
    /// let b = Matrix::<f64>::random_seeded(4, 4, ElementDist::default(), 42);
    /// assert_eq!(a, b);
    /// ```
    pub fn random_seeded(rows: usize, cols: usize, dist: ElementDist, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::random(rows, cols, dist, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = Matrix::<f64>::random_seeded(8, 8, ElementDist::default(), 7);
        let b = Matrix::<f64>::random_seeded(8, 8, ElementDist::default(), 7);
        assert_eq!(a, b);
        let c = Matrix::<f64>::random_seeded(8, 8, ElementDist::default(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m =
            Matrix::<f64>::random_seeded(16, 16, ElementDist::Uniform { lo: -2.0, hi: 3.0 }, 99);
        assert!(m.as_slice().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn gaussian_moments_roughly_correct() {
        let n = 40_000;
        let mut rng = StdRng::seed_from_u64(1234);
        let d = ElementDist::Gaussian { std_dev: 2.0 };
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn heavy_tail_has_outliers_but_finite() {
        let m = Matrix::<f64>::random_seeded(64, 64, ElementDist::HeavyTail { scale: 1.0 }, 5);
        assert!(m.all_finite());
        let max = m
            .as_slice()
            .iter()
            .cloned()
            .fold(0.0f64, |a, b| a.max(b.abs()));
        // sqrt(1/0.05) ≈ 4.5x inflation of tails: expect some |x| > 3.
        assert!(max > 3.0, "heavy tail should produce outliers, max={max}");
    }

    #[test]
    fn bf16_generation_rounds_to_format() {
        use fa_numerics::BF16;
        let m = Matrix::<BF16>::random_seeded(4, 4, ElementDist::default(), 3);
        for &x in m.as_slice() {
            // Round-tripping through BF16 must be the identity (already rounded).
            assert_eq!(BF16::from_f64(x.to_f64()).to_bits(), x.to_bits());
        }
    }
}
