//! Matrix products with selectable accumulator precision.
//!
//! The accelerator multiplies BF16 operands but the choice of *accumulator*
//! precision is a first-class design decision in the paper (datapath MACs
//! accumulate in the storage format; checksum accumulators are f64). Both
//! styles are provided:
//!
//! * [`Matrix::matmul`] — accumulate in the element format itself, rounding
//!   after every MAC (what a same-width hardware MAC array does);
//! * [`matmul_f64_acc`] — accumulate each dot product in `f64` and round
//!   once at the end (what a widening accumulator does).
//!
//! # Kernel structure
//!
//! Both products are cache-blocked: the right-hand matrix is packed
//! transposed (each B column becomes a contiguous panel row), turning every
//! output element into a dot product of two contiguous slices — no strided
//! `[(k, j)]` bounds-checked access on the hot path. The widening kernel
//! additionally packs both operands as `f64` once (so BF16→f64 conversion
//! happens K+K times per panel instead of per MAC) and register-tiles the
//! inner loop four outputs wide. Row blocks are distributed over the rayon
//! pool.
//!
//! Every output element still accumulates its `k` terms in ascending order
//! with the same per-step rounding as the reference triple loop
//! ([`matmul_reference`]), so blocked, parallel, and reference kernels are
//! **bit-identical** — the property tests pin this down.

use crate::par::{worth_parallelizing_matmul, MATMUL_ROW_BLOCK as ROW_BLOCK};
use crate::{Matrix, Scalar};
use rayon::prelude::*;

/// Converts between two types the caller has proven identical via
/// `TypeId` — the monomorphization-time downcast the BF16 SIMD dispatch
/// needs (the sealed [`Scalar`] trait keeps the set of candidates closed).
///
/// # Panics
///
/// Panics if the types differ.
#[cfg(target_arch = "x86_64")]
fn cast_identical<A: 'static, B: 'static>(x: A) -> B {
    assert_eq!(
        core::any::TypeId::of::<A>(),
        core::any::TypeId::of::<B>(),
        "cast_identical requires identical types"
    );
    let x = core::mem::ManuallyDrop::new(x);
    // SAFETY: A and B are the same type (checked above), so this is a
    // no-op move.
    unsafe { core::mem::transmute_copy::<core::mem::ManuallyDrop<A>, B>(&x) }
}

/// Register tile width of the widening microkernel (outputs per sweep).
const NR: usize = 8;

impl<T: Scalar> Matrix<T> {
    /// Matrix product `self · rhs` with accumulation in `T`.
    ///
    /// Every multiply and every add rounds to `T`, matching a hardware MAC
    /// array whose accumulator registers have the same width as the
    /// operands. Bit-identical to [`matmul_reference`] (ascending-`k`
    /// accumulation per output element) but cache-blocked over a packed
    /// transposed B panel and parallelized across row blocks.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    ///
    /// ```
    /// use fa_tensor::Matrix;
    /// let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0]]);
    /// let b = Matrix::<f64>::from_rows(&[&[3.0], &[4.0]]);
    /// assert_eq!(a.matmul(&b)[(0, 0)], 11.0);
    /// ```
    pub fn matmul(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "inner dimensions differ: {}×{} · {}×{}",
            self.rows(),
            self.cols(),
            rhs.rows(),
            rhs.cols()
        );
        // BF16's per-MAC rounding dominates this product; hand it to the
        // vectorized kernel when the host supports it (bit-identical — see
        // `simd`).
        #[cfg(target_arch = "x86_64")]
        if core::any::TypeId::of::<T>() == core::any::TypeId::of::<fa_numerics::BF16>() {
            // SAFETY: T and BF16 are the same type (TypeId equality above;
            // the sealed Scalar trait closes the candidate set), so these
            // reference casts are no-ops.
            let a16 = unsafe { &*(self as *const Matrix<T>).cast::<Matrix<fa_numerics::BF16>>() };
            let b16 = unsafe { &*(rhs as *const Matrix<T>).cast::<Matrix<fa_numerics::BF16>>() };
            if let Some(fast) = crate::simd::matmul_bf16(a16, b16) {
                return cast_identical::<Matrix<fa_numerics::BF16>, Matrix<T>>(fast);
            }
        }

        let (m, kdim, n) = (self.rows(), self.cols(), rhs.cols());
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 || kdim == 0 {
            // Empty inner dimension: every dot product is the empty sum.
            return out;
        }
        // Pack Bᵀ once: column j of B becomes contiguous panel row j.
        let bt = rhs.transpose();
        let btp = bt.as_slice();

        let fill_block = |row0: usize, block: &mut [T]| {
            for (local, out_row) in block.chunks_mut(n).enumerate() {
                let a_row = self.row(row0 + local);
                // Register-tile MR output columns per k-sweep. Each output
                // keeps its own accumulator with the reference ascending-k
                // MAC order (bit-identical results); interleaving MR
                // independent rounding chains hides the per-MAC rounding
                // latency that a single chain serializes on.
                const MR: usize = 8;
                let mut j = 0;
                while j + MR <= n {
                    let p = &btp[j * kdim..(j + MR) * kdim];
                    let (r0, rest) = p.split_at(kdim);
                    let (r1, rest) = rest.split_at(kdim);
                    let (r2, rest) = rest.split_at(kdim);
                    let (r3, rest) = rest.split_at(kdim);
                    let (r4, rest) = rest.split_at(kdim);
                    let (r5, rest) = rest.split_at(kdim);
                    let (r6, r7) = rest.split_at(kdim);
                    let mut acc = [T::zero(); MR];
                    for (k, &a) in a_row.iter().enumerate() {
                        acc[0] = acc[0].mac_fast(a, r0[k]);
                        acc[1] = acc[1].mac_fast(a, r1[k]);
                        acc[2] = acc[2].mac_fast(a, r2[k]);
                        acc[3] = acc[3].mac_fast(a, r3[k]);
                        acc[4] = acc[4].mac_fast(a, r4[k]);
                        acc[5] = acc[5].mac_fast(a, r5[k]);
                        acc[6] = acc[6].mac_fast(a, r6[k]);
                        acc[7] = acc[7].mac_fast(a, r7[k]);
                    }
                    out_row[j..j + MR].copy_from_slice(&acc);
                    j += MR;
                }
                for (o, bt_row) in out_row[j..].iter_mut().zip(btp[j * kdim..].chunks(kdim)) {
                    let mut acc = T::zero();
                    for (&a, &b) in a_row.iter().zip(bt_row) {
                        acc = acc.mac_fast(a, b);
                    }
                    *o = acc;
                }
            }
        };

        if worth_parallelizing_matmul(m) {
            out.as_mut_slice()
                .par_chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(|(blk, block)| fill_block(blk * ROW_BLOCK, block));
        } else {
            fill_block(0, out.as_mut_slice());
        }
        out
    }

    /// Dot product of row `r` with a vector, accumulated in `T`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()` or `r` is out of bounds.
    pub fn row_dot(&self, r: usize, v: &[T]) -> T {
        assert_eq!(v.len(), self.cols(), "vector length mismatch in row_dot");
        let mut acc = T::zero();
        for (&a, &b) in self.row(r).iter().zip(v) {
            acc = acc.mac(a, b);
        }
        acc
    }

    /// Scales every element by `factor` (rounded to `T`).
    pub fn scale(&self, factor: f64) -> Matrix<T> {
        self.map(|x| T::from_f64(x.to_f64() * factor))
    }
}

/// The seed's reference triple loop (accumulation in `T`, strided access):
/// the golden model the blocked kernel is validated against, and the
/// baseline the kernel benchmarks measure speedups from.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_reference<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimensions differ: {}×{} · {}×{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        for j in 0..b.cols() {
            let mut acc = T::zero();
            for (k, &x) in a_row.iter().enumerate() {
                acc = acc.mac(x, b[(k, j)]);
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// The seed's reference widening loop (`f64` accumulation, strided access):
/// golden model and benchmark baseline for [`matmul_f64_acc`].
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_f64_acc_reference<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimensions differ: {}×{} · {}×{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f64;
            for k in 0..a.cols() {
                acc += a[(i, k)].to_f64() * b[(k, j)].to_f64();
            }
            out[(i, j)] = T::from_f64(acc);
        }
    }
    out
}

/// Matrix product with widening `f64` accumulation: each output element is
/// the dot product of `T`-valued operands carried in `f64`, rounded to `T`
/// once.
///
/// Cache-blocked and register-tiled: both operands are packed to `f64`
/// panels (one conversion per element per panel use, not per MAC), B is
/// packed transposed, and the microkernel walks `k` once while feeding
/// [`NR`] independent accumulators. Each accumulator sums its `k` terms in
/// ascending order, so the result is bit-identical to
/// [`matmul_f64_acc_reference`].
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_f64_acc<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimensions differ: {}×{} · {}×{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, kdim, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 || kdim == 0 {
        // Empty inner dimension: every dot product is the empty sum.
        return out;
    }

    // Pack Bᵀ as f64 once: panel row j holds column j of B, contiguous.
    let mut bt = vec![0.0f64; n * kdim];
    for (k, row) in b.iter_rows().enumerate() {
        for (j, &x) in row.iter().enumerate() {
            bt[j * kdim + k] = x.to_f64();
        }
    }

    let fill_block = |row0: usize, block: &mut [T]| {
        let rows_here = block.len() / n;
        // Pack this A row block as f64.
        let mut ap = vec![0.0f64; rows_here * kdim];
        for (local, dst) in ap.chunks_mut(kdim).enumerate() {
            for (d, &x) in dst.iter_mut().zip(a.row(row0 + local)) {
                *d = x.to_f64();
            }
        }
        for (local, out_row) in block.chunks_mut(n).enumerate() {
            let a_row = &ap[local * kdim..(local + 1) * kdim];
            // Register-tiled microkernel: NR outputs per sweep of k, each
            // with its own ascending-k accumulator (bit-identical to the
            // reference loop), interleaved to hide the f64 add latency.
            let mut j = 0;
            while j + NR <= n {
                let p = &bt[j * kdim..(j + NR) * kdim];
                let (b0, rest) = p.split_at(kdim);
                let (b1, rest) = rest.split_at(kdim);
                let (b2, rest) = rest.split_at(kdim);
                let (b3, rest) = rest.split_at(kdim);
                let (b4, rest) = rest.split_at(kdim);
                let (b5, rest) = rest.split_at(kdim);
                let (b6, b7) = rest.split_at(kdim);
                let mut c = [0.0f64; NR];
                for (k, &av) in a_row.iter().enumerate() {
                    c[0] += av * b0[k];
                    c[1] += av * b1[k];
                    c[2] += av * b2[k];
                    c[3] += av * b3[k];
                    c[4] += av * b4[k];
                    c[5] += av * b5[k];
                    c[6] += av * b6[k];
                    c[7] += av * b7[k];
                }
                for (o, &acc) in out_row[j..j + NR].iter_mut().zip(&c) {
                    *o = T::from_f64(acc);
                }
                j += NR;
            }
            while j < n {
                let bj = &bt[j * kdim..(j + 1) * kdim];
                let mut acc = 0.0f64;
                for (k, &av) in a_row.iter().enumerate() {
                    acc += av * bj[k];
                }
                out_row[j] = T::from_f64(acc);
                j += 1;
            }
        }
    };

    if worth_parallelizing_matmul(m) {
        out.as_mut_slice()
            .par_chunks_mut(ROW_BLOCK * n)
            .enumerate()
            .for_each(|(blk, block)| fill_block(blk * ROW_BLOCK, block));
    } else {
        fill_block(0, out.as_mut_slice());
    }
    out
}

/// Accumulator lanes of the blocked dot product: 4 AVX2 `f64x4` vectors.
/// Part of the *defining* summation order of [`dot_f64`] — changing it
/// changes results at the last-ulp level.
pub const DOT_LANES: usize = 16;

/// Dot product of two equal-length slices, accumulated in `f64` with the
/// workspace's blocked summation order.
///
/// The seed's sequential sum ([`dot_f64_reference`]) is one add-latency
/// chain — the flash2 score-loop bottleneck PR 1 left in place. This
/// kernel instead carries [`DOT_LANES`] independent partial sums (lane
/// `l` accumulates elements `DOT_LANES·i + l`), combines them in a fixed
/// tree, then adds the tail elements in ascending order. That order is
/// *defined* by [`dot_f64_portable`]; the AVX2 path is bit-identical to
/// it (property-tested), so results never depend on the host. Slices
/// shorter than [`DOT_LANES`] reduce to the sequential order exactly, so
/// small-`d` callers see the seed's bit patterns unchanged.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot_f64<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    #[cfg(target_arch = "x86_64")]
    if let Some(s) = crate::simd::dot_f64(a, b) {
        return s;
    }
    dot_f64_portable(a, b)
}

/// Fused score kernel: `dot_f64(a, b) * scale` in one call — the form
/// every attention score loop uses (`q·k` then the 1/√d scaling). One
/// rounding for the scale multiply, exactly like the unfused sequence.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot_then_scale<T: Scalar>(a: &[T], b: &[T], scale: f64) -> f64 {
    dot_f64(a, b) * scale
}

/// Scores a block of key rows against one query: `out[i] =
/// dot_then_scale(q, row_i, scale)` for `n_rows` rows laid out at a fixed
/// `row_stride` starting at `rows[0]`. Each row goes through the same
/// [`dot_f64`] kernel as the unfused call, so every score is bit-identical
/// to calling [`dot_then_scale`] row by row.
///
/// This entry point exists for the decode/attention hot loops: scoring a
/// whole cache block first means the kernel streams the K block once and
/// then streams the V block once (in the accumulate loop), instead of
/// alternating K-row and V-row reads — and with the head-major KV layout
/// (`row_stride == q.len()`) the K block is one pure contiguous span, the
/// shape hardware prefetchers and DRAM bursts want. `out` is cleared and
/// refilled.
///
/// # Panics
///
/// Panics if `row_stride < q.len()` (rows would overlap) or `rows` is too
/// short for the requested view.
#[inline]
pub fn dot_then_scale_rows<T: Scalar>(
    q: &[T],
    rows: &[T],
    row_stride: usize,
    n_rows: usize,
    scale: f64,
    out: &mut Vec<f64>,
) {
    out.clear();
    if n_rows == 0 {
        return;
    }
    assert!(
        row_stride >= q.len(),
        "row stride {row_stride} shorter than query length {}",
        q.len()
    );
    let needed = (n_rows - 1) * row_stride + q.len();
    assert!(
        rows.len() >= needed,
        "row block too short: {} < {needed}",
        rows.len()
    );
    out.reserve(n_rows);
    for r in 0..n_rows {
        let row = &rows[r * row_stride..r * row_stride + q.len()];
        out.push(dot_f64(q, row) * scale);
    }
}

/// The portable scalar form of [`dot_f64`] and the *definition* of its
/// summation order: [`DOT_LANES`] strided partial sums, a fixed combine
/// tree mirroring the AVX2 register layout (lane vectors `v0..v3`,
/// combined `(v0+v2) + (v1+v3)`, then horizontally `(u0+u1) + (u2+u3)`),
/// then the ascending-order tail. The SIMD kernels must match this bit
/// for bit.
pub fn dot_f64_portable<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let chunks = a.len() / DOT_LANES;
    // −0.0 is `Iterator::sum`'s fold identity: seeding the lanes with it
    // makes sub-lane (and empty) slices reproduce the seed's sequential
    // sum bit for bit, signed zeros included.
    let mut acc = [-0.0f64; DOT_LANES];
    for c in 0..chunks {
        let base = c * DOT_LANES;
        for (l, slot) in acc.iter_mut().enumerate() {
            *slot += a[base + l].to_f64() * b[base + l].to_f64();
        }
    }
    // Combine tree: vector adds (v0+v2), (v1+v3), their sum, then the
    // horizontal reduction of the final 4-lane vector.
    let mut u = [0.0f64; 4];
    for (j, slot) in u.iter_mut().enumerate() {
        *slot = (acc[j] + acc[j + 8]) + (acc[j + 4] + acc[j + 12]);
    }
    let mut s = (u[0] + u[1]) + (u[2] + u[3]);
    for k in chunks * DOT_LANES..a.len() {
        s += a[k].to_f64() * b[k].to_f64();
    }
    s
}

/// Native BF16 dot product: bit-identical to [`dot_f64`] on the same
/// BF16 slices (same lane assignment, same combine tree) while skipping
/// the per-element f64 widening that made BF16 scoring compute-bound
/// (the PR-3 "bf16 admission" caveat). The AVX2 path converts eight BF16
/// lanes per instruction and multiplies them 8-wide in `f32` — exact
/// while the product stays in f32's **normal** range (8+8-bit
/// significands fit 24 bits, but the exponent can still overflow to
/// ±inf or underflow past 2⁻¹²⁶), so the kernel carries a running
/// |product| min/max guard and reruns any slice with an
/// out-of-normal-range, zero, or non-finite product through the
/// per-element widening kernel. Results are therefore pinned to
/// [`dot_f64_portable`]'s order at **every** magnitude
/// (property-tested, extreme values included); only NaN *payload* bits
/// are implementation-defined, as everywhere else in this workspace.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot_bf16_native(a: &[fa_numerics::BF16], b: &[fa_numerics::BF16]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    #[cfg(target_arch = "x86_64")]
    if let Some(s) = crate::simd::dot_bf16_native(a, b) {
        return s;
    }
    dot_bf16_native_portable(a, b)
}

/// The portable form of [`dot_bf16_native`] and the definition of its
/// semantics: exactly [`dot_f64_portable`] over the widened operands.
/// (Portable hosts have no 8-wide f32 multiplier to win with, so there
/// is nothing to trade against exactness here.)
pub fn dot_bf16_native_portable(a: &[fa_numerics::BF16], b: &[fa_numerics::BF16]) -> f64 {
    dot_f64_portable(a, b)
}

/// Mixed-format dot product: an `f64` query against a BF16 key row, in
/// [`dot_f64`]'s blocked summation order. BF16→f64 widening is exact, so
/// the result is bit-identical to `dot_f64(q, widen(k))` — which is how
/// the mixed-format KV cache stays pinned to the f64 golden decode model
/// after demoting blocks: the golden session stores the demoted values
/// widened back to f64 and scores them through [`dot_f64`].
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot_f64_bf16(q: &[f64], k: &[fa_numerics::BF16]) -> f64 {
    assert_eq!(q.len(), k.len(), "dot product length mismatch");
    #[cfg(target_arch = "x86_64")]
    if let Some(s) = crate::simd::dot_f64_bf16(q, k) {
        return s;
    }
    dot_f64_bf16_portable(q, k)
}

/// Portable scalar form of [`dot_f64_bf16`] (defines its order; same lane
/// structure as [`dot_f64_portable`]).
pub fn dot_f64_bf16_portable(q: &[f64], k: &[fa_numerics::BF16]) -> f64 {
    assert_eq!(q.len(), k.len(), "dot product length mismatch");
    let chunks = q.len() / DOT_LANES;
    let mut acc = [-0.0f64; DOT_LANES];
    for c in 0..chunks {
        let base = c * DOT_LANES;
        for (l, slot) in acc.iter_mut().enumerate() {
            *slot += q[base + l] * k[base + l].to_f64();
        }
    }
    let mut u = [0.0f64; 4];
    for (j, slot) in u.iter_mut().enumerate() {
        *slot = (acc[j] + acc[j + 8]) + (acc[j + 4] + acc[j + 12]);
    }
    let mut s = (u[0] + u[1]) + (u[2] + u[3]);
    for k_i in chunks * DOT_LANES..q.len() {
        s += q[k_i] * k[k_i].to_f64();
    }
    s
}

/// [`dot_then_scale_rows`] for demoted (BF16-stored) cache blocks scored
/// against an `f64` query: `out[i] = dot_f64_bf16(q, row_i) · scale`.
/// Every score is bit-identical to widening the BF16 row to f64 and
/// calling [`dot_then_scale`] — the block-demotion equivalence the
/// mixed-format decode proptests pin.
///
/// # Panics
///
/// Panics if `row_stride < q.len()` or `rows` is too short.
#[inline]
pub fn dot_then_scale_rows_bf16(
    q: &[f64],
    rows: &[fa_numerics::BF16],
    row_stride: usize,
    n_rows: usize,
    scale: f64,
    out: &mut Vec<f64>,
) {
    out.clear();
    if n_rows == 0 {
        return;
    }
    assert!(
        row_stride >= q.len(),
        "row stride {row_stride} shorter than query length {}",
        q.len()
    );
    let needed = (n_rows - 1) * row_stride + q.len();
    assert!(
        rows.len() >= needed,
        "row block too short: {} < {needed}",
        rows.len()
    );
    out.reserve(n_rows);
    for r in 0..n_rows {
        let row = &rows[r * row_stride..r * row_stride + q.len()];
        out.push(dot_f64_bf16(q, row) * scale);
    }
}

/// Scores a block of key rows against **many** queries at once:
/// `out[qi·n_rows + r] = dot_then_scale(q_qi, row_r, scale)` for `nq =
/// qs.len()/d` queries packed row-major in `qs`. Every (query, row)
/// score goes through the same [`dot_f64`] kernel as
/// [`dot_then_scale_rows`], so the output is bit-identical to calling
/// that kernel once per query — this entry point exists purely for
/// memory locality: the row loop is **outer** and the query loop inner,
/// so each K row is streamed from DRAM once and stays register/L1-hot
/// while all `nq` queries score it. That turns `k` sequences reading one
/// shared cache block from `k` separate K-panel sweeps (bandwidth-bound)
/// into one sweep feeding a `(nq × d)·(dᵀ × n_rows)` matmul's worth of
/// dots (compute-dense — the shared-prefix decode win).
///
/// The tiled [`matmul_f64_acc`] is *not* usable here: its ascending-`k`
/// accumulation differs from [`dot_f64`]'s lane-blocked order for
/// `d ≥ DOT_LANES`, and shared-block scores must stay bit-identical to
/// the unshared GEMV path. `out` is cleared and refilled (query-major).
///
/// # Panics
///
/// Panics if `qs.len()` is not a multiple of `d`, `row_stride < d`, or
/// `rows` is too short for the requested view.
#[inline]
pub fn dot_then_scale_rows_multi<T: Scalar>(
    qs: &[T],
    d: usize,
    rows: &[T],
    row_stride: usize,
    n_rows: usize,
    scale: f64,
    out: &mut Vec<f64>,
) {
    assert_eq!(qs.len() % d, 0, "packed queries not a multiple of d");
    let nq = qs.len() / d;
    out.clear();
    out.resize(nq * n_rows, 0.0);
    dot_then_scale_rows_multi_into(qs, d, rows, row_stride, n_rows, scale, out);
}

/// [`dot_then_scale_rows_multi`] writing into a pre-sized slice instead
/// of a `Vec` — the caller owns placement, so a batch of tiles can land
/// directly in one score arena with no per-tile scratch copy. `out`
/// must hold exactly `nq · n_rows` entries (query-major on return).
///
/// # Panics
///
/// Panics if `qs.len()` is not a multiple of `d`, `out.len()` is not
/// `nq · n_rows`, `row_stride < d`, or `rows` is too short.
#[inline]
pub fn dot_then_scale_rows_multi_into<T: Scalar>(
    qs: &[T],
    d: usize,
    rows: &[T],
    row_stride: usize,
    n_rows: usize,
    scale: f64,
    out: &mut [f64],
) {
    assert_eq!(qs.len() % d, 0, "packed queries not a multiple of d");
    let nq = qs.len() / d;
    assert_eq!(out.len(), nq * n_rows, "output tile size mismatch");
    if n_rows == 0 || nq == 0 {
        return;
    }
    assert!(
        row_stride >= d,
        "row stride {row_stride} shorter than query length {d}"
    );
    let needed = (n_rows - 1) * row_stride + d;
    assert!(
        rows.len() >= needed,
        "row block too short: {} < {needed}",
        rows.len()
    );
    for r in 0..n_rows {
        let row = &rows[r * row_stride..r * row_stride + d];
        for qi in 0..nq {
            out[qi * n_rows + r] = dot_f64(&qs[qi * d..(qi + 1) * d], row) * scale;
        }
    }
}

/// [`dot_then_scale_rows_multi`] for demoted (BF16-stored) blocks scored
/// against packed `f64` queries: each (query, row) score is
/// [`dot_f64_bf16`], bit-identical to [`dot_then_scale_rows_bf16`] once
/// per query.
///
/// # Panics
///
/// Panics if `qs.len()` is not a multiple of `d`, `row_stride < d`, or
/// `rows` is too short.
#[inline]
pub fn dot_then_scale_rows_multi_bf16(
    qs: &[f64],
    d: usize,
    rows: &[fa_numerics::BF16],
    row_stride: usize,
    n_rows: usize,
    scale: f64,
    out: &mut Vec<f64>,
) {
    assert_eq!(qs.len() % d, 0, "packed queries not a multiple of d");
    let nq = qs.len() / d;
    out.clear();
    out.resize(nq * n_rows, 0.0);
    dot_then_scale_rows_multi_bf16_into(qs, d, rows, row_stride, n_rows, scale, out);
}

/// [`dot_then_scale_rows_multi_bf16`] writing into a pre-sized slice —
/// the BF16 twin of [`dot_then_scale_rows_multi_into`], same placement
/// contract.
///
/// # Panics
///
/// Panics if `qs.len()` is not a multiple of `d`, `out.len()` is not
/// `nq · n_rows`, `row_stride < d`, or `rows` is too short.
#[inline]
pub fn dot_then_scale_rows_multi_bf16_into(
    qs: &[f64],
    d: usize,
    rows: &[fa_numerics::BF16],
    row_stride: usize,
    n_rows: usize,
    scale: f64,
    out: &mut [f64],
) {
    assert_eq!(qs.len() % d, 0, "packed queries not a multiple of d");
    let nq = qs.len() / d;
    assert_eq!(out.len(), nq * n_rows, "output tile size mismatch");
    if n_rows == 0 || nq == 0 {
        return;
    }
    assert!(
        row_stride >= d,
        "row stride {row_stride} shorter than query length {d}"
    );
    let needed = (n_rows - 1) * row_stride + d;
    assert!(
        rows.len() >= needed,
        "row block too short: {} < {needed}",
        rows.len()
    );
    for r in 0..n_rows {
        let row = &rows[r * row_stride..r * row_stride + d];
        for qi in 0..nq {
            out[qi * n_rows + r] = dot_f64_bf16(&qs[qi * d..(qi + 1) * d], row) * scale;
        }
    }
}

/// The seed's sequential dot product (one ascending add chain): the
/// accuracy golden model and the baseline the `dot_simd` benchmark
/// measures speedups from.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot_f64_reference<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x.to_f64() * y.to_f64())
        .sum()
}

/// The online-softmax accumulate step, vectorized:
/// `acc[i] ← acc[i]·scale_acc + x[i]·weight_x` for every lane.
///
/// This is the generalized axpy every attention accumulator loop
/// performs (Alg. 2 line 6 / Alg. 3 line 7): rescale the running state by
/// `e^{m_{i−1}−m_i}` and add the incoming value row weighted by
/// `e^{s_i−m_i}`. Purely element-wise — two roundings per lane (product,
/// then sum), no cross-lane reassociation — so the SIMD path is
/// bit-identical to this loop by IEEE semantics alone (and the property
/// tests pin it anyway).
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn axpy_f64<T: Scalar>(acc: &mut [f64], x: &[T], scale_acc: f64, weight_x: f64) {
    assert_eq!(acc.len(), x.len(), "axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::simd::axpy_f64(acc, x, scale_acc, weight_x) {
        return;
    }
    axpy_f64_portable(acc, x, scale_acc, weight_x);
}

/// Portable scalar form of [`axpy_f64`] (also its reference semantics).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy_f64_portable<T: Scalar>(acc: &mut [f64], x: &[T], scale_acc: f64, weight_x: f64) {
    assert_eq!(acc.len(), x.len(), "axpy length mismatch");
    for (a, &v) in acc.iter_mut().zip(x) {
        *a = *a * scale_acc + v.to_f64() * weight_x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_numerics::BF16;

    #[test]
    fn matmul_small_known_answer() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::<f64>::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::<f64>::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(4).matmul(&a), a);
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Matrix::<f64>::zeros(2, 5);
        let b = Matrix::<f64>::zeros(5, 3);
        let c = a.matmul(&b);
        assert_eq!((c.rows(), c.cols()), (2, 3));
    }

    #[test]
    fn empty_inner_dimension_gives_zero_matrix() {
        // k = 0: every dot product is the empty sum, like the reference
        // loops produce.
        let a = Matrix::<f64>::zeros(2, 0);
        let b = Matrix::<f64>::zeros(0, 3);
        let c = a.matmul(&b);
        assert_eq!((c.rows(), c.cols()), (2, 3));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(matmul_f64_acc(&a, &b), c);
        assert_eq!(matmul_reference(&a, &b), c);
        assert_eq!(matmul_f64_acc_reference(&a, &b), c);

        let ab = Matrix::<BF16>::zeros(4, 0);
        let bb = Matrix::<BF16>::zeros(0, 9);
        assert_eq!(ab.matmul(&bb), Matrix::<BF16>::zeros(4, 9));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn f64_acc_at_least_as_accurate_in_bf16() {
        // With BF16 elements, per-MAC rounding loses more than one final
        // rounding. Construct a case where small terms are absorbed.
        let n = 64;
        let a = Matrix::<BF16>::from_fn(1, n, |_, _| BF16::from_f32(0.01));
        let b = Matrix::<BF16>::from_fn(n, 1, |_, _| BF16::from_f32(1.0));
        let narrow = a.matmul(&b)[(0, 0)].to_f64();
        let wide = matmul_f64_acc(&a, &b)[(0, 0)].to_f64();
        let exact_sum = BF16::from_f32(0.01).to_f64() * n as f64;
        assert!((wide - exact_sum).abs() <= (narrow - exact_sum).abs());
    }

    #[test]
    fn row_dot_matches_matmul_column() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let v = [7.0, 8.0, 9.0];
        assert_eq!(a.row_dot(0, &v), 50.0);
        assert_eq!(a.row_dot(1, &v), 122.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn row_dot_length_mismatch_panics() {
        let a = Matrix::<f64>::zeros(1, 3);
        let _ = a.row_dot(0, &[1.0, 2.0]);
    }

    #[test]
    fn dot_f64_and_scale() {
        assert_eq!(dot_f64(&[1.0f64, 2.0], &[3.0, 4.0]), 11.0);
        let m = Matrix::<f64>::from_rows(&[&[2.0, 4.0]]);
        assert_eq!(m.scale(0.5).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn short_dot_matches_sequential_reference_bitwise() {
        // Below DOT_LANES the blocked kernel degenerates to the seed's
        // ascending chain, so small-d attention shapes are unchanged.
        for len in 0..DOT_LANES {
            let a: Vec<f64> = (0..len).map(|i| 0.37 * i as f64 - 1.1).collect();
            let b: Vec<f64> = (0..len).map(|i| -0.21 * i as f64 + 0.4).collect();
            assert_eq!(
                dot_f64(&a, &b).to_bits(),
                dot_f64_reference(&a, &b).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn blocked_dot_close_to_sequential_reference() {
        // Reassociation moves the result by at most a few ulps on
        // well-conditioned data.
        let n = 4096;
        let a: Vec<f64> = (0..n)
            .map(|i| ((i * 37 + 11) % 97) as f64 / 97.0 - 0.5)
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 53 + 29) % 89) as f64 / 89.0 - 0.5)
            .collect();
        let blocked = dot_f64(&a, &b);
        let seq = dot_f64_reference(&a, &b);
        assert!((blocked - seq).abs() < 1e-10, "{blocked} vs {seq}");
        assert_eq!(
            dot_f64_portable(&a, &b).to_bits(),
            dot_f64(&a, &b).to_bits(),
            "dispatch must agree with the defining portable order"
        );
    }

    #[test]
    fn dot_then_scale_is_dot_times_scale() {
        let a: Vec<f64> = (0..70).map(|i| i as f64 * 0.01).collect();
        let b: Vec<f64> = (0..70).map(|i| 1.0 - i as f64 * 0.02).collect();
        assert_eq!(
            dot_then_scale(&a, &b, 0.125).to_bits(),
            (dot_f64(&a, &b) * 0.125).to_bits()
        );
    }

    #[test]
    fn dot_rows_bit_identical_to_per_row_calls() {
        // Contiguous (stride == len) and strided (token-major) views both
        // reproduce the unfused per-row scores bit for bit.
        let d = 24;
        let q: Vec<f64> = (0..d).map(|i| (i as f64 * 0.71).sin()).collect();
        for stride in [d, d + 3, 2 * d] {
            let n_rows = 5;
            let block: Vec<f64> = (0..(n_rows - 1) * stride + d)
                .map(|i| (i as f64 * 0.37).cos())
                .collect();
            let mut out = Vec::new();
            dot_then_scale_rows(&q, &block, stride, n_rows, 0.125, &mut out);
            assert_eq!(out.len(), n_rows);
            for (r, &s) in out.iter().enumerate() {
                let row = &block[r * stride..r * stride + d];
                assert_eq!(s.to_bits(), dot_then_scale(&q, row, 0.125).to_bits());
            }
        }
        let mut out = vec![1.0; 4];
        dot_then_scale_rows(&q, &[] as &[f64], d, 0, 1.0, &mut out);
        assert!(out.is_empty(), "zero rows clears the buffer");
    }

    #[test]
    #[should_panic(expected = "row block too short")]
    fn dot_rows_short_block_panics() {
        let mut out = Vec::new();
        dot_then_scale_rows(&[1.0f64, 2.0], &[1.0f64, 2.0, 3.0], 2, 2, 1.0, &mut out);
    }

    #[test]
    fn bf16_native_dot_bit_identical_to_widening_dot() {
        // The native kernel's f32 products are exact, so it must equal
        // dot_f64 (and the portable order definition) bit for bit at
        // every length — chunks, tails, sub-lane slices, empty.
        for len in [0usize, 1, 7, 16, 17, 31, 48, 129] {
            let a: Vec<BF16> = (0..len)
                .map(|i| BF16::from_f64((i as f64 * 0.73).sin()))
                .collect();
            let b: Vec<BF16> = (0..len)
                .map(|i| BF16::from_f64((i as f64 * 0.41).cos() - 0.3))
                .collect();
            let native = dot_bf16_native(&a, &b);
            assert_eq!(
                native.to_bits(),
                dot_f64(&a, &b).to_bits(),
                "native vs widening, len {len}"
            );
            assert_eq!(
                native.to_bits(),
                dot_bf16_native_portable(&a, &b).to_bits(),
                "dispatch vs portable order, len {len}"
            );
        }
    }

    #[test]
    fn bf16_native_dot_range_guard_catches_extremes() {
        // f32 products of these operands overflow to inf / underflow to
        // zero; the range guard must route the slice through the
        // widening path so the result still equals dot_f64 bit for bit.
        let cases: &[f64] = &[
            2e19,    // product 4e38 > f32::MAX
            1e-30,   // product 1e-60, far below f32's subnormals
            3.3e38,  // near BF16::MAX: squares overflow violently
            1e-38,   // near f32 MIN_POSITIVE: squares underflow
            -2.5e25, // sign + overflow
            0.0,     // exact zero products trip the guard conservatively
        ];
        for &base in cases {
            // A full chunk of extreme values plus ordinary ones, so the
            // guard has to catch a bad product inside the SIMD loop.
            let mut vals = [base; DOT_LANES + 3];
            for (i, v) in vals.iter_mut().enumerate().skip(4) {
                if i % 3 == 0 {
                    *v = 0.5 + i as f64 * 0.01;
                }
            }
            let a: Vec<BF16> = vals.iter().map(|&v| BF16::from_f64(v)).collect();
            let b: Vec<BF16> = vals.iter().map(|&v| BF16::from_f64(v * 0.7)).collect();
            assert_eq!(
                dot_bf16_native(&a, &b).to_bits(),
                dot_bf16_native_portable(&a, &b).to_bits(),
                "base {base}"
            );
            assert_eq!(
                dot_bf16_native(&a, &b).to_bits(),
                dot_f64(&a, &b).to_bits(),
                "base {base}"
            );
        }
        // Infinite operands: any inf×nonzero product is ±inf and trips
        // the guard; the widening path then reproduces the f64 result.
        let mut vals = vec![BF16::from_f64(1.0); DOT_LANES];
        vals[3] = BF16::INFINITY;
        let plain: Vec<BF16> = (0..DOT_LANES)
            .map(|i| BF16::from_f64(1.0 + i as f64))
            .collect();
        assert_eq!(
            dot_bf16_native(&vals, &plain).to_bits(),
            dot_f64_portable(&vals, &plain).to_bits(),
        );
    }

    #[test]
    fn mixed_dot_equals_widened_f64_dot() {
        for len in [0usize, 3, 16, 40, 100] {
            let q: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin()).collect();
            let k16: Vec<BF16> = (0..len)
                .map(|i| BF16::from_f64((i as f64 * 0.59).cos()))
                .collect();
            let k_wide: Vec<f64> = k16.iter().map(|x| x.to_f64()).collect();
            let mixed = dot_f64_bf16(&q, &k16);
            assert_eq!(mixed.to_bits(), dot_f64(&q, &k_wide).to_bits(), "len {len}");
            assert_eq!(
                mixed.to_bits(),
                dot_f64_bf16_portable(&q, &k16).to_bits(),
                "dispatch vs portable, len {len}"
            );
        }
    }

    #[test]
    fn mixed_rows_bit_identical_to_per_row_calls() {
        let d = 20;
        let q: Vec<f64> = (0..d).map(|i| (i as f64 * 0.91).sin()).collect();
        for stride in [d, d + 5] {
            let n_rows = 4;
            let block: Vec<BF16> = (0..(n_rows - 1) * stride + d)
                .map(|i| BF16::from_f64((i as f64 * 0.23).cos()))
                .collect();
            let mut out = Vec::new();
            dot_then_scale_rows_bf16(&q, &block, stride, n_rows, 0.25, &mut out);
            assert_eq!(out.len(), n_rows);
            for (r, &s) in out.iter().enumerate() {
                let row = &block[r * stride..r * stride + d];
                assert_eq!(s.to_bits(), (dot_f64_bf16(&q, row) * 0.25).to_bits());
            }
        }
        let mut out = vec![1.0; 2];
        dot_then_scale_rows_bf16(&q, &[], d, 0, 1.0, &mut out);
        assert!(out.is_empty(), "zero rows clears the buffer");
    }

    #[test]
    fn axpy_matches_scalar_update() {
        use fa_numerics::BF16;
        let x: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        let acc0: Vec<f64> = (0..37).map(|i| (i as f64).cos()).collect();
        let (c1, c2) = (0.77, 0.33);
        let mut acc = acc0.clone();
        axpy_f64(&mut acc, &x, c1, c2);
        for (i, (&got, (&a0, &xv))) in acc.iter().zip(acc0.iter().zip(&x)).enumerate() {
            assert_eq!(got.to_bits(), (a0 * c1 + xv * c2).to_bits(), "lane {i}");
        }

        let xb: Vec<BF16> = x.iter().map(|&v| BF16::from_f64(v)).collect();
        let mut acc = acc0.clone();
        axpy_f64(&mut acc, &xb, c1, c2);
        for (i, (&got, (&a0, &xv))) in acc.iter().zip(acc0.iter().zip(&xb)).enumerate() {
            assert_eq!(
                got.to_bits(),
                (a0 * c1 + xv.to_f64() * c2).to_bits(),
                "lane {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_mismatch_panics() {
        let mut acc = vec![0.0f64; 3];
        axpy_f64(&mut acc, &[1.0f64, 2.0], 1.0, 1.0);
    }

    #[test]
    fn matmul_associativity_in_f64() {
        // (AB)C == A(BC) exactly for small integer matrices in f64.
        let a = Matrix::<f64>::from_fn(3, 3, |r, c| ((r + c) % 3) as f64);
        let b = Matrix::<f64>::from_fn(3, 3, |r, c| ((r * c) % 5) as f64);
        let c = Matrix::<f64>::from_fn(3, 3, |r, c| ((r + 2 * c) % 4) as f64);
        assert_eq!(a.matmul(&b).matmul(&c), a.matmul(&b.matmul(&c)));
    }

    fn rand_pair<T: Scalar>(m: usize, k: usize, n: usize, seed: u64) -> (Matrix<T>, Matrix<T>) {
        use crate::random::ElementDist;
        (
            Matrix::random_seeded(m, k, ElementDist::default(), seed),
            Matrix::random_seeded(k, n, ElementDist::default(), seed + 1),
        )
    }

    #[test]
    fn blocked_matmul_bit_identical_to_reference_f64() {
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 7),
            (17, 9, 33),
            (70, 40, 65),
            (128, 64, 4),
        ] {
            let (a, b) = rand_pair::<f64>(m, k, n, 1000 + m as u64);
            assert_eq!(a.matmul(&b), matmul_reference(&a, &b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_matmul_bit_identical_to_reference_bf16() {
        for (m, k, n) in [(5, 8, 3), (33, 17, 9), (80, 16, 70)] {
            let (a, b) = rand_pair::<BF16>(m, k, n, 2000 + m as u64);
            assert_eq!(a.matmul(&b), matmul_reference(&a, &b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_widening_bit_identical_to_reference() {
        for (m, k, n) in [(1, 3, 1), (9, 21, 5), (66, 33, 67), (128, 10, 3)] {
            let (a, b) = rand_pair::<f64>(m, k, n, 3000 + m as u64);
            assert_eq!(matmul_f64_acc(&a, &b), matmul_f64_acc_reference(&a, &b));
            let (ab, bb) = rand_pair::<BF16>(m, k, n, 4000 + m as u64);
            assert_eq!(matmul_f64_acc(&ab, &bb), matmul_f64_acc_reference(&ab, &bb));
        }
    }

    #[test]
    fn multi_query_union_range_slices_match_single_query_subranges() {
        // The speculative-decode pass scores one *union* row range for a
        // whole window of queries, then each query consumes only its own
        // causal sub-range of the query-major tile. Pin that slicing
        // pattern: `out[qi·n_rows + (r0_q − u0) .. qi·n_rows + (r1_q − u0)]`
        // must equal a per-query sweep over `[r0_q, r1_q)` bit for bit.
        use crate::random::ElementDist;
        let (nq, d, stride, rows) = (4usize, 8usize, 8usize, 10usize);
        let qs = Matrix::<f64>::random_seeded(nq, d, ElementDist::default(), 8800);
        let panel = Matrix::<f64>::random_seeded(rows, stride, ElementDist::default(), 8900);
        let scale = 1.0 / (d as f64).sqrt();
        let (u0, u1) = (1usize, 9usize);
        let n_rows = u1 - u0;
        let mut tile = vec![0.0f64; nq * n_rows];
        dot_then_scale_rows_multi_into(
            qs.as_slice(),
            d,
            &panel.as_slice()[u0 * stride..],
            stride,
            n_rows,
            scale,
            &mut tile,
        );
        // Per query: a different sub-range of the union, like a window's
        // per-token causal bounds.
        let ranges = [(1usize, 6usize), (2, 7), (3, 8), (4, 9)];
        for (qi, &(r0, r1)) in ranges.iter().enumerate() {
            let mut single = Vec::new();
            dot_then_scale_rows(
                qs.row(qi),
                &panel.as_slice()[r0 * stride..],
                stride,
                r1 - r0,
                scale,
                &mut single,
            );
            let slice = &tile[qi * n_rows + (r0 - u0)..qi * n_rows + (r1 - u0)];
            assert_eq!(slice.len(), single.len());
            for (r, (a, b)) in slice.iter().zip(&single).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "query {qi} row {r}");
            }
        }
    }

    #[test]
    fn multi_query_row_scores_bit_identical_to_per_query_sweeps() {
        // The shared-block panel kernel must reproduce the per-query
        // GEMV sweep bit for bit: same per-(query, row) dot, only the
        // loop nest (rows outer, queries inner) differs. Cover head
        // dims straddling the DOT_LANES=16 lane-block boundary, strided
        // panels, and the widened BF16 variant.
        use crate::random::ElementDist;
        for (nq, d, n_rows, stride) in [(2, 4, 3, 4), (5, 16, 7, 20), (3, 33, 6, 40)] {
            let qs = Matrix::<f64>::random_seeded(nq, d, ElementDist::default(), 7100 + d as u64);
            let panel = Matrix::<f64>::random_seeded(
                n_rows,
                stride,
                ElementDist::default(),
                7200 + d as u64,
            );
            let scale = 1.0 / (d as f64).sqrt();
            let mut batched = Vec::new();
            dot_then_scale_rows_multi(
                qs.as_slice(),
                d,
                panel.as_slice(),
                stride,
                n_rows,
                scale,
                &mut batched,
            );
            assert_eq!(batched.len(), nq * n_rows);
            let mut single = Vec::new();
            for qi in 0..nq {
                dot_then_scale_rows(
                    qs.row(qi),
                    panel.as_slice(),
                    stride,
                    n_rows,
                    scale,
                    &mut single,
                );
                for r in 0..n_rows {
                    assert_eq!(
                        batched[qi * n_rows + r].to_bits(),
                        single[r].to_bits(),
                        "d {d} query {qi} row {r}"
                    );
                }
            }

            let panel16: Vec<BF16> = panel
                .as_slice()
                .iter()
                .map(|&x| BF16::from_f64(x))
                .collect();
            let mut batched16 = Vec::new();
            dot_then_scale_rows_multi_bf16(
                qs.as_slice(),
                d,
                &panel16,
                stride,
                n_rows,
                scale,
                &mut batched16,
            );
            for qi in 0..nq {
                dot_then_scale_rows_bf16(qs.row(qi), &panel16, stride, n_rows, scale, &mut single);
                for r in 0..n_rows {
                    assert_eq!(
                        batched16[qi * n_rows + r].to_bits(),
                        single[r].to_bits(),
                        "bf16 d {d} query {qi} row {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matmul_matches_any_thread_count() {
        let (a, b) = rand_pair::<f64>(200, 48, 96, 5000);
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| a.matmul(&b));
        for threads in [2, 3, 8] {
            let parallel = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| a.matmul(&b));
            assert_eq!(serial, parallel, "{threads} threads");
        }
    }
}
