//! Matrix products with selectable accumulator precision.
//!
//! The accelerator multiplies BF16 operands but the choice of *accumulator*
//! precision is a first-class design decision in the paper (datapath MACs
//! accumulate in the storage format; checksum accumulators are f64). Both
//! styles are provided:
//!
//! * [`Matrix::matmul`] — accumulate in the element format itself, rounding
//!   after every MAC (what a same-width hardware MAC array does);
//! * [`matmul_f64_acc`] — accumulate each dot product in `f64` and round
//!   once at the end (what a widening accumulator does).

use crate::{Matrix, Scalar};

impl<T: Scalar> Matrix<T> {
    /// Matrix product `self · rhs` with accumulation in `T`.
    ///
    /// Every multiply and every add rounds to `T`, matching a hardware MAC
    /// array whose accumulator registers have the same width as the
    /// operands.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    ///
    /// ```
    /// use fa_tensor::Matrix;
    /// let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0]]);
    /// let b = Matrix::<f64>::from_rows(&[&[3.0], &[4.0]]);
    /// assert_eq!(a.matmul(&b)[(0, 0)], 11.0);
    /// ```
    pub fn matmul(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "inner dimensions differ: {}×{} · {}×{}",
            self.rows(),
            self.cols(),
            rhs.rows(),
            rhs.cols()
        );
        let mut out = Matrix::zeros(self.rows(), rhs.cols());
        for i in 0..self.rows() {
            let a_row = self.row(i);
            for j in 0..rhs.cols() {
                let mut acc = T::zero();
                for (k, &a) in a_row.iter().enumerate() {
                    acc = acc.mac(a, rhs[(k, j)]);
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Dot product of row `r` with a vector, accumulated in `T`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()` or `r` is out of bounds.
    pub fn row_dot(&self, r: usize, v: &[T]) -> T {
        assert_eq!(v.len(), self.cols(), "vector length mismatch in row_dot");
        let mut acc = T::zero();
        for (&a, &b) in self.row(r).iter().zip(v) {
            acc = acc.mac(a, b);
        }
        acc
    }

    /// Scales every element by `factor` (rounded to `T`).
    pub fn scale(&self, factor: f64) -> Matrix<T> {
        self.map(|x| T::from_f64(x.to_f64() * factor))
    }
}

/// Matrix product with widening `f64` accumulation: each output element is
/// the exact-as-f64 dot product of `T`-valued operands, rounded to `T`
/// once.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_f64_acc<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimensions differ: {}×{} · {}×{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f64;
            for k in 0..a.cols() {
                acc += a[(i, k)].to_f64() * b[(k, j)].to_f64();
            }
            out[(i, j)] = T::from_f64(acc);
        }
    }
    out
}

/// Dot product of two equal-length slices, accumulated in `f64`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot_f64<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x.to_f64() * y.to_f64())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_numerics::BF16;

    #[test]
    fn matmul_small_known_answer() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::<f64>::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::<f64>::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(4).matmul(&a), a);
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Matrix::<f64>::zeros(2, 5);
        let b = Matrix::<f64>::zeros(5, 3);
        let c = a.matmul(&b);
        assert_eq!((c.rows(), c.cols()), (2, 3));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn f64_acc_at_least_as_accurate_in_bf16() {
        // With BF16 elements, per-MAC rounding loses more than one final
        // rounding. Construct a case where small terms are absorbed.
        let n = 64;
        let a = Matrix::<BF16>::from_fn(1, n, |_, _| BF16::from_f32(0.01));
        let b = Matrix::<BF16>::from_fn(n, 1, |_, _| BF16::from_f32(1.0));
        let exact = 0.01f64 * BF16::from_f32(0.01).to_f64() / 0.01 * n as f64; // n * bf16(0.01)
        let narrow = a.matmul(&b)[(0, 0)].to_f64();
        let wide = matmul_f64_acc(&a, &b)[(0, 0)].to_f64();
        let exact_sum = BF16::from_f32(0.01).to_f64() * n as f64;
        let _ = exact;
        assert!((wide - exact_sum).abs() <= (narrow - exact_sum).abs());
    }

    #[test]
    fn row_dot_matches_matmul_column() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let v = [7.0, 8.0, 9.0];
        assert_eq!(a.row_dot(0, &v), 50.0);
        assert_eq!(a.row_dot(1, &v), 122.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn row_dot_length_mismatch_panics() {
        let a = Matrix::<f64>::zeros(1, 3);
        let _ = a.row_dot(0, &[1.0, 2.0]);
    }

    #[test]
    fn dot_f64_and_scale() {
        assert_eq!(dot_f64(&[1.0f64, 2.0], &[3.0, 4.0]), 11.0);
        let m = Matrix::<f64>::from_rows(&[&[2.0, 4.0]]);
        assert_eq!(m.scale(0.5).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn matmul_associativity_in_f64() {
        // (AB)C == A(BC) exactly for small integer matrices in f64.
        let a = Matrix::<f64>::from_fn(3, 3, |r, c| ((r + c) % 3) as f64);
        let b = Matrix::<f64>::from_fn(3, 3, |r, c| ((r * c) % 5) as f64);
        let c = Matrix::<f64>::from_fn(3, 3, |r, c| ((r + 2 * c) % 4) as f64);
        assert_eq!(a.matmul(&b).matmul(&c), a.matmul(&b.matmul(&c)));
    }
}
