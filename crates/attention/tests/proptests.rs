//! Property-based tests for the attention kernels: masking, GQA and
//! decode invariants beyond the fixed-case unit tests.

use fa_attention::gqa::GqaConfig;
use fa_attention::multihead::MultiHeadConfig;
use fa_attention::{decode::DecodeSession, flash2, naive, AttentionConfig};
use fa_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sliding-window attention equals full attention once the window
    /// covers the whole sequence.
    #[test]
    fn full_window_equals_no_window(
        q in matrix(6, 3),
        k in matrix(6, 3),
        v in matrix(6, 3),
    ) {
        let full = AttentionConfig::new(3);
        let windowed = AttentionConfig::new(3).with_sliding_window(6);
        let a = naive::attention(&q, &k, &v, &full);
        let b = naive::attention(&q, &k, &v, &windowed);
        prop_assert!(a.max_abs_diff(&b) < 1e-12);
    }

    /// Shrinking the window only ever *removes* visible keys: window-1
    /// attention reduces each row to the diagonal value row.
    #[test]
    fn window_one_is_self_attention(
        q in matrix(5, 3),
        k in matrix(5, 3),
        v in matrix(5, 3),
    ) {
        let cfg = AttentionConfig::new(3).with_sliding_window(1);
        let out = naive::attention(&q, &k, &v, &cfg);
        for i in 0..5 {
            for c in 0..3 {
                prop_assert!((out[(i, c)] - v[(i, c)]).abs() < 1e-12,
                    "row {i} must attend only to itself");
            }
        }
    }

    /// Causal flash2 output row i never depends on later keys: truncating
    /// K/V beyond i+1 leaves row i unchanged.
    #[test]
    fn causal_rows_independent_of_future(
        q in matrix(6, 3),
        k in matrix(6, 3),
        v in matrix(6, 3),
        row in 0usize..6,
    ) {
        let cfg = AttentionConfig::new(3).with_causal(true);
        let full = flash2::attention(&q, &k, &v, &cfg);
        let kt = Matrix::from_fn(row + 1, 3, |r, c| k[(r, c)]);
        let vt = Matrix::from_fn(row + 1, 3, |r, c| v[(r, c)]);
        let qt = Matrix::from_fn(row + 1, 3, |r, c| q[(r, c)]);
        let truncated = flash2::attention(&qt, &kt, &vt, &cfg);
        for c in 0..3 {
            prop_assert!((full[(row, c)] - truncated[(row, c)]).abs() < 1e-12);
        }
    }

    /// GQA with duplicated KV heads equals standard multi-head attention
    /// on the expanded K/V.
    #[test]
    fn gqa_equals_mha_on_duplicated_kv(
        q in matrix(4, 8),
        k in matrix(4, 4),
        v in matrix(4, 4),
    ) {
        // 2 query heads sharing 1 KV head of dim 4.
        let head = AttentionConfig::new(4);
        let gqa = GqaConfig::new(2, 1, head);
        let out_gqa = fa_attention::gqa::attention(&q, &k, &v, &gqa);
        // Expand K/V by duplication into 2 heads and run MHA.
        let expand = |m: &Matrix<f64>| {
            Matrix::from_fn(4, 8, |r, c| m[(r, c % 4)])
        };
        let mha = MultiHeadConfig::new(2, head);
        let out_mha = fa_attention::multihead::attention(&q, &expand(&k), &expand(&v), &mha);
        prop_assert!(out_gqa.max_abs_diff(&out_mha) < 1e-12);
    }

    /// Incremental decode always equals batch causal attention.
    #[test]
    fn decode_equals_batch(
        q in matrix(7, 3),
        k in matrix(7, 3),
        v in matrix(7, 3),
    ) {
        let cfg = AttentionConfig::new(3);
        let batch = naive::attention(&q, &k, &v, &cfg.with_causal(true));
        let mut session = DecodeSession::new(cfg);
        for i in 0..7 {
            let row = session.step(q.row(i), k.row(i), v.row(i));
            for (c, val) in row.iter().enumerate() {
                prop_assert!((val - batch[(i, c)]).abs() < 1e-11,
                    "token {i} lane {c}");
            }
        }
    }

    /// Scaling Q by a constant equals scaling the score scale: the
    /// kernels honour the scale parameter exactly.
    #[test]
    fn scale_equivalence(
        q in matrix(4, 3),
        k in matrix(4, 3),
        v in matrix(4, 3),
        s in 0.25f64..2.0,
    ) {
        let scaled_cfg = AttentionConfig::unscaled(3).with_scale(s);
        let a = flash2::attention(&q, &k, &v, &scaled_cfg);
        let qs = q.scale(s);
        let b = flash2::attention(&qs, &k, &v, &AttentionConfig::unscaled(3));
        prop_assert!(a.max_abs_diff(&b) < 1e-10);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Row-parallel flash2 is bit-identical to the serial kernel for any
    /// thread count — per-query state is independent, and the shim (like
    /// rayon) only partitions rows, never reorders per-row arithmetic.
    #[test]
    fn flash2_parallel_bit_identical(
        threads in 1usize..9,
        seed in 0u64..1_000_000,
        causal in any::<bool>(),
    ) {
        use fa_tensor::random::ElementDist;
        // 64×64×8 crosses the kernels' parallelization threshold.
        let q = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed);
        let k = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed + 1);
        let v = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed + 2);
        let cfg = AttentionConfig::new(8).with_causal(causal);
        let serial = flash2::attention_serial(&q, &k, &v, &cfg);
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| flash2::attention(&q, &k, &v, &cfg));
        prop_assert_eq!(serial, parallel);
    }

    /// Same for the tiled kernel, across arbitrary block sizes.
    #[test]
    fn tiled_parallel_bit_identical(
        threads in 1usize..9,
        block_size in 1usize..80,
        seed in 0u64..1_000_000,
    ) {
        use fa_tensor::random::ElementDist;
        let q = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed);
        let k = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed + 1);
        let v = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed + 2);
        let cfg = AttentionConfig::new(8);
        let serial = fa_attention::tiled::attention_serial(&q, &k, &v, &cfg, block_size);
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| fa_attention::tiled::attention(&q, &k, &v, &cfg, block_size));
        prop_assert_eq!(serial, parallel);
    }

    /// Head-parallel GQA matches the head-serial computation bit for bit.
    #[test]
    fn gqa_parallel_bit_identical(
        threads in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        use fa_tensor::random::ElementDist;
        let cfg = GqaConfig::new(4, 2, AttentionConfig::new(8));
        let q = Matrix::<f64>::random_seeded(24, 32, ElementDist::default(), seed);
        let k = Matrix::<f64>::random_seeded(24, 16, ElementDist::default(), seed + 1);
        let v = Matrix::<f64>::random_seeded(24, 16, ElementDist::default(), seed + 2);
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| fa_attention::gqa::attention(&q, &k, &v, &cfg));
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| fa_attention::gqa::attention(&q, &k, &v, &cfg));
        prop_assert_eq!(serial, parallel);
    }

    /// Parallel naive softmax_scores matches the serial layout row by row.
    #[test]
    fn naive_scores_parallel_bit_identical(
        threads in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        use fa_tensor::random::ElementDist;
        let q = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed);
        let k = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed + 1);
        let cfg = AttentionConfig::new(8);
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| naive::softmax_scores(&q, &k, &cfg));
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| naive::softmax_scores(&q, &k, &cfg));
        prop_assert_eq!(serial, parallel);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N steps of `DecodeSession::step_with_state` equal a one-shot
    /// causal flash2 pass over the same Q/K/V **bit for bit** in f64:
    /// the decode loop visits exactly the keys flash2's causal mask
    /// admits, in the same order, through the same SIMD inner kernels.
    #[test]
    fn decode_steps_equal_one_shot_flash2_bitwise(
        seed in 0u64..1_000_000,
        n in 1usize..24,
    ) {
        use fa_tensor::random::ElementDist;
        let d = 8;
        let q = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), seed);
        let k = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), seed + 1);
        let v = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), seed + 2);
        let cfg = AttentionConfig::new(d);
        let batch = flash2::attention_serial(&q, &k, &v, &cfg.with_causal(true));

        let mut session = DecodeSession::new(cfg);
        for i in 0..n {
            let (row, l, m) = session.step_with_state(q.row(i), k.row(i), v.row(i));
            for (c, val) in row.iter().enumerate() {
                prop_assert_eq!(val.to_bits(), batch[(i, c)].to_bits(),
                    "token {} lane {}", i, c);
            }
            // The terminal softmax state matches flash2's query state.
            let st = flash2::query_state(&q, &k, &v, &cfg.with_causal(true), i);
            prop_assert_eq!(l.to_bits(), st.sum_exp.to_bits());
            prop_assert_eq!(m.to_bits(), st.max_score.to_bits());
        }
    }

    /// `DecodeBatch::step_all` equals per-(sequence, head) serial
    /// `DecodeSession` decode bit for bit — for any thread count, batch
    /// size, cache block size and step count.
    #[test]
    fn batched_decode_equals_serial_decode_bitwise(
        threads in 1usize..9,
        block_rows in 1usize..20,
        batch_size in 1usize..5,
        steps in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::DecodeBatch;
        use fa_tensor::random::ElementDist;
        let heads = 2;
        let d = 8;
        let cfg = MultiHeadConfig::new(heads, AttentionConfig::new(d));

        let mut sessions: Vec<Vec<DecodeSession<f64>>> = (0..batch_size)
            .map(|_| (0..heads).map(|_| DecodeSession::new(cfg.head)).collect())
            .collect();

        let outs = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                let mut engine = DecodeBatch::<f64>::new(cfg, block_rows);
                let ids: Vec<usize> =
                    (0..batch_size).map(|_| engine.add_sequence()).collect();
                let mut all = Vec::new();
                for t in 0..steps {
                    let s = seed + 10 * t as u64;
                    let dim = cfg.model_dim();
                    let qs = Matrix::<f64>::random_seeded(batch_size, dim, ElementDist::default(), s);
                    let ks = Matrix::<f64>::random_seeded(batch_size, dim, ElementDist::default(), s + 1);
                    let vs = Matrix::<f64>::random_seeded(batch_size, dim, ElementDist::default(), s + 2);
                    all.push((engine.step_all(&ids, &qs, &ks, &vs), qs, ks, vs));
                }
                all
            });

        for (outs_t, qs, ks, vs) in &outs {
            for (i, out) in outs_t.iter().enumerate() {
                prop_assert!(out.residual().abs() < 1e-10, "fused check holds");
                for (h, session) in sessions[i].iter_mut().enumerate() {
                    let slice = |m: &Matrix<f64>| m.row(i)[h * d..(h + 1) * d].to_vec();
                    let reference = session.step(&slice(qs), &slice(ks), &slice(vs));
                    for (c, r) in reference.iter().enumerate() {
                        prop_assert_eq!(out.output[h * d + c].to_bits(), r.to_bits(),
                            "threads {} seq {} head {} lane {}", threads, i, h, c);
                    }
                }
            }
        }
    }
}
