//! Property-based tests for the attention kernels: masking, GQA and
//! decode invariants beyond the fixed-case unit tests.

use fa_attention::batch::{DecodeBatch, KvCache, KvLayout};
use fa_attention::gqa::GqaConfig;
use fa_attention::multihead::MultiHeadConfig;
use fa_attention::{decode::DecodeSession, flash2, naive, AttentionConfig};
use fa_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sliding-window attention equals full attention once the window
    /// covers the whole sequence.
    #[test]
    fn full_window_equals_no_window(
        q in matrix(6, 3),
        k in matrix(6, 3),
        v in matrix(6, 3),
    ) {
        let full = AttentionConfig::new(3);
        let windowed = AttentionConfig::new(3).with_sliding_window(6);
        let a = naive::attention(&q, &k, &v, &full);
        let b = naive::attention(&q, &k, &v, &windowed);
        prop_assert!(a.max_abs_diff(&b) < 1e-12);
    }

    /// Shrinking the window only ever *removes* visible keys: window-1
    /// attention reduces each row to the diagonal value row.
    #[test]
    fn window_one_is_self_attention(
        q in matrix(5, 3),
        k in matrix(5, 3),
        v in matrix(5, 3),
    ) {
        let cfg = AttentionConfig::new(3).with_sliding_window(1);
        let out = naive::attention(&q, &k, &v, &cfg);
        for i in 0..5 {
            for c in 0..3 {
                prop_assert!((out[(i, c)] - v[(i, c)]).abs() < 1e-12,
                    "row {i} must attend only to itself");
            }
        }
    }

    /// Causal flash2 output row i never depends on later keys: truncating
    /// K/V beyond i+1 leaves row i unchanged.
    #[test]
    fn causal_rows_independent_of_future(
        q in matrix(6, 3),
        k in matrix(6, 3),
        v in matrix(6, 3),
        row in 0usize..6,
    ) {
        let cfg = AttentionConfig::new(3).with_causal(true);
        let full = flash2::attention(&q, &k, &v, &cfg);
        let kt = Matrix::from_fn(row + 1, 3, |r, c| k[(r, c)]);
        let vt = Matrix::from_fn(row + 1, 3, |r, c| v[(r, c)]);
        let qt = Matrix::from_fn(row + 1, 3, |r, c| q[(r, c)]);
        let truncated = flash2::attention(&qt, &kt, &vt, &cfg);
        for c in 0..3 {
            prop_assert!((full[(row, c)] - truncated[(row, c)]).abs() < 1e-12);
        }
    }

    /// GQA with duplicated KV heads equals standard multi-head attention
    /// on the expanded K/V.
    #[test]
    fn gqa_equals_mha_on_duplicated_kv(
        q in matrix(4, 8),
        k in matrix(4, 4),
        v in matrix(4, 4),
    ) {
        // 2 query heads sharing 1 KV head of dim 4.
        let head = AttentionConfig::new(4);
        let gqa = GqaConfig::new(2, 1, head);
        let out_gqa = fa_attention::gqa::attention(&q, &k, &v, &gqa);
        // Expand K/V by duplication into 2 heads and run MHA.
        let expand = |m: &Matrix<f64>| {
            Matrix::from_fn(4, 8, |r, c| m[(r, c % 4)])
        };
        let mha = MultiHeadConfig::new(2, head);
        let out_mha = fa_attention::multihead::attention(&q, &expand(&k), &expand(&v), &mha);
        prop_assert!(out_gqa.max_abs_diff(&out_mha) < 1e-12);
    }

    /// Incremental decode always equals batch causal attention.
    #[test]
    fn decode_equals_batch(
        q in matrix(7, 3),
        k in matrix(7, 3),
        v in matrix(7, 3),
    ) {
        let cfg = AttentionConfig::new(3);
        let batch = naive::attention(&q, &k, &v, &cfg.with_causal(true));
        let mut session = DecodeSession::new(cfg);
        for i in 0..7 {
            let row = session.step(q.row(i), k.row(i), v.row(i));
            for (c, val) in row.iter().enumerate() {
                prop_assert!((val - batch[(i, c)]).abs() < 1e-11,
                    "token {i} lane {c}");
            }
        }
    }

    /// Scaling Q by a constant equals scaling the score scale: the
    /// kernels honour the scale parameter exactly.
    #[test]
    fn scale_equivalence(
        q in matrix(4, 3),
        k in matrix(4, 3),
        v in matrix(4, 3),
        s in 0.25f64..2.0,
    ) {
        let scaled_cfg = AttentionConfig::unscaled(3).with_scale(s);
        let a = flash2::attention(&q, &k, &v, &scaled_cfg);
        let qs = q.scale(s);
        let b = flash2::attention(&qs, &k, &v, &AttentionConfig::unscaled(3));
        prop_assert!(a.max_abs_diff(&b) < 1e-10);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Row-parallel flash2 is bit-identical to the serial kernel for any
    /// thread count — per-query state is independent, and the shim (like
    /// rayon) only partitions rows, never reorders per-row arithmetic.
    #[test]
    fn flash2_parallel_bit_identical(
        threads in 1usize..9,
        seed in 0u64..1_000_000,
        causal in any::<bool>(),
    ) {
        use fa_tensor::random::ElementDist;
        // 64×64×8 crosses the kernels' parallelization threshold.
        let q = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed);
        let k = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed + 1);
        let v = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed + 2);
        let cfg = AttentionConfig::new(8).with_causal(causal);
        let serial = flash2::attention_serial(&q, &k, &v, &cfg);
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| flash2::attention(&q, &k, &v, &cfg));
        prop_assert_eq!(serial, parallel);
    }

    /// Same for the tiled kernel, across arbitrary block sizes.
    #[test]
    fn tiled_parallel_bit_identical(
        threads in 1usize..9,
        block_size in 1usize..80,
        seed in 0u64..1_000_000,
    ) {
        use fa_tensor::random::ElementDist;
        let q = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed);
        let k = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed + 1);
        let v = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed + 2);
        let cfg = AttentionConfig::new(8);
        let serial = fa_attention::tiled::attention_serial(&q, &k, &v, &cfg, block_size);
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| fa_attention::tiled::attention(&q, &k, &v, &cfg, block_size));
        prop_assert_eq!(serial, parallel);
    }

    /// Head-parallel GQA matches the head-serial computation bit for bit.
    #[test]
    fn gqa_parallel_bit_identical(
        threads in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        use fa_tensor::random::ElementDist;
        let cfg = GqaConfig::new(4, 2, AttentionConfig::new(8));
        let q = Matrix::<f64>::random_seeded(24, 32, ElementDist::default(), seed);
        let k = Matrix::<f64>::random_seeded(24, 16, ElementDist::default(), seed + 1);
        let v = Matrix::<f64>::random_seeded(24, 16, ElementDist::default(), seed + 2);
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| fa_attention::gqa::attention(&q, &k, &v, &cfg));
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| fa_attention::gqa::attention(&q, &k, &v, &cfg));
        prop_assert_eq!(serial, parallel);
    }

    /// Parallel naive softmax_scores matches the serial layout row by row.
    #[test]
    fn naive_scores_parallel_bit_identical(
        threads in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        use fa_tensor::random::ElementDist;
        let q = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed);
        let k = Matrix::<f64>::random_seeded(64, 8, ElementDist::default(), seed + 1);
        let cfg = AttentionConfig::new(8);
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| naive::softmax_scores(&q, &k, &cfg));
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| naive::softmax_scores(&q, &k, &cfg));
        prop_assert_eq!(serial, parallel);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N steps of `DecodeSession::step_with_state` equal a one-shot
    /// causal flash2 pass over the same Q/K/V **bit for bit** in f64:
    /// the decode loop visits exactly the keys flash2's causal mask
    /// admits, in the same order, through the same SIMD inner kernels.
    #[test]
    fn decode_steps_equal_one_shot_flash2_bitwise(
        seed in 0u64..1_000_000,
        n in 1usize..24,
    ) {
        use fa_tensor::random::ElementDist;
        let d = 8;
        let q = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), seed);
        let k = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), seed + 1);
        let v = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), seed + 2);
        let cfg = AttentionConfig::new(d);
        let batch = flash2::attention_serial(&q, &k, &v, &cfg.with_causal(true));

        let mut session = DecodeSession::new(cfg);
        for i in 0..n {
            let (row, l, m) = session.step_with_state(q.row(i), k.row(i), v.row(i));
            for (c, val) in row.iter().enumerate() {
                prop_assert_eq!(val.to_bits(), batch[(i, c)].to_bits(),
                    "token {} lane {}", i, c);
            }
            // The terminal softmax state matches flash2's query state.
            let st = flash2::query_state(&q, &k, &v, &cfg.with_causal(true), i);
            prop_assert_eq!(l.to_bits(), st.sum_exp.to_bits());
            prop_assert_eq!(m.to_bits(), st.max_score.to_bits());
        }
    }

    /// The head-major cache layout is a pure memory-layout change: under
    /// a random admit/decode/retire schedule, a head-major engine and a
    /// token-major engine produce bit-identical prompt outputs, decode
    /// outputs, and checksum totals at every block size.
    #[test]
    fn head_major_and_token_major_layouts_bit_identical(
        block_rows_hm in 1usize..12,
        block_rows_tm in 1usize..12,
        seed in 0u64..1_000_000,
        epochs in 1usize..5,
    ) {
        use fa_tensor::random::ElementDist;
        let heads = 2;
        let d = 4;
        let cfg = MultiHeadConfig::new(heads, AttentionConfig::new(d));
        let dim = cfg.model_dim();
        let rand = |rows: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, dim, ElementDist::default(), s)
        };
        let mut hm = DecodeBatch::<f64>::with_layout(cfg, block_rows_hm, KvLayout::HeadMajor);
        let mut tm = DecodeBatch::<f64>::with_layout(cfg, block_rows_tm, KvLayout::TokenMajor);
        // A deterministic schedule mixing admissions, decode steps and
        // retirements, driven by a per-case LCG.
        let mut rng = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move || {
            rng = rng.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            rng >> 33
        };
        let mut live: Vec<usize> = Vec::new();
        for e in 0..epochs {
            // Admit 1–2 prompts of random length.
            for _ in 0..1 + next() % 2 {
                let n = 1 + (next() % 6) as usize;
                let s = seed + 31 * e as u64 + next() % 1000;
                let (q, k, v) = (rand(n, s), rand(n, s + 1), rand(n, s + 2));
                let a = hm.admit(&q, &k, &v);
                let b = tm.admit(&q, &k, &v);
                prop_assert_eq!(a.output, b.output, "admitted prompt output");
                prop_assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
                prop_assert_eq!(a.actual.to_bits(), b.actual.to_bits());
                prop_assert_eq!(a.seq, b.seq, "slot reuse order matches");
                live.push(a.seq);
            }
            // Decode 1–3 tokens for every live sequence.
            for t in 0..1 + next() % 3 {
                let s = seed + 101 * e as u64 + 7 * t;
                let qs = rand(live.len(), s + 3);
                let ks = rand(live.len(), s + 4);
                let vs = rand(live.len(), s + 5);
                let outs_hm = hm.step_all(&live, &qs, &ks, &vs);
                let outs_tm = tm.step_all(&live, &qs, &ks, &vs);
                for (a, b) in outs_hm.iter().zip(&outs_tm) {
                    prop_assert_eq!(&a.output, &b.output, "decode output");
                    prop_assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
                }
            }
            // Retire a random live sequence (keep at least one).
            if live.len() > 1 {
                let victim = live.swap_remove((next() as usize) % live.len());
                hm.retire(victim);
                tm.retire(victim);
            }
        }
        for &s in &live {
            prop_assert_eq!(
                hm.global_residual(s).to_bits(),
                tm.global_residual(s).to_bits(),
                "checksum totals"
            );
            prop_assert!(hm.global_residual(s).abs() < 1e-9);
        }
    }

    /// The block free lists never alias a live sequence's storage: under
    /// any policy (including mixed-format demotion and sliding-window
    /// eviction, which both route blocks through the free lists
    /// mid-sequence) and through retire→admit storms at random block
    /// sizes, every block of **both** arenas is owned by exactly one live
    /// sequence or sits on its arena's free list — never both, never
    /// twice.
    #[test]
    fn free_list_never_aliases_live_blocks(
        block_rows in 1usize..9,
        width in 1usize..5,
        seed in 0u64..1_000_000,
        ops in 8usize..40,
        policy in 0usize..4,
    ) {
        use fa_attention::batch::{EvictionPolicy, KvFormat};
        let (format, eviction) = match policy {
            0 => (KvFormat::F64, EvictionPolicy::RetainAll),
            1 => (KvFormat::Bf16, EvictionPolicy::RetainAll),
            2 => (
                KvFormat::Mixed { burst_blocks: 1 },
                EvictionPolicy::RetainAll,
            ),
            _ => (
                KvFormat::Mixed { burst_blocks: 1 },
                EvictionPolicy::SlidingWindow { window_blocks: 2 },
            ),
        };
        let mut cache = KvCache::<f64>::with_policy(
            1, width, block_rows, KvLayout::HeadMajor, format, eviction,
        );
        let mut rng = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng >> 33
        };
        let mut live: Vec<usize> = Vec::new();
        let row = vec![0.5f64; width];
        for _ in 0..ops {
            match next() % 3 {
                // Admit a sequence with a random number of rows.
                0 => {
                    let s = cache.add_sequence();
                    for _ in 0..next() % (3 * block_rows as u64 + 1) {
                        cache.append(s, &row, &row);
                    }
                    live.push(s);
                }
                // Append to a random live sequence.
                1 if !live.is_empty() => {
                    let s = live[(next() as usize) % live.len()];
                    for _ in 0..1 + next() % (block_rows as u64 + 1) {
                        cache.append(s, &row, &row);
                    }
                }
                // Retire a random live sequence.
                2 if !live.is_empty() => {
                    let s = live.swap_remove((next() as usize) % live.len());
                    cache.retire_sequence(s);
                }
                _ => {}
            }
            // Invariant sweep: exact partition of both arenas.
            let mut native = std::collections::HashSet::new();
            let mut demoted = std::collections::HashSet::new();
            for &s in &live {
                for blk in cache.seq_blocks(s) {
                    let (seen, total) = if blk.bf16 {
                        (&mut demoted, cache.allocated_blocks16())
                    } else {
                        (&mut native, cache.allocated_blocks())
                    };
                    prop_assert!(blk.index < total, "block {blk:?} in its arena");
                    prop_assert!(seen.insert(blk.index), "block {blk:?} owned twice");
                }
            }
            for &b in cache.free_block_list() {
                prop_assert!(b < cache.allocated_blocks(), "freed block {b} in arena");
                prop_assert!(native.insert(b), "native block {b} both free and live");
            }
            for &b in cache.free_block_list16() {
                prop_assert!(b < cache.allocated_blocks16(), "freed bf16 block {b} in arena");
                prop_assert!(demoted.insert(b), "bf16 block {b} both free and live");
            }
            prop_assert_eq!(
                native.len(),
                cache.allocated_blocks(),
                "every native arena block is accounted for"
            );
            prop_assert_eq!(
                demoted.len(),
                cache.allocated_blocks16(),
                "every bf16 arena block is accounted for"
            );
        }
    }

    /// THE policy-layer equivalence: a `Mixed`-format engine with
    /// sliding-window eviction, admitting its prompt through **chunked**
    /// prefill interleaved by `step_all`, stays bit-identical to plain
    /// per-(sequence, head) `DecodeSession` golden models whose cached
    /// rows get the same demotions replayed (`demote_cached`) and whose
    /// head config carries the eviction window as a sliding-window mask —
    /// across layouts, block sizes, burst sizes, window sizes, chunk
    /// sizes and thread counts. Eviction replay is pure masking: evicted
    /// blocks are invisible by the window, so the golden never needs to
    /// drop rows.
    #[test]
    fn mixed_sliding_chunked_engine_matches_golden_replay(
        threads in 1usize..5,
        block_rows in 1usize..5,
        burst in 0usize..3,
        window_blocks in 1usize..4,
        evict in any::<bool>(),
        layout_hm in any::<bool>(),
        chunk in 1usize..7,
        prompt_len in 1usize..9,
        steps in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat};
        use fa_tensor::random::ElementDist;
        let heads = 2;
        let d = 4;
        let head = AttentionConfig::new(d);
        let cfg = MultiHeadConfig::new(heads, head);
        let dim = cfg.model_dim();
        let layout = if layout_hm { KvLayout::HeadMajor } else { KvLayout::TokenMajor };
        let eviction = if evict {
            EvictionPolicy::SlidingWindow { window_blocks }
        } else {
            EvictionPolicy::RetainAll
        };
        // The golden sees eviction purely as a mask.
        let golden_head = match eviction.window_tokens(block_rows) {
            Some(w) => head.with_sliding_window(w),
            None => head,
        };
        let rand = |rows: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, dim, ElementDist::default(), s)
        };
        let (pq, pk, pv) = (rand(prompt_len, seed), rand(prompt_len, seed + 1), rand(prompt_len, seed + 2));

        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let mut engine = DecodeBatch::<f64>::with_policy(
            cfg,
            block_rows,
            layout,
            KvFormat::Mixed { burst_blocks: burst },
            eviction,
        );
        engine.set_prefill_chunk(chunk);
        let seq = engine.enqueue(&pq, &pk, &pv);
        while engine.is_pending(seq) {
            pool.install(|| engine.prefill_step());
        }
        let admitted = engine.take_admitted(seq).expect("prompt completed");
        prop_assert!(admitted.residual().abs() < 1e-9, "prompt checksum holds");

        // Golden: a mirrored Q/K/V history with the engine's demotion
        // schedule replayed, scored through `flash2::query_state`.
        // Chunk semantics matter: the engine appends a whole chunk's K/V
        // rows (running block-claim demotions) BEFORE the chunk's queries
        // score, so an early query in a chunk already sees rows the
        // chunk's later appends demoted. The mirror applies the same
        // rule: appending position p claims block p/block_rows when p is
        // a block boundary, demoting the oldest not-yet-demoted full
        // block beyond the burst (whole-history indices work even under
        // eviction, because evicted blocks are masked in both).
        let mut hist_q: Vec<Vec<f64>> = Vec::new();
        let mut hist_k: Vec<Vec<f64>> = Vec::new();
        let mut hist_v: Vec<Vec<f64>> = Vec::new();
        let golden_cfg = golden_head.with_causal(true);
        let mirror_append =
            |hk: &mut Vec<Vec<f64>>, hv: &mut Vec<Vec<f64>>, krow: Vec<f64>, vrow: Vec<f64>| {
                let p = hk.len();
                if p.is_multiple_of(block_rows) && p / block_rows > burst {
                    let b = p / block_rows - burst - 1;
                    for i in b * block_rows..(b + 1) * block_rows {
                        for x in hk[i].iter_mut() {
                            *x = fa_attention::batch::round_bf16(*x).to_f64();
                        }
                        for x in hv[i].iter_mut() {
                            *x = fa_attention::batch::round_bf16(*x).to_f64();
                        }
                    }
                }
                hk.push(krow);
                hv.push(vrow);
            };
        let head_matrix = |hist: &Vec<Vec<f64>>, h: usize| {
            Matrix::from_fn(hist.len(), d, |r, c| hist[r][h * d + c])
        };
        let golden_row = |hq: &Vec<Vec<f64>>, hk: &Vec<Vec<f64>>, hv: &Vec<Vec<f64>>,
                          h: usize, p: usize| {
            let st = flash2::query_state(
                &head_matrix(hq, h),
                &head_matrix(hk, h),
                &head_matrix(hv, h),
                &golden_cfg,
                p,
            );
            st.output.iter().map(|o| o / st.sum_exp).collect::<Vec<f64>>()
        };

        // Prompt: replay chunk by chunk — append the chunk's rows (with
        // demotions), then score the chunk's queries against that state.
        let mut p0 = 0;
        while p0 < prompt_len {
            let p1 = (p0 + chunk).min(prompt_len);
            for p in p0..p1 {
                hist_q.push(pq.row(p).to_vec());
                mirror_append(&mut hist_k, &mut hist_v, pk.row(p).to_vec(), pv.row(p).to_vec());
            }
            for p in p0..p1 {
                for h in 0..heads {
                    let row = golden_row(&hist_q, &hist_k, &hist_v, h, p);
                    for (c, val) in row.iter().enumerate() {
                        prop_assert_eq!(
                            admitted.output[(p, h * d + c)].to_bits(),
                            val.to_bits(),
                            "prompt row {} head {} lane {}", p, h, c
                        );
                    }
                }
            }
            p0 = p1;
        }

        for t in 0..steps {
            let s = seed + 100 + 10 * t as u64;
            let qs = rand(1, s);
            let ks = rand(1, s + 1);
            let vs = rand(1, s + 2);
            let outs = pool.install(|| engine.step_all(&[seq], &qs, &ks, &vs));
            prop_assert!(outs[0].residual().abs() < 1e-9, "step {} checksum", t);
            hist_q.push(qs.row(0).to_vec());
            mirror_append(&mut hist_k, &mut hist_v, ks.row(0).to_vec(), vs.row(0).to_vec());
            let p = prompt_len + t;
            for h in 0..heads {
                let row = golden_row(&hist_q, &hist_k, &hist_v, h, p);
                for (c, val) in row.iter().enumerate() {
                    prop_assert_eq!(
                        outs[0].output[h * d + c].to_bits(),
                        val.to_bits(),
                        "step {} head {} lane {}", t, h, c
                    );
                }
            }
            if evict {
                prop_assert!(
                    engine.cache().seq_blocks(seq).len() <= window_blocks + 1,
                    "retained blocks bounded by the eviction window"
                );
            }
        }
        prop_assert!(engine.global_residual(seq).abs() < 1e-9);
        prop_assert_eq!(
            engine.seq_len(seq),
            engine.prompt_len(seq) + engine.decoded_len(seq),
            "coverage accounting survives demotion and eviction"
        );
    }

    /// THE GQA equivalence: a **grouped** engine (any `kv_heads` dividing
    /// the query heads, shared per-kv-head cache streams, group passes
    /// feeding `group_size` query states) under any policy combination —
    /// mixed-format demotion, sliding-window eviction, chunked prefill —
    /// stays bit-identical to plain per-**query**-head `DecodeSession`
    /// golden models over pre-shared (group-sliced) K/V, with the same
    /// demotions replayed and the eviction window carried as a mask —
    /// across kv-head counts, layouts, block sizes, bursts, windows,
    /// chunk sizes and thread counts. `kv_heads == query_heads` is the
    /// PR-4 engine, pinned through the same machinery.
    #[test]
    fn gqa_policy_engine_matches_golden_replay(
        threads in 1usize..5,
        kv_sel in 0usize..3,
        block_rows in 1usize..5,
        burst in 0usize..3,
        window_blocks in 0usize..4, // 0 = RetainAll
        layout_hm in any::<bool>(),
        plain_f64 in any::<bool>(),
        chunk in 1usize..7,
        prompt_len in 1usize..9,
        steps in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat};
        use fa_attention::HeadTopology;
        use fa_tensor::random::ElementDist;
        let query_heads = 4;
        let kv_heads = [1usize, 2, 4][kv_sel];
        let d = 4;
        let head = AttentionConfig::new(d);
        let topo = HeadTopology::gqa(query_heads, kv_heads, head);
        let layout = if layout_hm { KvLayout::HeadMajor } else { KvLayout::TokenMajor };
        let format = if plain_f64 {
            KvFormat::F64
        } else {
            KvFormat::Mixed { burst_blocks: burst }
        };
        let eviction = if window_blocks == 0 {
            EvictionPolicy::RetainAll
        } else {
            EvictionPolicy::SlidingWindow { window_blocks }
        };
        // The golden sees eviction purely as a mask.
        let golden_head = match eviction.window_tokens(block_rows) {
            Some(w) => head.with_sliding_window(w),
            None => head,
        };
        let rand = |rows: usize, cols: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, cols, ElementDist::default(), s)
        };
        let (pq, pk, pv) = (
            rand(prompt_len, topo.q_dim(), seed),
            rand(prompt_len, topo.kv_dim(), seed + 1),
            rand(prompt_len, topo.kv_dim(), seed + 2),
        );

        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let mut engine = DecodeBatch::<f64>::with_policy(topo, block_rows, layout, format, eviction);
        engine.set_prefill_chunk(chunk);
        let seq = engine.enqueue(&pq, &pk, &pv);
        while engine.is_pending(seq) {
            pool.install(|| engine.prefill_step());
        }
        let admitted = engine.take_admitted(seq).expect("prompt completed");
        prop_assert!(admitted.residual().abs() < 1e-9, "prompt checksum holds");

        // Golden: a mirrored shared-K/V history with the engine's
        // demotion schedule replayed, scored per *query* head through
        // `flash2::query_state` over its group's slices (the
        // pre-shared-KV per-query-head reference).
        let mut hist_q: Vec<Vec<f64>> = Vec::new();
        let mut hist_k: Vec<Vec<f64>> = Vec::new();
        let mut hist_v: Vec<Vec<f64>> = Vec::new();
        let golden_cfg = golden_head.with_causal(true);
        let mirror_append =
            |hk: &mut Vec<Vec<f64>>, hv: &mut Vec<Vec<f64>>, krow: Vec<f64>, vrow: Vec<f64>| {
                let p = hk.len();
                if !plain_f64 && p.is_multiple_of(block_rows) && p / block_rows > burst {
                    let b = p / block_rows - burst - 1;
                    for i in b * block_rows..(b + 1) * block_rows {
                        for x in hk[i].iter_mut() {
                            *x = fa_attention::batch::round_bf16(*x).to_f64();
                        }
                        for x in hv[i].iter_mut() {
                            *x = fa_attention::batch::round_bf16(*x).to_f64();
                        }
                    }
                }
                hk.push(krow);
                hv.push(vrow);
            };
        let head_matrix = |hist: &Vec<Vec<f64>>, cols: core::ops::Range<usize>| {
            Matrix::from_fn(hist.len(), d, |r, c| hist[r][cols.start + c])
        };
        let golden_row = |hq: &Vec<Vec<f64>>, hk: &Vec<Vec<f64>>, hv: &Vec<Vec<f64>>,
                          h: usize, p: usize| {
            let g = topo.group_of(h);
            let st = flash2::query_state(
                &head_matrix(hq, topo.q_head_cols(h)),
                &head_matrix(hk, topo.kv_head_cols(g)),
                &head_matrix(hv, topo.kv_head_cols(g)),
                &golden_cfg,
                p,
            );
            st.output.iter().map(|o| o / st.sum_exp).collect::<Vec<f64>>()
        };

        // Prompt: replay chunk by chunk — append the chunk's rows (with
        // demotions), then score the chunk's queries against that state.
        let mut p0 = 0;
        while p0 < prompt_len {
            let p1 = (p0 + chunk).min(prompt_len);
            for p in p0..p1 {
                hist_q.push(pq.row(p).to_vec());
                mirror_append(&mut hist_k, &mut hist_v, pk.row(p).to_vec(), pv.row(p).to_vec());
            }
            for p in p0..p1 {
                for h in 0..query_heads {
                    let row = golden_row(&hist_q, &hist_k, &hist_v, h, p);
                    for (c, val) in row.iter().enumerate() {
                        prop_assert_eq!(
                            admitted.output[(p, h * d + c)].to_bits(),
                            val.to_bits(),
                            "kv {} prompt row {} head {} lane {}", kv_heads, p, h, c
                        );
                    }
                }
            }
            p0 = p1;
        }

        for t in 0..steps {
            let s = seed + 100 + 10 * t as u64;
            let qs = rand(1, topo.q_dim(), s);
            let ks = rand(1, topo.kv_dim(), s + 1);
            let vs = rand(1, topo.kv_dim(), s + 2);
            let outs = pool.install(|| engine.step_all(&[seq], &qs, &ks, &vs));
            prop_assert!(outs[0].residual().abs() < 1e-9, "step {} checksum", t);
            hist_q.push(qs.row(0).to_vec());
            mirror_append(&mut hist_k, &mut hist_v, ks.row(0).to_vec(), vs.row(0).to_vec());
            let p = prompt_len + t;
            for h in 0..query_heads {
                let row = golden_row(&hist_q, &hist_k, &hist_v, h, p);
                for (c, val) in row.iter().enumerate() {
                    prop_assert_eq!(
                        outs[0].output[h * d + c].to_bits(),
                        val.to_bits(),
                        "kv {} step {} head {} lane {}", kv_heads, t, h, c
                    );
                }
            }
            if window_blocks > 0 {
                prop_assert!(
                    engine.cache().seq_blocks(seq).len() <= window_blocks + 1,
                    "retained blocks bounded by the eviction window"
                );
            }
        }
        prop_assert!(engine.global_residual(seq).abs() < 1e-9);
        prop_assert_eq!(
            engine.seq_len(seq),
            engine.prompt_len(seq) + engine.decoded_len(seq),
            "coverage accounting survives grouping"
        );
    }

    /// Checked and unchecked decode paths report consistent token counts
    /// through admit/retire cycles: `prompt_len + checked_len +
    /// unchecked_len == seq_len` at every point, and slot reuse resets
    /// the counters.
    #[test]
    fn coverage_accounting_survives_admit_retire_cycles(
        seed in 0u64..1_000_000,
        cycles in 1usize..4,
        checked_steps in 0usize..4,
        unchecked_steps in 0usize..4,
    ) {
        use fa_tensor::random::ElementDist;
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(3));
        let dim = cfg.model_dim();
        let rand = |rows: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, dim, ElementDist::default(), s)
        };
        let mut engine = DecodeBatch::<f64>::new(cfg, 2);
        for cycle in 0..cycles {
            let n = 1 + (seed as usize + cycle) % 5;
            let s0 = seed + 999 * cycle as u64;
            let a = engine.admit(&rand(n, s0), &rand(n, s0 + 1), &rand(n, s0 + 2));
            prop_assert_eq!(engine.prompt_len(a.seq), n);
            prop_assert_eq!(engine.checked_len(a.seq), 0, "slot reuse resets counters");
            prop_assert_eq!(engine.unchecked_len(a.seq), 0);
            let ids = [a.seq];
            for t in 0..checked_steps {
                let s = s0 + 10 + t as u64;
                engine.step_all(&ids, &rand(1, s), &rand(1, s + 1), &rand(1, s + 2));
            }
            for t in 0..unchecked_steps {
                let s = s0 + 50 + t as u64;
                engine.step_all_unchecked(&ids, &rand(1, s), &rand(1, s + 1), &rand(1, s + 2));
            }
            prop_assert_eq!(engine.checked_len(a.seq), checked_steps);
            prop_assert_eq!(engine.unchecked_len(a.seq), unchecked_steps);
            prop_assert_eq!(
                engine.decoded_len(a.seq),
                checked_steps + unchecked_steps,
                "both paths count into one decoded total"
            );
            prop_assert_eq!(
                engine.seq_len(a.seq),
                engine.prompt_len(a.seq) + engine.decoded_len(a.seq),
                "cache length decomposes exactly"
            );
            engine.retire(a.seq);
        }
    }

    /// `DecodeBatch::step_all` equals per-(sequence, head) serial
    /// `DecodeSession` decode bit for bit — for any thread count, batch
    /// size, cache block size and step count.
    #[test]
    fn batched_decode_equals_serial_decode_bitwise(
        threads in 1usize..9,
        block_rows in 1usize..20,
        batch_size in 1usize..5,
        steps in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::DecodeBatch;
        use fa_tensor::random::ElementDist;
        let heads = 2;
        let d = 8;
        let cfg = MultiHeadConfig::new(heads, AttentionConfig::new(d));

        let mut sessions: Vec<Vec<DecodeSession<f64>>> = (0..batch_size)
            .map(|_| (0..heads).map(|_| DecodeSession::new(cfg.head)).collect())
            .collect();

        let outs = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                let mut engine = DecodeBatch::<f64>::new(cfg, block_rows);
                let ids: Vec<usize> =
                    (0..batch_size).map(|_| engine.add_sequence()).collect();
                let mut all = Vec::new();
                for t in 0..steps {
                    let s = seed + 10 * t as u64;
                    let dim = cfg.model_dim();
                    let qs = Matrix::<f64>::random_seeded(batch_size, dim, ElementDist::default(), s);
                    let ks = Matrix::<f64>::random_seeded(batch_size, dim, ElementDist::default(), s + 1);
                    let vs = Matrix::<f64>::random_seeded(batch_size, dim, ElementDist::default(), s + 2);
                    all.push((engine.step_all(&ids, &qs, &ks, &vs), qs, ks, vs));
                }
                all
            });

        for (outs_t, qs, ks, vs) in &outs {
            for (i, out) in outs_t.iter().enumerate() {
                prop_assert!(out.residual().abs() < 1e-10, "fused check holds");
                for (h, session) in sessions[i].iter_mut().enumerate() {
                    let slice = |m: &Matrix<f64>| m.row(i)[h * d..(h + 1) * d].to_vec();
                    let reference = session.step(&slice(qs), &slice(ks), &slice(vs));
                    for (c, r) in reference.iter().enumerate() {
                        prop_assert_eq!(out.output[h * d + c].to_bits(), r.to_bits(),
                            "threads {} seq {} head {} lane {}", threads, i, h, c);
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The serving-scale fault-tolerance contract, swept across
    /// KvFormat × EvictionPolicy × GQA group size × injection step: an
    /// injected high-bit flip into live K/V storage, a `sumrow` input,
    /// or the verdict accumulator is localized by the structural audit
    /// to exactly the poisoned site, repaired block-granularly from the
    /// recovery log, and the engine resumes decoding bit-identical to a
    /// never-injected golden twin. Fault-free audits are asserted clean
    /// both before injection and after repair.
    #[test]
    fn injected_faults_localize_and_recover_bit_identical(
        format_sel in 0usize..4,
        evict_sel in 0usize..3,
        topo_sel in 0usize..4,
        pre_steps in 0usize..6,
        post_steps in 1usize..6,
        site_sel in 0usize..4,
        bit_sel in 0u32..3,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::guard::{InjectionSite, LocalizedFault};
        use fa_attention::batch::{EvictionPolicy, KvFormat};
        use fa_attention::HeadTopology;
        use fa_tensor::random::ElementDist;

        let format = match format_sel {
            0 => KvFormat::F64,
            1 => KvFormat::Bf16,
            2 => KvFormat::Mixed { burst_blocks: 1 },
            _ => KvFormat::Mixed { burst_blocks: 2 },
        };
        let eviction = match evict_sel {
            0 => EvictionPolicy::RetainAll,
            1 => EvictionPolicy::SlidingWindow { window_blocks: 2 },
            _ => EvictionPolicy::SlidingWindow { window_blocks: 3 },
        };
        let (qh, kv) = [(1usize, 1usize), (2, 1), (4, 2), (2, 2)][topo_sel];
        let d = 4;
        let block_rows = 4;
        let batch = 2usize;
        let prefill_len = 10;
        let tol = 1e-6;
        let topo = HeadTopology::gqa(qh, kv, AttentionConfig::new(d));

        let mk = || DecodeBatch::<f64>::with_policy(
            topo, block_rows, KvLayout::HeadMajor, format, eviction,
        );
        let mut subject = mk();
        subject.enable_recovery_log();
        let mut golden = mk();
        let ids: Vec<usize> = (0..batch).map(|_| subject.add_sequence()).collect();
        for _ in 0..batch { golden.add_sequence(); }
        let rand = |rows: usize, cols: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, cols, ElementDist::default(), s)
        };
        for (i, &id) in ids.iter().enumerate() {
            let k = rand(prefill_len, topo.kv_dim(), seed.wrapping_add(100 + i as u64));
            let v = rand(prefill_len, topo.kv_dim(), seed.wrapping_add(200 + i as u64));
            subject.prefill(id, &k, &v);
            golden.prefill(id, &k, &v);
        }
        // Lockstep decode with bitwise-identical outputs asserted.
        let decode = |subject: &mut DecodeBatch<f64>, golden: &mut DecodeBatch<f64>,
                      t0: usize, n: usize| {
            for t in t0..t0 + n {
                let qs = rand(batch, topo.q_dim(), seed.wrapping_add(1_000 + t as u64));
                let ks = rand(batch, topo.kv_dim(), seed.wrapping_add(2_000 + t as u64));
                let vs = rand(batch, topo.kv_dim(), seed.wrapping_add(3_000 + t as u64));
                let a = subject.step_all(&ids, &qs, &ks, &vs);
                let b = golden.step_all(&ids, &qs, &ks, &vs);
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    for (c, (xa, ya)) in x.output.iter().zip(&y.output).enumerate() {
                        prop_assert_eq!(
                            xa.to_bits(), ya.to_bits(),
                            "step {} seq {} lane {}", t, i, c
                        );
                    }
                }
            }
        };
        decode(&mut subject, &mut golden, 0, pre_steps);

        // Fault-free control: every audit is clean under every policy.
        for &id in &ids {
            prop_assert!(subject.audit(id, tol).is_empty(), "fault-free audit clean");
        }

        // Inject into a retained position of one victim sequence. High
        // exponent bits guarantee the storage delta survives the f64
        // checksum fold (low-bit flips of tiny lanes can be absorbed by
        // rounding — the live campaign samples those honestly; this
        // sweep pins the deterministic contract).
        let victim = ids[(seed as usize) % batch];
        let first = subject.cache().first_retained(victim);
        let len = subject.seq_len(victim);
        let pos = first + (seed as usize / 7) % (len - first);
        let g = (seed as usize / 11) % kv;
        let lane = (seed as usize / 13) % d;
        let site = InjectionSite::ALL[site_sel];
        match site {
            InjectionSite::Key | InjectionSite::Value => {
                let key_side = site == InjectionSite::Key;
                let bit = if subject.storage_is_bf16(victim, pos) {
                    12 + bit_sel
                } else {
                    60 + bit_sel
                };
                subject.flip_storage_bit(victim, pos, g, lane, key_side, bit);
                let faults = subject.audit(victim, tol);
                prop_assert_eq!(faults.len(), 1, "one verdict: {:?}", &faults);
                match faults[0] {
                    LocalizedFault::CorruptBlock { kv_head, first: bf, rows, key_side: ks, .. } => {
                        prop_assert_eq!(kv_head, g, "kv head pinned");
                        prop_assert_eq!(ks, key_side, "side pinned");
                        prop_assert!((bf..bf + rows).contains(&pos), "block spans the flip");
                    }
                    other => prop_assert!(false, "unexpected verdict {:?}", other),
                }
                let report = subject.repair(victim, &faults);
                prop_assert_eq!(report.blocks_recovered, 1);
                prop_assert!(report.rows_rewritten >= 1);
            }
            InjectionSite::Sumrow => {
                subject.flip_sumrow_bit(victim, pos, g, 60 + bit_sel);
                let faults = subject.audit(victim, tol);
                prop_assert_eq!(
                    &faults,
                    &vec![LocalizedFault::CorruptSumrow { pos, kv_head: g }]
                );
                let report = subject.repair(victim, &faults);
                prop_assert_eq!(report.sumrows_repaired, 1);
                prop_assert_eq!(report.blocks_recovered, 0);
            }
            InjectionSite::Accumulator => {
                let bit = 52 + ((seed / 17) % 11) as u32;
                subject.flip_total_bit(victim, (seed / 19) % 2 == 0, bit);
                let residual = subject.global_residual(victim);
                let faults = subject.audit(victim, tol);
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(residual.abs() <= tol) {
                    prop_assert_eq!(faults.len(), 1, "verdict fault: {:?}", &faults);
                    prop_assert!(matches!(faults[0], LocalizedFault::CorruptTotals { .. }));
                } else {
                    prop_assert!(faults.is_empty(), "sub-tolerance verdict flip is masked");
                }
                let _ = subject.repair(victim, &faults);
            }
        }

        // Post-repair: structure clean, decode tracks the golden twin
        // bit for bit under the full policy matrix.
        for &id in &ids {
            prop_assert!(subject.audit(id, tol).is_empty(), "post-repair audit clean");
        }
        decode(&mut subject, &mut golden, pre_steps, post_steps);
    }

    /// The graceful-degradation contract, swept across KvFormat ×
    /// EvictionPolicy × GQA group size × recovery path: when damage is
    /// beyond in-place repair, `quarantine` frees the victim's blocks and
    /// its history recomputes through the chunked-prefill admission path
    /// — auto-requeued from the recovery log when it still covers
    /// everything, resubmitted from the caller's copy when a budget
    /// truncated it. Batch peers decode bit-identical to a golden twin
    /// throughout the re-admission, and the victim itself resumes
    /// bit-identical to an undamaged replay afterwards.
    #[test]
    fn quarantined_sequences_resume_bit_identical(
        format_sel in 0usize..4,
        evict_sel in 0usize..3,
        topo_sel in 0usize..4,
        pre_steps in 1usize..6,
        post_steps in 1usize..6,
        trunc_sel in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::{EvictionPolicy, KvFormat};
        use fa_attention::HeadTopology;
        use fa_tensor::random::ElementDist;

        let format = match format_sel {
            0 => KvFormat::F64,
            1 => KvFormat::Bf16,
            2 => KvFormat::Mixed { burst_blocks: 1 },
            _ => KvFormat::Mixed { burst_blocks: 2 },
        };
        let eviction = match evict_sel {
            0 => EvictionPolicy::RetainAll,
            1 => EvictionPolicy::SlidingWindow { window_blocks: 2 },
            _ => EvictionPolicy::SlidingWindow { window_blocks: 3 },
        };
        let (qh, kv) = [(1usize, 1usize), (2, 1), (4, 2), (2, 2)][topo_sel];
        let d = 4;
        let block_rows = 4;
        let batch = 3usize;
        let prefill_len = 10;
        let tol = 1e-6;
        let topo = HeadTopology::gqa(qh, kv, AttentionConfig::new(d));

        // A small prefill chunk forces the requeue through several
        // admission passes interleaved with peer decode.
        let mk = || {
            let mut e = DecodeBatch::<f64>::with_policy(
                topo, block_rows, KvLayout::HeadMajor, format, eviction,
            );
            e.set_prefill_chunk(3);
            e
        };
        let mut subject = mk();
        subject.enable_recovery_log();
        let mut golden = mk();
        let ids: Vec<usize> = (0..batch).map(|_| subject.add_sequence()).collect();
        for _ in 0..batch { golden.add_sequence(); }
        let rand = |rows: usize, cols: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, cols, ElementDist::default(), s)
        };
        // The serving frontend's own copy of every admitted row — the
        // recovery source when the engine's log was budget-truncated.
        let mut hist_k: Vec<Vec<f64>> = vec![Vec::new(); batch];
        let mut hist_v: Vec<Vec<f64>> = vec![Vec::new(); batch];
        for (i, &id) in ids.iter().enumerate() {
            let k = rand(prefill_len, topo.kv_dim(), seed.wrapping_add(100 + i as u64));
            let v = rand(prefill_len, topo.kv_dim(), seed.wrapping_add(200 + i as u64));
            hist_k[id].extend_from_slice(k.as_slice());
            hist_v[id].extend_from_slice(v.as_slice());
            subject.prefill(id, &k, &v);
            golden.prefill(id, &k, &v);
        }
        // Lockstep decode of `step_ids` with bitwise-identical outputs
        // asserted; every admitted row lands in the frontend history.
        let decode = |subject: &mut DecodeBatch<f64>, golden: &mut DecodeBatch<f64>,
                      hist_k: &mut Vec<Vec<f64>>, hist_v: &mut Vec<Vec<f64>>,
                      step_ids: &[usize], t0: usize, n: usize| {
            for t in t0..t0 + n {
                let qs = rand(step_ids.len(), topo.q_dim(), seed.wrapping_add(1_000 + t as u64));
                let ks = rand(step_ids.len(), topo.kv_dim(), seed.wrapping_add(2_000 + t as u64));
                let vs = rand(step_ids.len(), topo.kv_dim(), seed.wrapping_add(3_000 + t as u64));
                for (i, &id) in step_ids.iter().enumerate() {
                    hist_k[id].extend_from_slice(ks.row(i));
                    hist_v[id].extend_from_slice(vs.row(i));
                }
                let a = subject.step_all(step_ids, &qs, &ks, &vs);
                let b = golden.step_all(step_ids, &qs, &ks, &vs);
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    for (c, (xa, ya)) in x.output.iter().zip(&y.output).enumerate() {
                        prop_assert_eq!(
                            xa.to_bits(), ya.to_bits(),
                            "step {} seq {} lane {}", t, step_ids[i], c
                        );
                    }
                }
            }
        };
        decode(&mut subject, &mut golden, &mut hist_k, &mut hist_v, &ids, 0, pre_steps);

        let victim = ids[(seed as usize) % batch];
        let peers: Vec<usize> = ids.iter().copied().filter(|&i| i != victim).collect();
        let len = subject.seq_len(victim);
        let key_side = (seed / 23) % 2 == 0;
        let g = (seed as usize / 11) % kv;
        let lane = (seed as usize / 13) % d;

        if trunc_sel == 0 {
            // Full log: any retained-position flip; quarantine requeues
            // the whole history from the log automatically.
            let first = subject.cache().first_retained(victim);
            let pos = first + (seed as usize / 7) % (len - first);
            let bit = if subject.storage_is_bf16(victim, pos) { 13 } else { 61 };
            subject.flip_storage_bit(victim, pos, g, lane, key_side, bit);
            let report = subject.quarantine(victim);
            prop_assert!(report.blocks_freed > 0);
            prop_assert_eq!(report.requeued_rows, len, "full log auto-requeues");
            prop_assert!(subject.is_pending(victim));
        } else {
            // Budget-truncated log: checkpoint clean, truncate to 2 rows,
            // then flip below the log's start — unrecoverable in place.
            subject.set_recovery_log_budget(Some(2));
            prop_assert!(subject.checkpoint_recovery_log(victim, tol));
            prop_assert_eq!(subject.seq_log_rows(victim), 2);
            let first = subject.cache().first_retained(victim);
            prop_assume!(len - 2 > first);
            let pos = first + (seed as usize / 7) % (len - 2 - first);
            let bit = if subject.storage_is_bf16(victim, pos) { 13 } else { 61 };
            subject.flip_storage_bit(victim, pos, g, lane, key_side, bit);
            let faults = subject.audit(victim, tol);
            prop_assert!(!faults.is_empty(), "high-bit flip is visible");
            let report = subject.repair(victim, &faults);
            prop_assert_eq!(report.blocks_unrecoverable, 1, "log truncated past it");
            prop_assert_eq!(report.blocks_recovered, 0);
            let report = subject.quarantine(victim);
            prop_assert!(report.blocks_freed > 0);
            prop_assert_eq!(report.requeued_rows, 0, "truncated log cannot requeue");
            let k = Matrix::from_vec(len, topo.kv_dim(), hist_k[victim].clone());
            let v = Matrix::from_vec(len, topo.kv_dim(), hist_v[victim].clone());
            prop_assert!(subject.resubmit(victim, &k, &v).is_ok());
            prop_assert!(subject.is_pending(victim));
        }

        // Peers keep serving while the victim re-admits chunk by chunk
        // (step_all advances pending chunks); the golden twin pauses its
        // victim too, so peers see identical traffic on both engines.
        let mut waited = 0usize;
        while subject.is_pending(victim) {
            decode(
                &mut subject, &mut golden, &mut hist_k, &mut hist_v,
                &peers, 10_000 + waited, 1,
            );
            waited += 1;
            prop_assert!(waited <= 2 * len, "requeue must terminate");
        }

        // The rebuilt victim is bitwise the undamaged one: same length,
        // clean audit, and bit-identical decode for the whole batch.
        prop_assert_eq!(subject.seq_len(victim), golden.seq_len(victim));
        for &id in &ids {
            prop_assert!(subject.audit(id, tol).is_empty(), "post-requeue audit clean");
        }
        decode(
            &mut subject, &mut golden, &mut hist_k, &mut hist_v,
            &ids, 20_000, post_steps,
        );
    }

    /// The serving frontend's preemption ladder, swept across KvFormat ×
    /// EvictionPolicy × GQA topology: any voluntary preemption schedule —
    /// zero or more soft-tier demotions (`demote`, arbitrary bursts),
    /// then hard-tier evict-and-requeue (`quarantine` + recompute from
    /// the recovery log or the frontend's history) — replays
    /// bit-identical to a never-preempted twin once the victim resumes,
    /// with batch peers lockstep bit for bit at every step in between.
    #[test]
    fn preemption_schedules_resume_bit_identical(
        format_sel in 0usize..4,
        evict_sel in 0usize..3,
        topo_sel in 0usize..4,
        pre_steps in 1usize..6,
        mid_steps in 1usize..4,
        post_steps in 1usize..6,
        demote_count in 0usize..3,
        burst in 0usize..3,
        log_sel in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::{EvictionPolicy, KvFormat};
        use fa_attention::HeadTopology;
        use fa_tensor::random::ElementDist;

        let format = match format_sel {
            0 => KvFormat::F64,
            1 => KvFormat::Bf16,
            2 => KvFormat::Mixed { burst_blocks: 1 },
            _ => KvFormat::Mixed { burst_blocks: 2 },
        };
        let eviction = match evict_sel {
            0 => EvictionPolicy::RetainAll,
            1 => EvictionPolicy::SlidingWindow { window_blocks: 2 },
            _ => EvictionPolicy::SlidingWindow { window_blocks: 3 },
        };
        let (qh, kv) = [(1usize, 1usize), (2, 1), (4, 2), (2, 2)][topo_sel];
        let d = 4;
        let block_rows = 4;
        let batch = 3usize;
        let prefill_len = 10;
        let tol = 1e-6;
        let topo = HeadTopology::gqa(qh, kv, AttentionConfig::new(d));
        let mk = || {
            let mut e = DecodeBatch::<f64>::with_policy(
                topo, block_rows, KvLayout::HeadMajor, format, eviction,
            );
            e.set_prefill_chunk(3);
            e
        };
        let from_log = log_sel == 1;
        let mut subject = mk();
        if from_log {
            subject.enable_recovery_log();
        }
        let mut golden = mk();
        let ids: Vec<usize> = (0..batch).map(|_| subject.add_sequence()).collect();
        for _ in 0..batch { golden.add_sequence(); }
        let rand = |rows: usize, cols: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, cols, ElementDist::default(), s)
        };
        let mut hist_k: Vec<Vec<f64>> = vec![Vec::new(); batch];
        let mut hist_v: Vec<Vec<f64>> = vec![Vec::new(); batch];
        for (i, &id) in ids.iter().enumerate() {
            let k = rand(prefill_len, topo.kv_dim(), seed.wrapping_add(100 + i as u64));
            let v = rand(prefill_len, topo.kv_dim(), seed.wrapping_add(200 + i as u64));
            hist_k[id].extend_from_slice(k.as_slice());
            hist_v[id].extend_from_slice(v.as_slice());
            subject.prefill(id, &k, &v);
            golden.prefill(id, &k, &v);
        }
        let decode = |subject: &mut DecodeBatch<f64>, golden: &mut DecodeBatch<f64>,
                      hist_k: &mut Vec<Vec<f64>>, hist_v: &mut Vec<Vec<f64>>,
                      step_ids: &[usize], t0: usize, n: usize| {
            for t in t0..t0 + n {
                let qs = rand(step_ids.len(), topo.q_dim(), seed.wrapping_add(1_000 + t as u64));
                let ks = rand(step_ids.len(), topo.kv_dim(), seed.wrapping_add(2_000 + t as u64));
                let vs = rand(step_ids.len(), topo.kv_dim(), seed.wrapping_add(3_000 + t as u64));
                for (i, &id) in step_ids.iter().enumerate() {
                    hist_k[id].extend_from_slice(ks.row(i));
                    hist_v[id].extend_from_slice(vs.row(i));
                }
                let a = subject.step_all(step_ids, &qs, &ks, &vs);
                let b = golden.step_all(step_ids, &qs, &ks, &vs);
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    for (c, (xa, ya)) in x.output.iter().zip(&y.output).enumerate() {
                        prop_assert_eq!(
                            xa.to_bits(), ya.to_bits(),
                            "step {} seq {} lane {}", t, step_ids[i], c
                        );
                    }
                }
            }
        };
        decode(&mut subject, &mut golden, &mut hist_k, &mut hist_v, &ids, 0, pre_steps);

        let victim = ids[(seed as usize) % batch];
        let peers: Vec<usize> = ids.iter().copied().filter(|&i| i != victim).collect();

        // The preemption window: the victim pauses on BOTH engines (the
        // never-preempted twin simply does not schedule it) while the
        // subject walks the ladder. Soft tier first — each demotion may
        // round stored rows to BF16, which is exactly why the victim
        // cannot keep decoding against the twin mid-window.
        for dm in 0..demote_count {
            let _ = subject.demote(victim, burst);
            prop_assert!(subject.audit(victim, tol).is_empty(), "demotion {dm} audits clean");
            decode(
                &mut subject, &mut golden, &mut hist_k, &mut hist_v,
                &peers, 10_000 + dm * 100, mid_steps,
            );
        }

        // Hard tier: evict-and-requeue with recompute-on-resume, either
        // auto-requeued from the recovery log or resubmitted from the
        // frontend history. Rebuilding replays the full-precision rows,
        // erasing every demotion above.
        let len = subject.seq_len(victim);
        let report = subject.quarantine(victim);
        prop_assert!(report.blocks_freed > 0);
        if from_log {
            prop_assert_eq!(report.requeued_rows, len, "full log auto-requeues");
        } else {
            prop_assert_eq!(report.requeued_rows, 0, "no log to requeue from");
            let k = Matrix::from_vec(len, topo.kv_dim(), hist_k[victim].clone());
            let v = Matrix::from_vec(len, topo.kv_dim(), hist_v[victim].clone());
            prop_assert!(subject.resubmit(victim, &k, &v).is_ok());
        }
        prop_assert!(subject.is_pending(victim));

        // Peers keep decoding lockstep while the victim re-admits.
        let mut waited = 0usize;
        while subject.is_pending(victim) {
            decode(
                &mut subject, &mut golden, &mut hist_k, &mut hist_v,
                &peers, 20_000 + waited, 1,
            );
            waited += 1;
            prop_assert!(waited <= 2 * len, "requeue must terminate");
        }

        // Resume: the rebuilt victim is bitwise the never-preempted one.
        prop_assert_eq!(subject.seq_len(victim), golden.seq_len(victim));
        prop_assert_eq!(subject.demoted_len(victim), golden.demoted_len(victim),
            "requeue re-runs the same format policy as the twin");
        for &id in &ids {
            prop_assert!(subject.audit(id, tol).is_empty(), "post-resume audit clean");
        }
        decode(
            &mut subject, &mut golden, &mut hist_k, &mut hist_v,
            &ids, 30_000, post_steps,
        );
    }

    /// The speculative-decoding headline: **any** accept/reject schedule
    /// — swept across KvFormat × EvictionPolicy × GQA topology ×
    /// shared-prefix attachment × thread count — replays bit-identical
    /// to non-speculative decode of exactly the accepted tokens, window
    /// outputs and checksum verdicts included, and the engine keeps
    /// decoding lockstep with the sequential twin afterwards with every
    /// BlockCheck/sumrow rewound bitwise.
    #[test]
    fn speculative_schedules_replay_bit_identical_to_sequential_decode(
        format_sel in 0usize..4,
        evict_sel in 0usize..3,
        topo_sel in 0usize..4,
        share_sel in 0usize..2,
        gamma in 2usize..6,
        threads in 1usize..5,
        pre_steps in 0usize..3,
        post_steps in 1usize..4,
        rounds in 1usize..3,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::{EvictionPolicy, KvFormat};
        use fa_attention::HeadTopology;
        use fa_tensor::random::ElementDist;

        let format = match format_sel {
            0 => KvFormat::F64,
            1 => KvFormat::Bf16,
            2 => KvFormat::Mixed { burst_blocks: 1 },
            _ => KvFormat::Mixed { burst_blocks: 2 },
        };
        let eviction = match evict_sel {
            0 => EvictionPolicy::RetainAll,
            1 => EvictionPolicy::SlidingWindow { window_blocks: 2 },
            _ => EvictionPolicy::SlidingWindow { window_blocks: 3 },
        };
        let (qh, kv) = [(1usize, 1usize), (2, 1), (4, 2), (2, 2)][topo_sel];
        let shared = share_sel == 1;
        let d = 4;
        let block_rows = 4;
        let batch = 3usize;
        let topo = HeadTopology::gqa(qh, kv, AttentionConfig::new(d));
        let rand = |rows: usize, cols: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, cols, ElementDist::default(), s)
        };
        // Per-(sequence, token-index) stream rows: accepted window
        // positions and the twin's sequential decode draw the SAME rows;
        // rejected positions draw from a disjoint lane group, so a
        // proposal past the accept point can never collide with the
        // true stream.
        let srow = |i: usize, t: usize, lane: u64, cols: usize| {
            rand(
                1,
                cols,
                seed.wrapping_add(7_000)
                    .wrapping_add(i as u64 * 65_536)
                    .wrapping_add(t as u64 * 8)
                    .wrapping_add(lane),
            )
        };

        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                let mk = || {
                    let mut e = DecodeBatch::<f64>::with_policy(
                        topo, block_rows, KvLayout::HeadMajor, format, eviction,
                    );
                    e.set_prefill_chunk(3);
                    e
                };
                let mut subject = mk();
                let mut golden = mk();
                let mut ids: Vec<usize> = Vec::new();
                if shared {
                    // Every sequence rides one 6-row registered prefix: the
                    // half-filled shared tail forces the window's first
                    // append to CoW-split, and rollback must restore the
                    // share for all readers.
                    let pq = rand(6, topo.q_dim(), seed ^ 0xA11CE);
                    let pk = rand(6, topo.kv_dim(), seed ^ 0xB0B);
                    let pv = rand(6, topo.kv_dim(), seed ^ 0xCAFE);
                    let pid_s = subject.register_prefix(&pq, &pk, &pv);
                    let pid_g = golden.register_prefix(&pq, &pk, &pv);
                    let eq = Matrix::zeros(0, topo.q_dim());
                    let ekv = Matrix::zeros(0, topo.kv_dim());
                    for _ in 0..batch {
                        ids.push(subject.enqueue_shared(pid_s, &eq, &ekv, &ekv));
                        golden.enqueue_shared(pid_g, &eq, &ekv, &ekv);
                    }
                } else {
                    for i in 0..batch {
                        let id = subject.add_sequence();
                        golden.add_sequence();
                        let k = rand(10, topo.kv_dim(), seed.wrapping_add(100 + i as u64));
                        let v = rand(10, topo.kv_dim(), seed.wrapping_add(200 + i as u64));
                        subject.prefill(id, &k, &v);
                        golden.prefill(id, &k, &v);
                        ids.push(id);
                    }
                }
                let mut decoded = vec![0usize; batch];
                // Sequential lockstep decode of every sequence, outputs
                // bit-asserted subject vs golden.
                let lockstep = |subject: &mut DecodeBatch<f64>,
                                golden: &mut DecodeBatch<f64>,
                                decoded: &mut Vec<usize>,
                                n: usize| {
                    for _ in 0..n {
                        let (qd, kd) = (topo.q_dim(), topo.kv_dim());
                        let (mut qdat, mut kdat, mut vdat) = (Vec::new(), Vec::new(), Vec::new());
                        for (i, &dec) in decoded.iter().enumerate() {
                            qdat.extend_from_slice(srow(i, dec, 0, qd).as_slice());
                            kdat.extend_from_slice(srow(i, dec, 1, kd).as_slice());
                            vdat.extend_from_slice(srow(i, dec, 2, kd).as_slice());
                        }
                        let qs = Matrix::from_vec(batch, qd, qdat);
                        let ks = Matrix::from_vec(batch, kd, kdat);
                        let vs = Matrix::from_vec(batch, kd, vdat);
                        let a = subject.step_decode(&ids, &qs, &ks, &vs);
                        let b = golden.step_decode(&ids, &qs, &ks, &vs);
                        for (x, y) in a.iter().zip(&b) {
                            prop_assert_eq!(x.predicted.to_bits(), y.predicted.to_bits());
                            prop_assert_eq!(x.actual.to_bits(), y.actual.to_bits());
                            for (xa, ya) in x.output.iter().zip(&y.output) {
                                prop_assert_eq!(xa.to_bits(), ya.to_bits());
                            }
                        }
                        for c in decoded.iter_mut() {
                            *c += 1;
                        }
                    }
                };
                lockstep(&mut subject, &mut golden, &mut decoded, pre_steps);

                for r in 0..rounds {
                    // A seed-derived accept/reject schedule, 0..=γ each.
                    let accepted: Vec<usize> = (0..batch)
                        .map(|i| {
                            (seed >> (2 * (r * batch + i))) as usize % (gamma + 1)
                        })
                        .collect();
                    let (qd, kd) = (topo.q_dim(), topo.kv_dim());
                    let (mut qdat, mut kdat, mut vdat) = (Vec::new(), Vec::new(), Vec::new());
                    for i in 0..batch {
                        for j in 0..gamma {
                            let t = decoded[i] + j;
                            let lane = if j < accepted[i] { 0 } else { 4 };
                            qdat.extend_from_slice(srow(i, t, lane, qd).as_slice());
                            kdat.extend_from_slice(srow(i, t, lane + 1, kd).as_slice());
                            vdat.extend_from_slice(srow(i, t, lane + 2, kd).as_slice());
                        }
                    }
                    let qs = Matrix::from_vec(batch * gamma, qd, qdat);
                    let ks = Matrix::from_vec(batch * gamma, kd, kdat);
                    let vs = Matrix::from_vec(batch * gamma, kd, vdat);
                    let outs = subject.speculate(&ids, &qs, &ks, &vs, gamma);

                    // The golden twin decodes exactly the accepted tokens,
                    // sequentially: every window output over the accepted
                    // prefix must match it bit for bit, verdict included.
                    #[allow(clippy::needless_range_loop)]
                    for t in 0..gamma {
                        let live: Vec<usize> =
                            (0..batch).filter(|&i| accepted[i] > t).collect();
                        if live.is_empty() {
                            continue;
                        }
                        let (mut gq, mut gk, mut gv) = (Vec::new(), Vec::new(), Vec::new());
                        let step_ids: Vec<usize> = live.iter().map(|&i| ids[i]).collect();
                        for &i in &live {
                            gq.extend_from_slice(srow(i, decoded[i] + t, 0, qd).as_slice());
                            gk.extend_from_slice(srow(i, decoded[i] + t, 1, kd).as_slice());
                            gv.extend_from_slice(srow(i, decoded[i] + t, 2, kd).as_slice());
                        }
                        let gq = Matrix::from_vec(live.len(), qd, gq);
                        let gk = Matrix::from_vec(live.len(), kd, gk);
                        let gv = Matrix::from_vec(live.len(), kd, gv);
                        let outs_g = golden.step_decode(&step_ids, &gq, &gk, &gv);
                        for (x, &i) in outs_g.iter().zip(&live) {
                            let w = &outs[i][t];
                            prop_assert_eq!(
                                w.predicted.to_bits(), x.predicted.to_bits(),
                                "round {} token {} seq {} predicted", r, t, i
                            );
                            prop_assert_eq!(
                                w.actual.to_bits(), x.actual.to_bits(),
                                "round {} token {} seq {} actual", r, t, i
                            );
                            for (c, (wa, xa)) in w.output.iter().zip(&x.output).enumerate() {
                                prop_assert_eq!(
                                    wa.to_bits(), xa.to_bits(),
                                    "round {} token {} seq {} lane {}", r, t, i, c
                                );
                            }
                        }
                    }
                    subject.resolve_speculation(&accepted);
                    for (i, a) in accepted.iter().enumerate() {
                        decoded[i] += a;
                    }
                    for (i, &id) in ids.iter().enumerate() {
                        prop_assert_eq!(
                            subject.seq_len(id), golden.seq_len(id),
                            "round {} seq {} length", r, i
                        );
                        prop_assert_eq!(
                            subject.demoted_len(id), golden.demoted_len(id),
                            "round {} seq {} demotion schedule", r, i
                        );
                        prop_assert!(
                            subject.rewind_checks_clean(id),
                            "round {r} seq {i}: BlockChecks/sumrows must rewind bitwise"
                        );
                    }
                }
                lockstep(&mut subject, &mut golden, &mut decoded, post_steps);
                assert_block_owners_consistent(&subject);
            });
    }

    /// Satellite: live corruption **inside** the speculative window. A
    /// value-side exponent flip in a recent cached row makes the window
    /// verdict over it alarm before anything is delivered; rejecting the
    /// whole window, quarantining the victim, and recomputing (from the
    /// recovery log or the frontend history) resumes bit-identical to a
    /// never-corrupted sequential twin — peers lockstep throughout.
    #[test]
    fn corruption_inside_the_speculative_window_alarms_before_delivery(
        format_sel in 0usize..4,
        evict_sel in 0usize..3,
        topo_sel in 0usize..4,
        gamma in 2usize..6,
        pre_steps in 1usize..4,
        post_steps in 1usize..4,
        log_sel in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::{EvictionPolicy, KvFormat};
        use fa_attention::HeadTopology;
        use fa_tensor::random::ElementDist;

        let format = match format_sel {
            0 => KvFormat::F64,
            1 => KvFormat::Bf16,
            2 => KvFormat::Mixed { burst_blocks: 1 },
            _ => KvFormat::Mixed { burst_blocks: 2 },
        };
        let eviction = match evict_sel {
            0 => EvictionPolicy::RetainAll,
            1 => EvictionPolicy::SlidingWindow { window_blocks: 2 },
            _ => EvictionPolicy::SlidingWindow { window_blocks: 3 },
        };
        let (qh, kv) = [(1usize, 1usize), (2, 1), (4, 2), (2, 2)][topo_sel];
        let d = 4;
        let block_rows = 4;
        let batch = 3usize;
        let prefill_len = 10;
        let tol = 1e-6;
        let from_log = log_sel == 1;
        let topo = HeadTopology::gqa(qh, kv, AttentionConfig::new(d));
        let mk = || {
            let mut e = DecodeBatch::<f64>::with_policy(
                topo, block_rows, KvLayout::HeadMajor, format, eviction,
            );
            e.set_prefill_chunk(3);
            e
        };
        let mut subject = mk();
        if from_log {
            subject.enable_recovery_log();
        }
        let mut golden = mk();
        let rand = |rows: usize, cols: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, cols, ElementDist::default(), s)
        };
        let srow = |i: usize, t: usize, lane: u64, cols: usize| {
            rand(
                1,
                cols,
                seed.wrapping_add(7_000)
                    .wrapping_add(i as u64 * 65_536)
                    .wrapping_add(t as u64 * 8)
                    .wrapping_add(lane),
            )
        };
        let ids: Vec<usize> = (0..batch).map(|_| subject.add_sequence()).collect();
        for _ in 0..batch {
            golden.add_sequence();
        }
        let mut hist_k: Vec<Vec<f64>> = vec![Vec::new(); batch];
        let mut hist_v: Vec<Vec<f64>> = vec![Vec::new(); batch];
        for (i, &id) in ids.iter().enumerate() {
            let k = rand(prefill_len, topo.kv_dim(), seed.wrapping_add(100 + i as u64));
            let v = rand(prefill_len, topo.kv_dim(), seed.wrapping_add(200 + i as u64));
            hist_k[i].extend_from_slice(k.as_slice());
            hist_v[i].extend_from_slice(v.as_slice());
            subject.prefill(id, &k, &v);
            golden.prefill(id, &k, &v);
        }
        let mut decoded = vec![0usize; batch];
        // Lockstep decode of the listed member indices, bit-asserted,
        // with the frontend history tracking every accepted row.
        let lockstep = |subject: &mut DecodeBatch<f64>,
                        golden: &mut DecodeBatch<f64>,
                        hist_k: &mut Vec<Vec<f64>>,
                        hist_v: &mut Vec<Vec<f64>>,
                        decoded: &mut Vec<usize>,
                        members: &[usize],
                        n: usize| {
            for _ in 0..n {
                let (qd, kd) = (topo.q_dim(), topo.kv_dim());
                let (mut qdat, mut kdat, mut vdat) = (Vec::new(), Vec::new(), Vec::new());
                let step_ids: Vec<usize> = members.iter().map(|&i| ids[i]).collect();
                for &i in members {
                    let q = srow(i, decoded[i], 0, qd);
                    let k = srow(i, decoded[i], 1, kd);
                    let v = srow(i, decoded[i], 2, kd);
                    hist_k[i].extend_from_slice(k.as_slice());
                    hist_v[i].extend_from_slice(v.as_slice());
                    qdat.extend_from_slice(q.as_slice());
                    kdat.extend_from_slice(k.as_slice());
                    vdat.extend_from_slice(v.as_slice());
                }
                let qs = Matrix::from_vec(members.len(), qd, qdat);
                let ks = Matrix::from_vec(members.len(), kd, kdat);
                let vs = Matrix::from_vec(members.len(), kd, vdat);
                // step_all, not step_decode: it also advances the
                // requeued victim's pending chunks while peers serve.
                let a = subject.step_all(&step_ids, &qs, &ks, &vs);
                let b = golden.step_all(&step_ids, &qs, &ks, &vs);
                for (x, y) in a.iter().zip(&b) {
                    for (xa, ya) in x.output.iter().zip(&y.output) {
                        prop_assert_eq!(xa.to_bits(), ya.to_bits());
                    }
                }
                for &i in members {
                    decoded[i] += 1;
                }
            }
        };
        let all: Vec<usize> = (0..batch).collect();
        lockstep(
            &mut subject, &mut golden, &mut hist_k, &mut hist_v,
            &mut decoded, &all, pre_steps,
        );

        // Flip the top exponent bit of a value lane in the victim's most
        // recent row: |v| < 2 everywhere, so the flip explodes the value
        // and the fused verdict over it cannot stay inside tol.
        let vi = (seed as usize) % batch;
        let victim = ids[vi];
        let peers: Vec<usize> = (0..batch).filter(|&i| i != vi).collect();
        let pos = subject.seq_len(victim) - 1;
        let g = (seed as usize / 11) % kv;
        let lane = (seed as usize / 13) % d;
        let bit = if subject.storage_is_bf16(victim, pos) { 14 } else { 62 };
        subject.flip_storage_bit(victim, pos, g, lane, false, bit);

        // Open a window of entirely true draft rows: without the fault
        // every token would verify.
        let (qd, kd) = (topo.q_dim(), topo.kv_dim());
        let (mut qdat, mut kdat, mut vdat) = (Vec::new(), Vec::new(), Vec::new());
        for (i, &dec) in decoded.iter().enumerate() {
            for j in 0..gamma {
                qdat.extend_from_slice(srow(i, dec + j, 0, qd).as_slice());
                kdat.extend_from_slice(srow(i, dec + j, 1, kd).as_slice());
                vdat.extend_from_slice(srow(i, dec + j, 2, kd).as_slice());
            }
        }
        let qs = Matrix::from_vec(batch * gamma, qd, qdat);
        let ks = Matrix::from_vec(batch * gamma, kd, kdat);
        let vs = Matrix::from_vec(batch * gamma, kd, vdat);
        let outs = subject.speculate(&ids, &qs, &ks, &vs, gamma);

        // The alarm fires inside the window, before delivery; peers
        // verify clean.
        let res = outs[vi][0].residual().abs();
        prop_assert!(
            res.is_nan() || res > tol,
            "window token 0 over the flipped value must alarm (residual {res:e})"
        );
        for &i in &peers {
            for (t, o) in outs[i].iter().enumerate() {
                let r = o.residual().abs();
                prop_assert!(r <= tol, "peer {i} window token {t} stays clean");
            }
        }

        // Reject the victim's whole window; peers accept all of theirs.
        // The golden twin decodes the peers' tokens sequentially.
        let accepted: Vec<usize> = (0..batch)
            .map(|i| if i == vi { 0 } else { gamma })
            .collect();
        #[allow(clippy::needless_range_loop)]
        for t in 0..gamma {
            let (mut gq, mut gk, mut gv) = (Vec::new(), Vec::new(), Vec::new());
            let step_ids: Vec<usize> = peers.iter().map(|&i| ids[i]).collect();
            for &i in &peers {
                gq.extend_from_slice(srow(i, decoded[i] + t, 0, qd).as_slice());
                gk.extend_from_slice(srow(i, decoded[i] + t, 1, kd).as_slice());
                gv.extend_from_slice(srow(i, decoded[i] + t, 2, kd).as_slice());
            }
            let gq = Matrix::from_vec(peers.len(), qd, gq);
            let gk = Matrix::from_vec(peers.len(), kd, gk);
            let gv = Matrix::from_vec(peers.len(), kd, gv);
            let outs_g = golden.step_decode(&step_ids, &gq, &gk, &gv);
            for (x, &i) in outs_g.iter().zip(&peers) {
                for (wa, xa) in outs[i][t].output.iter().zip(&x.output) {
                    prop_assert_eq!(wa.to_bits(), xa.to_bits());
                }
            }
        }
        subject.resolve_speculation(&accepted);
        for &i in &peers {
            for j in 0..gamma {
                let k = srow(i, decoded[i] + j, 1, kd);
                let v = srow(i, decoded[i] + j, 2, kd);
                hist_k[i].extend_from_slice(k.as_slice());
                hist_v[i].extend_from_slice(v.as_slice());
            }
            decoded[i] += gamma;
            prop_assert!(subject.rewind_checks_clean(ids[i]));
        }
        // The rewound victim still carries the storage fault — the
        // rollback restores pre-window state exactly, corruption and
        // all — so its checks cannot audit clean until recovery.
        prop_assert!(
            !subject.rewind_checks_clean(victim),
            "the flipped lane must survive rollback for the audit to see"
        );

        // Quarantine and recompute the victim (auto-requeue from the
        // recovery log, or resubmit from the frontend history).
        let len = subject.seq_len(victim);
        let report = subject.quarantine(victim);
        prop_assert!(report.blocks_freed > 0);
        if from_log {
            prop_assert_eq!(report.requeued_rows, len, "full log auto-requeues");
        } else {
            prop_assert_eq!(report.requeued_rows, 0, "no log to requeue from");
            let k = Matrix::from_vec(len, topo.kv_dim(), hist_k[vi].clone());
            let v = Matrix::from_vec(len, topo.kv_dim(), hist_v[vi].clone());
            prop_assert!(subject.resubmit(victim, &k, &v).is_ok());
        }
        prop_assert!(subject.is_pending(victim));
        let mut waited = 0usize;
        while subject.is_pending(victim) {
            lockstep(
                &mut subject, &mut golden, &mut hist_k, &mut hist_v,
                &mut decoded, &peers, 1,
            );
            waited += 1;
            prop_assert!(waited <= 2 * len, "requeue must terminate");
        }

        // Resume: bit-identical to the never-corrupted twin, clean audit.
        prop_assert_eq!(subject.seq_len(victim), golden.seq_len(victim));
        for &id in &ids {
            prop_assert!(subject.audit(id, tol).is_empty(), "post-recovery audit clean");
        }
        lockstep(
            &mut subject, &mut golden, &mut hist_k, &mut hist_v,
            &mut decoded, &all, post_steps,
        );
        assert_block_owners_consistent(&subject);
    }
}

/// Block-ownership census for the prefix-sharing arena: every unretired
/// sequence and every registered prefix contributes one reference per
/// block it holds. The arena agrees when (a) the number of distinct held
/// blocks equals the physically allocated, not-free-listed count — no
/// leaked orphans, no freed-but-held aliases — and (b) every block's
/// refcount equals its holder count — no lost or double-counted
/// references to decrement into a double free later.
fn assert_block_owners_consistent(e: &DecodeBatch<f64>) {
    use fa_attention::batch::BlockRef;
    use std::collections::HashMap;
    let mut owners: HashMap<(bool, usize), u32> = HashMap::new();
    for s in 0..e.num_sequences() {
        if e.is_retired(s) {
            continue;
        }
        for b in e.cache().seq_blocks(s) {
            *owners.entry((b.bf16, b.index)).or_insert(0) += 1;
        }
    }
    for id in e.prefix_ids() {
        for b in e.prefix_blocks(id) {
            *owners.entry((b.bf16, b.index)).or_insert(0) += 1;
        }
    }
    assert_eq!(
        owners.len(),
        e.cache().live_unique_blocks(),
        "allocated-but-unowned block (leak) or held-but-freed block (double free)"
    );
    for (&(bf16, index), &n) in &owners {
        assert_eq!(
            e.cache().block_ref_count(BlockRef { index, bf16 }),
            n,
            "refcount disagrees with the owner census at block {index} (bf16 {bf16})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Refcount lifecycle under admit/share/diverge/demote/quarantine/
    /// retire storms, swept across KvFormat × EvictionPolicy × GQA
    /// topology: after every operation the block-ownership census
    /// balances (no leak ever accumulates, no reference is dropped
    /// twice), every live reader audits clean, and tearing everything
    /// down returns every block of both arenas to the free lists.
    #[test]
    fn shared_prefix_storms_never_leak_or_double_free(
        format_sel in 0usize..4,
        evict_sel in 0usize..3,
        topo_sel in 0usize..4,
        prefix_mult in 1usize..3,
        ops in proptest::collection::vec((0usize..5, 0usize..16), 6..18),
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::{EvictionPolicy, KvFormat};
        use fa_attention::HeadTopology;
        use fa_tensor::random::ElementDist;

        let format = match format_sel {
            0 => KvFormat::F64,
            1 => KvFormat::Bf16,
            2 => KvFormat::Mixed { burst_blocks: 1 },
            _ => KvFormat::Mixed { burst_blocks: 2 },
        };
        let eviction = match evict_sel {
            0 => EvictionPolicy::RetainAll,
            1 => EvictionPolicy::SlidingWindow { window_blocks: 2 },
            _ => EvictionPolicy::SlidingWindow { window_blocks: 3 },
        };
        let (qh, kv) = [(1usize, 1usize), (2, 1), (4, 2), (2, 2)][topo_sel];
        let d = 4;
        let tol = 1e-6;
        let topo = HeadTopology::gqa(qh, kv, AttentionConfig::new(d));
        let mut e = DecodeBatch::<f64>::with_policy(
            topo, 4, KvLayout::HeadMajor, format, eviction,
        );
        e.set_prefill_chunk(3);
        e.enable_recovery_log();
        let rand = |rows: usize, cols: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, cols, ElementDist::default(), s)
        };

        // Two registered prefixes of different lengths (one spills into a
        // partially-filled tail block, so shared appends exercise CoW).
        let mut prefix_ids = Vec::new();
        for p in 0..2u64 {
            let rows = 3 * (prefix_mult + p as usize);
            let q = rand(rows, topo.q_dim(), seed.wrapping_add(10 + p));
            let k = rand(rows, topo.kv_dim(), seed.wrapping_add(20 + p));
            let v = rand(rows, topo.kv_dim(), seed.wrapping_add(30 + p));
            prefix_ids.push(e.register_prefix(&q, &k, &v));
        }
        assert_block_owners_consistent(&e);

        let mut live: Vec<usize> = Vec::new();
        let mut admits = 0u64;
        let mut t = 0u64;
        for (op, arg) in ops {
            match op {
                0 => {
                    // Admit a reader behind a random prefix, with a
                    // random (possibly empty) private suffix.
                    let id = prefix_ids[arg % prefix_ids.len()];
                    let rows = arg % 5;
                    let q = rand(rows, topo.q_dim(), seed.wrapping_add(500 + admits * 3));
                    let k = rand(rows, topo.kv_dim(), seed.wrapping_add(501 + admits * 3));
                    let v = rand(rows, topo.kv_dim(), seed.wrapping_add(502 + admits * 3));
                    let s = e.enqueue_shared(id, &q, &k, &v);
                    while e.prefill_step() > 0 {}
                    let _ = e.take_admitted(s);
                    live.push(s);
                    admits += 1;
                }
                1 => {
                    // One decode step over every live reader (divergent
                    // appends: private blocks, CoW off shared tails).
                    if !live.is_empty() {
                        let qs = rand(live.len(), topo.q_dim(), seed.wrapping_add(5_000 + t * 3));
                        let ks = rand(live.len(), topo.kv_dim(), seed.wrapping_add(5_001 + t * 3));
                        let vs = rand(live.len(), topo.kv_dim(), seed.wrapping_add(5_002 + t * 3));
                        let _ = e.step_all(&live, &qs, &ks, &vs);
                        t += 1;
                    }
                }
                2 => {
                    // Soft-tier demotion (a shared native block demotes
                    // into a private BF16 copy — copy-on-write).
                    if !live.is_empty() {
                        let s = live[arg % live.len()];
                        let _ = e.demote(s, arg % 3);
                    }
                }
                3 => {
                    // Quarantine: drop the reader's shared references and
                    // rebuild its whole history privately from the log.
                    if !live.is_empty() {
                        let s = live[arg % live.len()];
                        let _ = e.quarantine(s);
                        while e.prefill_step() > 0 {}
                        let _ = e.take_admitted(s);
                        prop_assert!(!e.is_pending(s), "the seeded log rebuilds fully");
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let s = live.swap_remove(arg % live.len());
                        e.retire(s);
                    }
                }
            }
            assert_block_owners_consistent(&e);
            for &s in &live {
                prop_assert!(e.audit(s, tol).is_empty(), "live readers audit clean");
            }
        }

        // Teardown: retiring every reader and releasing every prefix
        // must return both arenas to empty.
        for s in live.drain(..) {
            e.retire(s);
        }
        assert_block_owners_consistent(&e);
        for id in prefix_ids {
            e.release_prefix(id);
        }
        prop_assert_eq!(e.cache().live_unique_blocks(), 0, "teardown frees every block");
    }

    /// Shared-prefix admission swept across KvFormat × EvictionPolicy ×
    /// GQA topology × random suffix lengths: every reader's admitted
    /// suffix output and every decode token is bit-identical to an
    /// unshared engine replaying `prefix ‖ suffix` on the same
    /// chunk-aligned schedule — with shared-block batched scoring on
    /// *and* off — while the shared arena never holds more unique blocks
    /// than the unshared one.
    #[test]
    fn shared_admission_bit_identical_to_unshared_replay_swept(
        format_sel in 0usize..4,
        evict_sel in 0usize..3,
        topo_sel in 0usize..4,
        prefix_mult in 1usize..3,
        suffixes in proptest::collection::vec(0usize..6, 2..5),
        post_steps in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::{EvictionPolicy, KvFormat};
        use fa_attention::HeadTopology;
        use fa_tensor::random::ElementDist;

        let format = match format_sel {
            0 => KvFormat::F64,
            1 => KvFormat::Bf16,
            2 => KvFormat::Mixed { burst_blocks: 1 },
            _ => KvFormat::Mixed { burst_blocks: 2 },
        };
        let eviction = match evict_sel {
            0 => EvictionPolicy::RetainAll,
            1 => EvictionPolicy::SlidingWindow { window_blocks: 2 },
            _ => EvictionPolicy::SlidingWindow { window_blocks: 3 },
        };
        let (qh, kv) = [(1usize, 1usize), (2, 1), (4, 2), (2, 2)][topo_sel];
        let d = 4;
        let tol = 1e-6;
        let topo = HeadTopology::gqa(qh, kv, AttentionConfig::new(d));
        // Chunk 3 with block 4: a prefix of 3·prefix_mult rows is always
        // chunk-aligned (the bit-identicality precondition) yet lands
        // mid-block half the time, exercising tail copy-on-write.
        let prefix_rows = 3 * prefix_mult;
        let mk = || {
            let mut e = DecodeBatch::<f64>::with_policy(
                topo, 4, KvLayout::HeadMajor, format, eviction,
            );
            e.set_prefill_chunk(3);
            e
        };
        let rand = |rows: usize, cols: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, cols, ElementDist::default(), s)
        };
        let vcat = |a: &Matrix<f64>, b: &Matrix<f64>| {
            Matrix::from_fn(a.rows() + b.rows(), a.cols(), |r, c| {
                if r < a.rows() { a[(r, c)] } else { b[(r - a.rows(), c)] }
            })
        };

        let mut shared = mk();
        let mut unbatched = mk();
        unbatched.set_shared_scoring(false);
        let mut plain = mk();
        let pq = rand(prefix_rows, topo.q_dim(), seed.wrapping_add(1));
        let pk = rand(prefix_rows, topo.kv_dim(), seed.wrapping_add(2));
        let pv = rand(prefix_rows, topo.kv_dim(), seed.wrapping_add(3));
        let id_a = shared.register_prefix(&pq, &pk, &pv);
        let id_b = unbatched.register_prefix(&pq, &pk, &pv);
        let (mut s_ids, mut u_ids, mut p_ids) = (Vec::new(), Vec::new(), Vec::new());
        for (i, &rows) in suffixes.iter().enumerate() {
            let q = rand(rows, topo.q_dim(), seed.wrapping_add(100 + 3 * i as u64));
            let k = rand(rows, topo.kv_dim(), seed.wrapping_add(101 + 3 * i as u64));
            let v = rand(rows, topo.kv_dim(), seed.wrapping_add(102 + 3 * i as u64));
            s_ids.push(shared.enqueue_shared(id_a, &q, &k, &v));
            u_ids.push(unbatched.enqueue_shared(id_b, &q, &k, &v));
            p_ids.push(plain.enqueue(&vcat(&pq, &q), &vcat(&pk, &k), &vcat(&pv, &v)));
        }
        while shared.prefill_step() > 0 {}
        while unbatched.prefill_step() > 0 {}
        while plain.prefill_step() > 0 {}
        for (i, &rows) in suffixes.iter().enumerate() {
            let sa = shared.take_admitted(s_ids[i]).expect("suffix parks an admission");
            let ua = unbatched.take_admitted(u_ids[i]).expect("suffix parks an admission");
            let pa = plain.take_admitted(p_ids[i]).expect("prompt parks an admission");
            for r in 0..rows {
                for c in 0..topo.q_dim() {
                    let want = pa.output[(prefix_rows + r, c)].to_bits();
                    prop_assert_eq!(sa.output[(r, c)].to_bits(), want,
                        "reader {} suffix row {} lane {}", i, r, c);
                    prop_assert_eq!(ua.output[(r, c)].to_bits(), want,
                        "reader {} (scoring off) suffix row {} lane {}", i, r, c);
                }
            }
        }
        // Worst case (every prefix block CoW'd or slid out of every
        // reader's window) sharing still costs at most the registry's
        // own pinned copy of the prefix.
        prop_assert!(
            shared.cache().live_unique_blocks()
                <= plain.cache().live_unique_blocks() + shared.prefix_blocks(id_a).len(),
            "sharing costs at most the registry's pinned prefix copy"
        );

        for t in 0..post_steps as u64 {
            let n = s_ids.len();
            let qs = rand(n, topo.q_dim(), seed.wrapping_add(1_000 + 3 * t));
            let ks = rand(n, topo.kv_dim(), seed.wrapping_add(1_001 + 3 * t));
            let vs = rand(n, topo.kv_dim(), seed.wrapping_add(1_002 + 3 * t));
            let a = shared.step_all(&s_ids, &qs, &ks, &vs);
            let b = unbatched.step_all(&u_ids, &qs, &ks, &vs);
            let c = plain.step_all(&p_ids, &qs, &ks, &vs);
            for i in 0..n {
                for (l, want) in c[i].output.iter().enumerate() {
                    prop_assert_eq!(a[i].output[l].to_bits(), want.to_bits(),
                        "step {} reader {} lane {}", t, i, l);
                    prop_assert_eq!(b[i].output[l].to_bits(), want.to_bits(),
                        "step {} reader {} (scoring off) lane {}", t, i, l);
                }
            }
        }
        prop_assert_eq!(unbatched.shared_score_tiles(), 0, "toggle off means no tiles");
        for &s in &s_ids {
            prop_assert!(shared.audit(s, tol).is_empty(), "shared readers audit clean");
        }
    }

    /// A poisoned shared block repairs exactly once for all readers,
    /// swept across GQA topology × reader count × fault site: a bit flip
    /// inside the shared prefix storage alarms *every* reader's audit,
    /// one `audit_and_repair` through any single reader restores the
    /// shared storage in place, every reader then audits clean, and all
    /// of them decode bit-identical to a never-faulted twin.
    #[test]
    fn poisoned_shared_prefix_repairs_once_for_all_readers(
        topo_sel in 0usize..4,
        n_readers in 2usize..4,
        pos_sel in 0usize..4,
        lane_sel in 0usize..4,
        key_side in any::<bool>(),
        bit_sel in 0u32..3,
        post_steps in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::{EvictionPolicy, KvFormat};
        use fa_attention::HeadTopology;
        use fa_tensor::random::ElementDist;

        let (qh, kv) = [(1usize, 1usize), (2, 1), (4, 2), (2, 2)][topo_sel];
        let d = 4;
        let tol = 1e-6;
        let topo = HeadTopology::gqa(qh, kv, AttentionConfig::new(d));
        let mk = || {
            let mut e = DecodeBatch::<f64>::with_policy(
                topo, 4, KvLayout::HeadMajor, KvFormat::F64, EvictionPolicy::RetainAll,
            );
            e.set_prefill_chunk(4);
            e.enable_recovery_log();
            e
        };
        let rand = |rows: usize, cols: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, cols, ElementDist::default(), s)
        };
        let mut subject = mk();
        let mut golden = mk();
        let pq = rand(8, topo.q_dim(), seed.wrapping_add(1));
        let pk = rand(8, topo.kv_dim(), seed.wrapping_add(2));
        let pv = rand(8, topo.kv_dim(), seed.wrapping_add(3));
        let id_s = subject.register_prefix(&pq, &pk, &pv);
        let id_g = golden.register_prefix(&pq, &pk, &pv);
        let (mut s_ids, mut g_ids) = (Vec::new(), Vec::new());
        for i in 0..n_readers {
            let rows = i + 1;
            let q = rand(rows, topo.q_dim(), seed.wrapping_add(100 + 3 * i as u64));
            let k = rand(rows, topo.kv_dim(), seed.wrapping_add(101 + 3 * i as u64));
            let v = rand(rows, topo.kv_dim(), seed.wrapping_add(102 + 3 * i as u64));
            s_ids.push(subject.enqueue_shared(id_s, &q, &k, &v));
            g_ids.push(golden.enqueue_shared(id_g, &q, &k, &v));
        }
        while subject.prefill_step() > 0 {}
        while golden.prefill_step() > 0 {}
        for i in 0..n_readers {
            let _ = subject.take_admitted(s_ids[i]);
            let _ = golden.take_admitted(g_ids[i]);
        }
        for &s in &s_ids {
            prop_assert!(subject.audit(s, tol).is_empty(), "fault-free audit clean");
        }

        // Flip a high exponent bit inside the first (fully shared) prefix
        // block, addressed through reader 0 — the storage is one physical
        // block, so the damage is visible through every reader.
        subject.flip_storage_bit(
            s_ids[0], pos_sel, lane_sel % kv, lane_sel % d, key_side, 60 + bit_sel,
        );
        for &s in &s_ids {
            prop_assert!(
                !subject.audit(s, tol).is_empty(),
                "every reader sees the shared fault"
            );
        }
        let report = subject.audit_and_repair(s_ids[0], tol);
        prop_assert!(report.rows_rewritten >= 1, "the log rewrites the poisoned rows");
        prop_assert_eq!(report.blocks_unrecoverable, 0);
        for &s in &s_ids {
            prop_assert!(subject.audit(s, tol).is_empty(), "one repair clears every reader");
        }

        for t in 0..post_steps as u64 {
            let qs = rand(n_readers, topo.q_dim(), seed.wrapping_add(1_000 + 3 * t));
            let ks = rand(n_readers, topo.kv_dim(), seed.wrapping_add(1_001 + 3 * t));
            let vs = rand(n_readers, topo.kv_dim(), seed.wrapping_add(1_002 + 3 * t));
            let a = subject.step_all(&s_ids, &qs, &ks, &vs);
            let b = golden.step_all(&g_ids, &qs, &ks, &vs);
            for i in 0..n_readers {
                for (l, want) in b[i].output.iter().enumerate() {
                    prop_assert_eq!(a[i].output[l].to_bits(), want.to_bits(),
                        "post-repair step {} reader {} lane {}", t, i, l);
                }
            }
        }
    }
}
