//! Multi-head attention.
//!
//! The paper evaluates single-head attention "without loss of generality"
//! (§II): heads are independent, so per-head checking composes trivially.
//! This module provides the composition — splitting a model-dimension
//! projection into heads, running any per-head kernel, and concatenating —
//! so examples and integration tests can exercise realistic layer shapes
//! (e.g. BERT: 12 heads × d=64).

use crate::topology::HeadTopology;
use crate::{flash2, AttentionConfig};
use fa_tensor::{Matrix, Scalar};
use rayon::prelude::*;

/// Multi-head attention configuration: `num_heads` independent heads each
/// of dimension `cfg.head_dim()`, operating on a model dimension of
/// `num_heads · head_dim`.
///
/// This is the **`kv_heads == query_heads` point of [`HeadTopology`]** —
/// the workspace's single head-count type — kept as a convenience
/// constructor for the common ungrouped case. It converts into a topology
/// implicitly (`From`), so every topology-taking API (the serving-path
/// [`DecodeBatch`](crate::batch::DecodeBatch) in particular) accepts it
/// directly; [`topology`](Self::topology) is the explicit form.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MultiHeadConfig {
    /// Number of parallel heads.
    pub num_heads: usize,
    /// Per-head kernel configuration.
    pub head: AttentionConfig,
}

impl MultiHeadConfig {
    /// Creates a multi-head configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_heads == 0`.
    pub fn new(num_heads: usize, head: AttentionConfig) -> Self {
        assert!(num_heads > 0, "num_heads must be positive");
        MultiHeadConfig { num_heads, head }
    }

    /// This configuration as the degenerate
    /// (`kv_heads == query_heads`) [`HeadTopology`].
    pub fn topology(&self) -> HeadTopology {
        HeadTopology::mha(self.num_heads, self.head)
    }

    /// The concatenated model dimension `num_heads · head_dim`.
    pub fn model_dim(&self) -> usize {
        self.num_heads * self.head.head_dim()
    }

    /// The column range head `h` occupies in packed `N × model_dim`
    /// matrices (`h·d .. (h+1)·d`).
    ///
    /// # Panics
    ///
    /// Panics if `h >= num_heads`.
    #[inline]
    pub fn head_cols(&self, h: usize) -> core::ops::Range<usize> {
        assert!(
            h < self.num_heads,
            "head {h} out of {} heads",
            self.num_heads
        );
        let d = self.head.head_dim();
        h * d..(h + 1) * d
    }

    /// Extracts head `h` from a packed `N × model_dim` matrix
    /// (columns `h·d .. (h+1)·d`).
    ///
    /// # Panics
    ///
    /// Panics if `h >= num_heads` or the matrix width differs from
    /// [`Self::model_dim`].
    pub fn slice_head<T: Scalar>(&self, packed: &Matrix<T>, h: usize) -> Matrix<T> {
        assert_eq!(
            packed.cols(),
            self.model_dim(),
            "packed width {} != model_dim {}",
            packed.cols(),
            self.model_dim()
        );
        let cols = self.head_cols(h);
        Matrix::from_fn(packed.rows(), cols.len(), |r, c| {
            packed[(r, cols.start + c)]
        })
    }
}

/// Runs FlashAttention-2 independently per head on packed
/// `N × (num_heads·d)` Q/K/V matrices and concatenates the head outputs.
///
/// # Panics
///
/// Panics on shape mismatch.
///
/// ```
/// use fa_tensor::{Matrix, random::ElementDist};
/// use fa_attention::{multihead::{self, MultiHeadConfig}, AttentionConfig};
/// let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
/// let q = Matrix::<f64>::random_seeded(6, 8, ElementDist::default(), 1);
/// let k = Matrix::<f64>::random_seeded(6, 8, ElementDist::default(), 2);
/// let v = Matrix::<f64>::random_seeded(6, 8, ElementDist::default(), 3);
/// let out = multihead::attention(&q, &k, &v, &cfg);
/// assert_eq!((out.rows(), out.cols()), (6, 8));
/// ```
pub fn attention<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &MultiHeadConfig,
) -> Matrix<T> {
    let d = cfg.head.head_dim();

    // One fork for the whole layer when the head count can fill the
    // pool: heads fan out in a single parallel call, each running the
    // *serial* row kernel (bit-identical to the row-parallel one by the
    // property tests), so the single-fork structure never depends on the
    // pool implementation serializing nested parallelism. Layers with
    // fewer heads than workers keep the row-parallel kernel per head
    // instead — otherwise a single-head layer would serialize entirely.
    let slice = |h: usize| {
        (
            cfg.slice_head(q, h),
            cfg.slice_head(k, h),
            cfg.slice_head(v, h),
        )
    };
    let fork_heads = cfg.num_heads >= rayon::current_num_threads()
        && crate::par::worth_parallelizing(cfg.num_heads * q.rows(), k.rows(), d);
    let heads: Vec<Matrix<T>> = if fork_heads {
        (0..cfg.num_heads)
            .into_par_iter()
            .map(|h| {
                let (qh, kh, vh) = slice(h);
                flash2::attention_serial(&qh, &kh, &vh, &cfg.head)
            })
            .collect()
    } else {
        (0..cfg.num_heads)
            .map(|h| {
                let (qh, kh, vh) = slice(h);
                flash2::attention(&qh, &kh, &vh, &cfg.head)
            })
            .collect()
    };

    let mut out = Matrix::zeros(q.rows(), cfg.model_dim());
    for (h, oh) in heads.iter().enumerate() {
        for r in 0..out.rows() {
            for c in 0..d {
                out[(r, h * d + c)] = oh[(r, c)];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use fa_tensor::random::ElementDist;

    #[test]
    fn heads_are_independent() {
        // Computing each head separately with the naive kernel must match
        // the packed multi-head result.
        let cfg = MultiHeadConfig::new(3, AttentionConfig::new(4));
        let n = 8;
        let q = Matrix::<f64>::random_seeded(n, cfg.model_dim(), ElementDist::default(), 1);
        let k = Matrix::<f64>::random_seeded(n, cfg.model_dim(), ElementDist::default(), 2);
        let v = Matrix::<f64>::random_seeded(n, cfg.model_dim(), ElementDist::default(), 3);
        let packed = attention(&q, &k, &v, &cfg);
        for h in 0..3 {
            let expected = naive::attention(
                &cfg.slice_head(&q, h),
                &cfg.slice_head(&k, h),
                &cfg.slice_head(&v, h),
                &cfg.head,
            );
            let got = cfg.slice_head(&packed, h);
            assert!(got.max_abs_diff(&expected) < 1e-12, "head {h}");
        }
    }

    #[test]
    fn single_head_degenerates_to_flash2() {
        let cfg = MultiHeadConfig::new(1, AttentionConfig::new(8));
        let q = Matrix::<f64>::random_seeded(6, 8, ElementDist::default(), 4);
        let k = Matrix::<f64>::random_seeded(6, 8, ElementDist::default(), 5);
        let v = Matrix::<f64>::random_seeded(6, 8, ElementDist::default(), 6);
        let a = attention(&q, &k, &v, &cfg);
        let b = crate::flash2::attention(&q, &k, &v, &cfg.head);
        assert_eq!(a, b);
    }

    #[test]
    fn model_dim_and_slice() {
        let cfg = MultiHeadConfig::new(4, AttentionConfig::new(16));
        assert_eq!(cfg.model_dim(), 64);
        let m = Matrix::<f64>::from_fn(2, 64, |_, c| c as f64);
        let h2 = cfg.slice_head(&m, 2);
        assert_eq!(h2[(0, 0)], 32.0);
        assert_eq!(h2[(0, 15)], 47.0);
    }

    #[test]
    fn head_parallel_bit_identical_to_serial() {
        // Shapes above the fork threshold; the single-fork scheduler must
        // not change a bit relative to a one-thread pool.
        let cfg = MultiHeadConfig::new(4, AttentionConfig::new(8));
        let q = Matrix::<f64>::random_seeded(32, 32, ElementDist::default(), 50);
        let k = Matrix::<f64>::random_seeded(32, 32, ElementDist::default(), 51);
        let v = Matrix::<f64>::random_seeded(32, 32, ElementDist::default(), 52);
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| attention(&q, &k, &v, &cfg));
        for threads in [2, 3, 8] {
            let parallel = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| attention(&q, &k, &v, &cfg));
            assert_eq!(serial, parallel, "{threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "num_heads must be positive")]
    fn zero_heads_panics() {
        let _ = MultiHeadConfig::new(0, AttentionConfig::new(4));
    }

    #[test]
    #[should_panic(expected = "head 2 out of 2 heads")]
    fn slice_out_of_range_panics() {
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(2));
        let m = Matrix::<f64>::zeros(1, 4);
        let _ = cfg.slice_head(&m, 2);
    }
}
