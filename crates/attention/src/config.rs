//! Shared kernel configuration.

/// Configuration shared by all attention kernels in this workspace.
///
/// The paper's derivation (Eq. 1–8) omits the 1/√d score scaling for
/// clarity; real transformer layers apply it. Both are supported:
/// [`AttentionConfig::new`] applies the standard scaling,
/// [`AttentionConfig::unscaled`] reproduces the paper's equations exactly.
///
/// # Example
///
/// ```
/// use fa_attention::AttentionConfig;
/// let cfg = AttentionConfig::new(64);
/// assert_eq!(cfg.scale(), 0.125);
/// assert!(!cfg.is_causal());
/// let causal = AttentionConfig::new(64).with_causal(true);
/// assert!(causal.is_causal());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AttentionConfig {
    head_dim: usize,
    scale: f64,
    causal: bool,
    window: Option<usize>,
}

impl AttentionConfig {
    /// Standard configuration: scores scaled by 1/√d, no mask.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim == 0`.
    pub fn new(head_dim: usize) -> Self {
        assert!(head_dim > 0, "head_dim must be positive");
        AttentionConfig {
            head_dim,
            scale: 1.0 / (head_dim as f64).sqrt(),
            causal: false,
            window: None,
        }
    }

    /// Paper-exact configuration: no score scaling (Eq. 1 as written).
    ///
    /// # Panics
    ///
    /// Panics if `head_dim == 0`.
    pub fn unscaled(head_dim: usize) -> Self {
        assert!(head_dim > 0, "head_dim must be positive");
        AttentionConfig {
            head_dim,
            scale: 1.0,
            causal: false,
            window: None,
        }
    }

    /// Overrides the score scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Enables or disables causal (autoregressive) masking: query *i*
    /// attends only to keys *j ≤ i*.
    pub fn with_causal(mut self, causal: bool) -> Self {
        self.causal = causal;
        self
    }

    /// Enables sliding-window (local) attention: query *i* attends only
    /// to keys within `window` positions (Gemma2/Mistral-style local
    /// layers). Composes with causal masking. The Flash-ABFT checksum
    /// identity holds under any mask, which the test suites verify.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn with_sliding_window(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        self.window = Some(window);
        self
    }

    /// The head (hidden) dimension `d`.
    #[inline]
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// The score scale factor applied before softmax.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Whether causal masking is enabled.
    #[inline]
    pub fn is_causal(&self) -> bool {
        self.causal
    }

    /// The sliding-window size, if local attention is enabled.
    #[inline]
    pub fn sliding_window(&self) -> Option<usize> {
        self.window
    }

    /// Narrows the sliding window to at most `window` positions — the
    /// tighter of the existing window (if any) and the new one. Policy
    /// layers use this to fold a retention bound (KV-block eviction)
    /// into the attention mask: positions outside the combined window
    /// are invisible to [`visible_range`](Self::visible_range), so
    /// freeing their storage cannot change any result.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn with_window_at_most(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        self.window = Some(self.window.map_or(window, |w| w.min(window)));
        self
    }

    /// Whether key `j` is visible to query `i` under this configuration.
    #[inline]
    pub fn visible(&self, query: usize, key: usize) -> bool {
        if self.causal && key > query {
            return false;
        }
        if let Some(w) = self.window {
            if query.abs_diff(key) >= w {
                return false;
            }
        }
        true
    }

    /// The keys visible to `query` among `keys` total, as a contiguous
    /// range — causal and sliding-window masks (and their combination)
    /// always admit an interval of keys. Agrees with [`Self::visible`]
    /// pointwise (property-tested); block kernels use it to turn per-key
    /// mask tests into one range intersection per key block.
    #[inline]
    pub fn visible_range(&self, query: usize, keys: usize) -> core::ops::Range<usize> {
        let mut hi = if self.causal {
            keys.min(query + 1)
        } else {
            keys
        };
        let mut lo = 0;
        if let Some(w) = self.window {
            lo = (query + 1).saturating_sub(w);
            if !self.causal {
                // Non-causal windows are two-sided: |query − key| < w.
                hi = hi.min(query.saturating_add(w));
            }
        }
        lo.min(hi)..hi
    }

    /// Validates Q/K/V shapes against this configuration: all must be
    /// `N×d` with the same `N`.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on any mismatch.
    pub fn validate_shapes<T: fa_tensor::Scalar>(
        &self,
        q: &fa_tensor::Matrix<T>,
        k: &fa_tensor::Matrix<T>,
        v: &fa_tensor::Matrix<T>,
    ) {
        assert_eq!(
            q.cols(),
            self.head_dim,
            "Q has {} columns but head_dim is {}",
            q.cols(),
            self.head_dim
        );
        assert_eq!(
            k.cols(),
            self.head_dim,
            "K has {} columns but head_dim is {}",
            k.cols(),
            self.head_dim
        );
        assert_eq!(
            v.cols(),
            self.head_dim,
            "V has {} columns but head_dim is {}",
            v.cols(),
            self.head_dim
        );
        assert_eq!(
            k.rows(),
            v.rows(),
            "K has {} rows but V has {}",
            k.rows(),
            v.rows()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_tensor::Matrix;

    #[test]
    fn scale_defaults() {
        assert_eq!(AttentionConfig::new(64).scale(), 0.125);
        assert_eq!(AttentionConfig::new(16).scale(), 0.25);
        assert_eq!(AttentionConfig::unscaled(64).scale(), 1.0);
    }

    #[test]
    fn builder_overrides() {
        let cfg = AttentionConfig::new(8).with_scale(0.5).with_causal(true);
        assert_eq!(cfg.scale(), 0.5);
        assert!(cfg.is_causal());
        assert_eq!(cfg.head_dim(), 8);
    }

    #[test]
    #[should_panic(expected = "head_dim must be positive")]
    fn zero_head_dim_panics() {
        let _ = AttentionConfig::new(0);
    }

    #[test]
    fn visibility_rules() {
        let full = AttentionConfig::new(4);
        assert!(full.visible(0, 5));
        let causal = AttentionConfig::new(4).with_causal(true);
        assert!(causal.visible(3, 3));
        assert!(causal.visible(3, 0));
        assert!(!causal.visible(3, 4));
    }

    #[test]
    fn sliding_window_visibility() {
        let local = AttentionConfig::new(4).with_sliding_window(2);
        assert!(local.visible(5, 5));
        assert!(local.visible(5, 4));
        assert!(local.visible(5, 6));
        assert!(!local.visible(5, 3));
        assert!(!local.visible(5, 7));
        assert_eq!(local.sliding_window(), Some(2));

        let causal_local = AttentionConfig::new(4)
            .with_causal(true)
            .with_sliding_window(2);
        assert!(causal_local.visible(5, 4));
        assert!(!causal_local.visible(5, 6), "causal cuts the future half");
        assert!(!causal_local.visible(5, 3), "window cuts the far past");
    }

    #[test]
    fn visible_range_agrees_with_visible_pointwise() {
        let configs = [
            AttentionConfig::new(4),
            AttentionConfig::new(4).with_causal(true),
            AttentionConfig::new(4).with_sliding_window(1),
            AttentionConfig::new(4).with_sliding_window(3),
            AttentionConfig::new(4)
                .with_causal(true)
                .with_sliding_window(2),
        ];
        for cfg in configs {
            for keys in [0usize, 1, 7] {
                for q in 0..8 {
                    let range = cfg.visible_range(q, keys);
                    for j in 0..keys {
                        assert_eq!(
                            range.contains(&j),
                            cfg.visible(q, j),
                            "cfg {cfg:?} query {q} key {j} of {keys}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = AttentionConfig::new(4).with_sliding_window(0);
    }

    #[test]
    fn window_at_most_takes_the_tighter_bound() {
        let cfg = AttentionConfig::new(4);
        assert_eq!(cfg.with_window_at_most(5).sliding_window(), Some(5));
        assert_eq!(
            cfg.with_sliding_window(3)
                .with_window_at_most(5)
                .sliding_window(),
            Some(3),
            "existing tighter window wins"
        );
        assert_eq!(
            cfg.with_sliding_window(8)
                .with_window_at_most(5)
                .sliding_window(),
            Some(5),
            "new tighter window wins"
        );
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_at_most_panics() {
        let _ = AttentionConfig::new(4).with_window_at_most(0);
    }

    #[test]
    fn validate_shapes_accepts_matching() {
        let cfg = AttentionConfig::new(4);
        let m = Matrix::<f64>::zeros(6, 4);
        cfg.validate_shapes(&m, &m, &m);
        // Q may have a different row count (fewer queries than keys).
        let q = Matrix::<f64>::zeros(2, 4);
        cfg.validate_shapes(&q, &m, &m);
    }

    #[test]
    #[should_panic(expected = "K has 3 rows but V has 6")]
    fn validate_shapes_rejects_kv_mismatch() {
        let cfg = AttentionConfig::new(4);
        let q = Matrix::<f64>::zeros(6, 4);
        let k = Matrix::<f64>::zeros(3, 4);
        let v = Matrix::<f64>::zeros(6, 4);
        cfg.validate_shapes(&q, &k, &v);
    }

    #[test]
    #[should_panic(expected = "Q has 5 columns")]
    fn validate_shapes_rejects_wrong_dim() {
        let cfg = AttentionConfig::new(4);
        let q = Matrix::<f64>::zeros(6, 5);
        let k = Matrix::<f64>::zeros(6, 4);
        cfg.validate_shapes(&q, &k, &k);
    }
}
