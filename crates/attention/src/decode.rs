//! Autoregressive decode attention.
//!
//! During LLM generation each new token attends to the whole KV cache
//! with a *single* query — the latency-critical mode an attention
//! accelerator spends most of its life in. [`DecodeSession`] maintains
//! the growing cache and computes one attention row per step with the
//! same online-softmax recurrence as the batch kernels, so the
//! Flash-ABFT per-query checksum applies step-by-step (see
//! `flash_abft::decode`).

use crate::topology::HeadTopology;
use crate::AttentionConfig;
use fa_numerics::OnlineSoftmax;
use fa_tensor::{Matrix, Scalar};

/// An incremental decoding session: a KV cache plus the kernel config.
///
/// # Example
///
/// ```
/// use fa_attention::{decode::DecodeSession, AttentionConfig};
///
/// let mut session = DecodeSession::<f64>::new(AttentionConfig::new(2));
/// let out1 = session.step(&[1.0, 0.0], &[0.5, 0.5], &[2.0, 4.0]);
/// // First step: only one cache entry, output == v.
/// assert_eq!(out1, vec![2.0, 4.0]);
/// assert_eq!(session.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DecodeSession<T> {
    cfg: AttentionConfig,
    keys: Vec<Vec<T>>,
    values: Vec<Vec<T>>,
}

impl<T: Scalar> DecodeSession<T> {
    /// Creates an empty session.
    pub fn new(cfg: AttentionConfig) -> Self {
        DecodeSession {
            cfg,
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Pre-fills the cache from prompt K/V matrices (N×d).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn prefill(&mut self, k: &Matrix<T>, v: &Matrix<T>) {
        assert_eq!(k.cols(), self.cfg.head_dim(), "K width mismatch");
        assert_eq!(v.cols(), self.cfg.head_dim(), "V width mismatch");
        assert_eq!(k.rows(), v.rows(), "K/V row count mismatch");
        for i in 0..k.rows() {
            self.keys.push(k.row(i).to_vec());
            self.values.push(v.row(i).to_vec());
        }
    }

    /// Rounds the cached K/V rows in `range` through BF16
    /// (round-to-nearest-even via [`crate::batch::round_bf16`], widened
    /// back into `T`) — the golden-model replay of `KvCache` block
    /// demotion. A mixed-format [`crate::batch::DecodeBatch`] that
    /// demoted exactly these positions decodes **bit-identically** to
    /// this session afterwards: the widened BF16 values score through the
    /// same blocked f64 summation order as the engine's mixed-operand dot
    /// kernel (`fa_tensor::ops::dot_f64_bf16` is pinned to `dot_f64` on
    /// pre-widened keys).
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the cached length.
    pub fn demote_cached(&mut self, range: core::ops::Range<usize>) {
        for i in range {
            for x in self.keys[i].iter_mut() {
                *x = T::from_f64(crate::batch::round_bf16(*x).to_f64());
            }
            for x in self.values[i].iter_mut() {
                *x = T::from_f64(crate::batch::round_bf16(*x).to_f64());
            }
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The kernel configuration.
    pub fn config(&self) -> AttentionConfig {
        self.cfg
    }

    /// Appends the new token's key/value to the cache and computes its
    /// attention row against the whole cache (itself included — decode
    /// is causal by construction).
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from the head dimension.
    pub fn step(&mut self, q: &[T], k: &[T], v: &[T]) -> Vec<f64> {
        self.step_with_state(q, k, v).0
    }

    /// Like [`step`](Self::step), also returning the online-softmax
    /// terminal state `(ℓ_N, m_N)` — what the checked wrapper needs.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn step_with_state(&mut self, q: &[T], k: &[T], v: &[T]) -> (Vec<f64>, f64, f64) {
        let d = self.cfg.head_dim();
        assert_eq!(q.len(), d, "query length mismatch");
        assert_eq!(k.len(), d, "key length mismatch");
        assert_eq!(v.len(), d, "value length mismatch");
        self.keys.push(k.to_vec());
        self.values.push(v.to_vec());

        let newest = self.keys.len() - 1;
        let mut os = OnlineSoftmax::new();
        let mut acc = vec![0.0f64; d];
        // Sliding-window masking relative to the newest position: the
        // visible cache positions are exactly the causal window interval.
        let lo = self
            .cfg
            .with_causal(true)
            .visible_range(newest, self.keys.len())
            .start;
        for i in lo..self.keys.len() {
            let s = fa_tensor::ops::dot_then_scale(q, &self.keys[i], self.cfg.scale());
            let step = os.push(s);
            fa_tensor::ops::axpy_f64(&mut acc, &self.values[i], step.scale_old, step.weight_new);
        }
        let l = os.sum_exp();
        for a in acc.iter_mut() {
            *a /= l;
        }
        (acc, l, os.max())
    }
}

/// A grouped-query decoding session: **one** K/V cache per kv head,
/// shared by all `group_size` query heads of its group — the GQA-aware
/// golden model for `fa_attention::batch::DecodeBatch` with a grouped
/// [`HeadTopology`].
///
/// Per query head the arithmetic is exactly [`DecodeSession::step`]
/// against that head's group K/V (same SIMD score/axpy kernels, same
/// order), so this session is bit-identical to per-query-head sessions
/// fed pre-sliced group K/V — while storing each group's K/V once, like
/// the engine it models.
///
/// # Example
///
/// ```
/// use fa_attention::{decode::GqaDecodeSession, AttentionConfig, HeadTopology};
///
/// // 2 query heads sharing 1 kv head of dimension 2.
/// let topo = HeadTopology::gqa(2, 1, AttentionConfig::new(2));
/// let mut session = GqaDecodeSession::<f64>::new(topo);
/// let out = session.step(&[1.0, 0.0, 0.0, 1.0], &[0.5, 0.5], &[2.0, 4.0]);
/// // First step: both query heads see the single cached row.
/// assert_eq!(out, vec![2.0, 4.0, 2.0, 4.0]);
/// ```
#[derive(Clone, Debug)]
pub struct GqaDecodeSession<T> {
    topo: HeadTopology,
    /// `keys[g][i]` is kv head `g`'s cached key row at position `i`.
    keys: Vec<Vec<Vec<T>>>,
    values: Vec<Vec<Vec<T>>>,
}

impl<T: Scalar> GqaDecodeSession<T> {
    /// Creates an empty session.
    pub fn new(topo: HeadTopology) -> Self {
        GqaDecodeSession {
            topo,
            keys: vec![Vec::new(); topo.kv_heads],
            values: vec![Vec::new(); topo.kv_heads],
        }
    }

    /// The head topology.
    pub fn topology(&self) -> HeadTopology {
        self.topo
    }

    /// Number of cached positions (identical for every kv head).
    pub fn len(&self) -> usize {
        self.keys[0].len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.keys[0].is_empty()
    }

    /// Pre-fills every kv head's cache from packed prompt K/V matrices
    /// (`N × kv_dim`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn prefill(&mut self, k: &Matrix<T>, v: &Matrix<T>) {
        assert_eq!(k.cols(), self.topo.kv_dim(), "K width mismatch");
        assert_eq!(v.cols(), self.topo.kv_dim(), "V width mismatch");
        assert_eq!(k.rows(), v.rows(), "K/V row count mismatch");
        for i in 0..k.rows() {
            for g in 0..self.topo.kv_heads {
                let cols = self.topo.kv_head_cols(g);
                self.keys[g].push(k.row(i)[cols.clone()].to_vec());
                self.values[g].push(v.row(i)[cols].to_vec());
            }
        }
    }

    /// Rounds every kv head's cached K/V rows in `range` through BF16
    /// (RNE, widened back into `T`) — the golden-model replay of
    /// `KvCache` block demotion, shared across the group exactly like
    /// the engine's per-kv-head blocks.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the cached length.
    pub fn demote_cached(&mut self, range: core::ops::Range<usize>) {
        for i in range {
            for g in 0..self.topo.kv_heads {
                for x in self.keys[g][i].iter_mut() {
                    *x = T::from_f64(crate::batch::round_bf16(*x).to_f64());
                }
                for x in self.values[g][i].iter_mut() {
                    *x = T::from_f64(crate::batch::round_bf16(*x).to_f64());
                }
            }
        }
    }

    /// Appends the new token's K/V (packed `kv_dim` rows, one sub-row
    /// per kv head) and computes every query head's attention row against
    /// its group's whole cache, returning the packed `q_dim`-wide output.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn step(&mut self, q: &[T], k: &[T], v: &[T]) -> Vec<f64> {
        let d = self.topo.head.head_dim();
        assert_eq!(q.len(), self.topo.q_dim(), "query length mismatch");
        assert_eq!(k.len(), self.topo.kv_dim(), "key length mismatch");
        assert_eq!(v.len(), self.topo.kv_dim(), "value length mismatch");
        for g in 0..self.topo.kv_heads {
            let cols = self.topo.kv_head_cols(g);
            self.keys[g].push(k[cols.clone()].to_vec());
            self.values[g].push(v[cols].to_vec());
        }

        let newest = self.len() - 1;
        let lo = self
            .topo
            .head
            .with_causal(true)
            .visible_range(newest, self.len())
            .start;
        let mut out = vec![0.0f64; self.topo.q_dim()];
        for h in 0..self.topo.query_heads {
            let g = self.topo.group_of(h);
            let q_sub = &q[self.topo.q_head_cols(h)];
            let mut os = OnlineSoftmax::new();
            let mut acc = vec![0.0f64; d];
            for i in lo..self.len() {
                let s =
                    fa_tensor::ops::dot_then_scale(q_sub, &self.keys[g][i], self.topo.head.scale());
                let step = os.push(s);
                fa_tensor::ops::axpy_f64(
                    &mut acc,
                    &self.values[g][i],
                    step.scale_old,
                    step.weight_new,
                );
            }
            let l = os.sum_exp();
            for (c, a) in acc.iter().enumerate() {
                out[h * d + c] = a / l;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flash2, naive};
    use fa_tensor::random::ElementDist;

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random_seeded(n, d, ElementDist::default(), seed),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
        )
    }

    #[test]
    fn speculative_window_matches_gqa_session_bitwise() {
        // Full-accept speculative decode is the session golden, token by
        // token: scoring gamma positions in one batched pass over the
        // paged cache changes nothing about any token's bits.
        use crate::batch::DecodeBatch;
        use crate::topology::HeadTopology;
        let topo = HeadTopology::gqa(4, 2, AttentionConfig::new(4));
        let mut engine = DecodeBatch::<f64>::new(topo, 4);
        let mut session = GqaDecodeSession::<f64>::new(topo);
        let seq = engine.add_sequence();
        let prefill = 7;
        let pk = Matrix::random_seeded(prefill, topo.kv_dim(), ElementDist::default(), 50);
        let pv = Matrix::random_seeded(prefill, topo.kv_dim(), ElementDist::default(), 51);
        let pq = Matrix::random_seeded(prefill, topo.q_dim(), ElementDist::default(), 52);
        engine.prefill(seq, &pk, &pv);
        for i in 0..prefill {
            session.step(pq.row(i), pk.row(i), pv.row(i));
        }
        let gamma = 4;
        let qs = Matrix::random_seeded(gamma, topo.q_dim(), ElementDist::default(), 60);
        let ks = Matrix::random_seeded(gamma, topo.kv_dim(), ElementDist::default(), 61);
        let vs = Matrix::random_seeded(gamma, topo.kv_dim(), ElementDist::default(), 62);
        let outs = engine.speculate(&[seq], &qs, &ks, &vs, gamma);
        for (t, out) in outs[0].iter().enumerate() {
            let golden = session.step(qs.row(t), ks.row(t), vs.row(t));
            for (c, (a, b)) in out.output.iter().zip(&golden).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "token {t} lane {c}");
            }
        }
        let verdicts = engine.resolve_speculation(&[gamma]);
        assert_eq!(verdicts[0].accepted, gamma);
        assert!(verdicts[0].residual().abs() < 1e-9);
    }

    #[test]
    fn decode_matches_causal_batch_attention() {
        // Feeding tokens one at a time must equal one causal batch pass.
        let (q, k, v) = rand_qkv(10, 4, 800);
        let cfg = AttentionConfig::new(4);
        let mut session = DecodeSession::new(cfg);
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.push(session.step(q.row(i), k.row(i), v.row(i)));
        }
        let batch = naive::attention(&q, &k, &v, &cfg.with_causal(true));
        for (i, row) in rows.iter().enumerate() {
            for (c, val) in row.iter().enumerate() {
                assert!(
                    (val - batch[(i, c)]).abs() < 1e-12,
                    "token {i} lane {c}: {val} vs {}",
                    batch[(i, c)]
                );
            }
        }
    }

    #[test]
    fn prefill_then_decode_matches_full_attention() {
        let (q, k, v) = rand_qkv(8, 4, 801);
        let cfg = AttentionConfig::new(4);
        let mut session = DecodeSession::new(cfg);
        // Prefill with the first 7 positions, then decode token 7.
        let k_prompt = Matrix::from_fn(7, 4, |r, c| k[(r, c)]);
        let v_prompt = Matrix::from_fn(7, 4, |r, c| v[(r, c)]);
        session.prefill(&k_prompt, &v_prompt);
        assert_eq!(session.len(), 7);
        let out = session.step(q.row(7), k.row(7), v.row(7));
        let batch = flash2::attention(&q, &k, &v, &cfg.with_causal(true));
        for (c, val) in out.iter().enumerate() {
            assert!((val - batch[(7, c)]).abs() < 1e-12);
        }
        assert_eq!(session.len(), 8);
    }

    #[test]
    fn sliding_window_limits_the_cache_view() {
        let cfg = AttentionConfig::new(2).with_sliding_window(2);
        let mut session = DecodeSession::new(cfg);
        // Three steps with distinct values; window 2 means the final step
        // sees only positions 1 and 2.
        session.step(&[1.0, 0.0], &[1.0, 0.0], &[10.0, 0.0]);
        session.step(&[1.0, 0.0], &[1.0, 0.0], &[20.0, 0.0]);
        let out = session.step(&[1.0, 0.0], &[1.0, 0.0], &[30.0, 0.0]);
        // Identical keys => uniform weights over the visible window {20, 30}.
        assert!((out[0] - 25.0).abs() < 1e-12, "{out:?}");
    }

    #[test]
    fn state_exposes_softmax_terminals() {
        let cfg = AttentionConfig::new(2);
        let mut session = DecodeSession::new(cfg);
        let (_, l, m) = session.step_with_state(&[1.0, 1.0], &[0.5, 0.5], &[1.0, 2.0]);
        assert_eq!(l, 1.0, "single key: one unit weight");
        assert!((m - (0.5 + 0.5) * cfg.scale()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "query length mismatch")]
    fn wrong_query_length_panics() {
        let mut session = DecodeSession::<f64>::new(AttentionConfig::new(4));
        let _ = session.step(&[1.0], &[1.0, 0.0, 0.0, 0.0], &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn gqa_session_equals_per_query_head_sessions_bitwise() {
        // The GQA session stores one K/V history per kv head; each query
        // head must decode bit-identically to a plain DecodeSession fed
        // its group's K/V slices — across grouped and degenerate
        // topologies, with a sliding window in the mix.
        let d = 4;
        for (qh, kv) in [(4usize, 2usize), (4, 1), (3, 3)] {
            let head = AttentionConfig::new(d).with_sliding_window(5);
            let topo = HeadTopology::gqa(qh, kv, head);
            let mut grouped = GqaDecodeSession::<f64>::new(topo);
            let mut singles: Vec<DecodeSession<f64>> =
                (0..qh).map(|_| DecodeSession::new(head)).collect();
            for t in 0..9u64 {
                let q = Matrix::<f64>::random_seeded(1, topo.q_dim(), ElementDist::default(), t);
                let k =
                    Matrix::<f64>::random_seeded(1, topo.kv_dim(), ElementDist::default(), 100 + t);
                let v =
                    Matrix::<f64>::random_seeded(1, topo.kv_dim(), ElementDist::default(), 200 + t);
                let out = grouped.step(q.row(0), k.row(0), v.row(0));
                for (h, single) in singles.iter_mut().enumerate() {
                    let g = topo.group_of(h);
                    let reference = single.step(
                        &q.row(0)[topo.q_head_cols(h)],
                        &k.row(0)[topo.kv_head_cols(g)],
                        &v.row(0)[topo.kv_head_cols(g)],
                    );
                    for (c, r) in reference.iter().enumerate() {
                        assert_eq!(
                            out[h * d + c].to_bits(),
                            r.to_bits(),
                            "{qh}/{kv} step {t} head {h} lane {c}"
                        );
                    }
                }
            }
            assert_eq!(grouped.len(), 9);
        }
    }

    #[test]
    fn gqa_session_prefill_and_demote_match_singles() {
        let d = 4;
        let topo = HeadTopology::gqa(2, 1, AttentionConfig::new(d));
        let k = Matrix::<f64>::random_seeded(6, topo.kv_dim(), ElementDist::default(), 50);
        let v = Matrix::<f64>::random_seeded(6, topo.kv_dim(), ElementDist::default(), 51);
        let mut grouped = GqaDecodeSession::<f64>::new(topo);
        grouped.prefill(&k, &v);
        grouped.demote_cached(0..3);
        let mut singles: Vec<DecodeSession<f64>> = (0..2)
            .map(|_| {
                let mut s = DecodeSession::new(topo.head);
                s.prefill(&k, &v);
                s.demote_cached(0..3);
                s
            })
            .collect();
        let q = Matrix::<f64>::random_seeded(1, topo.q_dim(), ElementDist::default(), 52);
        let kn = Matrix::<f64>::random_seeded(1, topo.kv_dim(), ElementDist::default(), 53);
        let vn = Matrix::<f64>::random_seeded(1, topo.kv_dim(), ElementDist::default(), 54);
        let out = grouped.step(q.row(0), kn.row(0), vn.row(0));
        for (h, single) in singles.iter_mut().enumerate() {
            let reference = single.step(&q.row(0)[topo.q_head_cols(h)], kn.row(0), vn.row(0));
            for (c, r) in reference.iter().enumerate() {
                assert_eq!(out[h * d + c].to_bits(), r.to_bits());
            }
        }
    }
}
