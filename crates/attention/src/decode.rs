//! Autoregressive decode attention.
//!
//! During LLM generation each new token attends to the whole KV cache
//! with a *single* query — the latency-critical mode an attention
//! accelerator spends most of its life in. [`DecodeSession`] maintains
//! the growing cache and computes one attention row per step with the
//! same online-softmax recurrence as the batch kernels, so the
//! Flash-ABFT per-query checksum applies step-by-step (see
//! `flash_abft::decode`).

use crate::AttentionConfig;
use fa_numerics::OnlineSoftmax;
use fa_tensor::{Matrix, Scalar};

/// An incremental decoding session: a KV cache plus the kernel config.
///
/// # Example
///
/// ```
/// use fa_attention::{decode::DecodeSession, AttentionConfig};
///
/// let mut session = DecodeSession::<f64>::new(AttentionConfig::new(2));
/// let out1 = session.step(&[1.0, 0.0], &[0.5, 0.5], &[2.0, 4.0]);
/// // First step: only one cache entry, output == v.
/// assert_eq!(out1, vec![2.0, 4.0]);
/// assert_eq!(session.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DecodeSession<T> {
    cfg: AttentionConfig,
    keys: Vec<Vec<T>>,
    values: Vec<Vec<T>>,
}

impl<T: Scalar> DecodeSession<T> {
    /// Creates an empty session.
    pub fn new(cfg: AttentionConfig) -> Self {
        DecodeSession {
            cfg,
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Pre-fills the cache from prompt K/V matrices (N×d).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn prefill(&mut self, k: &Matrix<T>, v: &Matrix<T>) {
        assert_eq!(k.cols(), self.cfg.head_dim(), "K width mismatch");
        assert_eq!(v.cols(), self.cfg.head_dim(), "V width mismatch");
        assert_eq!(k.rows(), v.rows(), "K/V row count mismatch");
        for i in 0..k.rows() {
            self.keys.push(k.row(i).to_vec());
            self.values.push(v.row(i).to_vec());
        }
    }

    /// Rounds the cached K/V rows in `range` through BF16
    /// (round-to-nearest-even via [`crate::batch::round_bf16`], widened
    /// back into `T`) — the golden-model replay of `KvCache` block
    /// demotion. A mixed-format [`crate::batch::DecodeBatch`] that
    /// demoted exactly these positions decodes **bit-identically** to
    /// this session afterwards: the widened BF16 values score through the
    /// same blocked f64 summation order as the engine's mixed-operand dot
    /// kernel (`fa_tensor::ops::dot_f64_bf16` is pinned to `dot_f64` on
    /// pre-widened keys).
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the cached length.
    pub fn demote_cached(&mut self, range: core::ops::Range<usize>) {
        for i in range {
            for x in self.keys[i].iter_mut() {
                *x = T::from_f64(crate::batch::round_bf16(*x).to_f64());
            }
            for x in self.values[i].iter_mut() {
                *x = T::from_f64(crate::batch::round_bf16(*x).to_f64());
            }
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The kernel configuration.
    pub fn config(&self) -> AttentionConfig {
        self.cfg
    }

    /// Appends the new token's key/value to the cache and computes its
    /// attention row against the whole cache (itself included — decode
    /// is causal by construction).
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from the head dimension.
    pub fn step(&mut self, q: &[T], k: &[T], v: &[T]) -> Vec<f64> {
        self.step_with_state(q, k, v).0
    }

    /// Like [`step`](Self::step), also returning the online-softmax
    /// terminal state `(ℓ_N, m_N)` — what the checked wrapper needs.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn step_with_state(&mut self, q: &[T], k: &[T], v: &[T]) -> (Vec<f64>, f64, f64) {
        let d = self.cfg.head_dim();
        assert_eq!(q.len(), d, "query length mismatch");
        assert_eq!(k.len(), d, "key length mismatch");
        assert_eq!(v.len(), d, "value length mismatch");
        self.keys.push(k.to_vec());
        self.values.push(v.to_vec());

        let newest = self.keys.len() - 1;
        let mut os = OnlineSoftmax::new();
        let mut acc = vec![0.0f64; d];
        // Sliding-window masking relative to the newest position: the
        // visible cache positions are exactly the causal window interval.
        let lo = self
            .cfg
            .with_causal(true)
            .visible_range(newest, self.keys.len())
            .start;
        for i in lo..self.keys.len() {
            let s = fa_tensor::ops::dot_then_scale(q, &self.keys[i], self.cfg.scale());
            let step = os.push(s);
            fa_tensor::ops::axpy_f64(&mut acc, &self.values[i], step.scale_old, step.weight_new);
        }
        let l = os.sum_exp();
        for a in acc.iter_mut() {
            *a /= l;
        }
        (acc, l, os.max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flash2, naive};
    use fa_tensor::random::ElementDist;

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random_seeded(n, d, ElementDist::default(), seed),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
        )
    }

    #[test]
    fn decode_matches_causal_batch_attention() {
        // Feeding tokens one at a time must equal one causal batch pass.
        let (q, k, v) = rand_qkv(10, 4, 800);
        let cfg = AttentionConfig::new(4);
        let mut session = DecodeSession::new(cfg);
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.push(session.step(q.row(i), k.row(i), v.row(i)));
        }
        let batch = naive::attention(&q, &k, &v, &cfg.with_causal(true));
        for (i, row) in rows.iter().enumerate() {
            for (c, val) in row.iter().enumerate() {
                assert!(
                    (val - batch[(i, c)]).abs() < 1e-12,
                    "token {i} lane {c}: {val} vs {}",
                    batch[(i, c)]
                );
            }
        }
    }

    #[test]
    fn prefill_then_decode_matches_full_attention() {
        let (q, k, v) = rand_qkv(8, 4, 801);
        let cfg = AttentionConfig::new(4);
        let mut session = DecodeSession::new(cfg);
        // Prefill with the first 7 positions, then decode token 7.
        let k_prompt = Matrix::from_fn(7, 4, |r, c| k[(r, c)]);
        let v_prompt = Matrix::from_fn(7, 4, |r, c| v[(r, c)]);
        session.prefill(&k_prompt, &v_prompt);
        assert_eq!(session.len(), 7);
        let out = session.step(q.row(7), k.row(7), v.row(7));
        let batch = flash2::attention(&q, &k, &v, &cfg.with_causal(true));
        for (c, val) in out.iter().enumerate() {
            assert!((val - batch[(7, c)]).abs() < 1e-12);
        }
        assert_eq!(session.len(), 8);
    }

    #[test]
    fn sliding_window_limits_the_cache_view() {
        let cfg = AttentionConfig::new(2).with_sliding_window(2);
        let mut session = DecodeSession::new(cfg);
        // Three steps with distinct values; window 2 means the final step
        // sees only positions 1 and 2.
        session.step(&[1.0, 0.0], &[1.0, 0.0], &[10.0, 0.0]);
        session.step(&[1.0, 0.0], &[1.0, 0.0], &[20.0, 0.0]);
        let out = session.step(&[1.0, 0.0], &[1.0, 0.0], &[30.0, 0.0]);
        // Identical keys => uniform weights over the visible window {20, 30}.
        assert!((out[0] - 25.0).abs() < 1e-12, "{out:?}");
    }

    #[test]
    fn state_exposes_softmax_terminals() {
        let cfg = AttentionConfig::new(2);
        let mut session = DecodeSession::new(cfg);
        let (_, l, m) = session.step_with_state(&[1.0, 1.0], &[0.5, 0.5], &[1.0, 2.0]);
        assert_eq!(l, 1.0, "single key: one unit weight");
        assert!((m - (0.5 + 0.5) * cfg.scale()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "query length mismatch")]
    fn wrong_query_length_panics() {
        let mut session = DecodeSession::<f64>::new(AttentionConfig::new(4));
        let _ = session.step(&[1.0], &[1.0, 0.0, 0.0, 0.0], &[1.0, 0.0, 0.0, 0.0]);
    }
}
