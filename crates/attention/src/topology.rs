//! The workspace's single head-count type.
//!
//! Every attention layout this repository serves is a special case of
//! grouped-query attention: `query_heads` query heads share `kv_heads`
//! key/value heads, with plain multi-head attention the degenerate
//! `kv_heads == query_heads` point and multi-query attention the
//! `kv_heads == 1` point. [`HeadTopology`] carries that pair (plus the
//! per-head kernel config) through the whole serving stack — the paged
//! [`KvCache`](crate::batch::KvCache) allocates, demotes, and evicts
//! blocks per **kv head**, and the decode/prefill schedulers fan out
//! `(sequence, kv_head)` streams where one contiguous K/V pass feeds all
//! `group_size` query states.
//!
//! [`MultiHeadConfig`](crate::multihead::MultiHeadConfig) and
//! [`GqaConfig`](crate::gqa::GqaConfig) both convert into a topology
//! (`From` impls), so existing call sites keep working while the engines
//! themselves speak one type.

use crate::gqa::GqaConfig;
use crate::multihead::MultiHeadConfig;
use crate::AttentionConfig;

/// Head layout of one attention layer: `query_heads` query heads sharing
/// `kv_heads` key/value heads (`query_heads % kv_heads == 0`), each of
/// dimension `head.head_dim()`.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HeadTopology {
    /// Number of query heads.
    pub query_heads: usize,
    /// Number of key/value heads; each serves a *group* of
    /// `query_heads / kv_heads` query heads.
    pub kv_heads: usize,
    /// Per-head kernel configuration.
    pub head: AttentionConfig,
}

impl HeadTopology {
    /// Creates a grouped topology.
    ///
    /// # Panics
    ///
    /// Panics if either head count is zero or `query_heads` is not a
    /// multiple of `kv_heads`.
    pub fn gqa(query_heads: usize, kv_heads: usize, head: AttentionConfig) -> Self {
        assert!(
            query_heads > 0 && kv_heads > 0,
            "head counts must be positive"
        );
        assert_eq!(
            query_heads % kv_heads,
            0,
            "query_heads {query_heads} must be a multiple of kv_heads {kv_heads}"
        );
        HeadTopology {
            query_heads,
            kv_heads,
            head,
        }
    }

    /// Creates the degenerate multi-head topology
    /// (`kv_heads == query_heads`).
    ///
    /// # Panics
    ///
    /// Panics if `heads == 0`.
    pub fn mha(heads: usize, head: AttentionConfig) -> Self {
        Self::gqa(heads, heads, head)
    }

    /// Whether every query head owns its K/V stream (plain multi-head).
    #[inline]
    pub fn is_mha(&self) -> bool {
        self.kv_heads == self.query_heads
    }

    /// Query heads per KV group.
    #[inline]
    pub fn group_size(&self) -> usize {
        self.query_heads / self.kv_heads
    }

    /// Width of packed Q (and output) matrices: `query_heads · head_dim`.
    #[inline]
    pub fn q_dim(&self) -> usize {
        self.query_heads * self.head.head_dim()
    }

    /// Width of packed K/V matrices: `kv_heads · head_dim`.
    #[inline]
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head.head_dim()
    }

    /// The KV group (kv-head index) serving query head `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h >= query_heads`.
    #[inline]
    pub fn group_of(&self, query_head: usize) -> usize {
        assert!(
            query_head < self.query_heads,
            "query head {query_head} out of {}",
            self.query_heads
        );
        query_head / self.group_size()
    }

    /// The query heads served by kv head `g`, as a contiguous range.
    ///
    /// # Panics
    ///
    /// Panics if `g >= kv_heads`.
    #[inline]
    pub fn group_members(&self, g: usize) -> core::ops::Range<usize> {
        assert!(g < self.kv_heads, "kv head {g} out of {}", self.kv_heads);
        let gs = self.group_size();
        g * gs..(g + 1) * gs
    }

    /// The column range kv head `g`'s **whole group** of query heads
    /// occupies in packed `N × q_dim` matrices (`group_size · head_dim`
    /// lanes, member-major) — what a `(sequence, kv_head)` group pass
    /// slices out of a packed Q row.
    ///
    /// # Panics
    ///
    /// Panics if `g >= kv_heads`.
    #[inline]
    pub fn group_q_cols(&self, g: usize) -> core::ops::Range<usize> {
        assert!(g < self.kv_heads, "kv head {g} out of {}", self.kv_heads);
        let gd = self.group_size() * self.head.head_dim();
        g * gd..(g + 1) * gd
    }

    /// The column range query head `h` occupies in packed
    /// `N × q_dim` matrices.
    ///
    /// # Panics
    ///
    /// Panics if `h >= query_heads`.
    #[inline]
    pub fn q_head_cols(&self, h: usize) -> core::ops::Range<usize> {
        assert!(
            h < self.query_heads,
            "query head {h} out of {}",
            self.query_heads
        );
        let d = self.head.head_dim();
        h * d..(h + 1) * d
    }

    /// The column range kv head `g` occupies in packed `N × kv_dim`
    /// matrices.
    ///
    /// # Panics
    ///
    /// Panics if `g >= kv_heads`.
    #[inline]
    pub fn kv_head_cols(&self, g: usize) -> core::ops::Range<usize> {
        assert!(g < self.kv_heads, "kv head {g} out of {}", self.kv_heads);
        let d = self.head.head_dim();
        g * d..(g + 1) * d
    }
}

impl From<MultiHeadConfig> for HeadTopology {
    fn from(cfg: MultiHeadConfig) -> Self {
        HeadTopology::mha(cfg.num_heads, cfg.head)
    }
}

impl From<GqaConfig> for HeadTopology {
    fn from(cfg: GqaConfig) -> Self {
        HeadTopology::gqa(cfg.query_heads, cfg.kv_heads, cfg.head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gqa_arithmetic() {
        let t = HeadTopology::gqa(8, 2, AttentionConfig::new(16));
        assert_eq!(t.group_size(), 4);
        assert_eq!(t.q_dim(), 128);
        assert_eq!(t.kv_dim(), 32);
        assert!(!t.is_mha());
        assert_eq!(t.group_of(0), 0);
        assert_eq!(t.group_of(3), 0);
        assert_eq!(t.group_of(4), 1);
        assert_eq!(t.group_members(1), 4..8);
        assert_eq!(t.q_head_cols(2), 32..48);
        assert_eq!(t.kv_head_cols(1), 16..32);
    }

    #[test]
    fn mha_is_the_degenerate_point() {
        let t = HeadTopology::mha(3, AttentionConfig::new(4));
        assert!(t.is_mha());
        assert_eq!(t.group_size(), 1);
        assert_eq!(t.q_dim(), t.kv_dim());
        for h in 0..3 {
            assert_eq!(t.group_of(h), h);
            assert_eq!(t.group_members(h), h..h + 1);
        }
    }

    #[test]
    fn conversions_preserve_head_counts() {
        let head = AttentionConfig::new(8);
        let from_mha: HeadTopology = MultiHeadConfig::new(4, head).into();
        assert_eq!((from_mha.query_heads, from_mha.kv_heads), (4, 4));
        assert_eq!(from_mha.head, head);
        let from_gqa: HeadTopology = GqaConfig::new(4, 2, head).into();
        assert_eq!((from_gqa.query_heads, from_gqa.kv_heads), (4, 2));
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn non_divisible_heads_panic() {
        let _ = HeadTopology::gqa(5, 2, AttentionConfig::new(4));
    }

    #[test]
    #[should_panic(expected = "head counts must be positive")]
    fn zero_heads_panic() {
        let _ = HeadTopology::gqa(0, 1, AttentionConfig::new(4));
    }
}
