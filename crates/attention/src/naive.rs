//! Textbook attention (paper Eq. 1): `attn(Q,K,V) = softmax(Q·Kᵀ)·V`.
//!
//! This is the golden model: it materializes the full N×N score matrix,
//! applies a numerically-stable row softmax (max subtraction), and
//! multiplies by `V`. Every faster kernel in the workspace is validated
//! against it.

use crate::{par, AttentionConfig};
use fa_tensor::{Matrix, Scalar};
use rayon::prelude::*;

/// Computes attention by materializing the full score matrix.
///
/// Arithmetic runs in f64 internally regardless of `T` (this is the
/// *reference*; the datapath models live in [`crate::flash2`] and the
/// simulator). The output is rounded to `T` at the end.
///
/// # Panics
///
/// Panics if the shapes are inconsistent (see
/// [`AttentionConfig::validate_shapes`]).
///
/// ```
/// use fa_tensor::Matrix;
/// use fa_attention::{naive, AttentionConfig};
///
/// // One query attending to two identical keys: output is the average row of V.
/// let q = Matrix::<f64>::from_rows(&[&[1.0, 0.0]]);
/// let k = Matrix::<f64>::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]);
/// let v = Matrix::<f64>::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]);
/// let out = naive::attention(&q, &k, &v, &AttentionConfig::new(2));
/// assert!((out[(0, 0)] - 4.0).abs() < 1e-12);
/// assert!((out[(0, 1)] - 6.0).abs() < 1e-12);
/// ```
pub fn attention<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
) -> Matrix<T> {
    cfg.validate_shapes(q, k, v);
    let probs = softmax_scores(q, k, cfg);
    let vf = v.to_f64();
    let out = probs.matmul(&vf);
    out.cast()
}

/// The normalized score matrix `S = softmax(scale · Q·Kᵀ)` in f64 — the
/// matrix the paper calls `S` when framing ABFT ("matrix A corresponds to
/// matrix S", §III). Masked entries are exactly zero.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn softmax_scores<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    cfg: &AttentionConfig,
) -> Matrix<f64> {
    assert_eq!(q.cols(), k.cols(), "Q and K must share the head dimension");
    let n_q = q.rows();
    let n_k = k.rows();
    let mut scores = Matrix::<f64>::zeros(n_q, n_k);

    // Each score row depends only on its own query: scores + stable row
    // softmax fused per row, rows distributed over the rayon pool.
    let fill_row = |i: usize, row: &mut [f64]| {
        for (j, s) in row.iter_mut().enumerate() {
            *s = if cfg.visible(i, j) {
                fa_tensor::ops::dot_then_scale(q.row(i), k.row(j), cfg.scale())
            } else {
                f64::NEG_INFINITY
            };
        }
        let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if m == f64::NEG_INFINITY {
            // Fully-masked row (cannot happen with causal + j<=i, but keep
            // the invariant that rows sum to 0 rather than NaN).
            for x in row.iter_mut() {
                *x = 0.0;
            }
            return;
        }
        let mut denom = 0.0;
        for x in row.iter_mut() {
            *x = (*x - m).exp();
            denom += *x;
        }
        for x in row.iter_mut() {
            *x /= denom;
        }
    };

    if n_k > 0 && par::worth_parallelizing(n_q, n_k, q.cols().max(1)) {
        scores
            .as_mut_slice()
            .par_chunks_mut(n_k)
            .enumerate()
            .for_each(|(i, row)| fill_row(i, row));
    } else if n_k > 0 {
        for (i, row) in scores.as_mut_slice().chunks_mut(n_k).enumerate() {
            fill_row(i, row);
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_tensor::random::ElementDist;

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        let q = Matrix::random_seeded(n, d, ElementDist::default(), seed);
        let k = Matrix::random_seeded(n, d, ElementDist::default(), seed + 1);
        let v = Matrix::random_seeded(n, d, ElementDist::default(), seed + 2);
        (q, k, v)
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let (q, k, _) = rand_qkv(12, 6, 10);
        let s = softmax_scores(&q, &k, &AttentionConfig::new(6));
        for row in s.iter_rows() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row sum {sum}");
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn identical_keys_give_uniform_weights() {
        let q = Matrix::<f64>::from_rows(&[&[0.3, -0.7]]);
        let k = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0]]);
        let s = softmax_scores(&q, &k, &AttentionConfig::new(2));
        for &p in s.row(0) {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn one_hot_attention_selects_value_row() {
        // A very large score on key 1 makes the softmax one-hot.
        let q = Matrix::<f64>::from_rows(&[&[100.0]]);
        let k = Matrix::<f64>::from_rows(&[&[-1.0], &[1.0]]);
        let v = Matrix::<f64>::from_rows(&[&[5.0], &[9.0]]);
        let out = attention(&q, &k, &v, &AttentionConfig::unscaled(1));
        assert!((out[(0, 0)] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn causal_mask_zeroes_future_keys() {
        let (q, k, _) = rand_qkv(5, 3, 42);
        let cfg = AttentionConfig::new(3).with_causal(true);
        let s = softmax_scores(&q, &k, &cfg);
        for i in 0..5 {
            for j in 0..5 {
                if j > i {
                    assert_eq!(s[(i, j)], 0.0, "future key ({i},{j}) must be masked");
                }
            }
            let sum: f64 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn first_causal_row_is_deterministic() {
        // Query 0 sees only key 0: output row 0 equals V row 0 exactly.
        let (q, k, v) = rand_qkv(4, 3, 77);
        let cfg = AttentionConfig::new(3).with_causal(true);
        let out = attention(&q, &k, &v, &cfg);
        for c in 0..3 {
            assert!((out[(0, c)] - v[(0, c)]).abs() < 1e-12);
        }
    }

    #[test]
    fn output_rows_are_convex_combinations() {
        // Every output element lies within [min, max] of its V column.
        let (q, k, v) = rand_qkv(10, 4, 3);
        let out = attention(&q, &k, &v, &AttentionConfig::new(4));
        for c in 0..4 {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for r in 0..10 {
                lo = lo.min(v[(r, c)]);
                hi = hi.max(v[(r, c)]);
            }
            for r in 0..10 {
                assert!(out[(r, c)] >= lo - 1e-12 && out[(r, c)] <= hi + 1e-12);
            }
        }
    }

    #[test]
    fn large_scores_stay_finite() {
        // Without max subtraction e^700 overflows; the kernel must not.
        let q = Matrix::<f64>::from_rows(&[&[700.0]]);
        let k = Matrix::<f64>::from_rows(&[&[1.0], &[0.99]]);
        let v = Matrix::<f64>::from_rows(&[&[1.0], &[2.0]]);
        let out = attention(&q, &k, &v, &AttentionConfig::unscaled(1));
        assert!(out.all_finite());
    }

    #[test]
    fn fewer_queries_than_keys() {
        let q = Matrix::<f64>::random_seeded(3, 4, ElementDist::default(), 9);
        let k = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 10);
        let v = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 11);
        let out = attention(&q, &k, &v, &AttentionConfig::new(4));
        assert_eq!((out.rows(), out.cols()), (3, 4));
        assert!(out.all_finite());
    }
}
