//! Grouped-query attention (GQA).
//!
//! Llama-3.1, Phi-3 and Gemma2 — three of the four models the paper
//! evaluates — use GQA: several query heads share one key/value head,
//! shrinking the KV cache. Per *query head* the computation is ordinary
//! attention against its group's K/V, so the Flash-ABFT checksum carries
//! over unchanged: one fused check per query head, with `sumrow(V)`
//! shared across the heads of a group (an additional hardware saving the
//! paper's architecture would inherit for free).

use crate::multihead::MultiHeadConfig;
use crate::{flash2, AttentionConfig};
use fa_tensor::{Matrix, Scalar};
use rayon::prelude::*;

/// Grouped-query attention configuration: `query_heads` query heads share
/// `kv_heads` key/value heads (`query_heads % kv_heads == 0`).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GqaConfig {
    /// Number of query heads.
    pub query_heads: usize,
    /// Number of key/value heads (each serves a group of query heads).
    pub kv_heads: usize,
    /// Per-head kernel configuration.
    pub head: AttentionConfig,
}

impl GqaConfig {
    /// Creates a GQA configuration.
    ///
    /// # Panics
    ///
    /// Panics if either head count is zero or `query_heads` is not a
    /// multiple of `kv_heads`.
    pub fn new(query_heads: usize, kv_heads: usize, head: AttentionConfig) -> Self {
        assert!(
            query_heads > 0 && kv_heads > 0,
            "head counts must be positive"
        );
        assert_eq!(
            query_heads % kv_heads,
            0,
            "query_heads {query_heads} must be a multiple of kv_heads {kv_heads}"
        );
        GqaConfig {
            query_heads,
            kv_heads,
            head,
        }
    }

    /// Query heads per KV group.
    pub fn group_size(&self) -> usize {
        self.query_heads / self.kv_heads
    }

    /// Width of the packed Q matrix: `query_heads · head_dim`.
    pub fn q_dim(&self) -> usize {
        self.query_heads * self.head.head_dim()
    }

    /// Width of the packed K/V matrices: `kv_heads · head_dim`.
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head.head_dim()
    }

    /// The KV group serving query head `h`.
    pub fn group_of(&self, query_head: usize) -> usize {
        query_head / self.group_size()
    }

    /// This configuration as a [`HeadTopology`](crate::HeadTopology) —
    /// the head-count type the serving stack
    /// ([`DecodeBatch`](crate::batch::DecodeBatch)) speaks natively; the
    /// `From` impl makes the conversion implicit at those call sites.
    pub fn topology(&self) -> crate::HeadTopology {
        crate::HeadTopology::gqa(self.query_heads, self.kv_heads, self.head)
    }
}

/// Computes grouped-query attention on packed matrices: `q` is
/// `N × (query_heads·d)`, `k`/`v` are `N × (kv_heads·d)`. Returns the
/// packed `N × (query_heads·d)` output.
///
/// # Panics
///
/// Panics on shape mismatch.
///
/// ```
/// use fa_tensor::{Matrix, random::ElementDist};
/// use fa_attention::{gqa::{self, GqaConfig}, AttentionConfig};
/// let cfg = GqaConfig::new(4, 2, AttentionConfig::new(8));
/// let q = Matrix::<f64>::random_seeded(6, 32, ElementDist::default(), 1);
/// let k = Matrix::<f64>::random_seeded(6, 16, ElementDist::default(), 2);
/// let v = Matrix::<f64>::random_seeded(6, 16, ElementDist::default(), 3);
/// let out = gqa::attention(&q, &k, &v, &cfg);
/// assert_eq!((out.rows(), out.cols()), (6, 32));
/// ```
pub fn attention<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &GqaConfig,
) -> Matrix<T> {
    assert_eq!(q.cols(), cfg.q_dim(), "packed Q width mismatch");
    assert_eq!(k.cols(), cfg.kv_dim(), "packed K width mismatch");
    assert_eq!(v.cols(), cfg.kv_dim(), "packed V width mismatch");
    let d = cfg.head.head_dim();
    let q_slicer = MultiHeadConfig::new(cfg.query_heads, cfg.head);
    let kv_slicer = MultiHeadConfig::new(cfg.kv_heads, cfg.head);

    // Slice each kv group's K/V **once**; every query head of the group
    // borrows the same slices — the same shared-per-group machinery the
    // serving prefill path uses (one kv stream feeding `group_size` query
    // states), rather than each member re-materializing its group's K/V.
    let groups: Vec<(Matrix<T>, Matrix<T>)> = (0..cfg.kv_heads)
        .map(|g| (kv_slicer.slice_head(k, g), kv_slicer.slice_head(v, g)))
        .collect();

    // Heads are independent attentions: when the head count can fill the
    // pool, fan them out in a single fork, each running the *serial* row
    // kernel (bit-identical by the property tests) so nested parallelism
    // never depends on the pool implementation. With fewer heads than
    // workers, keep the row-parallel kernel per head instead. Tiny
    // simulator-sized calls stay on this thread entirely.
    let fork_heads = cfg.query_heads >= rayon::current_num_threads()
        && crate::par::worth_parallelizing(cfg.query_heads * q.rows(), k.rows(), d);
    let heads: Vec<Matrix<T>> = if fork_heads {
        (0..cfg.query_heads)
            .into_par_iter()
            .map(|h| {
                let (kg, vg) = &groups[cfg.group_of(h)];
                flash2::attention_serial(&q_slicer.slice_head(q, h), kg, vg, &cfg.head)
            })
            .collect()
    } else {
        (0..cfg.query_heads)
            .map(|h| {
                let (kg, vg) = &groups[cfg.group_of(h)];
                flash2::attention(&q_slicer.slice_head(q, h), kg, vg, &cfg.head)
            })
            .collect()
    };

    let mut out = Matrix::zeros(q.rows(), cfg.q_dim());
    for (h, oh) in heads.iter().enumerate() {
        for r in 0..out.rows() {
            for c in 0..d {
                out[(r, h * d + c)] = oh[(r, c)];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use fa_tensor::random::ElementDist;

    #[test]
    fn config_arithmetic() {
        let cfg = GqaConfig::new(8, 2, AttentionConfig::new(16));
        assert_eq!(cfg.group_size(), 4);
        assert_eq!(cfg.q_dim(), 128);
        assert_eq!(cfg.kv_dim(), 32);
        assert_eq!(cfg.group_of(0), 0);
        assert_eq!(cfg.group_of(3), 0);
        assert_eq!(cfg.group_of(4), 1);
        assert_eq!(cfg.group_of(7), 1);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn non_divisible_heads_panic() {
        let _ = GqaConfig::new(5, 2, AttentionConfig::new(4));
    }

    #[test]
    fn gqa_equals_mha_when_groups_are_trivial() {
        // kv_heads == query_heads degenerates to standard multi-head.
        let head = AttentionConfig::new(4);
        let gqa_cfg = GqaConfig::new(3, 3, head);
        let mha_cfg = MultiHeadConfig::new(3, head);
        let q = Matrix::<f64>::random_seeded(5, 12, ElementDist::default(), 1);
        let k = Matrix::<f64>::random_seeded(5, 12, ElementDist::default(), 2);
        let v = Matrix::<f64>::random_seeded(5, 12, ElementDist::default(), 3);
        let a = attention(&q, &k, &v, &gqa_cfg);
        let b = crate::multihead::attention(&q, &k, &v, &mha_cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn grouped_heads_share_kv() {
        // Two query heads in the same group attending to identical K/V
        // must match per-head naive attention against that group's K/V.
        let head = AttentionConfig::new(4);
        let cfg = GqaConfig::new(4, 2, head);
        let q = Matrix::<f64>::random_seeded(6, 16, ElementDist::default(), 10);
        let k = Matrix::<f64>::random_seeded(6, 8, ElementDist::default(), 11);
        let v = Matrix::<f64>::random_seeded(6, 8, ElementDist::default(), 12);
        let out = attention(&q, &k, &v, &cfg);

        let q_slicer = MultiHeadConfig::new(4, head);
        let kv_slicer = MultiHeadConfig::new(2, head);
        for h in 0..4 {
            let g = cfg.group_of(h);
            let expected = naive::attention(
                &q_slicer.slice_head(&q, h),
                &kv_slicer.slice_head(&k, g),
                &kv_slicer.slice_head(&v, g),
                &head,
            );
            let got = q_slicer.slice_head(&out, h);
            assert!(got.max_abs_diff(&expected) < 1e-12, "head {h}");
        }
    }

    #[test]
    fn llama31_like_geometry() {
        // Llama-3.1 8B: 32 query heads, 8 KV heads, d=128 — scaled down
        // here (4 q-heads, 1 kv-head) to keep the test fast.
        let cfg = GqaConfig::new(4, 1, AttentionConfig::new(8));
        let q = Matrix::<f64>::random_seeded(10, 32, ElementDist::default(), 20);
        let k = Matrix::<f64>::random_seeded(10, 8, ElementDist::default(), 21);
        let v = Matrix::<f64>::random_seeded(10, 8, ElementDist::default(), 22);
        let out = attention(&q, &k, &v, &cfg);
        assert_eq!((out.rows(), out.cols()), (10, 32));
        assert!(out.all_finite());
    }
}
