//! Alg. 1 — attention with lazy softmax division.
//!
//! Two passes per query: the first computes all scores and their maximum;
//! the second accumulates the output `o_i ← o_{i−1} + e^{s_i−m_N}·v_i` and
//! the sum of exponentials `ℓ_i ← ℓ_{i−1} + e^{s_i−m_N}`; the final
//! attention row is `o_N / ℓ_N`. The max must be known before the second
//! pass starts — the serialization bottleneck FlashAttention removes
//! (paper §II).

use crate::AttentionConfig;
use fa_tensor::{Matrix, Scalar};

/// Per-query intermediate state exposed for reuse and testing: the raw
/// output accumulator `o_N`, the softmax denominator `ℓ_N` and the max
/// score `m_N` *before* the final lazy division.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryState {
    /// Unnormalized output accumulator `o_N` (length d).
    pub output: Vec<f64>,
    /// Sum of exponentials `ℓ_N`.
    pub sum_exp: f64,
    /// Maximum score `m_N`.
    pub max_score: f64,
}

/// Computes attention with the two-pass lazy-division schedule of Alg. 1.
///
/// # Panics
///
/// Panics on shape mismatch.
///
/// ```
/// use fa_tensor::{Matrix, random::ElementDist};
/// use fa_attention::{lazy, naive, AttentionConfig};
/// let q = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 1);
/// let k = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 2);
/// let v = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 3);
/// let cfg = AttentionConfig::new(4);
/// let a = lazy::attention(&q, &k, &v, &cfg);
/// let b = naive::attention(&q, &k, &v, &cfg);
/// assert!(a.max_abs_diff(&b) < 1e-12);
/// ```
pub fn attention<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
) -> Matrix<T> {
    cfg.validate_shapes(q, k, v);
    let d = cfg.head_dim();
    let mut out = Matrix::zeros(q.rows(), d);
    for qi in 0..q.rows() {
        let state = query_state(q, k, v, cfg, qi);
        for c in 0..d {
            out[(qi, c)] = T::from_f64(state.output[c] / state.sum_exp);
        }
    }
    out
}

/// Runs Alg. 1 for a single query row, returning the pre-division state.
///
/// # Panics
///
/// Panics on shape mismatch or `query_idx` out of bounds.
pub fn query_state<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
    query_idx: usize,
) -> QueryState {
    cfg.validate_shapes(q, k, v);
    assert!(query_idx < q.rows(), "query index out of bounds");
    let n = k.rows();
    let d = cfg.head_dim();

    // Pass 1 (Alg. 1 lines 2–5): scores and running max.
    let mut scores = Vec::with_capacity(n);
    let mut m = f64::NEG_INFINITY;
    for i in 0..n {
        if !cfg.visible(query_idx, i) {
            scores.push(f64::NEG_INFINITY);
            continue;
        }
        let s = fa_tensor::ops::dot_f64(q.row(query_idx), k.row(i)) * cfg.scale();
        m = m.max(s);
        scores.push(s);
    }

    // Pass 2 (lines 6–10): accumulate output and sum of exponentials.
    let mut output = vec![0.0f64; d];
    let mut sum_exp = 0.0f64;
    for (i, &s) in scores.iter().enumerate() {
        let w = (s - m).exp(); // e^{-inf} = 0 for masked keys
        if w == 0.0 {
            continue;
        }
        for (o, &vv) in output.iter_mut().zip(v.row(i)) {
            *o += w * vv.to_f64();
        }
        sum_exp += w;
    }

    QueryState {
        output,
        sum_exp,
        max_score: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use fa_tensor::random::ElementDist;

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random_seeded(n, d, ElementDist::default(), seed),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
        )
    }

    #[test]
    fn matches_naive_attention() {
        let (q, k, v) = rand_qkv(24, 8, 100);
        let cfg = AttentionConfig::new(8);
        let a = attention(&q, &k, &v, &cfg);
        let b = naive::attention(&q, &k, &v, &cfg);
        assert!(a.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn matches_naive_with_causal_mask() {
        let (q, k, v) = rand_qkv(16, 4, 200);
        let cfg = AttentionConfig::new(4).with_causal(true);
        let a = attention(&q, &k, &v, &cfg);
        let b = naive::attention(&q, &k, &v, &cfg);
        assert!(a.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn query_state_denominator_matches_softmax() {
        let (q, k, v) = rand_qkv(10, 4, 7);
        let cfg = AttentionConfig::new(4);
        let st = query_state(&q, &k, &v, &cfg, 3);
        // l_N = sum of e^{s_i - m}; recompute directly.
        let mut direct_m = f64::NEG_INFINITY;
        let mut ss = vec![];
        for i in 0..10 {
            let s = fa_tensor::ops::dot_f64(q.row(3), k.row(i)) * cfg.scale();
            direct_m = direct_m.max(s);
            ss.push(s);
        }
        assert_eq!(st.max_score, direct_m);
        let direct_l: f64 = ss.iter().map(|s| (s - direct_m).exp()).sum();
        assert!((st.sum_exp - direct_l).abs() < 1e-12);
    }

    #[test]
    fn large_scores_do_not_overflow() {
        let q = Matrix::<f64>::from_rows(&[&[500.0, 500.0]]);
        let k = Matrix::<f64>::from_rows(&[&[1.0, 1.0], &[1.0, 0.5]]);
        let v = Matrix::<f64>::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let cfg = AttentionConfig::unscaled(2);
        let out = attention(&q, &k, &v, &cfg);
        assert!(out.all_finite());
        // Key 0 dominates (score 1000 vs 750): output ≈ v row 0.
        assert!((out[(0, 0)] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "query index out of bounds")]
    fn query_state_bounds_check() {
        let (q, k, v) = rand_qkv(4, 2, 1);
        let _ = query_state(&q, &k, &v, &AttentionConfig::new(2), 4);
    }
}
