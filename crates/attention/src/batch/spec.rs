//! Speculative decoding with exact rollback — draft-and-verify over the
//! paged copy-on-write cache, verified through the fused checksum lane.
//!
//! Serving-shape decode is DRAM-bound on the KV sweep: every step
//! streams each sequence's whole retained K/V history for one query.
//! Speculative decoding amortizes that sweep along the **token axis** —
//! a cheap draft proposes `γ` tokens per sequence and the target engine
//! scores all `γ` positions in one batched pass, streaming each K/V
//! panel once for `γ` queries instead of `γ` times (the same
//! bandwidth-reuse structure the shared-prefix score tiles use along the
//! batch axis, via the same [`ops::dot_then_scale_rows_multi_into`]
//! kernels, so every (query, row) score is bit-identical to the
//! sequential GEMV path).
//!
//! The hard part is the **rollback contract**. Scoring a window requires
//! appending the draft rows first (each window query attends to the
//! draft tokens before it), and appends are deeply entangled with the
//! paged cache's policy machinery: block claims, copy-on-write splits of
//! shared tails, Mixed-format demotion, sliding-window eviction,
//! [`BlockCheck`] references, `sumrow(V)` checksum inputs, and the
//! bounded recovery log. When the verifier rejects a suffix, all of that
//! must rewind **exactly** — not approximately — or the engine's
//! bit-identity and fault-localization contracts silently rot. The
//! implementation:
//!
//! * [`DecodeBatch::speculate`] snapshots each windowed sequence's block
//!   list, references, `sumrow`s and log length, switches the arena into
//!   *deferred-frees* mode (a block whose last reference drops mid-window
//!   parks with its lanes intact instead of returning to the free lists,
//!   so demotion/eviction/CoW can run **live** and still be undone), then
//!   appends and scores the window. Mixed-format windows score in
//!   *segments* split at block-claim boundaries so demotion fires at
//!   exactly the sequential schedule's steps; F64/BF16 windows score in
//!   one segment (their appends never change earlier rows' bits).
//! * [`DecodeBatch::resolve_speculation`] rolls **every** windowed
//!   sequence back to its snapshot (resurrecting parked blocks), flushes
//!   still-unowned parked blocks to the free lists, then **replays** the
//!   accepted prefix through the ordinary append path — so eviction
//!   anchors, demotion timing, CoW splits, checks, `sumrow`s, and log
//!   truncation all land on the exact non-speculative schedule — and
//!   folds the accepted tokens' stored checksum pairs into the session
//!   totals in token order. The headline property (property-tested):
//!   **any accept/reject schedule leaves the engine bit-identical to a
//!   twin that decoded only the accepted tokens sequentially**, across
//!   format × eviction × GQA × shared-prefix × thread count. Physical
//!   block indices and the free-list order may differ from the twin;
//!   every stored lane, check, `sumrow`, total, and output is pinned.
//!
//! Between the two calls the window is *open*: every other mutating
//! entry point asserts it closed, so scrubbing, admission, demotion or
//! quarantine cannot invalidate the snapshots mid-window. One window at
//! a time; `resolve_speculation` with `accepted = 0` is a pure rollback.

use super::guard::WindowVerdict;
use super::{
    BlockCheck, BlockRef, DecodeBatch, DecodeStepOutput, HeadBlockData, HeadState, KvFormat,
};
use fa_numerics::OnlineSoftmax;
use fa_tensor::{ops, Matrix, Scalar};
use rayon::prelude::*;

/// Rollback snapshot and scored-window state for one speculating
/// sequence.
#[derive(Clone, Debug)]
pub(crate) struct SpecSeq<T: Scalar> {
    /// The windowed sequence id.
    seq: usize,
    /// Cached length when the window opened — every window append
    /// anchors eviction here (the chunked-prefill pattern: no window
    /// query's visible rows may evict before it scores).
    len0: usize,
    /// Snapshot of the retained block list (handles only; the blocks'
    /// stored lanes survive mid-window frees via the deferred-frees
    /// parking lot).
    blocks: Vec<BlockRef>,
    /// Snapshot of the per-block reference checksums.
    checks: Vec<BlockCheck>,
    /// Snapshot of the eviction cursor.
    start: usize,
    /// Snapshot of the demotion counter.
    demoted_rows: usize,
    /// Full `sumrow(V)` snapshot — mid-window demotion refreshes
    /// *pre-window* entries in place (rounded storage), so truncating is
    /// not enough; the clone is `len·kv_heads` f64s, strictly smaller
    /// than one K-panel sweep.
    sumrows: Vec<f64>,
    /// Recovery-log rows retained at open (window appends only extend;
    /// budget truncation is deferred while a window is open).
    log_rows: usize,
    /// Log truncation cursor at open (assert-only: it must not move).
    log_start: usize,
    /// The window's draft K/V rows (`γ × kv_dim` each), kept for the
    /// accepted prefix's replay.
    ks: Vec<T>,
    vs: Vec<T>,
    /// Per window token: the scored (predicted, actual) checksum pair,
    /// folded into the session totals only for accepted tokens — in
    /// token order, bitwise what sequential decode would have folded.
    token_checks: Vec<(f64, f64)>,
}

/// An open speculative window: one [`SpecSeq`] per windowed sequence,
/// parked on the engine between [`DecodeBatch::speculate`] and
/// [`DecodeBatch::resolve_speculation`].
#[derive(Clone, Debug)]
pub struct SpecWindow<T: Scalar> {
    gamma: usize,
    seqs: Vec<SpecSeq<T>>,
}

impl<T: Scalar> DecodeBatch<T> {
    /// Whether a speculative window is currently open (scored but not
    /// yet resolved).
    pub fn speculative_window_open(&self) -> bool {
        self.spec_window.is_some()
    }

    /// Scores a `gamma`-token speculative window for each listed
    /// sequence in one batched pass over the paged cache, leaving the
    /// window **open**: the draft rows are appended (with live CoW /
    /// demotion / eviction maintenance, all rewindable) and every window
    /// position's checked output is returned, but nothing is committed —
    /// session totals, checked-token counts and the recovery schedule
    /// advance only when [`resolve_speculation`](Self::resolve_speculation)
    /// accepts a prefix.
    ///
    /// Inputs are packed sequence-major: rows `i·gamma .. (i+1)·gamma`
    /// of `qs`/`ks`/`vs` are sequence `seq_ids[i]`'s window, oldest
    /// first. The returned outputs mirror that shape. Each output is
    /// bitwise the [`DecodeStepOutput`] that sequential
    /// [`step_decode`](Self::step_decode) of the same tokens would have
    /// produced — the verifier can therefore accept any prefix and the
    /// commit is exact, not approximate.
    ///
    /// Bandwidth: each retained K/V panel streams once per window for
    /// all `gamma` queries (query-inner multi-dot kernels), instead of
    /// once per token — the sweep amortization the bench measures.
    /// Mixed-format sequences split the window into segments at
    /// block-claim boundaries (demotion must fire between the right two
    /// tokens); F64/BF16 sequences always score in one segment.
    ///
    /// # Panics
    ///
    /// Panics if a window is already open, `gamma == 0`, shapes don't
    /// match `batch·gamma` rows, or any id is unknown, retired, pending,
    /// or duplicated.
    pub fn speculate(
        &mut self,
        seq_ids: &[usize],
        qs: &Matrix<T>,
        ks: &Matrix<T>,
        vs: &Matrix<T>,
        gamma: usize,
    ) -> Vec<Vec<DecodeStepOutput>> {
        self.assert_no_window();
        assert!(gamma > 0, "speculative window must hold at least one token");
        let batch = seq_ids.len();
        assert_eq!(qs.cols(), self.cfg.q_dim(), "Q width mismatch");
        assert_eq!(ks.cols(), self.cfg.kv_dim(), "K width mismatch");
        assert_eq!(vs.cols(), self.cfg.kv_dim(), "V width mismatch");
        assert_eq!(qs.rows(), batch * gamma, "gamma Q rows per sequence id");
        assert_eq!(ks.rows(), batch * gamma, "gamma K rows per sequence id");
        assert_eq!(vs.rows(), batch * gamma, "gamma V rows per sequence id");
        for (i, &s) in seq_ids.iter().enumerate() {
            assert!(s < self.num_sequences(), "unknown sequence id {s}");
            assert!(!self.cache.is_retired(s), "sequence {s} is retired");
            assert!(
                !self.is_pending(s),
                "sequence {s} still has pending prompt chunks"
            );
            assert!(
                !seq_ids[..i].contains(&s),
                "duplicate sequence id {s} in one window"
            );
        }

        // Snapshot every windowed sequence, then open the window BEFORE
        // any append: the open window both parks last-reference frees
        // (lanes stay intact for rollback) and defers recovery-log
        // budget truncation (leading-row drops are not tail-reversible).
        let width = self.cache.width;
        let specs: Vec<SpecSeq<T>> = seq_ids
            .iter()
            .enumerate()
            .map(|(i, &seq)| {
                let sb = &self.cache.seqs[seq];
                let st = &self.seqs[seq];
                SpecSeq {
                    seq,
                    len0: sb.len,
                    blocks: sb.blocks.clone(),
                    checks: sb.checks.clone(),
                    start: sb.start,
                    demoted_rows: sb.demoted_rows,
                    sumrows: st.sumrows.clone(),
                    log_rows: st.log_k.len() / width,
                    log_start: st.log_start,
                    ks: {
                        let mut rows = Vec::with_capacity(gamma * width);
                        for j in 0..gamma {
                            rows.extend_from_slice(ks.row(i * gamma + j));
                        }
                        rows
                    },
                    vs: {
                        let mut rows = Vec::with_capacity(gamma * width);
                        for j in 0..gamma {
                            rows.extend_from_slice(vs.row(i * gamma + j));
                        }
                        rows
                    },
                    token_checks: Vec::with_capacity(gamma),
                }
            })
            .collect();
        let len0s: Vec<usize> = specs.iter().map(|s| s.len0).collect();
        self.cache.begin_deferred_frees();
        self.spec_window = Some(SpecWindow { gamma, seqs: specs });

        // Segment the window at block-claim boundaries for Mixed format:
        // a claim is exactly when the appended position is a multiple of
        // block_rows (`start` is always block-aligned), and claims are
        // when demotion fires — scoring must interleave so each query
        // sees the storage formats its sequential twin saw. F64/BF16
        // appends never change earlier rows' bits (CoW copies bitwise),
        // so the whole window is one segment.
        let br = self.cache.block_rows();
        let mixed = matches!(self.cache.format(), KvFormat::Mixed { .. });
        let mut phases: Vec<Vec<(usize, usize, usize)>> = Vec::new();
        for (i, &len0) in len0s.iter().enumerate() {
            let mut bounds = vec![0usize];
            if mixed {
                for j in 1..gamma {
                    if (len0 + j) % br == 0 {
                        bounds.push(j);
                    }
                }
            }
            bounds.push(gamma);
            for (p, w) in bounds.windows(2).enumerate() {
                if phases.len() <= p {
                    phases.push(Vec::new());
                }
                phases[p].push((i, w[0], w[1]));
            }
        }

        let kv = self.cfg.kv_heads;
        let gs = self.cfg.group_size();
        let d = self.cfg.head.head_dim();
        let mut outputs: Vec<Vec<DecodeStepOutput>> =
            (0..batch).map(|_| Vec::with_capacity(gamma)).collect();
        for phase in &phases {
            // Serial appends for this phase's segments, anchored at each
            // sequence's pre-window length.
            for &(i, j0, j1) in phase {
                let seq = seq_ids[i];
                for j in j0..j1 {
                    let r = i * gamma + j;
                    self.append_token_anchored(seq, ks.row(r), vs.row(r), len0s[i]);
                }
            }
            // One fork over (segment × kv head) multi-query passes —
            // same fork shape and threshold family as `run_passes`, and
            // per-(query, head) arithmetic identical to the sequential
            // pass, so thread count cannot affect bits.
            let work = phase.len() * kv;
            let max_len = phase
                .iter()
                .map(|&(i, _, _)| self.cache.seq_len(seq_ids[i]))
                .max()
                .unwrap_or(0);
            let pass = |flat: usize| {
                let (u, g) = (flat / kv, flat % kv);
                let (i, j0, j1) = phase[u];
                self.spec_group_pass(seq_ids[i], g, qs, i, gamma, len0s[i], j0, j1)
            };
            let states: Vec<Vec<HeadState>> =
                if crate::par::worth_parallelizing(work, max_len, d * gs * gamma) {
                    (0..work).into_par_iter().map(pass).collect()
                } else {
                    (0..work).map(pass).collect()
                };
            // Finalize each window token exactly as `step_decode` does:
            // query heads in order (kv-group major, member minor ==
            // ascending query head), lanes in order — but fold nothing
            // into the session totals; the pairs park in the window.
            for (u, &(i, j0, j1)) in phase.iter().enumerate() {
                for j in j0..j1 {
                    let mut output = vec![0.0f64; self.cfg.q_dim()];
                    let mut predicted = 0.0f64;
                    let mut actual = 0.0f64;
                    for g in 0..kv {
                        let unit = &states[u * kv + g];
                        for m in 0..gs {
                            let hi = g * gs + m;
                            let state = &unit[(j - j0) * gs + m];
                            for (c, &lane) in state.lanes[..d].iter().enumerate() {
                                let val = lane / state.sum_exp;
                                output[hi * d + c] = val;
                                actual += val;
                            }
                            predicted += state.lanes[d] / state.sum_exp;
                        }
                    }
                    let win = self.spec_window.as_mut().expect("window is open");
                    win.seqs[i].token_checks.push((predicted, actual));
                    outputs[i].push(DecodeStepOutput {
                        output,
                        predicted,
                        actual,
                    });
                }
            }
        }
        outputs
    }

    /// One (sequence, kv head) multi-query fused pass over window
    /// queries `j0..j1` (positions `len0+j0 .. len0+j1`): each retained
    /// K/V panel streams **once** through the query-inner multi-dot
    /// kernel for the union visible range, then every (query, member)
    /// folds only its own causal-window slice through the shared online
    /// recurrence — the same per-(query, row) dot microkernel and the
    /// same fold order as the sequential pass, hence bitwise equal.
    #[allow(clippy::too_many_arguments)]
    fn spec_group_pass(
        &self,
        seq: usize,
        kv_head: usize,
        qs: &Matrix<T>,
        i: usize,
        gamma: usize,
        len0: usize,
        j0: usize,
        j1: usize,
    ) -> Vec<HeadState> {
        let d = self.cfg.head.head_dim();
        let kv = self.cfg.kv_heads;
        let gs = self.cfg.group_size();
        let scale = self.cfg.head.scale();
        let nq = (j1 - j0) * gs;
        let sumrows = &self.seqs[seq].sumrows;
        let cols = self.cfg.group_q_cols(kv_head);

        // Pack the segment's queries token-outer, member-inner: packed
        // query `(j-j0)·gs + m` is window token `j`'s member `m`.
        let mut q_pack: Vec<T> = Vec::with_capacity(nq * d);
        for j in j0..j1 {
            q_pack.extend_from_slice(&qs.row(i * gamma + j)[cols.clone()]);
        }
        // Widened twin for demoted blocks — same existence condition as
        // the sequential pass (BF16 blocks possible), and like there it
        // never touches native-block scoring.
        let q_wide: Vec<f64> = if self.cache.format() == KvFormat::F64
            && !self.cache.seqs[seq].blocks.iter().any(|b| b.bf16)
        {
            Vec::new()
        } else {
            q_pack.iter().map(|x| x.to_f64()).collect()
        };

        let last_max = len0 + j1 - 1;
        // The oldest query's window floor — block-independent, so the
        // union range below is per-block arithmetic only.
        let lo_min = match self.mask_window {
            Some(w) => (len0 + j0 + 1).saturating_sub(w),
            None => 0,
        };
        let mut states: Vec<(OnlineSoftmax, Vec<f64>)> = (0..nq)
            .map(|_| (OnlineSoftmax::new(), vec![0.0f64; d + 1]))
            .collect();
        let mut tile: Vec<f64> = Vec::new();
        for blk in self.cache.head_stream(seq, kv_head) {
            if blk.first > last_max {
                break;
            }
            // Union visible range across the segment's queries: newest
            // query's causal bound, oldest query's window floor.
            let u1 = (last_max + 1 - blk.first).min(blk.rows);
            let u0 = lo_min.saturating_sub(blk.first).min(u1);
            if u0 == u1 {
                continue;
            }
            let n_rows = u1 - u0;
            tile.clear();
            tile.resize(nq * n_rows, 0.0);
            match blk.data {
                HeadBlockData::Native { k, v } => {
                    ops::dot_then_scale_rows_multi_into(
                        &q_pack,
                        d,
                        &k[u0 * blk.stride..],
                        blk.stride,
                        n_rows,
                        scale,
                        &mut tile,
                    );
                    fold_segment(
                        &mut states,
                        &tile,
                        v,
                        blk.stride,
                        blk.first,
                        blk.rows,
                        u0,
                        n_rows,
                        len0,
                        j0,
                        j1,
                        gs,
                        self.mask_window,
                        sumrows,
                        kv,
                        kv_head,
                    );
                }
                HeadBlockData::Demoted { k, v } => {
                    ops::dot_then_scale_rows_multi_bf16_into(
                        &q_wide,
                        d,
                        &k[u0 * blk.stride..],
                        blk.stride,
                        n_rows,
                        scale,
                        &mut tile,
                    );
                    fold_segment(
                        &mut states,
                        &tile,
                        v,
                        blk.stride,
                        blk.first,
                        blk.rows,
                        u0,
                        n_rows,
                        len0,
                        j0,
                        j1,
                        gs,
                        self.mask_window,
                        sumrows,
                        kv,
                        kv_head,
                    );
                }
            }
        }
        states
            .into_iter()
            .map(|(os, lanes)| HeadState {
                lanes,
                sum_exp: os.sum_exp(),
            })
            .collect()
    }

    /// Closes the open window: rolls **every** windowed sequence back to
    /// its snapshot, then replays `accepted[i]` tokens of sequence `i`'s
    /// window through the ordinary append path and folds their stored
    /// checksum pairs into the session totals in token order. After this
    /// returns, the engine is bit-identical (stored lanes, checks,
    /// `sumrow`s, totals, lengths, logs) to a twin that decoded only the
    /// accepted tokens sequentially; only physical block placement and
    /// the recycling counters may differ.
    ///
    /// `accepted[i] == 0` is a pure rollback (a rejected or alarmed
    /// window); `accepted[i] == gamma` still rolls back and replays, so
    /// eviction/demotion/log maintenance land on the canonical
    /// non-speculative schedule.
    ///
    /// Returns one [`WindowVerdict`] per sequence — the fused checksum
    /// verdict over each accepted prefix.
    ///
    /// # Panics
    ///
    /// Panics if no window is open, `accepted.len()` doesn't match the
    /// windowed sequences, or any count exceeds the window length.
    pub fn resolve_speculation(&mut self, accepted: &[usize]) -> Vec<WindowVerdict> {
        let win = self
            .spec_window
            .take()
            .expect("no speculative window is open");
        assert_eq!(
            accepted.len(),
            win.seqs.len(),
            "one accepted count per windowed sequence"
        );
        for (s, &a) in win.seqs.iter().zip(accepted) {
            assert!(
                a <= win.gamma,
                "accepted {a} tokens from a {}-token window for sequence {}",
                win.gamma,
                s.seq
            );
        }
        let width = self.cache.width;
        // Restore snapshots. Resurrect every snapshot block FIRST, then
        // release every current block: a block present in both lists
        // never transits through zero, one present only in the snapshot
        // (CoW'd, demoted, or evicted mid-window — parked with lanes
        // intact) comes back to its pre-window count, and one present
        // only in the current list (claimed mid-window) drops to zero
        // and parks for the flush below.
        for s in &win.seqs {
            for &b in &s.blocks {
                self.cache.resurrect_block(b);
            }
            let sb = &mut self.cache.seqs[s.seq];
            let current = core::mem::replace(&mut sb.blocks, s.blocks.clone());
            sb.checks = s.checks.clone();
            sb.start = s.start;
            sb.len = s.len0;
            sb.demoted_rows = s.demoted_rows;
            for b in current {
                self.cache.release_block(b);
            }
            let st = &mut self.seqs[s.seq];
            st.sumrows.clone_from(&s.sumrows);
            debug_assert_eq!(
                st.log_start, s.log_start,
                "recovery-log truncation ran mid-window"
            );
            st.log_k.truncate(s.log_rows * width);
            st.log_v.truncate(s.log_rows * width);
        }
        // The window is closed: blocks nobody resurrected return to the
        // free lists and appends resume normal immediate frees.
        self.cache.flush_deferred_frees();

        // Replay the accepted prefixes through the ordinary append path
        // — eviction anchors at the growing length, demotion fires at
        // claims, CoW splits re-run, and log truncation resumes, all on
        // the exact schedule sequential decode would have used.
        let mut verdicts = Vec::with_capacity(win.seqs.len());
        for (s, &a) in win.seqs.iter().zip(accepted) {
            let mut predicted = 0.0f64;
            let mut actual = 0.0f64;
            for t in 0..a {
                self.append_token(
                    s.seq,
                    &s.ks[t * width..(t + 1) * width],
                    &s.vs[t * width..(t + 1) * width],
                );
                let (p, act) = s.token_checks[t];
                let st = &mut self.seqs[s.seq];
                st.totals.0 += p;
                st.totals.1 += act;
                st.checked_steps += 1;
                predicted += p;
                actual += act;
            }
            verdicts.push(WindowVerdict {
                seq: s.seq,
                accepted: a,
                predicted,
                actual,
            });
        }
        verdicts
    }
}

/// Folds one scored tile (union range `[u0, u0+n_rows)`, query-major)
/// into the segment's per-(query, member) online states: each query `j`
/// consumes only its own causal-window slice `[r0_j, r1_j)` — rows the
/// sequential pass would have scored for that token, in the same order,
/// through the same [`accumulate_block`] recurrence.
///
/// Iteration is rows-outer / queries-inner so each V row (and its
/// sumrow) is streamed from memory once per block regardless of how
/// many window queries consume it; queries are independent folds, and
/// each still sees its own rows in ascending order with the exact
/// per-row arithmetic of [`accumulate_block`], so the output is
/// bit-identical to the query-outer formulation.
#[allow(clippy::too_many_arguments)]
fn fold_segment<V: Scalar>(
    states: &mut [(OnlineSoftmax, Vec<f64>)],
    tile: &[f64],
    v: &[V],
    stride: usize,
    first: usize,
    rows: usize,
    u0: usize,
    n_rows: usize,
    len0: usize,
    j0: usize,
    j1: usize,
    gs: usize,
    mask_window: Option<usize>,
    sumrows: &[f64],
    kv: usize,
    kv_head: usize,
) {
    let d = match states.first() {
        Some((_, lanes)) => lanes.len() - 1,
        None => return,
    };
    for rr in 0..n_rows {
        let r = u0 + rr;
        if r >= rows {
            break;
        }
        let pos = first + r;
        // Queries that see this row: causal floor `len0 + j >= pos`,
        // sliding-window ceiling `pos >= len0 + j + 1 - w`.
        let lo_j = pos.saturating_sub(len0).max(j0);
        let hi_j = match mask_window {
            Some(w) => (pos + w).saturating_sub(len0).min(j1),
            None => j1,
        };
        if lo_j >= hi_j {
            continue;
        }
        let vrow = &v[r * stride..r * stride + d];
        let sum = sumrows[pos * kv + kv_head];
        for j in lo_j..hi_j {
            for m in 0..gs {
                let qi = (j - j0) * gs + m;
                let (os, lanes) = &mut states[qi];
                let step = os.push(tile[qi * n_rows + rr]);
                ops::axpy_f64(&mut lanes[..d], vrow, step.scale_old, step.weight_new);
                lanes[d] = lanes[d] * step.scale_old + sum * step.weight_new;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
    use crate::topology::HeadTopology;
    use crate::AttentionConfig;
    use fa_tensor::{random::ElementDist, Matrix};

    fn rand(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        Matrix::random_seeded(rows, cols, ElementDist::default(), seed)
    }

    fn engine(format: KvFormat, eviction: EvictionPolicy, topo: HeadTopology) -> DecodeBatch<f64> {
        DecodeBatch::with_policy(topo, 4, KvLayout::HeadMajor, format, eviction)
    }

    /// The policy sweep every speculative golden runs: format × eviction
    /// × topology, including the Mixed/sliding-window/GQA corners.
    fn combos() -> Vec<(KvFormat, EvictionPolicy, HeadTopology)> {
        let formats = [
            KvFormat::F64,
            KvFormat::Bf16,
            KvFormat::Mixed { burst_blocks: 1 },
        ];
        let evictions = [
            EvictionPolicy::RetainAll,
            EvictionPolicy::SlidingWindow { window_blocks: 3 },
        ];
        let topos = [
            HeadTopology::mha(2, AttentionConfig::new(4)),
            HeadTopology::gqa(4, 2, AttentionConfig::new(4)),
        ];
        let mut out = Vec::new();
        for f in formats {
            for e in evictions {
                for t in topos {
                    out.push((f, e, t));
                }
            }
        }
        out
    }

    /// Asserts two engines' **logical** sequence state is bitwise equal:
    /// retained rows, references, sumrows, totals, lengths. Physical
    /// block indices are free to differ.
    fn assert_twin(a: &DecodeBatch<f64>, b: &DecodeBatch<f64>, seq: usize, what: &str) {
        assert_eq!(a.seq_len(seq), b.seq_len(seq), "{what}: length");
        assert_eq!(
            a.cache().first_retained(seq),
            b.cache().first_retained(seq),
            "{what}: eviction cursor"
        );
        assert_eq!(
            a.demoted_len(seq),
            b.demoted_len(seq),
            "{what}: demoted rows"
        );
        for p in a.cache().first_retained(seq)..a.seq_len(seq) {
            assert_eq!(
                a.cache().key_row(seq, p),
                b.cache().key_row(seq, p),
                "{what}: key row {p}"
            );
            assert_eq!(
                a.cache().value_row(seq, p),
                b.cache().value_row(seq, p),
                "{what}: value row {p}"
            );
        }
        let (ca, cb) = (a.cache().block_checks(seq), b.cache().block_checks(seq));
        assert_eq!(ca.len(), cb.len(), "{what}: retained block count");
        for (bi, (x, y)) in ca.iter().zip(cb).enumerate() {
            for g in 0..x.ksum.len() {
                assert_eq!(
                    x.ksum[g].to_bits(),
                    y.ksum[g].to_bits(),
                    "{what}: block {bi} ksum head {g}"
                );
                assert_eq!(
                    x.vsum[g].to_bits(),
                    y.vsum[g].to_bits(),
                    "{what}: block {bi} vsum head {g}"
                );
            }
        }
        assert_eq!(
            a.seqs[seq].sumrows.len(),
            b.seqs[seq].sumrows.len(),
            "{what}: sumrow count"
        );
        for (i, (x, y)) in a.seqs[seq]
            .sumrows
            .iter()
            .zip(&b.seqs[seq].sumrows)
            .enumerate()
        {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: sumrow {i}");
        }
        assert_eq!(
            a.seqs[seq].totals.0.to_bits(),
            b.seqs[seq].totals.0.to_bits(),
            "{what}: predicted total"
        );
        assert_eq!(
            a.seqs[seq].totals.1.to_bits(),
            b.seqs[seq].totals.1.to_bits(),
            "{what}: actual total"
        );
        assert_eq!(
            a.seqs[seq].log_k.len(),
            b.seqs[seq].log_k.len(),
            "{what}: log rows"
        );
        assert_eq!(a.seqs[seq].log_k, b.seqs[seq].log_k, "{what}: log K");
        assert_eq!(a.seqs[seq].log_v, b.seqs[seq].log_v, "{what}: log V");
    }

    /// A (speculative, sequential-twin) engine pair: same policies, same
    /// two prefilled sequences.
    fn pair(
        format: KvFormat,
        eviction: EvictionPolicy,
        topo: HeadTopology,
        prefill: usize,
    ) -> (DecodeBatch<f64>, DecodeBatch<f64>, Vec<usize>) {
        let mut spec = engine(format, eviction, topo);
        let mut twin = engine(format, eviction, topo);
        let ids: Vec<usize> = (0..2).map(|_| spec.add_sequence()).collect();
        for _ in 0..2 {
            twin.add_sequence();
        }
        for (i, &id) in ids.iter().enumerate() {
            let k = rand(prefill, topo.kv_dim(), 300 + i as u64);
            let v = rand(prefill, topo.kv_dim(), 400 + i as u64);
            spec.prefill(id, &k, &v);
            twin.prefill(id, &k, &v);
        }
        (spec, twin, ids)
    }

    /// Window inputs for `ids`: sequence-major γ rows per sequence, plus
    /// the per-token views the sequential twin consumes.
    fn window(
        ids: &[usize],
        topo: HeadTopology,
        gamma: usize,
        seed: u64,
    ) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        let n = ids.len() * gamma;
        (
            rand(n, topo.q_dim(), seed),
            rand(n, topo.kv_dim(), seed + 1),
            rand(n, topo.kv_dim(), seed + 2),
        )
    }

    /// Row `i·gamma + t` of the window matrices, re-packed as the twin's
    /// one-token-per-sequence step input.
    fn token_step(m: &Matrix<f64>, ids_len: usize, gamma: usize, t: usize) -> Matrix<f64> {
        let rows: Vec<&[f64]> = (0..ids_len).map(|i| m.row(i * gamma + t)).collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn full_accept_is_bitwise_sequential_decode() {
        for (format, eviction, topo) in combos() {
            let gamma = 4;
            let (mut spec, mut twin, ids) = pair(format, eviction, topo, 10);
            let (qs, ks, vs) = window(&ids, topo, gamma, 77);
            let outs = spec.speculate(&ids, &qs, &ks, &vs, gamma);
            let mut twin_outs: Vec<Vec<super::DecodeStepOutput>> =
                ids.iter().map(|_| Vec::new()).collect();
            for t in 0..gamma {
                let step = twin.step_decode(
                    &ids,
                    &token_step(&qs, ids.len(), gamma, t),
                    &token_step(&ks, ids.len(), gamma, t),
                    &token_step(&vs, ids.len(), gamma, t),
                );
                for (i, o) in step.into_iter().enumerate() {
                    twin_outs[i].push(o);
                }
            }
            for (i, (sw, tw)) in outs.iter().zip(&twin_outs).enumerate() {
                for (t, (so, to)) in sw.iter().zip(tw).enumerate() {
                    assert_eq!(
                        so.predicted.to_bits(),
                        to.predicted.to_bits(),
                        "{format:?}/{eviction:?} seq {i} token {t} predicted"
                    );
                    assert_eq!(
                        so.actual.to_bits(),
                        to.actual.to_bits(),
                        "{format:?}/{eviction:?} seq {i} token {t} actual"
                    );
                    for (c, (x, y)) in so.output.iter().zip(&to.output).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{format:?}/{eviction:?} seq {i} token {t} lane {c}"
                        );
                    }
                }
            }
            let verdicts = spec.resolve_speculation(&vec![gamma; ids.len()]);
            for (v, &id) in verdicts.iter().zip(&ids) {
                assert_eq!(v.seq, id);
                assert_eq!(v.accepted, gamma);
            }
            for &id in &ids {
                assert_twin(
                    &spec,
                    &twin,
                    id,
                    &format!("{format:?}/{eviction:?} full accept"),
                );
                assert!(spec.rewind_checks_clean(id));
            }
        }
    }

    #[test]
    fn reject_all_is_a_pure_rollback() {
        for (format, eviction, topo) in combos() {
            let gamma = 5; // spans a block-claim boundary at block_rows=4
            let (mut spec, _twin, ids) = pair(format, eviction, topo, 10);
            let golden = spec.clone();
            let (qs, ks, vs) = window(&ids, topo, gamma, 909);
            spec.speculate(&ids, &qs, &ks, &vs, gamma);
            assert!(spec.speculative_window_open());
            let verdicts = spec.resolve_speculation(&vec![0; ids.len()]);
            assert!(!spec.speculative_window_open());
            for v in &verdicts {
                assert_eq!(v.accepted, 0);
                assert_eq!(v.predicted, 0.0);
                assert_eq!(v.actual, 0.0);
            }
            for &id in &ids {
                assert_twin(
                    &spec,
                    &golden,
                    id,
                    &format!("{format:?}/{eviction:?} reject-all"),
                );
                assert!(spec.rewind_checks_clean(id));
            }
            // The arena leaks nothing: every mid-window claim returned.
            assert_eq!(
                spec.cache().live_unique_blocks(),
                golden.cache().live_unique_blocks(),
                "{format:?}/{eviction:?}: live blocks after pure rollback"
            );
        }
    }

    #[test]
    fn partial_accept_replays_bit_identical_and_decodes_on() {
        for (format, eviction, topo) in combos() {
            let gamma = 5;
            for accept in 0..=gamma {
                let (mut spec, mut twin, ids) = pair(format, eviction, topo, 10);
                let (qs, ks, vs) = window(&ids, topo, gamma, 4242);
                spec.speculate(&ids, &qs, &ks, &vs, gamma);
                spec.resolve_speculation(&vec![accept; ids.len()]);
                for t in 0..accept {
                    twin.step_decode(
                        &ids,
                        &token_step(&qs, ids.len(), gamma, t),
                        &token_step(&ks, ids.len(), gamma, t),
                        &token_step(&vs, ids.len(), gamma, t),
                    );
                }
                for &id in &ids {
                    assert_twin(
                        &spec,
                        &twin,
                        id,
                        &format!("{format:?}/{eviction:?} accept {accept}/{gamma}"),
                    );
                }
                // Post-rollback decode stays in lockstep with the twin.
                for t in 0..3 {
                    let q = rand(ids.len(), topo.q_dim(), 7000 + t);
                    let k = rand(ids.len(), topo.kv_dim(), 7100 + t);
                    let v = rand(ids.len(), topo.kv_dim(), 7200 + t);
                    let a = spec.step_decode(&ids, &q, &k, &v);
                    let b = twin.step_decode(&ids, &q, &k, &v);
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!(x.predicted.to_bits(), y.predicted.to_bits());
                        assert_eq!(x.actual.to_bits(), y.actual.to_bits());
                        for (xa, ya) in x.output.iter().zip(&y.output) {
                            assert_eq!(xa.to_bits(), ya.to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shared_prefix_window_rolls_back_cow_splits() {
        let topo = HeadTopology::gqa(4, 2, AttentionConfig::new(4));
        let mut spec = engine(KvFormat::F64, EvictionPolicy::RetainAll, topo);
        let mut twin = engine(KvFormat::F64, EvictionPolicy::RetainAll, topo);
        // A 6-row prefix leaves the shared tail block half-filled, so
        // the first *window* append must CoW-split it.
        let pk = rand(6, topo.kv_dim(), 1);
        let pv = rand(6, topo.kv_dim(), 2);
        let pq = rand(6, topo.q_dim(), 3);
        let pid_s = spec.register_prefix(&pq, &pk, &pv);
        let pid_t = twin.register_prefix(&pq, &pk, &pv);
        let empty_q = Matrix::zeros(0, topo.q_dim());
        let empty_kv = Matrix::zeros(0, topo.kv_dim());
        let mut ids = Vec::new();
        for _ in 0..2u64 {
            ids.push(spec.enqueue_shared(pid_s, &empty_q, &empty_kv, &empty_kv));
            twin.enqueue_shared(pid_t, &empty_q, &empty_kv, &empty_kv);
        }
        let golden = spec.clone();
        let gamma = 4;
        let (qs, ks, vs) = window(&ids, topo, gamma, 5150);
        let before = spec.cache().cow_copies();
        spec.speculate(&ids, &qs, &ks, &vs, gamma);
        assert!(
            spec.cache().cow_copies() > before,
            "window appends into a shared tail must CoW-split"
        );
        spec.resolve_speculation(&[0, 0]);
        for &id in &ids {
            assert_twin(&spec, &golden, id, "shared-prefix reject-all");
            assert!(spec.rewind_checks_clean(id));
        }
        // The shared prefix is still registered and intact for new readers.
        assert_eq!(spec.prefix_readers(pid_s), 2);
        // Accept a prefix on a fresh window and stay lockstep with the twin.
        spec.speculate(&ids, &qs, &ks, &vs, gamma);
        spec.resolve_speculation(&[2, 2]);
        for t in 0..2 {
            twin.step_decode(
                &ids,
                &token_step(&qs, ids.len(), gamma, t),
                &token_step(&ks, ids.len(), gamma, t),
                &token_step(&vs, ids.len(), gamma, t),
            );
        }
        for &id in &ids {
            assert_twin(&spec, &twin, id, "shared-prefix accept 2");
        }
    }

    #[test]
    fn mutating_entry_points_refuse_an_open_window() {
        let topo = HeadTopology::mha(2, AttentionConfig::new(4));
        let mut b = engine(KvFormat::F64, EvictionPolicy::RetainAll, topo);
        let id = b.add_sequence();
        b.prefill(id, &rand(6, topo.kv_dim(), 1), &rand(6, topo.kv_dim(), 2));
        let (qs, ks, vs) = window(&[id], topo, 2, 9);
        b.speculate(&[id], &qs, &ks, &vs, 2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.step_decode(
                &[id],
                &rand(1, topo.q_dim(), 3),
                &rand(1, topo.kv_dim(), 4),
                &rand(1, topo.kv_dim(), 5),
            )
        }));
        assert!(r.is_err(), "step_decode must refuse an open window");
        b.resolve_speculation(&[1]);
        // Closed again: ordinary decode resumes.
        b.step_decode(
            &[id],
            &rand(1, topo.q_dim(), 3),
            &rand(1, topo.kv_dim(), 4),
            &rand(1, topo.kv_dim(), 5),
        );
    }

    #[test]
    fn recovery_log_rewinds_with_the_window() {
        let topo = HeadTopology::mha(2, AttentionConfig::new(4));
        let mk = || {
            let mut b = engine(
                KvFormat::F64,
                EvictionPolicy::SlidingWindow { window_blocks: 3 },
                topo,
            );
            b.enable_recovery_log();
            b.set_recovery_log_budget(Some(8));
            b
        };
        let mut spec = mk();
        let mut twin = mk();
        let id = spec.add_sequence();
        twin.add_sequence();
        let (k, v) = (rand(10, topo.kv_dim(), 1), rand(10, topo.kv_dim(), 2));
        spec.prefill(id, &k, &v);
        twin.prefill(id, &k, &v);
        let gamma = 6;
        let (qs, ks, vs) = window(&[id], topo, gamma, 99);
        spec.speculate(&[id], &qs, &ks, &vs, gamma);
        spec.resolve_speculation(&[3]);
        for t in 0..3 {
            twin.step_decode(
                &[id],
                &token_step(&qs, 1, gamma, t),
                &token_step(&ks, 1, gamma, t),
                &token_step(&vs, 1, gamma, t),
            );
        }
        assert_twin(&spec, &twin, id, "bounded log, accept 3/6");
        assert_eq!(spec.seq_log_rows(id), twin.seq_log_rows(id));
    }
}
