//! Live fault injection, block-granular localization, and recovery for
//! the serving engine — the paper's detect-and-recover story promoted
//! from one-shot kernels to the continuous-batching stack.
//!
//! The online checksum lane gives [`DecodeBatch`] a *sequence-level*
//! verdict ([`DecodeBatch::global_residual`]): a corrupted step pushes
//! `predicted − actual` out of tolerance, but says nothing about *where*
//! the poison lives. This module adds the three missing pieces:
//!
//! * **Injection** — [`flip_storage_bit`](DecodeBatch::flip_storage_bit)
//!   / [`flip_sumrow_bit`](DecodeBatch::flip_sumrow_bit) /
//!   [`flip_total_bit`](DecodeBatch::flip_total_bit) flip single bits in
//!   a *live* engine's K/V block storage (native f64 or demoted BF16
//!   rows), its `sumrow(V)` checksum inputs, and its running verdict
//!   accumulator — each a distinct detection story (see below).
//! * **Localization** — [`audit`](DecodeBatch::audit) walks the
//!   per-(sequence, kv head, block) [`BlockCheck`](super::BlockCheck)
//!   reference structure, comparing stored references against a fresh
//!   recompute **bitwise** (the folds share one summation order, so a
//!   clean block matches exactly), and pins each fault as a
//!   [`LocalizedFault`] instead of just failing the sequence verdict.
//! * **Recovery** — with the opt-in
//!   [`enable_recovery_log`](DecodeBatch::enable_recovery_log), the
//!   engine retains each sequence's original rows;
//!   [`recover_block`](DecodeBatch::recover_block) rewrites **only the
//!   poisoned block** from the log (honoring the block's storage format,
//!   so restored bits equal the never-corrupted bits exactly), rebuilds
//!   its reference checksum and `sumrow` inputs, and
//!   [`clear_verdict`](DecodeBatch::clear_verdict) opens a fresh verdict
//!   epoch — decode resumes **bit-identical** to an uninjected run
//!   (property-tested across formats, eviction policies, and GQA group
//!   sizes).
//!
//! # Detection stories by site
//!
//! | site | online residual | audit |
//! |---|---|---|
//! | V storage | alarms (prediction uses clean `sumrow`s, outputs use corrupted rows) | value-side [`LocalizedFault::CorruptBlock`] |
//! | K storage | **coherent** — corrupted scores weight output lanes *and* checksum lane identically, so the residual stays small while outputs diverge | key-side [`LocalizedFault::CorruptBlock`] (the periodic scrub is the only lane that sees it) |
//! | `sumrow` | alarms (prediction corrupted, outputs clean — the checker-site false-positive story) | [`LocalizedFault::CorruptSumrow`] |
//! | totals | session verdict alarms, outputs untouched | [`LocalizedFault::CorruptTotals`] |
//!
//! One honest caveat the live campaign measures: under
//! [`KvFormat::Mixed`](super::KvFormat::Mixed), demotion *launders*
//! storage corruption — the demote path recomputes the block's reference
//! and `sumrow`s from the (corrupted) stored rows, after which both
//! lanes agree with the poison. Corruption must be audited before the
//! block ages out of the burst.

use super::{round_bf16, DecodeBatch};
use fa_numerics::BF16;
use fa_tensor::Scalar;

/// One sequence's fused verdict over a resolved speculative window
/// (see [`super::spec`]): the accepted-prefix checksum totals, produced
/// by [`DecodeBatch::resolve_speculation`]. Covers exactly the tokens
/// that were committed — rejected tail tokens were scored (their budget
/// was spent) but their checksum pairs were rolled back with their
/// appends, so they never touch the session verdict.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowVerdict {
    /// The windowed sequence id.
    pub seq: usize,
    /// Tokens committed from the window (the accepted prefix length).
    pub accepted: usize,
    /// Sum of the accepted tokens' predicted checksums.
    pub predicted: f64,
    /// Sum of the accepted tokens' actual checksums.
    pub actual: f64,
}

impl WindowVerdict {
    /// `predicted − actual` over the accepted prefix — the window-level
    /// analogue of [`DecodeStepOutput::residual`](super::DecodeStepOutput::residual).
    pub fn residual(&self) -> f64 {
        self.predicted - self.actual
    }
}

impl<T: Scalar> DecodeBatch<T> {
    /// Post-rollback integrity sweep: recomputes every retained block's
    /// reference checksum from its stored rows and every retained
    /// position's `sumrow(V)` entries from its stored value row, and
    /// compares both against the engine's live structures **bitwise**.
    /// After [`resolve_speculation`](Self::resolve_speculation) rewinds
    /// rejected speculative appends this must hold for every windowed
    /// sequence — the check-rewind half of the rollback contract (the
    /// other half, bit-identical replay of the accepted prefix, is
    /// property-tested against a non-speculative twin).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn rewind_checks_clean(&self, seq: usize) -> bool {
        let kv = self.cfg.kv_heads;
        let br = self.cache.block_rows();
        let start = self.cache.first_retained(seq);
        let len = self.cache.seq_len(seq);
        let state = &self.cache.seqs[seq];
        for (bi, &blk) in state.blocks.iter().enumerate() {
            let first = start + bi * br;
            let rows = (len - first).min(br);
            let fresh = self.cache.recompute_block_check(blk, rows);
            let stored = &state.checks[bi];
            for g in 0..kv {
                if fresh.ksum[g].to_bits() != stored.ksum[g].to_bits()
                    || fresh.vsum[g].to_bits() != stored.vsum[g].to_bits()
                {
                    return false;
                }
            }
        }
        let sumrows = &self.seqs[seq].sumrows;
        if sumrows.len() != len * kv {
            return false;
        }
        for p in start..len {
            for g in 0..kv {
                let fresh = self.cache.value_head_sum(seq, p, g);
                if fresh.to_bits() != sumrows[p * kv + g].to_bits() {
                    return false;
                }
            }
        }
        true
    }
}

/// Which live engine state a campaign injection targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InjectionSite {
    /// A stored key lane of a retained cache block.
    Key,
    /// A stored value lane of a retained cache block.
    Value,
    /// A `sumrow(V)` checksum input (checker state).
    Sumrow,
    /// The running (predicted, actual) verdict accumulator (checker
    /// state).
    Accumulator,
}

impl InjectionSite {
    /// Whether the site is checker storage (its corruption can raise an
    /// alarm without corrupting any output) — the site-attribution bit
    /// `fa_fault` classification consumes.
    pub fn is_checker(self) -> bool {
        matches!(self, InjectionSite::Sumrow | InjectionSite::Accumulator)
    }

    /// All injection sites, in campaign sweep order.
    pub const ALL: [InjectionSite; 4] = [
        InjectionSite::Key,
        InjectionSite::Value,
        InjectionSite::Sumrow,
        InjectionSite::Accumulator,
    ];
}

/// A fault pinned by [`DecodeBatch::audit`]: which structure is
/// poisoned, and exactly where.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LocalizedFault {
    /// One (block, kv head)'s stored rows disagree with the block's
    /// reference checksum — storage corruption, recoverable by
    /// [`DecodeBatch::recover_block`].
    CorruptBlock {
        /// Index into [`KvCache::seq_blocks`](super::KvCache::seq_blocks)
        /// (retained blocks, position order).
        block: usize,
        /// The kv head whose reference mismatched.
        kv_head: usize,
        /// Logical position of the block's first row.
        first: usize,
        /// Valid rows in the block.
        rows: usize,
        /// `true` when the key-side reference mismatched, `false` for
        /// the value side.
        key_side: bool,
    },
    /// A stored `sumrow` disagrees with the (clean) stored value row —
    /// checker-input corruption, recoverable by
    /// [`DecodeBatch::repair_sumrow`].
    CorruptSumrow {
        /// The corrupted position.
        pos: usize,
        /// The corrupted kv head's stream.
        kv_head: usize,
    },
    /// Block and `sumrow` structure are clean but the session verdict is
    /// out of tolerance — accumulator corruption (or the trace of steps
    /// decoded against since-laundered poison), cleared by
    /// [`DecodeBatch::clear_verdict`].
    CorruptTotals {
        /// The out-of-tolerance `global_residual`.
        residual: f64,
    },
}

/// A corrupt site pinned by the audit — [`DecodeBatch::audit`] and
/// [`DecodeBatch::scrub_step`](DecodeBatch::scrub_step) return **every**
/// site they can localize (a multi-fault burst yields one entry per
/// poisoned (block, kv head, side) / `sumrow` cell), and
/// [`DecodeBatch::repair`] fixes them all in one pass.
pub type CorruptSite = LocalizedFault;

/// What one [`DecodeBatch::repair`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Distinct blocks rewritten from the recovery log.
    pub blocks_recovered: usize,
    /// Rows rewritten across those blocks (the block-granular recovery
    /// cost — compare against recomputing the whole sequence).
    pub rows_rewritten: usize,
    /// `sumrow` entries recomputed from clean storage.
    pub sumrows_repaired: usize,
    /// Distinct corrupt blocks the log could **not** restore (its rows
    /// were truncated past them, or the log is disabled) — the signal
    /// that the sequence needs [`DecodeBatch::quarantine`] instead.
    pub blocks_unrecoverable: usize,
}

/// Bit-level injection and block-granular audit/recovery are defined on
/// the f64 serving engine (bit flips are format-specific; the f64 engine
/// is the one the serving stack and benches run, with BF16 storage
/// reached through the cache's format policy).
impl DecodeBatch<f64> {
    /// Starts retaining every appended row (prompt and decode) for
    /// block-granular recovery. Must be called before any sequence
    /// caches rows, so the log covers position 0 upward.
    ///
    /// # Panics
    ///
    /// Panics if a live sequence already holds cached rows.
    pub fn enable_recovery_log(&mut self) {
        assert!(
            self.cache
                .seqs
                .iter()
                .all(|s| s.retired || (s.len == 0 && s.blocks.is_empty())),
            "enable the recovery log before caching any rows"
        );
        self.recovery_log = true;
    }

    /// Whether the engine retains original rows for recovery.
    pub fn recovery_log_enabled(&self) -> bool {
        self.recovery_log
    }

    /// Whether position `pos` of sequence `seq` is stored in a BF16
    /// block (16 flippable bits per lane) rather than a native one (64)
    /// — injection campaigns pick their bit range by this.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or `pos` is out of
    /// range or evicted.
    pub fn storage_is_bf16(&self, seq: usize, pos: usize) -> bool {
        self.cache.block_of(seq, pos).0.bf16
    }

    /// Flips one bit of the stored K (`key_side`) or V lane
    /// `(seq, pos, kv_head, lane)` — in the native arena as an f64 bit
    /// (`bit % 64`), in the BF16 arena as a raw BF16 bit (`bit % 16`).
    /// Returns whether the hit block was BF16.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, `pos` is out of range
    /// or evicted, or `kv_head`/`lane` is out of range.
    pub fn flip_storage_bit(
        &mut self,
        seq: usize,
        pos: usize,
        kv_head: usize,
        lane: usize,
        key_side: bool,
        bit: u32,
    ) -> bool {
        let d = self.cache.head_dim;
        assert!(kv_head < self.cache.heads, "kv head out of range");
        assert!(lane < d, "lane out of range");
        let (blk, r) = self.cache.block_of(seq, pos);
        let slot = blk.index * self.cache.block_rows * self.cache.width
            + self.cache.lane_offset(r, kv_head)
            + lane;
        if blk.bf16 {
            let arena = if key_side {
                &mut self.cache.k_arena16
            } else {
                &mut self.cache.v_arena16
            };
            arena[slot] = BF16::from_bits(arena[slot].to_bits() ^ (1 << (bit % 16)));
        } else {
            let arena = if key_side {
                &mut self.cache.k_arena
            } else {
                &mut self.cache.v_arena
            };
            arena[slot] = f64::from_bits(arena[slot].to_bits() ^ (1u64 << (bit % 64)));
        }
        blk.bf16
    }

    /// Flips one f64 bit of the stored `sumrow` checksum input of
    /// `(seq, pos, kv_head)`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or `pos`/`kv_head` is
    /// out of range.
    pub fn flip_sumrow_bit(&mut self, seq: usize, pos: usize, kv_head: usize, bit: u32) {
        let kv = self.cfg.kv_heads;
        assert!(kv_head < kv, "kv head out of range");
        assert!(pos < self.cache.seq_len(seq), "position out of range");
        let cell = &mut self.seqs[seq].sumrows[pos * kv + kv_head];
        *cell = f64::from_bits(cell.to_bits() ^ (1u64 << (bit % 64)));
    }

    /// Flips one f64 bit of the running verdict accumulator — the
    /// predicted total when `predicted_side`, the actual total
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn flip_total_bit(&mut self, seq: usize, predicted_side: bool, bit: u32) {
        let totals = &mut self.seqs[seq].totals;
        let cell = if predicted_side {
            &mut totals.0
        } else {
            &mut totals.1
        };
        *cell = f64::from_bits(cell.to_bits() ^ (1u64 << (bit % 64)));
    }

    /// Walks sequence `seq`'s checksum structure and pins every fault it
    /// can localize:
    ///
    /// 1. per retained (block, kv head): the stored
    ///    [`BlockCheck`](super::BlockCheck) reference vs a fresh
    ///    recompute, compared **bitwise** (one shared fold order makes a
    ///    clean block an exact match) — mismatches become
    ///    [`LocalizedFault::CorruptBlock`];
    /// 2. per retained (position, kv head): the stored `sumrow` vs its
    ///    recompute from the stored value row, bitwise — skipping
    ///    positions inside value-corrupted blocks (there the *storage*
    ///    is the liar and the stored `sumrow` the witness) — mismatches
    ///    become [`LocalizedFault::CorruptSumrow`];
    /// 3. only when the structure is clean: a NaN-safe tolerance check
    ///    of [`global_residual`](DecodeBatch::global_residual)
    ///    (`!(|residual| ≤ tol)`, so a NaN-poisoned verdict alarms)
    ///    becomes [`LocalizedFault::CorruptTotals`].
    ///
    /// An empty result means structure and verdict are consistent.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn audit(&self, seq: usize, tol: f64) -> Vec<LocalizedFault> {
        let kv = self.cfg.kv_heads;
        let cache = &self.cache;
        let state = cache.live(seq);
        let mut faults = Vec::new();
        let mut value_bad = vec![false; state.blocks.len()];
        for (bi, (&blk, check)) in state.blocks.iter().zip(&state.checks).enumerate() {
            let first = state.start + bi * cache.block_rows;
            let rows = (state.len - first).min(cache.block_rows);
            let recomputed = cache.recompute_block_check(blk, rows);
            for g in 0..kv {
                if recomputed.ksum[g].to_bits() != check.ksum[g].to_bits() {
                    faults.push(LocalizedFault::CorruptBlock {
                        block: bi,
                        kv_head: g,
                        first,
                        rows,
                        key_side: true,
                    });
                }
                if recomputed.vsum[g].to_bits() != check.vsum[g].to_bits() {
                    value_bad[bi] = true;
                    faults.push(LocalizedFault::CorruptBlock {
                        block: bi,
                        kv_head: g,
                        first,
                        rows,
                        key_side: false,
                    });
                }
            }
        }
        let sumrows = &self.seqs[seq].sumrows;
        for p in state.start..state.len {
            if value_bad[(p - state.start) / cache.block_rows] {
                continue;
            }
            for g in 0..kv {
                let recomputed = cache.value_head_sum(seq, p, g);
                if recomputed.to_bits() != sumrows[p * kv + g].to_bits() {
                    faults.push(LocalizedFault::CorruptSumrow { pos: p, kv_head: g });
                }
            }
        }
        if faults.is_empty() {
            let residual = self.global_residual(seq);
            // NaN-safe alarm form: a poisoned residual must not pass.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(residual.abs() <= tol) {
                faults.push(LocalizedFault::CorruptTotals { residual });
            }
        }
        faults
    }

    /// [`audit`](Self::audit) over every live sequence — the periodic
    /// scrub a serving loop runs to catch residual-coherent corruption
    /// (key-side flips) the online verdict is blind to. Returns only
    /// sequences with findings.
    pub fn audit_all(&self, tol: f64) -> Vec<(usize, Vec<LocalizedFault>)> {
        (0..self.num_sequences())
            .filter(|&s| !self.is_retired(s))
            .filter_map(|s| {
                let faults = self.audit(s, tol);
                (!faults.is_empty()).then_some((s, faults))
            })
            .collect()
    }

    /// Rewrites retained block `block` of sequence `seq` from the
    /// recovery log — **only this block** — honoring the block's storage
    /// format (native rows are copied back exactly; BF16 rows re-round
    /// through the cache's single [`round_bf16`] helper, reproducing the
    /// never-corrupted stored bits exactly), then rebuilds the block's
    /// reference checksum and its positions' `sumrow` inputs from the
    /// restored storage. Returns the number of rows rewritten (the
    /// recovery cost).
    ///
    /// # Panics
    ///
    /// Panics if the recovery log is not enabled, `seq` is out of range
    /// or retired, or `block` is out of range.
    pub fn recover_block(&mut self, seq: usize, block: usize) -> usize {
        assert!(
            self.recovery_log,
            "block recovery requires the recovery log (enable_recovery_log)"
        );
        let cache = &mut self.cache;
        let state = &cache.seqs[seq];
        assert!(!state.retired, "sequence {seq} is retired");
        assert!(
            block < state.blocks.len(),
            "block {block} out of {} retained",
            state.blocks.len()
        );
        let blk = state.blocks[block];
        let first = state.start + block * cache.block_rows;
        let rows = (state.len - first).min(cache.block_rows);
        let width = cache.width;
        let d = cache.head_dim;
        let base = blk.index * cache.block_rows * width;
        let log = &self.seqs[seq];
        assert!(
            log.log_start <= first,
            "block {block}'s log rows were truncated (log starts at {}, block at {first}); \
             quarantine the sequence instead",
            log.log_start
        );
        for r in 0..rows {
            let pos = first + r;
            let lr = pos - log.log_start;
            let logged_k = &log.log_k[lr * width..(lr + 1) * width];
            let logged_v = &log.log_v[lr * width..(lr + 1) * width];
            for h in 0..cache.heads {
                let slot = base + cache.lane_offset(r, h);
                if blk.bf16 {
                    for e in 0..d {
                        cache.k_arena16[slot + e] = round_bf16(logged_k[h * d + e]);
                        cache.v_arena16[slot + e] = round_bf16(logged_v[h * d + e]);
                    }
                } else {
                    cache.k_arena[slot..slot + d].copy_from_slice(&logged_k[h * d..(h + 1) * d]);
                    cache.v_arena[slot..slot + d].copy_from_slice(&logged_v[h * d..(h + 1) * d]);
                }
            }
        }
        cache.seqs[seq].checks[block] = cache.recompute_block_check(blk, rows);
        let kv = self.cfg.kv_heads;
        for r in 0..rows {
            let pos = first + r;
            for g in 0..kv {
                self.seqs[seq].sumrows[pos * kv + g] = self.cache.value_head_sum(seq, pos, g);
            }
        }
        rows
    }

    /// Whether retained block `block` of sequence `seq` can be restored
    /// from the recovery log: the log is enabled and its retained rows
    /// still cover the block's positions (budget truncation drops leading
    /// rows only after a scrub verdict or eviction, so a freshly-corrupt
    /// block normally stays covered — but a flip discovered in a
    /// *previously verified, since-truncated* block is unrecoverable and
    /// needs [`DecodeBatch::quarantine`]).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or `block` is out of
    /// range.
    pub fn block_recoverable(&self, seq: usize, block: usize) -> bool {
        let state = self.cache.live(seq);
        assert!(
            block < state.blocks.len(),
            "block {block} out of {} retained",
            state.blocks.len()
        );
        let first = state.start + block * self.cache.block_rows;
        self.recovery_log && self.seqs[seq].log_start <= first
    }

    /// Recomputes one `sumrow` checksum input from the (clean) stored
    /// value row — the repair for [`LocalizedFault::CorruptSumrow`].
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, `pos` is out of range
    /// or evicted, or `kv_head` is out of range.
    pub fn repair_sumrow(&mut self, seq: usize, pos: usize, kv_head: usize) {
        let kv = self.cfg.kv_heads;
        let fresh = self.cache.value_head_sum(seq, pos, kv_head);
        self.seqs[seq].sumrows[pos * kv + kv_head] = fresh;
    }

    /// Resets sequence `seq`'s running (predicted, actual) verdict
    /// totals, opening a fresh verdict epoch — the repair for
    /// [`LocalizedFault::CorruptTotals`], and the final step of every
    /// [`repair`](Self::repair): steps decoded against poisoned state
    /// left their residual in the totals, and the totals never feed
    /// outputs, so the reset does not perturb decode. Per-step verdicts
    /// for the pre-repair epoch were already delivered per step.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn clear_verdict(&mut self, seq: usize) {
        self.seqs[seq].totals = (0.0, 0.0);
    }

    /// Applies the matching repair to every audited fault — block
    /// recovery for [`LocalizedFault::CorruptBlock`] (each distinct
    /// block once), `sumrow` recomputation for
    /// [`LocalizedFault::CorruptSumrow`] — then opens a fresh verdict
    /// epoch via [`clear_verdict`](Self::clear_verdict). After a repair,
    /// [`audit`](Self::audit) is clean and subsequent decode is
    /// bit-identical to a never-injected engine (property-tested).
    ///
    /// Corrupt blocks the log no longer covers (disabled, or truncated
    /// past them by the row budget) are *not* repairable in place: they
    /// are skipped and counted in
    /// [`blocks_unrecoverable`](RepairReport::blocks_unrecoverable),
    /// signalling the caller to [`quarantine`](Self::quarantine) the
    /// sequence instead.
    ///
    /// Repairs write into the *physical* block, so a block shared
    /// through the prefix registry repairs **exactly once for all
    /// readers**: a poisoned shared block alarms every reader's audit,
    /// one repair through any single reader restores it, and every
    /// other reader's next audit is clean (property-tested). Repair
    /// never triggers copy-on-write — the restored bits are the bits
    /// every reader expects, unlike a demotion's rounding.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn repair(&mut self, seq: usize, faults: &[LocalizedFault]) -> RepairReport {
        let mut report = RepairReport::default();
        let mut recovered: Vec<usize> = Vec::new();
        for fault in faults {
            match *fault {
                LocalizedFault::CorruptBlock { block, .. } => {
                    if !recovered.contains(&block) {
                        recovered.push(block);
                        if self.block_recoverable(seq, block) {
                            report.rows_rewritten += self.recover_block(seq, block);
                            report.blocks_recovered += 1;
                        } else {
                            report.blocks_unrecoverable += 1;
                        }
                    }
                }
                LocalizedFault::CorruptSumrow { pos, kv_head } => {
                    self.repair_sumrow(seq, pos, kv_head);
                    report.sumrows_repaired += 1;
                }
                LocalizedFault::CorruptTotals { .. } => {}
            }
        }
        self.clear_verdict(seq);
        report
    }

    /// One-call verdict absorption for a serving frontend:
    /// [`audit`](Self::audit)s `seq` and [`repair`](Self::repair)s
    /// everything repairable in place. The caller inspects the returned
    /// report — a nonzero
    /// [`blocks_unrecoverable`](RepairReport::blocks_unrecoverable) is
    /// the signal to escalate to [`quarantine`](Self::quarantine) +
    /// resubmit (evict-and-requeue with recompute-on-resume); a clean
    /// report means the sequence keeps decoding bit-identical to a
    /// never-corrupted twin.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn audit_and_repair(&mut self, seq: usize, tol: f64) -> RepairReport {
        let faults = self.audit(seq, tol);
        self.repair(seq, &faults)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
    use super::*;
    use crate::topology::HeadTopology;
    use crate::AttentionConfig;
    use fa_tensor::{random::ElementDist, Matrix};

    const TOL: f64 = 1e-6;

    fn rand(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        Matrix::random_seeded(rows, cols, ElementDist::default(), seed)
    }

    fn mha(heads: usize, d: usize) -> HeadTopology {
        HeadTopology::mha(heads, AttentionConfig::new(d))
    }

    /// A pair of identical engines (subject with recovery log, golden
    /// without), fed the same prompts and decoded `steps` tokens in
    /// lockstep (bit-identity asserted along the way).
    fn lockstep_pair(
        format: KvFormat,
        eviction: EvictionPolicy,
        topo: HeadTopology,
        prefill: usize,
        steps: usize,
    ) -> (DecodeBatch<f64>, DecodeBatch<f64>, Vec<usize>) {
        let mk = || DecodeBatch::<f64>::with_policy(topo, 4, KvLayout::HeadMajor, format, eviction);
        let mut subject = mk();
        subject.enable_recovery_log();
        let mut golden = mk();
        let batch = 2;
        let ids: Vec<usize> = (0..batch).map(|_| subject.add_sequence()).collect();
        for _ in 0..batch {
            golden.add_sequence();
        }
        for (i, &id) in ids.iter().enumerate() {
            let k = rand(prefill, topo.kv_dim(), 1000 + i as u64);
            let v = rand(prefill, topo.kv_dim(), 2000 + i as u64);
            subject.prefill(id, &k, &v);
            golden.prefill(id, &k, &v);
        }
        decode_lockstep(&mut subject, &mut golden, &ids, 0, steps, true);
        (subject, golden, ids)
    }

    /// Decodes `steps` tokens on both engines with identical traffic;
    /// when `expect_identical`, asserts bitwise-equal outputs.
    fn decode_lockstep(
        subject: &mut DecodeBatch<f64>,
        golden: &mut DecodeBatch<f64>,
        ids: &[usize],
        t0: usize,
        steps: usize,
        expect_identical: bool,
    ) {
        let topo = *subject.config();
        for t in t0..t0 + steps {
            let qs = rand(ids.len(), topo.q_dim(), 5000 + t as u64);
            let ks = rand(ids.len(), topo.kv_dim(), 6000 + t as u64);
            let vs = rand(ids.len(), topo.kv_dim(), 7000 + t as u64);
            let a = subject.step_all(ids, &qs, &ks, &vs);
            let b = golden.step_all(ids, &qs, &ks, &vs);
            if expect_identical {
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    for (c, (xa, ya)) in x.output.iter().zip(&y.output).enumerate() {
                        assert_eq!(xa.to_bits(), ya.to_bits(), "step {t} seq {i} lane {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn fault_free_engines_audit_clean() {
        for format in [
            KvFormat::F64,
            KvFormat::Bf16,
            KvFormat::Mixed { burst_blocks: 1 },
        ] {
            for eviction in [
                EvictionPolicy::RetainAll,
                EvictionPolicy::SlidingWindow { window_blocks: 2 },
            ] {
                let (subject, _, ids) = lockstep_pair(format, eviction, mha(2, 4), 10, 6);
                for &id in &ids {
                    assert!(
                        subject.audit(id, TOL).is_empty(),
                        "{format:?}/{eviction:?} clean engine must audit clean"
                    );
                }
                assert!(subject.audit_all(TOL).is_empty());
            }
        }
    }

    #[test]
    fn value_flip_alarms_online_and_localizes() {
        let (mut subject, mut golden, ids) =
            lockstep_pair(KvFormat::F64, EvictionPolicy::RetainAll, mha(2, 4), 10, 3);
        let seq = ids[0];
        let topo = *subject.config();
        subject.flip_storage_bit(seq, 5, 1, 2, false, 60);
        // The next checked step predicts from clean sumrows but streams
        // the corrupted V row: the online residual alarms while the
        // golden engine's stays clean.
        let qs = rand(ids.len(), topo.q_dim(), 81);
        let ks = rand(ids.len(), topo.kv_dim(), 82);
        let vs = rand(ids.len(), topo.kv_dim(), 83);
        let out = subject.step_all(&ids, &qs, &ks, &vs);
        let gold = golden.step_all(&ids, &qs, &ks, &vs);
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        {
            assert!(
                !(out[0].residual().abs() <= TOL),
                "V-storage flip must fail the per-step residual: {}",
                out[0].residual()
            );
        }
        assert!(gold[0].residual().abs() <= TOL);
        assert!(
            out[0]
                .output
                .iter()
                .zip(&gold[0].output)
                .any(|(a, b)| a.to_bits() != b.to_bits()),
            "corrupted values must corrupt the output"
        );
        // Pos 5 lives in block 1 (block_rows = 4); the audit pins it.
        let faults = subject.audit(seq, TOL);
        assert!(
            faults.iter().any(|f| matches!(
                f,
                LocalizedFault::CorruptBlock {
                    block: 1,
                    kv_head: 1,
                    key_side: false,
                    ..
                }
            )),
            "audit pins the value-side block: {faults:?}"
        );
    }

    #[test]
    fn key_flip_is_residual_coherent_but_audited() {
        let (mut subject, mut golden, ids) =
            lockstep_pair(KvFormat::F64, EvictionPolicy::RetainAll, mha(2, 4), 10, 3);
        let seq = ids[0];
        let topo = *subject.config();
        subject.flip_storage_bit(seq, 4, 0, 1, true, 58);
        // Corrupted keys corrupt the scores; the corrupted weights hit
        // output lanes and checksum lane identically, so the online
        // residual stays in tolerance while outputs diverge.
        let qs = rand(ids.len(), topo.q_dim(), 91);
        let ks = rand(ids.len(), topo.kv_dim(), 92);
        let vs = rand(ids.len(), topo.kv_dim(), 93);
        let out = subject.step_all(&ids, &qs, &ks, &vs);
        let gold = golden.step_all(&ids, &qs, &ks, &vs);
        assert!(
            out[0].residual().abs() <= TOL,
            "K flips are residual-coherent: {}",
            out[0].residual()
        );
        assert!(
            out[0]
                .output
                .iter()
                .zip(&gold[0].output)
                .any(|(a, b)| a.to_bits() != b.to_bits()),
            "corrupted keys must corrupt the output"
        );
        // The scrub is the lane that sees it.
        let faults = subject.audit(seq, TOL);
        assert!(
            faults.iter().any(|f| matches!(
                f,
                LocalizedFault::CorruptBlock {
                    block: 1,
                    kv_head: 0,
                    key_side: true,
                    ..
                }
            )),
            "audit pins the key-side block: {faults:?}"
        );
    }

    #[test]
    fn sumrow_flip_is_checker_site_story() {
        let (mut subject, mut golden, ids) =
            lockstep_pair(KvFormat::F64, EvictionPolicy::RetainAll, mha(2, 4), 10, 3);
        let seq = ids[0];
        let topo = *subject.config();
        subject.flip_sumrow_bit(seq, 6, 1, 57);
        let qs = rand(ids.len(), topo.q_dim(), 101);
        let ks = rand(ids.len(), topo.kv_dim(), 102);
        let vs = rand(ids.len(), topo.kv_dim(), 103);
        let out = subject.step_all(&ids, &qs, &ks, &vs);
        let gold = golden.step_all(&ids, &qs, &ks, &vs);
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        {
            assert!(
                !(out[0].residual().abs() <= TOL),
                "sumrow flip corrupts the prediction: {}",
                out[0].residual()
            );
        }
        for (a, b) in out[0].output.iter().zip(&gold[0].output) {
            assert_eq!(a.to_bits(), b.to_bits(), "outputs stay clean");
        }
        let faults = subject.audit(seq, TOL);
        assert_eq!(
            faults,
            vec![LocalizedFault::CorruptSumrow { pos: 6, kv_head: 1 }],
            "audit discriminates sumrow corruption from storage corruption"
        );
        // Repair recomputes the sumrow from clean storage; the verdict
        // epoch resets and decode continues bit-identical.
        let report = subject.repair(seq, &faults);
        assert_eq!(report.sumrows_repaired, 1);
        assert_eq!(report.blocks_recovered, 0);
        assert!(subject.audit(seq, TOL).is_empty());
        decode_lockstep(&mut subject, &mut golden, &ids, 200, 3, true);
    }

    #[test]
    fn totals_flip_corrupts_verdict_only() {
        let (mut subject, _, ids) =
            lockstep_pair(KvFormat::F64, EvictionPolicy::RetainAll, mha(2, 4), 8, 4);
        let seq = ids[0];
        assert!(subject.global_residual(seq).abs() <= TOL);
        subject.flip_total_bit(seq, true, 62);
        let faults = subject.audit(seq, TOL);
        assert_eq!(faults.len(), 1);
        assert!(matches!(faults[0], LocalizedFault::CorruptTotals { .. }));
        subject.repair(seq, &faults);
        assert!(subject.audit(seq, TOL).is_empty());
        assert_eq!(subject.global_residual(seq), 0.0, "fresh verdict epoch");
    }

    #[test]
    fn recovery_restores_bitwise_decode() {
        for format in [
            KvFormat::F64,
            KvFormat::Bf16,
            KvFormat::Mixed { burst_blocks: 1 },
        ] {
            let (mut subject, mut golden, ids) =
                lockstep_pair(format, EvictionPolicy::RetainAll, mha(2, 4), 10, 3);
            let seq = ids[0];
            let bit = if subject.storage_is_bf16(seq, 2) {
                13
            } else {
                59
            };
            subject.flip_storage_bit(seq, 2, 0, 3, false, bit);
            let faults = subject.audit(seq, TOL);
            assert!(
                faults
                    .iter()
                    .any(|f| matches!(f, LocalizedFault::CorruptBlock { block: 0, .. })),
                "{format:?}: audit localizes the poisoned block: {faults:?}"
            );
            let report = subject.repair(seq, &faults);
            assert!(report.blocks_recovered >= 1);
            assert!(
                report.rows_rewritten <= subject.cache().block_rows(),
                "{format:?}: recovery is block-granular"
            );
            assert!(
                subject.audit(seq, TOL).is_empty(),
                "{format:?}: clean after repair"
            );
            // Post-recovery decode is bit-identical to the uninjected
            // golden engine.
            decode_lockstep(&mut subject, &mut golden, &ids, 100, 4, true);
        }
    }

    #[test]
    fn mixed_demotion_launders_corruption_honestly() {
        // Under Mixed, a block demoted *after* injection recomputes its
        // reference and sumrows from the corrupted storage: the audit
        // goes structurally blind. This is the detection race the live
        // campaign measures — pin it so the story stays honest.
        let topo = mha(1, 4);
        let mut subject = DecodeBatch::<f64>::with_policy(
            topo,
            4,
            KvLayout::HeadMajor,
            KvFormat::Mixed { burst_blocks: 1 },
            EvictionPolicy::RetainAll,
        );
        subject.enable_recovery_log();
        let seq = subject.add_sequence();
        subject.prefill(seq, &rand(6, 4, 1), &rand(6, 4, 2));
        // Position 2 sits in block 0, still native (the burst covers it).
        assert!(!subject.storage_is_bf16(seq, 2));
        subject.flip_storage_bit(seq, 2, 0, 1, false, 61);
        assert!(!subject.audit(seq, TOL).is_empty(), "visible pre-demotion");
        // Decode until block 0 ages out of the burst and demotes.
        let ids = [seq];
        while subject.demoted_len(seq) == 0 {
            let t = subject.seq_len(seq) as u64;
            subject.step_all(
                &ids,
                &rand(1, 4, 300 + t),
                &rand(1, 4, 400 + t),
                &rand(1, 4, 500 + t),
            );
        }
        // Structure is consistent with the poison now (only the verdict
        // totals, fed by the pre-demotion alarming steps, still scream).
        let faults = subject.audit(seq, TOL);
        assert!(
            !faults.iter().any(|f| matches!(
                f,
                LocalizedFault::CorruptBlock { .. } | LocalizedFault::CorruptSumrow { .. }
            )),
            "demotion recomputed references from poisoned rows: {faults:?}"
        );
    }

    #[test]
    fn bf16_injection_uses_16_bit_space() {
        let (mut subject, _, ids) =
            lockstep_pair(KvFormat::Bf16, EvictionPolicy::RetainAll, mha(2, 4), 9, 2);
        let seq = ids[0];
        assert!(subject.storage_is_bf16(seq, 3));
        let was_bf16 = subject.flip_storage_bit(seq, 3, 0, 0, false, 14);
        assert!(was_bf16);
        let faults = subject.audit(seq, TOL);
        assert!(faults.iter().any(|f| matches!(
            f,
            LocalizedFault::CorruptBlock {
                block: 0,
                key_side: false,
                ..
            }
        )));
    }

    #[test]
    fn sliding_window_audit_covers_retained_blocks_only() {
        let (mut subject, _, ids) = lockstep_pair(
            KvFormat::F64,
            EvictionPolicy::SlidingWindow { window_blocks: 2 },
            mha(2, 4),
            16,
            6,
        );
        let seq = ids[0];
        assert!(subject.evicted_len(seq) > 0, "window evicted a prefix");
        let first = subject.evicted_len(seq);
        subject.flip_storage_bit(seq, first, 0, 0, false, 60);
        let faults = subject.audit(seq, TOL);
        assert!(
            faults
                .iter()
                .any(|f| matches!(f, LocalizedFault::CorruptBlock { block: 0, .. })),
            "oldest retained block is auditable: {faults:?}"
        );
        subject.repair(seq, &faults);
        assert!(subject.audit(seq, TOL).is_empty());
    }

    #[test]
    fn gqa_audit_pins_kv_head() {
        let topo = HeadTopology::gqa(4, 2, AttentionConfig::new(4));
        let (mut subject, _, ids) =
            lockstep_pair(KvFormat::F64, EvictionPolicy::RetainAll, topo, 8, 2);
        let seq = ids[0];
        subject.flip_storage_bit(seq, 1, 1, 2, true, 55);
        let faults = subject.audit(seq, TOL);
        assert_eq!(
            faults,
            vec![LocalizedFault::CorruptBlock {
                block: 0,
                kv_head: 1,
                first: 0,
                rows: 4,
                key_side: true,
            }]
        );
    }

    #[test]
    #[should_panic(expected = "requires the recovery log")]
    fn recovery_without_log_panics() {
        let mut batch = DecodeBatch::<f64>::new(mha(1, 2), 4);
        let seq = batch.add_sequence();
        batch.prefill(seq, &rand(4, 2, 1), &rand(4, 2, 2));
        let _ = batch.recover_block(seq, 0);
    }

    #[test]
    #[should_panic(expected = "before caching any rows")]
    fn late_log_enable_panics() {
        let mut batch = DecodeBatch::<f64>::new(mha(1, 2), 4);
        let seq = batch.add_sequence();
        batch.prefill(seq, &rand(4, 2, 1), &rand(4, 2, 2));
        batch.enable_recovery_log();
    }

    #[test]
    fn log_survives_slot_reuse_correctly() {
        // Retiring a sequence clears its log; the recycled slot's new
        // owner recovers from *its own* rows, never the previous
        // tenant's.
        let mut subject = DecodeBatch::<f64>::new(mha(1, 4), 4);
        subject.enable_recovery_log();
        let s0 = subject.add_sequence();
        subject.prefill(s0, &rand(6, 4, 1), &rand(6, 4, 2));
        subject.retire(s0);
        let s1 = subject.add_sequence();
        assert_eq!(s1, s0, "slot reused");
        subject.prefill(s1, &rand(6, 4, 3), &rand(6, 4, 4));
        subject.flip_storage_bit(s1, 1, 0, 0, false, 60);
        let faults = subject.audit(s1, TOL);
        assert!(!faults.is_empty());
        subject.repair(s1, &faults);
        assert!(subject.audit(s1, TOL).is_empty());
        assert_eq!(
            subject.cache().value_row(s1, 1),
            rand(6, 4, 4).row(1).to_vec()
        );
    }
}
