//! Background scrubbing: the bounded-latency detection lane for
//! residual-coherent corruption, plus recovery-log checkpointing.
//!
//! The online checksum lane ([`DecodeBatch::step_all`]) alarms on
//! value-side storage flips within a step, but key-side flips corrupt
//! score and checksum *coherently* — the residual stays small while
//! outputs diverge, and only a structural audit sees the damage. PR 6's
//! answer was [`DecodeBatch::audit_all`], a full structure walk per call;
//! this module amortizes that walk across serving steps, ECC-memory
//! style:
//!
//! * a [`ScrubPolicy`](super::ScrubPolicy) caps the work at
//!   `blocks_per_step` block audits per [`scrub_step`](DecodeBatch::scrub_step);
//! * a **round-robin cursor** over live `(sequence, block)` slots picks
//!   which blocks each step pays for, so every retained block is audited
//!   once per `ceil(live_blocks / blocks_per_step)` steps — the bounded
//!   detection-latency guarantee the `scrub` section of
//!   `BENCH_faults.json` measures as a bandwidth ↔ latency curve;
//! * each **clean** verdict doubles as a checkpoint: the scrubbed rows
//!   stop being the recovery log's sole witness, so the budget
//!   truncation ([`DecodeBatch::set_recovery_log_budget`]) may drop them
//!   — the scrubber is what makes the bounded log safe.
//!
//! The cursor indexes *current* retained-block lists, so eviction
//! (`blocks.remove(0)` shifting indices) and
//! [`quarantine`](DecodeBatch::quarantine) (freeing a whole list) just
//! make the cursor skip ahead: a freed block is never scrubbed on its
//! old owner's behalf, and once reclaimed it is audited against its
//! *new* owner's references (rebuilt on append) — the free-list-aliasing
//! regression the tests pin.

use super::guard::{CorruptSite, LocalizedFault};
use super::DecodeBatch;

impl DecodeBatch<f64> {
    /// Runs one background-scrub quantum: audits up to
    /// `blocks_per_step` live blocks at the round-robin cursor,
    /// returning every corrupt site found as `(sequence, site)` pairs.
    /// Clean blocks advance the sequence's verified-prefix watermark and
    /// trigger opportunistic recovery-log truncation.
    ///
    /// A no-op (empty result) when no policy is installed or no live
    /// blocks exist. The per-call quantum is capped at the current live
    /// block count, so one call never audits a block twice.
    pub fn scrub_step(&mut self) -> Vec<(usize, CorruptSite)> {
        let Some(policy) = self.scrub else {
            return Vec::new();
        };
        let total = self.live_blocks();
        if total == 0 {
            return Vec::new();
        }
        let quantum = policy.blocks_per_step.min(total);
        let nseq = self.cache.seqs.len();
        let mut findings = Vec::new();
        for _ in 0..quantum {
            // Normalize the cursor onto the next live (sequence, block)
            // slot: wrap past the slot table, skip retired sequences and
            // exhausted block lists (indices shift on eviction and empty
            // out on quarantine; `total > 0` guarantees convergence).
            loop {
                if self.scrub_seq >= nseq {
                    self.scrub_seq = 0;
                }
                let state = &self.cache.seqs[self.scrub_seq];
                if state.retired || self.scrub_block >= state.blocks.len() {
                    self.scrub_seq += 1;
                    self.scrub_block = 0;
                    continue;
                }
                break;
            }
            let seq = self.scrub_seq;
            let block = self.scrub_block;
            self.scrub_block += 1;
            self.scrubbed_blocks += 1;
            let sites = self.scrub_block_at(seq, block);
            if sites.is_empty() {
                self.note_scrub_clean(seq, block);
            } else {
                findings.extend(sites.into_iter().map(|s| (seq, s)));
            }
        }
        findings
    }

    /// Audits one retained block of one sequence — the unit of scrub
    /// work. Exactly the per-block slice of [`audit`](Self::audit):
    /// stored [`BlockCheck`](super::BlockCheck) references vs a fresh
    /// bitwise recompute per kv head and side, then the block's
    /// positions' `sumrow` inputs (skipped while the block is
    /// value-corrupt — there the storage is the liar and the stored
    /// `sumrow` the witness). Returns every corrupt site in the block.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or `block` is out of
    /// range.
    pub fn scrub_block_at(&self, seq: usize, block: usize) -> Vec<CorruptSite> {
        let kv = self.cfg.kv_heads;
        let cache = &self.cache;
        let state = cache.live(seq);
        assert!(
            block < state.blocks.len(),
            "block {block} out of {} retained",
            state.blocks.len()
        );
        let blk = state.blocks[block];
        let check = &state.checks[block];
        let first = state.start + block * cache.block_rows;
        let rows = (state.len - first).min(cache.block_rows);
        let recomputed = cache.recompute_block_check(blk, rows);
        let mut sites = Vec::new();
        let mut value_bad = false;
        for g in 0..kv {
            if recomputed.ksum[g].to_bits() != check.ksum[g].to_bits() {
                sites.push(LocalizedFault::CorruptBlock {
                    block,
                    kv_head: g,
                    first,
                    rows,
                    key_side: true,
                });
            }
            if recomputed.vsum[g].to_bits() != check.vsum[g].to_bits() {
                value_bad = true;
                sites.push(LocalizedFault::CorruptBlock {
                    block,
                    kv_head: g,
                    first,
                    rows,
                    key_side: false,
                });
            }
        }
        if !value_bad {
            let sumrows = &self.seqs[seq].sumrows;
            for p in first..first + rows {
                for g in 0..kv {
                    let fresh = cache.value_head_sum(seq, p, g);
                    if fresh.to_bits() != sumrows[p * kv + g].to_bits() {
                        sites.push(LocalizedFault::CorruptSumrow { pos: p, kv_head: g });
                    }
                }
            }
        }
        sites
    }

    /// A clean scrub verdict on block `block` of `seq`: extend the
    /// contiguous verified prefix if the block touches it, then let the
    /// budget truncation drop rows the prefix releases. The watermark
    /// only advances contiguously — a clean verdict *behind* an
    /// unverified gap proves nothing about the gap's rows.
    fn note_scrub_clean(&mut self, seq: usize, block: usize) {
        let state = &self.cache.seqs[seq];
        let first = state.start + block * self.cache.block_rows;
        let rows = (state.len - first).min(self.cache.block_rows);
        let watermark = &mut self.seqs[seq].log_clean_until;
        if *watermark >= first {
            *watermark = (*watermark).max(first + rows);
        }
        self.truncate_log(seq);
    }

    /// Checkpoints sequence `seq`'s recovery log behind a full
    /// [`audit`](Self::audit): when the audit is clean, every cached row
    /// is a verified witness, the clean watermark jumps to the sequence
    /// tip, and the budget truncation drops everything the budget does
    /// not retain. Returns whether the checkpoint happened (a dirty
    /// audit refuses — truncating would orphan the corrupt block's only
    /// recovery evidence).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn checkpoint_recovery_log(&mut self, seq: usize, tol: f64) -> bool {
        if !self.audit(seq, tol).is_empty() {
            return false;
        }
        let len = self.cache.seq_len(seq);
        let watermark = &mut self.seqs[seq].log_clean_until;
        *watermark = (*watermark).max(len);
        self.truncate_log(seq);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout, ScrubPolicy};
    use super::*;
    use crate::topology::HeadTopology;
    use crate::AttentionConfig;
    use fa_tensor::{random::ElementDist, Matrix};

    const TOL: f64 = 1e-6;

    fn rand(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        Matrix::random_seeded(rows, cols, ElementDist::default(), seed)
    }

    fn gqa(q: usize, kv: usize, d: usize) -> HeadTopology {
        HeadTopology::gqa(q, kv, AttentionConfig::new(d))
    }

    fn engine(
        topo: HeadTopology,
        format: KvFormat,
        eviction: EvictionPolicy,
        log: bool,
    ) -> DecodeBatch<f64> {
        let mut e = DecodeBatch::<f64>::with_policy(topo, 4, KvLayout::HeadMajor, format, eviction);
        if log {
            e.enable_recovery_log();
        }
        e
    }

    /// Seeds `batch` sequences with `prefill` prompt rows each.
    fn seed(e: &mut DecodeBatch<f64>, batch: usize, prefill: usize) -> Vec<usize> {
        let topo = *e.config();
        let ids: Vec<usize> = (0..batch).map(|_| e.add_sequence()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let k = rand(prefill, topo.kv_dim(), 10 + i as u64);
            let v = rand(prefill, topo.kv_dim(), 50 + i as u64);
            e.prefill(id, &k, &v);
        }
        ids
    }

    fn decode_step(e: &mut DecodeBatch<f64>, ids: &[usize], step: u64) -> Vec<Vec<f64>> {
        let topo = *e.config();
        let qs = rand(ids.len(), topo.q_dim(), 1_000 + step);
        let ks = rand(ids.len(), topo.kv_dim(), 2_000 + step);
        let vs = rand(ids.len(), topo.kv_dim(), 3_000 + step);
        e.step_all(ids, &qs, &ks, &vs)
            .into_iter()
            .map(|o| o.output)
            .collect()
    }

    #[test]
    fn scrub_step_is_a_noop_without_policy_or_blocks() {
        let mut e = engine(
            gqa(2, 2, 4),
            KvFormat::F64,
            EvictionPolicy::RetainAll,
            false,
        );
        seed(&mut e, 2, 10);
        assert!(e.scrub_step().is_empty(), "no policy installed");
        assert_eq!(e.scrubbed_blocks(), 0);

        let mut empty = engine(
            gqa(2, 2, 4),
            KvFormat::F64,
            EvictionPolicy::RetainAll,
            false,
        );
        empty.set_scrub_policy(Some(ScrubPolicy { blocks_per_step: 4 }));
        assert!(empty.scrub_step().is_empty(), "no live blocks");
        assert_eq!(empty.scrubbed_blocks(), 0);
    }

    #[test]
    fn one_full_cycle_covers_every_live_block_exactly_once() {
        let mut e = engine(
            gqa(4, 2, 4),
            KvFormat::F64,
            EvictionPolicy::RetainAll,
            false,
        );
        seed(&mut e, 3, 10); // 3 blocks each (4-row blocks, 10 rows)
        let live = e.live_blocks();
        assert_eq!(live, 9);
        e.set_scrub_policy(Some(ScrubPolicy {
            blocks_per_step: live + 100,
        }));
        assert!(e.scrub_step().is_empty());
        // The quantum caps at the live count: exactly one cycle, no block
        // audited twice in one call.
        assert_eq!(e.scrubbed_blocks(), live as u64);
    }

    /// The tentpole guarantee: a key-side storage flip — invisible to the
    /// online residual by construction — is caught by the scrubber within
    /// `ceil(live_blocks / blocks_per_step)` scrub steps, at every
    /// bandwidth setting.
    #[test]
    fn key_flip_detected_within_the_latency_bound() {
        for bps in [1usize, 2, 5] {
            let mut e = engine(gqa(4, 2, 8), KvFormat::F64, EvictionPolicy::RetainAll, true);
            let ids = seed(&mut e, 3, 10);
            e.set_scrub_policy(Some(ScrubPolicy {
                blocks_per_step: bps,
            }));
            let victim = ids[2];
            e.flip_storage_bit(victim, 6, 1, 3, true, 61);
            let live = e.live_blocks();
            let bound = live.div_ceil(bps);
            let mut caught_at = None;
            for step in 1..=bound {
                let findings = e.scrub_step();
                if !findings.is_empty() {
                    assert!(findings.iter().all(|&(s, site)| s == victim
                        && matches!(
                            site,
                            LocalizedFault::CorruptBlock {
                                kv_head: 1,
                                key_side: true,
                                first,
                                rows,
                                ..
                            } if (first..first + rows).contains(&6)
                        )));
                    caught_at = Some(step);
                    break;
                }
            }
            let caught = caught_at
                .unwrap_or_else(|| panic!("bps={bps}: flip not caught within {bound} steps"));
            assert!(caught <= bound);
            // Repair from the scrub findings and the structure is clean.
            let faults = e.audit(victim, TOL);
            let report = e.repair(victim, &faults);
            assert_eq!(report.blocks_recovered, 1);
            assert_eq!(report.blocks_unrecoverable, 0);
            assert!(e.audit(victim, TOL).is_empty());
        }
    }

    /// Scrub verdicts unlock budget truncation: without verdicts the log
    /// retains everything (the unverified suffix is the sole witness);
    /// after a full clean cycle the log holds exactly the budget.
    #[test]
    fn budget_truncation_waits_for_scrub_verdicts() {
        let mut e = engine(gqa(2, 2, 4), KvFormat::F64, EvictionPolicy::RetainAll, true);
        let ids = seed(&mut e, 1, 16);
        e.set_recovery_log_budget(Some(6));
        for s in 0..4 {
            decode_step(&mut e, &ids, s);
        }
        let len = e.seq_len(ids[0]);
        assert_eq!(len, 20);
        // No scrub verdicts yet: every row is still unverified, nothing
        // dropped despite the budget.
        assert_eq!(e.recovery_log_rows(), len);
        let width = e.cache().width();
        assert_eq!(
            e.recovery_log_bytes(),
            2 * len * width * core::mem::size_of::<f64>()
        );
        // A full clean scrub cycle verifies every retained block; the
        // truncation then drops everything beyond the budget.
        e.set_scrub_policy(Some(ScrubPolicy { blocks_per_step: 1 }));
        let live = e.live_blocks();
        for _ in 0..live {
            assert!(e.scrub_step().is_empty());
        }
        assert_eq!(e.recovery_log_rows(), 6);
        assert_eq!(e.seq_log_rows(ids[0]), 6);
        assert_eq!(
            e.recovery_log_bytes(),
            2 * 6 * width * core::mem::size_of::<f64>()
        );
        // The retained suffix still recovers: flip inside it and repair.
        e.flip_storage_bit(ids[0], len - 1, 0, 1, false, 61);
        let faults = e.audit(ids[0], TOL);
        let report = e.repair(ids[0], &faults);
        assert_eq!(report.blocks_unrecoverable, 0);
        assert!(report.blocks_recovered >= 1);
        assert!(e.audit(ids[0], TOL).is_empty());
    }

    /// `checkpoint_recovery_log` is the synchronous form: a clean full
    /// audit verifies the whole sequence at once; a dirty audit refuses
    /// to checkpoint (truncation would orphan the recovery evidence).
    #[test]
    fn checkpoint_requires_a_clean_audit() {
        let mut e = engine(gqa(2, 1, 4), KvFormat::F64, EvictionPolicy::RetainAll, true);
        let ids = seed(&mut e, 1, 12);
        e.set_recovery_log_budget(Some(4));
        assert_eq!(e.seq_log_rows(ids[0]), 12);
        e.flip_storage_bit(ids[0], 2, 0, 0, true, 61);
        assert!(!e.checkpoint_recovery_log(ids[0], TOL), "dirty audit");
        assert_eq!(e.seq_log_rows(ids[0]), 12, "nothing truncated");
        let faults = e.audit(ids[0], TOL);
        e.repair(ids[0], &faults);
        assert!(e.checkpoint_recovery_log(ids[0], TOL));
        assert_eq!(e.seq_log_rows(ids[0]), 4);
    }

    /// Once the budget truncates past a block, a later flip there is
    /// unrecoverable: `repair` skips it (counted, no panic), and
    /// quarantine + caller-provided resubmit is the recovery path.
    #[test]
    fn truncated_log_makes_old_blocks_unrecoverable() {
        let mut e = engine(gqa(2, 2, 4), KvFormat::F64, EvictionPolicy::RetainAll, true);
        let ids = seed(&mut e, 2, 16);
        e.set_recovery_log_budget(Some(4));
        assert!(e.checkpoint_recovery_log(ids[0], TOL));
        assert_eq!(e.seq_log_rows(ids[0]), 4);
        assert!(!e.block_recoverable(ids[0], 0), "log truncated past it");
        assert!(e.block_recoverable(ids[0], 3), "suffix still covered");
        e.flip_storage_bit(ids[0], 1, 0, 2, false, 60);
        let faults = e.audit(ids[0], TOL);
        assert!(!faults.is_empty());
        let report = e.repair(ids[0], &faults);
        assert_eq!(report.blocks_recovered, 0);
        assert_eq!(report.blocks_unrecoverable, 1);
        // The poison is still there; degrade gracefully instead.
        let freed = e.cache().seq_blocks(ids[0]).len();
        let report = e.quarantine(ids[0]);
        assert_eq!(report.blocks_freed, freed);
        assert_eq!(report.requeued_rows, 0, "truncated log cannot requeue");
        assert_eq!(report.log_rows_dropped, 4);
        assert_eq!(e.seq_len(ids[0]), 0);
        assert!(!e.is_pending(ids[0]));
    }

    /// With a full (untruncated) log, quarantine auto-requeues the whole
    /// history through chunked-prefill admission, and the rebuilt cache
    /// is bitwise the undamaged cache: decode resumes bit-identical to a
    /// golden twin while the batch peer stays bit-identical throughout.
    #[test]
    fn quarantine_auto_requeues_and_resumes_bit_identical() {
        let topo = gqa(4, 2, 8);
        let mk = |log: bool| {
            let mut e = engine(
                topo,
                KvFormat::Mixed { burst_blocks: 1 },
                EvictionPolicy::SlidingWindow { window_blocks: 3 },
                log,
            );
            e.set_prefill_chunk(4);
            e
        };
        let mut subject = mk(true);
        let mut golden = mk(false);
        let ids = seed(&mut subject, 2, 10);
        seed(&mut golden, 2, 10);
        for s in 0..6 {
            let a = decode_step(&mut subject, &ids, s);
            let b = decode_step(&mut golden, &ids, s);
            assert_eq!(a, b, "healthy lockstep");
        }
        let victim = ids[0];
        let peer = ids[1];
        // Damage the victim beyond in-place repair (no log truncation is
        // even needed — quarantine works on any damage). Flip inside the
        // retained window; leading blocks may already be evicted.
        let pos = subject.evicted_len(victim) + 1;
        subject.flip_storage_bit(victim, pos, 0, 1, true, 61);
        let report = subject.quarantine(victim);
        assert!(report.blocks_freed > 0);
        assert_eq!(report.requeued_rows, subject.pending_len(victim));
        assert!(subject.is_pending(victim));
        // Peers decode while the victim re-admits chunk by chunk; the
        // golden twin pauses its victim too so both see identical steps.
        let mut s = 100;
        while subject.is_pending(victim) {
            let a = decode_step(&mut subject, &[peer], s);
            let b = decode_step(&mut golden, &[peer], s);
            assert_eq!(a, b, "peer bit-identical during requeue");
            s += 1;
        }
        assert_eq!(subject.seq_len(victim), golden.seq_len(victim));
        assert!(subject.audit(victim, TOL).is_empty());
        // Post-recompute decode is bit-identical to the undamaged twin.
        for s in 200..206 {
            let a = decode_step(&mut subject, &ids, s);
            let b = decode_step(&mut golden, &ids, s);
            assert_eq!(a, b, "victim bit-identical after requeue");
        }
    }

    /// Scrub × sliding window: a flip whose block is evicted before the
    /// cursor arrives is never reported (the evidence left the window),
    /// and freed blocks are never scrubbed against their old owner —
    /// reclaimed storage audits clean under its new owner's references.
    #[test]
    fn eviction_and_free_list_aliasing_never_confuse_the_scrubber() {
        let topo = gqa(2, 2, 4);
        let mut e = engine(
            topo,
            KvFormat::F64,
            EvictionPolicy::SlidingWindow { window_blocks: 2 },
            true,
        );
        let ids = seed(&mut e, 2, 12);
        e.set_scrub_policy(Some(ScrubPolicy { blocks_per_step: 1 }));
        // Flip in the oldest retained block, then decode it out of the
        // window *before* scrubbing: the cursor must never report it.
        let first = e.evicted_len(ids[0]);
        e.flip_storage_bit(ids[0], first, 0, 1, true, 61);
        let mut s = 0;
        while e.evicted_len(ids[0]) <= first {
            decode_step(&mut e, &ids, s);
            s += 1;
        }
        for _ in 0..2 * e.live_blocks() {
            assert!(
                e.scrub_step().is_empty(),
                "evicted evidence must not be reported"
            );
        }
        assert!(e.audit(ids[0], TOL).is_empty());
        // Free-list aliasing: poison a block, quarantine the owner (its
        // blocks return to the free list poisoned), and let the requeue
        // reclaim them. Appends rebuild rows and references, so a full
        // scrub cycle and audit stay clean.
        e.flip_storage_bit(ids[1], e.evicted_len(ids[1]), 1, 0, false, 61);
        let report = e.quarantine(ids[1]);
        assert!(report.blocks_freed > 0);
        while e.is_pending(ids[1]) {
            e.prefill_step();
        }
        for _ in 0..e.live_blocks() {
            assert!(e.scrub_step().is_empty(), "reclaimed blocks audit clean");
        }
        for &id in &ids {
            assert!(e.audit(id, TOL).is_empty());
        }
    }

    /// The scrub watermark only advances over a *contiguous* verified
    /// prefix: verdicts behind a corrupt block must not release the
    /// corrupt block's log rows.
    #[test]
    fn watermark_stops_at_the_first_unverified_gap() {
        let mut e = engine(gqa(2, 1, 4), KvFormat::F64, EvictionPolicy::RetainAll, true);
        let ids = seed(&mut e, 1, 12);
        e.set_recovery_log_budget(Some(2));
        e.set_scrub_policy(Some(ScrubPolicy { blocks_per_step: 1 }));
        // Corrupt block 0; the cursor reports it and must not advance the
        // watermark past it, so later clean verdicts (blocks 1, 2) do not
        // unlock truncation of block 0's witness rows.
        e.flip_storage_bit(ids[0], 0, 0, 0, true, 61);
        let findings = e.scrub_step();
        assert!(!findings.is_empty());
        assert!(e.scrub_step().is_empty()); // block 1 clean
        assert!(e.scrub_step().is_empty()); // block 2 clean
        assert_eq!(
            e.seq_log_rows(ids[0]),
            12,
            "corrupt block keeps its recovery witness"
        );
        // Repair is therefore still possible.
        let faults = e.audit(ids[0], TOL);
        let report = e.repair(ids[0], &faults);
        assert_eq!(report.blocks_recovered, 1);
        assert_eq!(report.blocks_unrecoverable, 0);
        assert!(e.audit(ids[0], TOL).is_empty());
    }

    /// The autotuned policy honors the detection-latency SLO at every
    /// load point: as the live-block count grows (more sequences, longer
    /// histories), re-deriving the policy from
    /// [`ScrubPolicy::for_target_latency`] keeps an injected key flip
    /// detectable within `slo` scrub steps — the satellite guarantee the
    /// serving frontend re-tunes with each step.
    #[test]
    fn autotuned_policy_meets_the_slo_at_every_load_point() {
        for slo in [1usize, 2, 4, 7] {
            for (batch, prefill) in [(1usize, 5usize), (2, 10), (4, 10), (3, 22)] {
                let mut e = engine(gqa(4, 2, 4), KvFormat::F64, EvictionPolicy::RetainAll, true);
                let ids = seed(&mut e, batch, prefill);
                let victim = ids[batch - 1];
                e.flip_storage_bit(victim, prefill - 1, 1, 2, true, 61);
                let live = e.live_blocks();
                e.set_scrub_policy(Some(ScrubPolicy::for_target_latency(slo, live)));
                let mut caught_at = None;
                for step in 1..=slo {
                    if !e.scrub_step().is_empty() {
                        caught_at = Some(step);
                        break;
                    }
                }
                let caught = caught_at.unwrap_or_else(|| {
                    panic!("slo={slo} live={live}: flip not caught within the SLO")
                });
                assert!(
                    caught <= slo,
                    "slo={slo} live={live}: detection took {caught} steps"
                );
            }
        }
    }
}
