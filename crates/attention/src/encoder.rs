//! The encoder-only transformer layer of the paper's Fig. 1.
//!
//! "The input embedding is first projected to Query (Q), Key (K) and
//! Value (V) matrices through a linear transformation. ... To complete
//! self-attention the output is normalized and added to the input of the
//! attention block. The self-attention block is followed by a
//! feed-forward block that consists of two fully-connected layers that
//! are separated by a GELU activation function" (§I). This module builds
//! that layer so examples and integration tests can exercise Flash-ABFT
//! inside its real architectural context (e.g. BERT-base stacks twelve
//! of these).

use crate::multihead::{self, MultiHeadConfig};
use fa_tensor::{random::ElementDist, Matrix, Scalar};

/// Layer normalization over the last dimension: per row,
/// `(x − mean)/√(var + ε)`, with learned scale/shift.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    gamma: Vec<f64>,
    beta: Vec<f64>,
    epsilon: f64,
}

impl LayerNorm {
    /// Identity-initialized LayerNorm (γ=1, β=0) of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        LayerNorm {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            epsilon: 1e-5,
        }
    }

    /// Width this norm expects.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Applies the normalization row-wise.
    ///
    /// # Panics
    ///
    /// Panics if the matrix width differs from [`Self::dim`].
    pub fn forward<T: Scalar>(&self, x: &Matrix<T>) -> Matrix<f64> {
        assert_eq!(x.cols(), self.dim(), "width mismatch in LayerNorm");
        let mut out = x.to_f64();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let n = row.len() as f64;
            let mean = row.iter().sum::<f64>() / n;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            let inv = 1.0 / (var + self.epsilon).sqrt();
            for (v, (g, b)) in row.iter_mut().zip(self.gamma.iter().zip(&self.beta)) {
                *v = (*v - mean) * inv * g + b;
            }
        }
        out
    }
}

/// Exact GELU activation: `x · Φ(x)` with the Gaussian CDF via `erf`.
pub fn gelu(x: f64) -> f64 {
    0.5 * x * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (|error| < 1.5×10⁻⁷ — far below BF16 resolution).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// A dense layer `y = x·W + b` with deterministic Xavier-style init.
#[derive(Clone, Debug)]
pub struct Linear {
    weight: Matrix<f64>,
    bias: Vec<f64>,
}

impl Linear {
    /// Creates a layer with seeded Gaussian weights scaled by
    /// `1/√in_dim` and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be positive");
        let dist = ElementDist::Gaussian {
            std_dev: 1.0 / (in_dim as f64).sqrt(),
        };
        Linear {
            weight: Matrix::random_seeded(in_dim, out_dim, dist, seed),
            bias: vec![0.0; out_dim],
        }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the input width differs from the layer's input width.
    pub fn forward(&self, x: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(x.cols(), self.weight.rows(), "width mismatch in Linear");
        let mut out = x.matmul(&self.weight);
        for r in 0..out.rows() {
            for (v, b) in out.row_mut(r).iter_mut().zip(&self.bias) {
                *v += b;
            }
        }
        out
    }
}

/// One encoder layer (Fig. 1): QKV projection → multi-head attention →
/// residual + LayerNorm → FFN (Linear→GELU→Linear) → residual +
/// LayerNorm.
#[derive(Clone, Debug)]
pub struct EncoderLayer {
    mh: MultiHeadConfig,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    norm1: LayerNorm,
    ffn1: Linear,
    ffn2: Linear,
    norm2: LayerNorm,
}

impl EncoderLayer {
    /// Builds a layer for model dimension `mh.model_dim()` with an FFN
    /// hidden width of 4× (the BERT ratio), deterministically seeded.
    pub fn new(mh: MultiHeadConfig, seed: u64) -> Self {
        let dim = mh.model_dim();
        EncoderLayer {
            mh,
            wq: Linear::new(dim, dim, seed),
            wk: Linear::new(dim, dim, seed + 1),
            wv: Linear::new(dim, dim, seed + 2),
            wo: Linear::new(dim, dim, seed + 3),
            norm1: LayerNorm::new(dim),
            ffn1: Linear::new(dim, 4 * dim, seed + 4),
            ffn2: Linear::new(4 * dim, dim, seed + 5),
            norm2: LayerNorm::new(dim),
        }
    }

    /// The multi-head configuration.
    pub fn config(&self) -> &MultiHeadConfig {
        &self.mh
    }

    /// Forward pass over embeddings (N × model_dim). Also returns the
    /// projected Q/K/V so a checker can verify the attention block
    /// (the deployment point of Flash-ABFT).
    ///
    /// # Panics
    ///
    /// Panics if the embedding width differs from the model dimension.
    pub fn forward(&self, embeddings: &Matrix<f64>) -> EncoderOutput {
        assert_eq!(
            embeddings.cols(),
            self.mh.model_dim(),
            "embedding width mismatch"
        );
        let q = self.wq.forward(embeddings);
        let k = self.wk.forward(embeddings);
        let v = self.wv.forward(embeddings);
        let attn = multihead::attention(&q, &k, &v, &self.mh);
        let projected = self.wo.forward(&attn);

        // Residual + norm 1.
        let mut resid1 = projected.clone();
        for r in 0..resid1.rows() {
            for c in 0..resid1.cols() {
                resid1[(r, c)] += embeddings[(r, c)];
            }
        }
        let normed1 = self.norm1.forward(&resid1);

        // FFN with GELU.
        let hidden = self.ffn1.forward(&normed1).map(gelu);
        let ffn_out = self.ffn2.forward(&hidden);

        // Residual + norm 2.
        let mut resid2 = ffn_out;
        for r in 0..resid2.rows() {
            for c in 0..resid2.cols() {
                resid2[(r, c)] += normed1[(r, c)];
            }
        }
        let output = self.norm2.forward(&resid2);

        EncoderOutput {
            output,
            q,
            k,
            v,
            attention: attn,
        }
    }
}

/// Result of one encoder-layer forward pass, exposing the attention
/// block's operands for checking.
#[derive(Clone, Debug)]
pub struct EncoderOutput {
    /// The layer output (N × model_dim).
    pub output: Matrix<f64>,
    /// Projected queries.
    pub q: Matrix<f64>,
    /// Projected keys.
    pub k: Matrix<f64>,
    /// Projected values.
    pub v: Matrix<f64>,
    /// The (unprojected) multi-head attention output.
    pub attention: Matrix<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttentionConfig;

    #[test]
    fn layernorm_normalizes_rows() {
        let ln = LayerNorm::new(8);
        let x = Matrix::<f64>::from_fn(4, 8, |r, c| (r * 8 + c) as f64 * 3.0 + 5.0);
        let y = ln.forward(&x);
        for r in 0..4 {
            let row = y.row(r);
            let mean: f64 = row.iter().sum::<f64>() / 8.0;
            let var: f64 = row.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 8.0;
            assert!(mean.abs() < 1e-12, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.841345).abs() < 1e-4);
        assert!((gelu(-1.0) + 0.158655).abs() < 1e-4);
        // Asymptotics: identity for large x, zero for very negative x.
        assert!((gelu(6.0) - 6.0).abs() < 1e-6);
        assert!(gelu(-6.0).abs() < 1e-6);
    }

    #[test]
    fn erf_matches_tabulated_values() {
        for (x, expected) in [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
        ] {
            assert!((erf(x) - expected).abs() < 2e-7, "erf({x})");
            assert!((erf(-x) + expected).abs() < 2e-7, "erf(-{x})");
        }
    }

    #[test]
    fn linear_layer_shapes_and_bias() {
        let mut layer = Linear::new(4, 6, 1);
        layer.bias = vec![1.0; 6];
        let x = Matrix::<f64>::zeros(3, 4);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (3, 6));
        assert!(
            y.as_slice().iter().all(|&v| v == 1.0),
            "zero input + unit bias"
        );
    }

    #[test]
    fn encoder_layer_forward_is_sane() {
        let mh = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let layer = EncoderLayer::new(mh, 42);
        let emb = Matrix::<f64>::random_seeded(6, 8, ElementDist::Gaussian { std_dev: 1.0 }, 7);
        let out = layer.forward(&emb);
        assert_eq!((out.output.rows(), out.output.cols()), (6, 8));
        assert!(out.output.all_finite());
        // Output rows are LayerNorm'd: zero mean.
        for r in 0..6 {
            let mean: f64 = out.output.row(r).iter().sum::<f64>() / 8.0;
            assert!(mean.abs() < 1e-10);
        }
        // Exposed Q/K/V have the right shape for checking.
        assert_eq!(out.q.cols(), 8);
        assert_eq!(out.attention.cols(), 8);
    }

    #[test]
    fn encoder_is_deterministic_per_seed() {
        let mh = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let emb = Matrix::<f64>::random_seeded(4, 8, ElementDist::default(), 9);
        let a = EncoderLayer::new(mh, 1).forward(&emb);
        let b = EncoderLayer::new(mh, 1).forward(&emb);
        assert_eq!(a.output, b.output);
        let c = EncoderLayer::new(mh, 2).forward(&emb);
        assert_ne!(a.output, c.output);
    }

    #[test]
    fn attention_inside_encoder_is_checkable() {
        // The deployment point: verify the attention block of a real
        // encoder layer per head with Flash-ABFT-style row checks.
        let mh = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let layer = EncoderLayer::new(mh, 10);
        let emb = Matrix::<f64>::random_seeded(5, 8, ElementDist::default(), 11);
        let out = layer.forward(&emb);
        for h in 0..2 {
            let qh = mh.slice_head(&out.q, h);
            let kh = mh.slice_head(&out.k, h);
            let vh = mh.slice_head(&out.v, h);
            let ah = mh.slice_head(&out.attention, h);
            // Row-sum identity: Σ_j attn_ij equals the Eq. 8 check.
            let reference = crate::naive::attention(&qh, &kh, &vh, &mh.head);
            assert!(ah.max_abs_diff(&reference) < 1e-12, "head {h}");
        }
    }
}
