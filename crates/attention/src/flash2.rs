//! Alg. 2 — FlashAttention-2 with delayed softmax division.
//!
//! A single pass per query: each step computes the score `s_i`, updates the
//! running max `m_i`, rescales the sum of exponentials
//! `ℓ_i ← ℓ_{i−1}·e^{m_{i−1}−m_i} + e^{s_i−m_i}` and the output
//! `o_i ← o_{i−1}·e^{m_{i−1}−m_i} + v_i·e^{s_i−m_i}`, and the attention row
//! is `o_N / ℓ_N` at the end. No precomputed maximum is needed — the key
//! property that makes the kernel streamable and the reason the paper's
//! checksum (which obeys the *same* recurrence) can be computed online.

use crate::{par, AttentionConfig};
use fa_numerics::OnlineSoftmax;
use fa_tensor::{Matrix, Scalar};
use rayon::prelude::*;

/// Per-query result of the online pass, before the final division.
#[derive(Clone, Debug, PartialEq)]
pub struct OnlineQueryState {
    /// Output accumulator `o_N` (length d), rescaled to the final max.
    pub output: Vec<f64>,
    /// Sum of exponentials `ℓ_N`.
    pub sum_exp: f64,
    /// Final running maximum `m_N`.
    pub max_score: f64,
    /// Number of keys processed (visible keys only under causal masking).
    pub steps: usize,
}

/// Computes FlashAttention-2 (Alg. 2), parallelized across query rows.
///
/// Per-query state is fully independent, so rows are distributed over the
/// rayon pool; the result is **bit-identical** to [`attention_serial`] for
/// every thread count (the property tests assert this).
///
/// # Panics
///
/// Panics on shape mismatch.
///
/// ```
/// use fa_tensor::{Matrix, random::ElementDist};
/// use fa_attention::{flash2, naive, AttentionConfig};
/// let q = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 1);
/// let k = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 2);
/// let v = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 3);
/// let cfg = AttentionConfig::new(4);
/// let a = flash2::attention(&q, &k, &v, &cfg);
/// let b = naive::attention(&q, &k, &v, &cfg);
/// assert!(a.max_abs_diff(&b) < 1e-12);
/// ```
pub fn attention<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
) -> Matrix<T> {
    cfg.validate_shapes(q, k, v);
    let d = cfg.head_dim();
    let mut out = Matrix::zeros(q.rows(), d);
    let fill_row = |qi: usize, row: &mut [T]| {
        let state = query_state(q, k, v, cfg, qi);
        for (o, &val) in row.iter_mut().zip(&state.output) {
            *o = T::from_f64(val / state.sum_exp);
        }
    };
    if par::worth_parallelizing(q.rows(), k.rows(), d) {
        out.as_mut_slice()
            .par_chunks_mut(d)
            .enumerate()
            .for_each(|(qi, row)| fill_row(qi, row));
    } else {
        for (qi, row) in out.as_mut_slice().chunks_mut(d).enumerate() {
            fill_row(qi, row);
        }
    }
    out
}

/// The serial reference form of [`attention`]: identical arithmetic, one
/// thread. Kept public as the golden model for the parallel-equivalence
/// property tests and the speedup benchmarks.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn attention_serial<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
) -> Matrix<T> {
    cfg.validate_shapes(q, k, v);
    let d = cfg.head_dim();
    let mut out = Matrix::zeros(q.rows(), d);
    for qi in 0..q.rows() {
        let state = query_state(q, k, v, cfg, qi);
        for c in 0..d {
            out[(qi, c)] = T::from_f64(state.output[c] / state.sum_exp);
        }
    }
    out
}

/// Key rows scored per block in [`query_state`]: score a whole block
/// first (one contiguous K stream), then accumulate its V rows — two
/// tight streams per block instead of alternating K-row/V-row reads.
const SCORE_BLOCK: usize = 64;

/// Runs the Alg. 2 online loop for one query row.
///
/// Visible keys are processed in [`SCORE_BLOCK`]-row blocks: lines 3
/// (scores, via the contiguous-stream [`ops::dot_then_scale_rows`]
/// kernel) for the whole block, then lines 4–6 folding the block's scores
/// and V rows through the online recurrence. Per-key arithmetic and order
/// are unchanged, so results are bit-identical to the row-interleaved
/// loop.
///
/// # Panics
///
/// Panics on shape mismatch or `query_idx` out of bounds.
pub fn query_state<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
    query_idx: usize,
) -> OnlineQueryState {
    cfg.validate_shapes(q, k, v);
    assert!(query_idx < q.rows(), "query index out of bounds");
    let d = cfg.head_dim();
    let mut os = OnlineSoftmax::new();
    let mut output = vec![0.0f64; d];

    let visible = cfg.visible_range(query_idx, k.rows());
    let q_row = q.row(query_idx);
    let mut scores = Vec::with_capacity(SCORE_BLOCK.min(visible.len()));
    let mut i = visible.start;
    while i < visible.end {
        let rows = SCORE_BLOCK.min(visible.end - i);
        // Line 3: s_i = q · k_i (scaled) — the SIMD inner kernel, one
        // contiguous K span per block.
        fa_tensor::ops::dot_then_scale_rows(
            q_row,
            &k.as_slice()[i * d..],
            d,
            rows,
            cfg.scale(),
            &mut scores,
        );
        for (j, &s) in scores.iter().enumerate() {
            // Lines 4–5: max update and rescaled sum of exponentials.
            let step = os.push(s);
            // Line 6: o_i = o_{i-1}·e^{m_{i-1}-m_i} + v_i·e^{s_i-m_i}.
            fa_tensor::ops::axpy_f64(&mut output, v.row(i + j), step.scale_old, step.weight_new);
        }
        i += rows;
    }

    OnlineQueryState {
        output,
        sum_exp: os.sum_exp(),
        max_score: os.max(),
        steps: os.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lazy, naive};
    use fa_tensor::random::ElementDist;

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random_seeded(n, d, ElementDist::default(), seed),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
        )
    }

    #[test]
    fn matches_naive() {
        let (q, k, v) = rand_qkv(32, 8, 500);
        let cfg = AttentionConfig::new(8);
        let a = attention(&q, &k, &v, &cfg);
        let b = naive::attention(&q, &k, &v, &cfg);
        assert!(a.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn matches_lazy_division_state() {
        // Alg. 1 and Alg. 2 produce the same (o_N, l_N, m_N) up to
        // floating-point reordering.
        let (q, k, v) = rand_qkv(20, 4, 9);
        let cfg = AttentionConfig::new(4);
        for qi in [0, 7, 19] {
            let online = query_state(&q, &k, &v, &cfg, qi);
            let lazy_st = lazy::query_state(&q, &k, &v, &cfg, qi);
            assert_eq!(online.max_score, lazy_st.max_score);
            assert!((online.sum_exp - lazy_st.sum_exp).abs() < 1e-12);
            for (a, b) in online.output.iter().zip(&lazy_st.output) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matches_naive_with_causal_mask() {
        let (q, k, v) = rand_qkv(16, 4, 321);
        let cfg = AttentionConfig::new(4).with_causal(true);
        let a = attention(&q, &k, &v, &cfg);
        let b = naive::attention(&q, &k, &v, &cfg);
        assert!(a.max_abs_diff(&b) < 1e-12);
        // Causal row i consumes exactly i+1 keys.
        let st = query_state(&q, &k, &v, &cfg, 5);
        assert_eq!(st.steps, 6);
    }

    #[test]
    fn key_order_invariance() {
        // Online softmax is order-independent up to rounding: permuting
        // keys (and values identically) leaves the output nearly unchanged.
        let (q, k, v) = rand_qkv(4, 4, 77);
        let cfg = AttentionConfig::new(4);
        let base = attention(&q, &k, &v, &cfg);

        let perm = [3usize, 0, 2, 1];
        let kp = Matrix::from_fn(4, 4, |r, c| k[(perm[r], c)]);
        let vp = Matrix::from_fn(4, 4, |r, c| v[(perm[r], c)]);
        let permuted = attention(&q, &kp, &vp, &cfg);
        assert!(base.max_abs_diff(&permuted) < 1e-12);
    }

    #[test]
    fn monotone_increasing_scores_exercise_rescaling() {
        // Keys engineered so every step raises the max, forcing the
        // e^{m_{i-1}-m_i} rescale path on each iteration.
        let n = 10;
        let q = Matrix::<f64>::from_rows(&[&[1.0]]);
        let k = Matrix::from_fn(n, 1, |r, _| (r as f64) + 1.0);
        let v = Matrix::from_fn(n, 1, |r, _| r as f64);
        let cfg = AttentionConfig::unscaled(1);
        let a = attention(&q, &k, &v, &cfg);
        let b = naive::attention(&q, &k, &v, &cfg);
        assert!(a.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn huge_score_range_stays_finite() {
        let q = Matrix::<f64>::from_rows(&[&[1.0]]);
        let k = Matrix::<f64>::from_rows(&[&[-1000.0], &[0.0], &[1000.0]]);
        let v = Matrix::<f64>::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let out = attention(&q, &k, &v, &AttentionConfig::unscaled(1));
        assert!(out.all_finite());
        assert!((out[(0, 0)] - 3.0).abs() < 1e-9, "largest score dominates");
    }

    #[test]
    fn bf16_datapath_close_to_f64_reference() {
        use fa_numerics::BF16;
        let (q, k, v) = rand_qkv(16, 8, 1234);
        let cfg = AttentionConfig::new(8);
        let reference = attention(&q, &k, &v, &cfg);
        let qb: Matrix<BF16> = q.cast();
        let kb: Matrix<BF16> = k.cast();
        let vb: Matrix<BF16> = v.cast();
        let low = attention(&qb, &kb, &vb, &cfg);
        // BF16 inputs: ~1e-2 relative accuracy on O(1) outputs.
        assert!(low.to_f64().max_abs_diff(&reference) < 0.05);
    }
}
