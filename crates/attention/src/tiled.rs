//! Tiled (blocked) FlashAttention-2.
//!
//! GPUs and the paper's accelerator stream keys/values in blocks: each
//! block computes a local max and partial sums, then merges into the
//! running per-query state with the associative online-softmax combine.
//! Tiling changes only the *order* of floating-point operations, so the
//! result matches the row-wise kernel up to rounding — a property the
//! tests pin down.

use crate::{par, AttentionConfig};
use fa_numerics::OnlineSoftmax;
use fa_tensor::{Matrix, Scalar};
use rayon::prelude::*;

/// Runs the blocked key/value streaming loop for one query row, writing
/// the normalized attention row into `row_out`.
fn fill_query_row<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
    block_size: usize,
    qi: usize,
    row_out: &mut [T],
) {
    let d = cfg.head_dim();
    let n = k.rows();
    let mut global = OnlineSoftmax::new();
    let mut acc = vec![0.0f64; d];

    let mut block_start = 0;
    while block_start < n {
        let block_end = (block_start + block_size).min(n);

        // Local pass over this key/value block.
        let mut local = OnlineSoftmax::new();
        let mut local_acc = vec![0.0f64; d];
        for i in block_start..block_end {
            if !cfg.visible(qi, i) {
                continue;
            }
            let s = fa_tensor::ops::dot_then_scale(q.row(qi), k.row(i), cfg.scale());
            let step = local.push(s);
            fa_tensor::ops::axpy_f64(&mut local_acc, v.row(i), step.scale_old, step.weight_new);
        }

        // Merge block state into the running per-query state.
        if !local.is_empty() {
            let step = global.merge(&local);
            for (g, l) in acc.iter_mut().zip(&local_acc) {
                *g = *g * step.scale_old + *l * step.weight_new;
            }
        }
        block_start = block_end;
    }

    for (o, &a) in row_out.iter_mut().zip(&acc) {
        *o = T::from_f64(a / global.sum_exp());
    }
}

/// Computes FlashAttention-2 streaming keys/values in blocks of
/// `block_size` rows, parallelized across query rows (bit-identical to
/// [`attention_serial`] for every thread count).
///
/// # Panics
///
/// Panics on shape mismatch or if `block_size == 0`.
///
/// ```
/// use fa_tensor::{Matrix, random::ElementDist};
/// use fa_attention::{tiled, naive, AttentionConfig};
/// let q = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 1);
/// let k = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 2);
/// let v = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 3);
/// let cfg = AttentionConfig::new(4);
/// let a = tiled::attention(&q, &k, &v, &cfg, 3);
/// let b = naive::attention(&q, &k, &v, &cfg);
/// assert!(a.max_abs_diff(&b) < 1e-12);
/// ```
pub fn attention<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
    block_size: usize,
) -> Matrix<T> {
    cfg.validate_shapes(q, k, v);
    assert!(block_size > 0, "block_size must be positive");
    let d = cfg.head_dim();
    let mut out = Matrix::zeros(q.rows(), d);
    if par::worth_parallelizing(q.rows(), k.rows(), d) {
        out.as_mut_slice()
            .par_chunks_mut(d)
            .enumerate()
            .for_each(|(qi, row)| fill_query_row(q, k, v, cfg, block_size, qi, row));
    } else {
        for (qi, row) in out.as_mut_slice().chunks_mut(d).enumerate() {
            fill_query_row(q, k, v, cfg, block_size, qi, row);
        }
    }
    out
}

/// The serial reference form of [`attention`]: identical arithmetic, one
/// thread — golden model for the parallel-equivalence property tests.
///
/// # Panics
///
/// Panics on shape mismatch or if `block_size == 0`.
pub fn attention_serial<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
    block_size: usize,
) -> Matrix<T> {
    cfg.validate_shapes(q, k, v);
    assert!(block_size > 0, "block_size must be positive");
    let d = cfg.head_dim();
    let mut out = Matrix::zeros(q.rows(), d);
    for (qi, row) in out.as_mut_slice().chunks_mut(d).enumerate() {
        fill_query_row(q, k, v, cfg, block_size, qi, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use fa_tensor::random::ElementDist;

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random_seeded(n, d, ElementDist::default(), seed),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
        )
    }

    #[test]
    fn all_block_sizes_match_naive() {
        let (q, k, v) = rand_qkv(17, 4, 900); // deliberately non-divisible N
        let cfg = AttentionConfig::new(4);
        let reference = naive::attention(&q, &k, &v, &cfg);
        for bs in [1, 2, 3, 4, 8, 16, 17, 32] {
            let t = attention(&q, &k, &v, &cfg, bs);
            assert!(
                t.max_abs_diff(&reference) < 1e-12,
                "block size {bs} diverged"
            );
        }
    }

    #[test]
    fn causal_mask_with_tiling() {
        let (q, k, v) = rand_qkv(12, 4, 901);
        let cfg = AttentionConfig::new(4).with_causal(true);
        let reference = naive::attention(&q, &k, &v, &cfg);
        for bs in [1, 3, 5, 12] {
            let t = attention(&q, &k, &v, &cfg, bs);
            assert!(t.max_abs_diff(&reference) < 1e-12);
        }
    }

    #[test]
    fn single_block_equals_flash2() {
        let (q, k, v) = rand_qkv(10, 4, 902);
        let cfg = AttentionConfig::new(4);
        let whole = attention(&q, &k, &v, &cfg, 10);
        let flash = crate::flash2::attention(&q, &k, &v, &cfg);
        assert!(whole.max_abs_diff(&flash) < 1e-13);
    }

    #[test]
    #[should_panic(expected = "block_size must be positive")]
    fn zero_block_size_panics() {
        let (q, k, v) = rand_qkv(4, 2, 903);
        let _ = attention(&q, &k, &v, &AttentionConfig::new(2), 0);
    }

    #[test]
    fn block_max_in_later_tile_rescales_earlier_tiles() {
        // The largest score lives in the last block, forcing a global
        // rescale of previously accumulated blocks.
        let q = Matrix::<f64>::from_rows(&[&[1.0]]);
        let k = Matrix::<f64>::from_rows(&[&[0.1], &[0.2], &[50.0]]);
        let v = Matrix::<f64>::from_rows(&[&[1.0], &[2.0], &[7.0]]);
        let cfg = AttentionConfig::unscaled(1);
        let t = attention(&q, &k, &v, &cfg, 2);
        let reference = naive::attention(&q, &k, &v, &cfg);
        assert!(t.max_abs_diff(&reference) < 1e-12);
        assert!((t[(0, 0)] - 7.0).abs() < 1e-9, "dominant key wins");
    }
}
