//! Batched KV-cache decode: the serving-path engine.
//!
//! Decode-dominated traffic is the mode a deployed attention accelerator
//! lives in: every step is one query per sequence against that sequence's
//! whole KV history. [`DecodeSession`](crate::decode::DecodeSession)
//! models a single sequence with per-row heap allocations; at serving
//! scale that shape is wrong twice over — the cache rows are scattered
//! (one allocation per token) and every sequence×head is a separate
//! kernel invocation. This module fixes both:
//!
//! * [`KvCache`] — a paged, block-allocated cache: fixed-size blocks of
//!   contiguous rows carved from one shared arena, appended per sequence
//!   (the vLLM/paged-attention layout). Streaming a sequence's history
//!   walks contiguous memory block by block.
//! * [`DecodeBatch`] — a multi-sequence, multi-head decode engine. One
//!   `step_all` call appends every sequence's new K/V, then schedules all
//!   `sequences × heads` passes across the shared rayon pool in a
//!   **single fork**. Each pass runs the fused Alg. 3 loop — online
//!   softmax, output lanes **and** the per-head checksum lane in one
//!   sweep over the cache — so checked decode costs one pass per step,
//!   exactly like `flash2_with_checksum` does for prefill.
//!
//! Per-(sequence, head) arithmetic is identical to
//! [`DecodeSession::step_with_state`](crate::decode::DecodeSession::step_with_state)
//! and to a one-shot causal [`flash2`](crate::flash2) pass over the same
//! history, and the cross-head combination runs in a fixed order on the
//! calling thread — so `step_all` is bit-identical to serial per-sequence
//! decode at every thread count (property-tested).

use crate::multihead::MultiHeadConfig;
use fa_numerics::OnlineSoftmax;
use fa_tensor::{ops, Matrix, Scalar};
use rayon::prelude::*;

/// A paged key/value cache: rows of a fixed `width` stored in fixed-size
/// blocks carved out of one shared arena, with an append-only block list
/// per sequence.
///
/// Blocks from different sequences interleave in the arena (whichever
/// sequence appends next claims the next block), so memory grows with
/// *total* tokens, not `sequences × longest`.
///
/// # Example
///
/// ```
/// use fa_attention::batch::KvCache;
///
/// let mut cache = KvCache::<f64>::new(2, 16);
/// let s = cache.add_sequence();
/// cache.append(s, &[1.0, 2.0], &[3.0, 4.0]);
/// assert_eq!(cache.seq_len(s), 1);
/// assert_eq!(cache.key_row(s, 0), &[1.0, 2.0]);
/// assert_eq!(cache.value_row(s, 0), &[3.0, 4.0]);
/// ```
#[derive(Clone, Debug)]
pub struct KvCache<T> {
    width: usize,
    block_rows: usize,
    k_arena: Vec<T>,
    v_arena: Vec<T>,
    seqs: Vec<SeqBlocks>,
}

#[derive(Clone, Debug)]
struct SeqBlocks {
    /// Arena block indices owned by this sequence, in position order.
    blocks: Vec<usize>,
    /// Number of appended rows.
    len: usize,
}

impl<T: Scalar> KvCache<T> {
    /// Creates an empty cache for rows of `width` elements, allocated in
    /// blocks of `block_rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(width: usize, block_rows: usize) -> Self {
        assert!(width > 0, "row width must be positive");
        assert!(block_rows > 0, "block_rows must be positive");
        KvCache {
            width,
            block_rows,
            k_arena: Vec::new(),
            v_arena: Vec::new(),
            seqs: Vec::new(),
        }
    }

    /// Row width (elements per cached key/value row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Rows per allocation block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of registered sequences.
    pub fn num_sequences(&self) -> usize {
        self.seqs.len()
    }

    /// Registers a new (empty) sequence and returns its id.
    pub fn add_sequence(&mut self) -> usize {
        self.seqs.push(SeqBlocks {
            blocks: Vec::new(),
            len: 0,
        });
        self.seqs.len() - 1
    }

    /// Reserves arena capacity for at least `additional_rows` more cached
    /// rows (across all sequences), so admission-controlled serving loops
    /// can keep block claims reallocation-free on the decode path.
    ///
    /// Blocks are claimed per sequence, so each registered sequence may
    /// occupy one partially-filled block; the reservation accounts for
    /// that worst case (one extra block per sequence) on top of the raw
    /// row count.
    pub fn reserve_rows(&mut self, additional_rows: usize) {
        let blocks = additional_rows.div_ceil(self.block_rows) + self.seqs.len();
        let elems = blocks * self.block_rows * self.width;
        self.k_arena.reserve(elems);
        self.v_arena.reserve(elems);
    }

    /// Number of cached positions for sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn seq_len(&self, seq: usize) -> usize {
        self.seqs[seq].len
    }

    /// Appends one key/value row to sequence `seq`, claiming a fresh
    /// arena block when the current one is full.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or a slice length differs from the
    /// row width.
    pub fn append(&mut self, seq: usize, k: &[T], v: &[T]) {
        assert_eq!(k.len(), self.width, "key row width mismatch");
        assert_eq!(v.len(), self.width, "value row width mismatch");
        let block_elems = self.block_rows * self.width;
        let state = &mut self.seqs[seq];
        if state.len == state.blocks.len() * self.block_rows {
            // Current block full (or first append): claim the next block.
            let block = self.k_arena.len() / block_elems;
            self.k_arena
                .resize(self.k_arena.len() + block_elems, T::zero());
            self.v_arena
                .resize(self.v_arena.len() + block_elems, T::zero());
            state.blocks.push(block);
        }
        let block = state.blocks[state.len / self.block_rows];
        let slot = block * block_elems + (state.len % self.block_rows) * self.width;
        self.k_arena[slot..slot + self.width].copy_from_slice(k);
        self.v_arena[slot..slot + self.width].copy_from_slice(v);
        state.len += 1;
    }

    /// The cached key row at position `i` of sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` or `i` is out of range.
    pub fn key_row(&self, seq: usize, i: usize) -> &[T] {
        let slot = self.row_slot(seq, i);
        &self.k_arena[slot..slot + self.width]
    }

    /// The cached value row at position `i` of sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` or `i` is out of range.
    pub fn value_row(&self, seq: usize, i: usize) -> &[T] {
        let slot = self.row_slot(seq, i);
        &self.v_arena[slot..slot + self.width]
    }

    fn row_slot(&self, seq: usize, i: usize) -> usize {
        let state = &self.seqs[seq];
        assert!(i < state.len, "position {i} out of {} cached", state.len);
        let block = state.blocks[i / self.block_rows];
        block * self.block_rows * self.width + (i % self.block_rows) * self.width
    }

    /// Iterates sequence `seq` block by block as
    /// `(first_position, key_rows, value_rows)` — the row slices are
    /// contiguous row-major spans of up to [`Self::block_rows`] rows, in
    /// position order. This is the streaming access path the decode
    /// kernels use.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn blocks(&self, seq: usize) -> impl Iterator<Item = (usize, &[T], &[T])> + '_ {
        let state = &self.seqs[seq];
        let block_elems = self.block_rows * self.width;
        state.blocks.iter().enumerate().map(move |(bi, &block)| {
            let first = bi * self.block_rows;
            let rows = (state.len - first).min(self.block_rows);
            let base = block * block_elems;
            (
                first,
                &self.k_arena[base..base + rows * self.width],
                &self.v_arena[base..base + rows * self.width],
            )
        })
    }
}

/// One sequence's output from a [`DecodeBatch::step_all`] call.
#[derive(Clone, Debug)]
pub struct DecodeStepOutput {
    /// The normalized attention row for the new token, packed
    /// `num_heads · head_dim` wide (head-major, like the inputs).
    pub output: Vec<f64>,
    /// Predicted checksum: `Σ_h c_h/ℓ_h` over the sequence's heads
    /// (Alg. 3 line 10, summed across heads).
    pub predicted: f64,
    /// Actual checksum: the sum of all produced output lanes.
    pub actual: f64,
}

impl DecodeStepOutput {
    /// `predicted − actual` — tiny in fault-free f64 decode, large when a
    /// datapath fault corrupted this token's computation.
    pub fn residual(&self) -> f64 {
        self.predicted - self.actual
    }
}

/// Unnormalized per-(sequence, head) state produced by one fused pass:
/// `d` output lanes plus the checksum lane, and the softmax terminal.
struct HeadState {
    /// Lanes `0..d` = output accumulator, lane `d` = checksum (only
    /// meaningful on checked passes).
    lanes: Vec<f64>,
    sum_exp: f64,
}

/// A batched, checked, KV-cache-backed decode engine over
/// `num_sequences × num_heads` independent attention streams.
///
/// # Example
///
/// ```
/// use fa_attention::batch::DecodeBatch;
/// use fa_attention::multihead::MultiHeadConfig;
/// use fa_attention::AttentionConfig;
/// use fa_tensor::Matrix;
///
/// let cfg = MultiHeadConfig::new(2, AttentionConfig::new(2));
/// let mut batch = DecodeBatch::<f64>::new(cfg, 16);
/// let s0 = batch.add_sequence();
/// let q = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 1.0]]);
/// let k = Matrix::from_rows(&[&[0.5, 0.5, 0.5, 0.5]]);
/// let v = Matrix::from_rows(&[&[2.0, 4.0, 6.0, 8.0]]);
/// let out = batch.step_all(&[s0], &q, &k, &v);
/// // First token: softmax weight 1 per head, output == v.
/// assert_eq!(out[0].output, vec![2.0, 4.0, 6.0, 8.0]);
/// assert!(out[0].residual().abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct DecodeBatch<T> {
    cfg: MultiHeadConfig,
    cache: KvCache<T>,
    /// Per sequence: `sumrow_h(v_i)` for every cached position `i` and
    /// head `h`, stored `i·H + h` — the Eq. 4 vector the checksum lane
    /// consumes, computed once per appended token.
    sumrows: Vec<Vec<f64>>,
    /// Per sequence: running (predicted, actual) totals over all decoded
    /// tokens — the session-level Alg. 3 line 11 state.
    totals: Vec<(f64, f64)>,
    /// Per sequence: tokens decoded through
    /// [`step_all_unchecked`](DecodeBatch::step_all_unchecked), which the
    /// session verdict does **not** cover.
    unchecked_steps: Vec<usize>,
}

impl<T: Scalar> DecodeBatch<T> {
    /// Creates an empty engine with the given head layout and KV-cache
    /// block size (rows per block).
    ///
    /// # Panics
    ///
    /// Panics if `block_rows == 0`.
    pub fn new(cfg: MultiHeadConfig, block_rows: usize) -> Self {
        DecodeBatch {
            cfg,
            cache: KvCache::new(cfg.model_dim(), block_rows),
            sumrows: Vec::new(),
            totals: Vec::new(),
            unchecked_steps: Vec::new(),
        }
    }

    /// The head layout.
    pub fn config(&self) -> &MultiHeadConfig {
        &self.cfg
    }

    /// Number of registered sequences.
    pub fn num_sequences(&self) -> usize {
        self.cache.num_sequences()
    }

    /// Number of cached positions for sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn seq_len(&self, seq: usize) -> usize {
        self.cache.seq_len(seq)
    }

    /// Registers a new (empty) sequence and returns its id.
    pub fn add_sequence(&mut self) -> usize {
        self.sumrows.push(Vec::new());
        self.totals.push((0.0, 0.0));
        self.unchecked_steps.push(0);
        self.cache.add_sequence()
    }

    /// Pre-fills sequence `seq` from prompt K/V matrices
    /// (`N × model_dim`), without computing attention.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or out-of-range `seq`.
    pub fn prefill(&mut self, seq: usize, k: &Matrix<T>, v: &Matrix<T>) {
        assert_eq!(k.cols(), self.cfg.model_dim(), "K width mismatch");
        assert_eq!(v.cols(), self.cfg.model_dim(), "V width mismatch");
        assert_eq!(k.rows(), v.rows(), "K/V row count mismatch");
        for i in 0..k.rows() {
            self.append_token(seq, k.row(i), v.row(i));
        }
    }

    /// Reserves KV-cache capacity for at least `additional_rows` more
    /// cached rows across all sequences (see [`KvCache::reserve_rows`]).
    pub fn reserve_rows(&mut self, additional_rows: usize) {
        self.cache.reserve_rows(additional_rows);
    }

    /// Running `Σ predicted − Σ actual` over every token decoded for
    /// `seq` through [`step_all`](Self::step_all) — the sequence-level
    /// ABFT verdict. Tokens decoded through
    /// [`step_all_unchecked`](Self::step_all_unchecked) are **not**
    /// covered; check [`unchecked_len`](Self::unchecked_len) before
    /// reading a zero residual as "every token verified".
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn global_residual(&self, seq: usize) -> f64 {
        let (predicted, actual) = self.totals[seq];
        predicted - actual
    }

    /// Number of tokens of `seq` decoded without checksum coverage (via
    /// [`step_all_unchecked`](Self::step_all_unchecked)). Zero means the
    /// [`global_residual`](Self::global_residual) verdict covers the
    /// whole decoded history.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn unchecked_len(&self, seq: usize) -> usize {
        self.unchecked_steps[seq]
    }

    fn append_token(&mut self, seq: usize, k: &[T], v: &[T]) {
        let d = self.cfg.head.head_dim();
        self.cache.append(seq, k, v);
        for h in 0..self.cfg.num_heads {
            let sumrow: f64 = v[h * d..(h + 1) * d].iter().map(|x| x.to_f64()).sum();
            self.sumrows[seq].push(sumrow);
        }
    }

    /// Decodes one token for every listed sequence, with the fused online
    /// checksum riding each head's pass.
    ///
    /// Row `i` of `qs`/`ks`/`vs` (each `batch × model_dim`) is the new
    /// token of `seq_ids[i]`. All K/V rows are appended first, then every
    /// `sequence × head` pass is scheduled across the shared rayon pool
    /// in one fork; per-head states are combined in input order on the
    /// calling thread, so the result is bit-identical at every thread
    /// count and to serial per-sequence decode.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, out-of-range or duplicate sequence ids.
    pub fn step_all(
        &mut self,
        seq_ids: &[usize],
        qs: &Matrix<T>,
        ks: &Matrix<T>,
        vs: &Matrix<T>,
    ) -> Vec<DecodeStepOutput> {
        let states = self.run_passes(seq_ids, qs, ks, vs, true);
        let h = self.cfg.num_heads;
        let d = self.cfg.head.head_dim();
        // Finalize in input order on this thread (Alg. 3 lines 9–11).
        let mut outputs = Vec::with_capacity(seq_ids.len());
        for (i, &seq) in seq_ids.iter().enumerate() {
            let mut output = vec![0.0f64; self.cfg.model_dim()];
            let mut predicted = 0.0f64;
            let mut actual = 0.0f64;
            for (hi, state) in states[i * h..(i + 1) * h].iter().enumerate() {
                for (c, &lane) in state.lanes[..d].iter().enumerate() {
                    let val = lane / state.sum_exp;
                    output[hi * d + c] = val;
                    actual += val;
                }
                predicted += state.lanes[d] / state.sum_exp;
            }
            let totals = &mut self.totals[seq];
            totals.0 += predicted;
            totals.1 += actual;
            outputs.push(DecodeStepOutput {
                output,
                predicted,
                actual,
            });
        }
        outputs
    }

    /// [`step_all`](Self::step_all) without the checksum lane — the
    /// unchecked baseline the overhead benchmark compares against.
    /// Returns only the normalized output rows. Tokens decoded this way
    /// still advance the cache but are **excluded** from the
    /// [`global_residual`](Self::global_residual) session verdict; the
    /// per-sequence [`unchecked_len`](Self::unchecked_len) counter
    /// records the coverage gap.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, out-of-range or duplicate sequence ids.
    pub fn step_all_unchecked(
        &mut self,
        seq_ids: &[usize],
        qs: &Matrix<T>,
        ks: &Matrix<T>,
        vs: &Matrix<T>,
    ) -> Vec<Vec<f64>> {
        let states = self.run_passes(seq_ids, qs, ks, vs, false);
        for &seq in seq_ids {
            self.unchecked_steps[seq] += 1;
        }
        let h = self.cfg.num_heads;
        let d = self.cfg.head.head_dim();
        seq_ids
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let mut output = vec![0.0f64; self.cfg.model_dim()];
                for (hi, state) in states[i * h..(i + 1) * h].iter().enumerate() {
                    for (c, &lane) in state.lanes[..d].iter().enumerate() {
                        output[hi * d + c] = lane / state.sum_exp;
                    }
                }
                output
            })
            .collect()
    }

    /// Appends every input token, then runs all `batch × heads` fused
    /// passes in a single fork.
    fn run_passes(
        &mut self,
        seq_ids: &[usize],
        qs: &Matrix<T>,
        ks: &Matrix<T>,
        vs: &Matrix<T>,
        checked: bool,
    ) -> Vec<HeadState> {
        let model_dim = self.cfg.model_dim();
        assert_eq!(qs.cols(), model_dim, "Q width mismatch");
        assert_eq!(ks.cols(), model_dim, "K width mismatch");
        assert_eq!(vs.cols(), model_dim, "V width mismatch");
        let batch = seq_ids.len();
        assert_eq!(qs.rows(), batch, "one Q row per sequence id");
        assert_eq!(ks.rows(), batch, "one K row per sequence id");
        assert_eq!(vs.rows(), batch, "one V row per sequence id");
        for (i, &s) in seq_ids.iter().enumerate() {
            assert!(s < self.num_sequences(), "unknown sequence id {s}");
            assert!(
                !seq_ids[..i].contains(&s),
                "duplicate sequence id {s} in one step"
            );
        }

        // Phase 1 (serial, cheap): append every new token.
        for (i, &seq) in seq_ids.iter().enumerate() {
            self.append_token(seq, ks.row(i), vs.row(i));
        }

        // Phase 2: one fork over all sequence×head passes.
        let h = self.cfg.num_heads;
        let work = batch * h;
        let max_len = seq_ids
            .iter()
            .map(|&s| self.cache.seq_len(s))
            .max()
            .unwrap_or(0);
        let pass = |flat: usize| {
            let (i, hi) = (flat / h, flat % h);
            self.head_pass(seq_ids[i], hi, qs.row(i), checked)
        };
        if crate::par::worth_parallelizing(work, max_len, self.cfg.head.head_dim()) {
            (0..work).into_par_iter().map(pass).collect()
        } else {
            (0..work).map(pass).collect()
        }
    }

    /// The fused Alg. 3 loop for one (sequence, head): one sweep over the
    /// sequence's cache blocks computing scores, online-softmax state,
    /// output lanes and (when `checked`) the checksum lane.
    fn head_pass(&self, seq: usize, head: usize, q: &[T], checked: bool) -> HeadState {
        let d = self.cfg.head.head_dim();
        let h = self.cfg.num_heads;
        let scale = self.cfg.head.scale();
        let window = self.cfg.head.sliding_window();
        let newest = self.cache.seq_len(seq) - 1;
        let q_sub = &q[head * d..(head + 1) * d];
        let sumrows = &self.sumrows[seq];

        let mut os = OnlineSoftmax::new();
        let mut lanes = vec![0.0f64; d + 1];
        for (first, k_rows, v_rows) in self.cache.blocks(seq) {
            let rows = k_rows.len() / self.cache.width();
            for r in 0..rows {
                let pos = first + r;
                // Sliding-window masking relative to the newest position,
                // matching `DecodeSession::step_with_state`.
                if let Some(w) = window {
                    if newest - pos >= w {
                        continue;
                    }
                }
                let row = r * self.cache.width() + head * d;
                let s = ops::dot_then_scale(q_sub, &k_rows[row..row + d], scale);
                let step = os.push(s);
                ops::axpy_f64(
                    &mut lanes[..d],
                    &v_rows[row..row + d],
                    step.scale_old,
                    step.weight_new,
                );
                if checked {
                    lanes[d] =
                        lanes[d] * step.scale_old + sumrows[pos * h + head] * step.weight_new;
                }
            }
        }
        HeadState {
            lanes,
            sum_exp: os.sum_exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::DecodeSession;
    use crate::AttentionConfig;
    use fa_tensor::random::ElementDist;

    fn rand(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        Matrix::random_seeded(rows, cols, ElementDist::default(), seed)
    }

    #[test]
    fn cache_blocks_are_contiguous_and_ordered() {
        let mut cache = KvCache::<f64>::new(2, 3);
        let s0 = cache.add_sequence();
        let s1 = cache.add_sequence();
        // Interleave appends so the two sequences' blocks interleave in
        // the arena.
        for i in 0..7 {
            cache.append(s0, &[i as f64, 0.0], &[10.0 + i as f64, 0.0]);
            if i < 4 {
                cache.append(s1, &[100.0 + i as f64, 0.0], &[0.0, i as f64]);
            }
        }
        assert_eq!(cache.seq_len(s0), 7);
        assert_eq!(cache.seq_len(s1), 4);
        let mut pos = 0;
        for (first, k_rows, v_rows) in cache.blocks(s0) {
            assert_eq!(first, pos);
            let rows = k_rows.len() / 2;
            for r in 0..rows {
                assert_eq!(k_rows[r * 2], (first + r) as f64);
                assert_eq!(v_rows[r * 2], 10.0 + (first + r) as f64);
            }
            pos += rows;
        }
        assert_eq!(pos, 7);
        assert_eq!(cache.key_row(s1, 3)[0], 103.0);
    }

    #[test]
    fn batched_decode_matches_serial_sessions_bitwise() {
        // The load-bearing equivalence: DecodeBatch over S sequences and
        // H heads must equal one DecodeSession per (sequence, head), bit
        // for bit, for any cache block size.
        let cfg = MultiHeadConfig::new(3, AttentionConfig::new(4));
        let (s, steps) = (4, 6);
        for block_rows in [1, 2, 16] {
            let mut batch = DecodeBatch::<f64>::new(cfg, block_rows);
            let ids: Vec<usize> = (0..s).map(|_| batch.add_sequence()).collect();
            let mut sessions: Vec<Vec<DecodeSession<f64>>> = (0..s)
                .map(|_| (0..3).map(|_| DecodeSession::new(cfg.head)).collect())
                .collect();
            for t in 0..steps {
                let seed = 9000 + t as u64;
                let qs = rand(s, cfg.model_dim(), seed);
                let ks = rand(s, cfg.model_dim(), seed + 100);
                let vs = rand(s, cfg.model_dim(), seed + 200);
                let outs = batch.step_all(&ids, &qs, &ks, &vs);
                for (i, out) in outs.iter().enumerate() {
                    for (h, session) in sessions[i].iter_mut().enumerate() {
                        let slice = |m: &Matrix<f64>| m.row(i)[h * 4..(h + 1) * 4].to_vec();
                        let reference = session.step(&slice(&qs), &slice(&ks), &slice(&vs));
                        for (c, r) in reference.iter().enumerate() {
                            assert_eq!(
                                out.output[h * 4 + c].to_bits(),
                                r.to_bits(),
                                "block_rows {block_rows} step {t} seq {i} head {h} lane {c}"
                            );
                        }
                    }
                    assert!(out.residual().abs() < 1e-12, "checksum holds");
                }
            }
            for &id in &ids {
                assert!(batch.global_residual(id).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn step_all_parallel_bit_identical_any_thread_count() {
        let cfg = MultiHeadConfig::new(4, AttentionConfig::new(8));
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    let mut batch = DecodeBatch::<f64>::new(cfg, 8);
                    let ids: Vec<usize> = (0..6).map(|_| batch.add_sequence()).collect();
                    for &id in &ids {
                        batch.prefill(
                            id,
                            &rand(40, cfg.model_dim(), 70 + id as u64),
                            &rand(40, cfg.model_dim(), 80 + id as u64),
                        );
                    }
                    let qs = rand(6, cfg.model_dim(), 1);
                    let ks = rand(6, cfg.model_dim(), 2);
                    let vs = rand(6, cfg.model_dim(), 3);
                    batch.step_all(&ids, &qs, &ks, &vs)
                })
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            let parallel = run(threads);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
                assert_eq!(a.actual.to_bits(), b.actual.to_bits());
                for (x, y) in a.output.iter().zip(&b.output) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn unchecked_matches_checked_outputs() {
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let mut checked = DecodeBatch::<f64>::new(cfg, 4);
        let mut unchecked = DecodeBatch::<f64>::new(cfg, 4);
        let ids = vec![checked.add_sequence()];
        let _ = unchecked.add_sequence();
        for t in 0..5 {
            let qs = rand(1, 8, 300 + t);
            let ks = rand(1, 8, 400 + t);
            let vs = rand(1, 8, 500 + t);
            let a = checked.step_all(&ids, &qs, &ks, &vs);
            let b = unchecked.step_all_unchecked(&ids, &qs, &ks, &vs);
            assert_eq!(a[0].output, b[0], "step {t}");
        }
        // The session verdict covers all of `checked`'s tokens and none
        // of `unchecked`'s — and says so.
        assert_eq!(checked.unchecked_len(ids[0]), 0);
        assert_eq!(unchecked.unchecked_len(ids[0]), 5);
    }

    #[test]
    fn sliding_window_matches_decode_session() {
        let head = AttentionConfig::new(2).with_sliding_window(3);
        let cfg = MultiHeadConfig::new(1, head);
        let mut batch = DecodeBatch::<f64>::new(cfg, 2);
        let ids = vec![batch.add_sequence()];
        let mut session = DecodeSession::new(head);
        for t in 0..8 {
            let qs = rand(1, 2, 600 + t);
            let ks = rand(1, 2, 700 + t);
            let vs = rand(1, 2, 800 + t);
            let out = batch.step_all(&ids, &qs, &ks, &vs);
            let reference = session.step(qs.row(0), ks.row(0), vs.row(0));
            for (a, b) in out[0].output.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "step {t}");
            }
        }
    }

    #[test]
    fn corrupted_totals_are_visible() {
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let ids = vec![batch.add_sequence()];
        for t in 0..4 {
            let _ = batch.step_all(
                &ids,
                &rand(1, 8, t),
                &rand(1, 8, 50 + t),
                &rand(1, 8, 90 + t),
            );
        }
        assert!(batch.global_residual(ids[0]).abs() < 1e-10);
        batch.totals[ids[0]].0 += 0.5; // simulated fault on the predicted side
        assert!(batch.global_residual(ids[0]).abs() > 0.4);
    }

    #[test]
    #[should_panic(expected = "duplicate sequence id")]
    fn duplicate_ids_panic() {
        let cfg = MultiHeadConfig::new(1, AttentionConfig::new(2));
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let s = batch.add_sequence();
        let m = rand(2, 2, 1);
        let _ = batch.step_all(&[s, s], &m, &m, &m);
    }

    #[test]
    #[should_panic(expected = "unknown sequence id")]
    fn unknown_id_panics() {
        let cfg = MultiHeadConfig::new(1, AttentionConfig::new(2));
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let m = rand(1, 2, 1);
        let _ = batch.step_all(&[0], &m, &m, &m);
    }
}
